//! # mxplus
//!
//! Umbrella crate of the MX+ reproduction ("MX+: Pushing the Limits of Microscaling
//! Formats for Efficient Large Language Model Serving", MICRO 2025). It re-exports the
//! workspace crates under one roof so that the examples and integration tests can use a
//! single dependency:
//!
//! * [`formats`] — the MX / MX+ / MX++ data formats and all BFP comparators.
//! * [`tensor`] — the dense tensor substrate and calibrated synthetic distributions.
//! * [`llm`] — the transformer inference substrate and quality-proxy evaluation.
//! * [`baselines`] — SmoothQuant / QuaRot / AWQ / Atom / ANT / OliVe / Tender analogues.
//! * [`gpu`] — the Tensor-Core, roofline, conversion, area/power and inference models.
//! * [`dnn`] — the vision (DeiT / ResNet) substrate for Table 9.
//! * [`telemetry`] — latency histograms, engine-step tracing and Chrome-trace export.
//!
//! ```
//! use mxplus::formats::QuantScheme;
//!
//! let row = vec![0.2_f32, -0.4, 7.9, 0.05, -0.3, 0.6, 0.1, -0.2];
//! let q = QuantScheme::mxfp4_plus().quantize_dequantize(&row);
//! assert_eq!(q.len(), row.len());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use mx_baselines as baselines;
pub use mx_dnn as dnn;
pub use mx_formats as formats;
pub use mx_gpu_sim as gpu;
pub use mx_llm as llm;
pub use mx_telemetry as telemetry;
pub use mx_tensor as tensor;
