//! Property-based tests over the format codecs' core invariants.

use proptest::prelude::*;

use mx_formats::block::{fake_quantize_row, MxBlock, BLOCK_SIZE};
use mx_formats::layout::{pack_codes, unpack_codes, PackedMxPlusRow, RowCodec};
use mx_formats::minifloat::{decode_fp, encode_fp, quantize_fp};
use mx_formats::mxplus::{MxPlusBlock, MxPlusFormat};
use mx_formats::mxpp::MxPlusPlusBlock;
use mx_formats::{ElementType, QuantScheme};

fn finite_value() -> impl Strategy<Value = f32> {
    // Magnitudes spanning the interesting dynamic range of activations/weights.
    prop_oneof![
        3 => (-4.0_f32..4.0),
        2 => (-64.0_f32..64.0),
        1 => (-0.05_f32..0.05),
        1 => Just(0.0_f32),
    ]
}

fn block_values() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(finite_value(), 1..=BLOCK_SIZE)
}

fn any_fp_element() -> impl Strategy<Value = ElementType> {
    prop_oneof![
        Just(ElementType::E2M1),
        Just(ElementType::E2M3),
        Just(ElementType::E3M2),
        Just(ElementType::E4M3),
        Just(ElementType::E5M2),
    ]
}

fn sq_err(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| f64::from(x - y) * f64::from(x - y)).sum()
}

proptest! {
    /// Scalar minifloat quantization is idempotent and never exceeds the format maximum.
    #[test]
    fn minifloat_quantization_is_idempotent(et in any_fp_element(), x in -1.0e6_f32..1.0e6) {
        let q = quantize_fp(et, x);
        prop_assert!(q.abs() <= et.max_normal());
        prop_assert_eq!(quantize_fp(et, q), q);
        // The sign is never flipped.
        prop_assert!(q == 0.0 || q.signum() == x.signum());
    }

    /// Encoding always produces a code that fits in the element's bit width and decodes
    /// to a finite value for the NaN-free formats.
    #[test]
    fn minifloat_codes_fit_their_width(et in any_fp_element(), x in -1.0e4_f32..1.0e4) {
        let code = encode_fp(et, x);
        prop_assert!(u16::from(code) < (1 << et.bits()));
        let v = decode_fp(et, code);
        if !et.has_nan() {
            prop_assert!(v.is_finite());
        }
    }

    /// MX block quantization error per element is bounded by the block max (nothing is
    /// ever amplified beyond the scaled grid), and zero blocks stay exactly zero.
    #[test]
    fn mx_block_error_is_bounded(values in block_values()) {
        let block = MxBlock::quantize(ElementType::E2M1, &values);
        let deq = block.dequantize();
        let max_abs = values.iter().map(|v| v.abs()).fold(0.0_f32, f32::max);
        for (x, q) in values.iter().zip(&deq) {
            prop_assert!(q.is_finite());
            // Each element's error is bounded by twice the original block max (a very
            // loose bound that catches scale-handling bugs).
            prop_assert!((x - q).abs() <= 2.0 * max_abs + 1e-6);
        }
    }

    /// The MX+ invariant: replacing the BM's exponent field with extra mantissa can never
    /// increase the block's squared error, and the shared scale is unchanged.
    #[test]
    fn mx_plus_never_increases_error(values in block_values()) {
        let mx = MxBlock::quantize(ElementType::E2M1, &values);
        let plus = MxPlusBlock::quantize(ElementType::E2M1, &values);
        if !mx.scale().is_zero_block() && !plus.scale().is_zero_block() {
            prop_assert_eq!(mx.scale(), plus.scale());
        }
        let e_mx = sq_err(&values, &mx.dequantize());
        let e_plus = sq_err(&values, &plus.dequantize());
        prop_assert!(e_plus <= e_mx + 1e-9, "MX+ {} vs MX {}", e_plus, e_mx);
    }

    /// The MX+ BM split (Equation 3) reconstructs the dequantized BM exactly and both
    /// halves are representable in the plain element type.
    #[test]
    fn bm_split_reconstructs_the_bm(values in block_values()) {
        let plus = MxPlusBlock::quantize(ElementType::E2M1, &values);
        prop_assume!(!plus.scale().is_zero_block());
        let (h, l) = plus.split_bm();
        let bm = plus.dequantize()[plus.bm_index()];
        let scale = plus.scale().value();
        prop_assert!(((h + l) * scale - bm).abs() <= 1e-4 * bm.abs().max(1.0));
        prop_assert_eq!(quantize_fp(ElementType::E2M1, h), h);
        prop_assert_eq!(quantize_fp(ElementType::E2M1, l), l);
    }

    /// MX++ never loses to MX on the same block (its NBM grid is at least as fine and its
    /// BM representation is identical to MX+).
    #[test]
    fn mx_plus_plus_never_loses_to_mx(values in block_values()) {
        let mx = MxBlock::quantize(ElementType::E2M1, &values);
        let pp = MxPlusPlusBlock::quantize(ElementType::E2M1, &values);
        let e_mx = sq_err(&values, &mx.dequantize());
        let e_pp = sq_err(&values, &pp.dequantize());
        prop_assert!(e_pp <= e_mx + 1e-9, "MX++ {} vs MX {}", e_pp, e_mx);
    }

    /// Bit packing round-trips arbitrary code streams at every element width.
    #[test]
    fn packing_round_trips(codes in prop::collection::vec(0u8..=255, 0..200), bits in 1u32..=8) {
        let mask = if bits == 8 { 0xff } else { (1u16 << bits) as u8 - 1 };
        let masked: Vec<u8> = codes.iter().map(|c| c & mask).collect();
        let packed = pack_codes(&masked, bits);
        let unpacked = unpack_codes(&packed, bits, masked.len()).unwrap();
        prop_assert_eq!(unpacked, masked);
    }

    /// A full MX+ row survives pack/unpack bit-exactly.
    #[test]
    fn packed_rows_round_trip(values in prop::collection::vec(finite_value(), 1..200)) {
        let blocks = MxPlusFormat::MXFP4_PLUS.quantize_row(&values);
        let packed = PackedMxPlusRow::pack(&blocks);
        let unpacked = packed.unpack().unwrap();
        let a: Vec<f32> = blocks.iter().flat_map(MxPlusBlock::dequantize).collect();
        let b: Vec<f32> = unpacked.iter().flat_map(MxPlusBlock::dequantize).collect();
        prop_assert_eq!(a, b);
    }

    /// Every high-level scheme preserves length and produces finite values; the plain
    /// power-of-two-scaled schemes are additionally idempotent. The outlier-extended
    /// variants (MX+/MX++/NVFP4+) are excluded from the idempotency check: because the BM
    /// and NBM elements use different grids, a rare corner case exists where an NBM rounds
    /// above the quantized BM and the roles swap on requantization (and NVFP4's E4M3 scale
    /// is re-derived from the new maximum).
    #[test]
    fn schemes_are_idempotent(values in prop::collection::vec(finite_value(), 1..130)) {
        for scheme in [
            QuantScheme::Bf16,
            QuantScheme::mxfp4(),
            QuantScheme::mxfp6(),
            QuantScheme::mxint8(),
        ] {
            let once = scheme.quantize_dequantize(&values);
            prop_assert_eq!(once.len(), values.len());
            prop_assert!(once.iter().all(|v| v.is_finite()));
            let twice = scheme.quantize_dequantize(&once);
            prop_assert_eq!(&once, &twice, "{} not idempotent", scheme.name());
        }
        for scheme in [QuantScheme::mxfp4_plus(), QuantScheme::mxfp4_pp(), QuantScheme::Nvfp4, QuantScheme::Nvfp4Plus] {
            let once = scheme.quantize_dequantize(&values);
            prop_assert_eq!(once.len(), values.len());
            prop_assert!(once.iter().all(|v| v.is_finite()));
        }
    }

    /// Fake quantization of a row equals concatenated per-block quantization regardless of
    /// how the row length relates to the block size.
    #[test]
    fn row_quantization_is_blockwise(values in prop::collection::vec(finite_value(), 1..300)) {
        let whole = fake_quantize_row(ElementType::E2M3, BLOCK_SIZE, &values);
        let mut by_block = Vec::new();
        for chunk in values.chunks(BLOCK_SIZE) {
            by_block.extend(MxBlock::quantize(ElementType::E2M3, chunk).dequantize());
        }
        prop_assert_eq!(whole, by_block);
    }

    /// The packed-row codec invariant the paged KV cache depends on: for every scheme
    /// across the 4/6/8-bit element widths (and the f32 fallback), and for row lengths
    /// that are not multiples of the block size, `pack → unpack` reproduces the scheme's
    /// fake quantization bit for bit, at exactly the codec's advertised byte count.
    #[test]
    fn packed_row_codec_round_trips_every_scheme(values in prop::collection::vec(finite_value(), 1..200)) {
        for scheme in [
            // 4-bit element widths
            QuantScheme::mxfp4(),
            QuantScheme::mxint4(),
            QuantScheme::mxfp4_plus(),
            QuantScheme::mxint4_plus(),
            // 6-bit element widths
            QuantScheme::mxfp6(),
            QuantScheme::Mx(mx_formats::MxFormat::MXFP6_E3M2),
            QuantScheme::mxfp6_plus(),
            // 8-bit element widths
            QuantScheme::mxfp8(),
            QuantScheme::mxint8(),
            QuantScheme::mxfp8_plus(),
            QuantScheme::mxint8_plus(),
            // f32 fallback codec
            QuantScheme::Bf16,
            QuantScheme::mxfp4_pp(),
            QuantScheme::Nvfp4Plus,
        ] {
            let codec = RowCodec::for_scheme(scheme);
            let mut packed = vec![0x5a_u8; codec.packed_bytes(values.len())];
            codec.pack_row_into(&values, &mut packed);
            let mut restored = vec![f32::NAN; values.len()];
            codec.unpack_row_into(&packed, &mut restored);
            prop_assert_eq!(restored, scheme.quantize_dequantize(&values), "{}", scheme.name());
        }
    }

    /// Bit-packed codecs never store more than the per-block byte-ceiled scheme width,
    /// and always beat f32 storage for rows of at least one element.
    #[test]
    fn packed_row_codec_bytes_beat_f32(len in 1usize..300) {
        for scheme in [QuantScheme::mxfp4(), QuantScheme::mxfp6(), QuantScheme::mxfp8(), QuantScheme::mxfp4_plus()] {
            let codec = RowCodec::for_scheme(scheme);
            prop_assert!(codec.is_bit_packed());
            prop_assert!(codec.packed_bytes(len) < len * 4, "{} len {len}", scheme.name());
        }
    }
}
