//! Property tests pinning the dispatched pack/unpack kernels bit-exact against the
//! scalar reference: every bit width (1..=8) × row lengths including partial tail
//! bytes × forced-scalar vs auto dispatch, plus the `RowCodec` round trip and the fused
//! block walk under both dispatch modes.
//!
//! The forced-scalar cases flip a process-global switch, so everything that toggles it
//! runs under one mutex; concurrently running tests see identical *outputs* either way
//! (that equality is exactly what this suite proves), only backend identity assertions
//! need the serialization.

use proptest::prelude::*;
use std::sync::Mutex;

use mx_formats::kernels::{
    self, active_backend, force_scalar, pack_codes_into, pack_codes_into_scalar, packed_len, unpack_codes_into,
    unpack_codes_into_scalar, KernelBackend,
};
use mx_formats::layout::RowCodec;
use mx_formats::QuantScheme;

static FORCE_LOCK: Mutex<()> = Mutex::new(());

fn with_forced_scalar<T>(f: impl FnOnce() -> T) -> T {
    let _guard = FORCE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    force_scalar(true);
    let result = f();
    force_scalar(false);
    result
}

/// Deterministic pseudo-random codes masked to `bits` wide, so a failing case is
/// reproducible from the printed `(bits, len, seed)` triple alone.
fn codes_for(bits: u32, len: usize, seed: u64) -> Vec<u8> {
    let mask = if bits == 8 { 0xff } else { (1u16 << bits) - 1 } as u8;
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) as u8) & mask
        })
        .collect()
}

fn any_len() -> impl Strategy<Value = usize> {
    // Lengths straddle the SIMD vector widths (32/64 codes) and include partial tails.
    prop_oneof![0usize..=8, 28usize..=36, 60usize..=68, 120usize..=132, Just(1024), Just(1031)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn dispatched_pack_unpack_matches_scalar(bits in 1u32..=8, len in any_len(), seed in 0u64..1_000_000) {
        let codes = codes_for(bits, len, seed);
        let nb = packed_len(codes.len(), bits);
        let mut reference = vec![0u8; nb];
        pack_codes_into_scalar(&codes, bits, &mut reference);
        let mut packed = vec![0xaa_u8; nb];
        pack_codes_into(&codes, bits, &mut packed);
        prop_assert_eq!(&packed, &reference, "pack bits {} len {}", bits, codes.len());

        let mut unpacked = vec![0xaa_u8; codes.len()];
        unpack_codes_into(&packed, bits, &mut unpacked);
        let mut unpacked_ref = vec![0u8; codes.len()];
        unpack_codes_into_scalar(&reference, bits, &mut unpacked_ref);
        prop_assert_eq!(&unpacked, &unpacked_ref);
        prop_assert_eq!(&unpacked, &codes, "round trip bits {} len {}", bits, codes.len());
    }

    #[test]
    fn forced_scalar_and_auto_dispatch_produce_identical_bytes(bits in 1u32..=8, len in any_len(), seed in 0u64..1_000_000) {
        let codes = codes_for(bits, len, seed);
        let nb = packed_len(codes.len(), bits);
        let mut auto_packed = vec![0u8; nb];
        pack_codes_into(&codes, bits, &mut auto_packed);
        let mut auto_unpacked = vec![0u8; codes.len()];
        unpack_codes_into(&auto_packed, bits, &mut auto_unpacked);

        let (forced_packed, forced_unpacked) = with_forced_scalar(|| {
            let mut p = vec![0u8; nb];
            pack_codes_into(&codes, bits, &mut p);
            let mut u = vec![0u8; codes.len()];
            unpack_codes_into(&p, bits, &mut u);
            (p, u)
        });
        prop_assert_eq!(auto_packed, forced_packed);
        prop_assert_eq!(auto_unpacked, forced_unpacked);
    }

    #[test]
    fn row_codec_bytes_and_decode_are_dispatch_invariant(
        seed in 0u64..1_000_000,
        len in prop_oneof![1usize..=8, 28usize..=36, 60usize..=68, 120usize..=132],
        scheme_idx in 0usize..8,
    ) {
        let schemes = [
            QuantScheme::mxfp4(),
            QuantScheme::mxfp6(),
            QuantScheme::mxfp8(),
            QuantScheme::mxint4(),
            QuantScheme::mxint8(),
            QuantScheme::mxfp4_plus(),
            QuantScheme::mxfp6_plus(),
            QuantScheme::mxfp8_plus(),
        ];
        let scheme = schemes[scheme_idx];
        let row: Vec<f32> = (0..len)
            .map(|i| {
                let x = (seed.wrapping_mul(2_654_435_761).wrapping_add(i as u64 * 97) % 2001) as f32;
                (x / 1000.0 - 1.0) * if i % 13 == 7 { 30.0 } else { 1.0 }
            })
            .collect();
        let codec = RowCodec::for_scheme(scheme);
        let expected = scheme.quantize_dequantize(&row);

        let mut auto_packed = vec![0u8; codec.packed_bytes(len)];
        codec.pack_row_into(&row, &mut auto_packed);
        let mut auto_out = vec![f32::NAN; len];
        codec.unpack_row_into(&auto_packed, &mut auto_out);
        prop_assert_eq!(&auto_out, &expected, "{} len {}", scheme, len);

        // The fused block walk must reproduce the same bits, in ascending block order.
        let mut walked = vec![f32::NAN; len];
        let fused = codec.walk_row_blocks(&auto_packed, len, |start, vals| {
            walked[start..start + vals.len()].copy_from_slice(vals);
        });
        prop_assert!(fused);
        prop_assert_eq!(
            walked.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let (forced_packed, forced_out, forced_fused) = with_forced_scalar(|| {
            let mut p = vec![0u8; codec.packed_bytes(len)];
            codec.pack_row_into(&row, &mut p);
            let mut o = vec![f32::NAN; len];
            codec.unpack_row_into(&p, &mut o);
            let fused = codec.walk_row_blocks(&p, len, |_, _| {});
            (p, o, fused)
        });
        prop_assert_eq!(auto_packed, forced_packed, "packed bytes must be dispatch-invariant");
        prop_assert_eq!(auto_out, forced_out);
        prop_assert!(!forced_fused, "forced scalar must disable the fused walk");
    }
}

#[test]
fn forced_scalar_switch_is_observable() {
    let _guard = FORCE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    force_scalar(false);
    let auto = active_backend();
    force_scalar(true);
    assert_eq!(active_backend(), KernelBackend::Scalar);
    assert!(kernels::scalar_forced());
    force_scalar(false);
    assert_eq!(active_backend(), auto);
}
