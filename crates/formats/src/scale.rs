//! The E8M0 shared-scale codec used by the MX format family.
//!
//! An MX block carries one 8-bit shared scale `X = 2^shared_exp`. The encoding is a pure
//! biased exponent (bias 127) with no sign or mantissa bits. Following the paper's MX+
//! flush-to-zero rule (Section 4.1), the biased value 0 is reserved to mean "every element
//! in the block is zero", and the biased value 255 is the NaN scale of the OCP spec.

use serde::{Deserialize, Serialize};

/// Exponent bias of the E8M0 encoding.
pub const E8M0_BIAS: i32 = 127;

/// Smallest unbiased exponent representable once the zero code is reserved (-126).
pub const MIN_SHARED_EXP: i32 = 1 - E8M0_BIAS;

/// Largest unbiased exponent representable (+127).
pub const MAX_SHARED_EXP: i32 = 254 - E8M0_BIAS;

/// A shared block scale restricted to powers of two, stored as an E8M0 byte.
///
/// ```
/// use mx_formats::SharedScale;
///
/// let s = SharedScale::from_exponent(-3);
/// assert_eq!(s.value(), 0.125);
/// assert_eq!(SharedScale::from_bits(s.to_bits()), s);
/// assert_eq!(SharedScale::ZERO_BLOCK.value(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SharedScale(u8);

impl SharedScale {
    /// The reserved code meaning "all elements of this block are zero" (MX+ Section 4.1).
    pub const ZERO_BLOCK: SharedScale = SharedScale(0);

    /// The OCP NaN scale code (biased exponent 255).
    pub const NAN: SharedScale = SharedScale(255);

    /// Creates a scale `2^exp`, clamping `exp` to the representable range
    /// [[`MIN_SHARED_EXP`], [`MAX_SHARED_EXP`]].
    #[must_use]
    pub fn from_exponent(exp: i32) -> Self {
        let clamped = exp.clamp(MIN_SHARED_EXP, MAX_SHARED_EXP);
        SharedScale((clamped + E8M0_BIAS) as u8)
    }

    /// Reconstructs a scale from its raw E8M0 byte.
    #[must_use]
    pub const fn from_bits(bits: u8) -> Self {
        SharedScale(bits)
    }

    /// Raw E8M0 byte.
    #[must_use]
    pub const fn to_bits(self) -> u8 {
        self.0
    }

    /// Whether this is the reserved all-zero-block code.
    #[must_use]
    pub const fn is_zero_block(self) -> bool {
        self.0 == 0
    }

    /// Whether this is the NaN scale code.
    #[must_use]
    pub const fn is_nan(self) -> bool {
        self.0 == 255
    }

    /// Unbiased exponent. Returns `None` for the reserved zero-block and NaN codes.
    #[must_use]
    pub fn exponent(self) -> Option<i32> {
        if self.is_zero_block() || self.is_nan() {
            None
        } else {
            Some(i32::from(self.0) - E8M0_BIAS)
        }
    }

    /// The scale factor as an `f32`: `2^exponent`, `0.0` for the zero-block code, NaN for
    /// the NaN code.
    #[must_use]
    pub fn value(self) -> f32 {
        if self.is_zero_block() {
            0.0
        } else if self.is_nan() {
            f32::NAN
        } else {
            (2.0_f32).powi(i32::from(self.0) - E8M0_BIAS)
        }
    }
}

impl Default for SharedScale {
    fn default() -> Self {
        SharedScale::from_exponent(0)
    }
}

/// Computes the MX shared exponent of Equation 1 for a block of values:
/// `shared_exp = floor(log2(max|x|)) - emax`.
///
/// Returns `None` when the block is entirely zero (or contains only non-finite junk),
/// which callers encode as [`SharedScale::ZERO_BLOCK`].
#[must_use]
pub fn shared_exponent(values: &[f32], emax: i32) -> Option<i32> {
    let max_abs = values.iter().map(|v| v.abs()).filter(|v| v.is_finite()).fold(0.0_f32, f32::max);
    if max_abs == 0.0 {
        return None;
    }
    Some(floor_log2(max_abs) - emax)
}

/// `floor(log2(x))` computed from the IEEE-754 representation so that exact powers of two
/// never land on the wrong side of the boundary.
#[must_use]
pub fn floor_log2(x: f32) -> i32 {
    debug_assert!(x > 0.0 && x.is_finite());
    let bits = x.to_bits();
    let exp = ((bits >> 23) & 0xff) as i32;
    if exp == 0 {
        // Subnormal f32: fall back to log2 (values this small never matter for blocks,
        // but keep the function total).
        x.log2().floor() as i32
    } else {
        exp - 127
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_exponents() {
        for exp in MIN_SHARED_EXP..=MAX_SHARED_EXP {
            let s = SharedScale::from_exponent(exp);
            assert_eq!(s.exponent(), Some(exp));
            assert_eq!(s.value(), (2.0_f32).powi(exp));
            assert_eq!(SharedScale::from_bits(s.to_bits()), s);
        }
    }

    #[test]
    fn clamping_at_range_ends() {
        assert_eq!(SharedScale::from_exponent(-500).exponent(), Some(MIN_SHARED_EXP));
        assert_eq!(SharedScale::from_exponent(500).exponent(), Some(MAX_SHARED_EXP));
    }

    #[test]
    fn reserved_codes() {
        assert!(SharedScale::ZERO_BLOCK.is_zero_block());
        assert_eq!(SharedScale::ZERO_BLOCK.value(), 0.0);
        assert_eq!(SharedScale::ZERO_BLOCK.exponent(), None);
        assert!(SharedScale::NAN.is_nan());
        assert!(SharedScale::NAN.value().is_nan());
    }

    #[test]
    fn floor_log2_exact_powers() {
        for e in -120..120 {
            let x = (2.0_f32).powi(e);
            assert_eq!(floor_log2(x), e, "2^{e}");
            assert_eq!(floor_log2(x * 1.5), e);
            assert_eq!(floor_log2(x * 1.999), e);
        }
    }

    #[test]
    fn shared_exponent_matches_equation_1() {
        // Paper Figure 6: block max 9.84 with E2M1 (emax 2): floor(log2 9.84)=3, shared=1.
        let block = [-0.27, -0.19, 0.99, -0.20, -9.84, -0.39];
        assert_eq!(shared_exponent(&block, 2), Some(1));
        // Lower sampled block of Figure 4(b): max 1.02 -> floor log2 = 0, shared = -2.
        let block = [-0.27, 0.04, -1.02, 0.18, -0.45, -0.20];
        assert_eq!(shared_exponent(&block, 2), Some(-2));
    }

    #[test]
    fn shared_exponent_of_zero_block_is_none() {
        assert_eq!(shared_exponent(&[0.0; 32], 2), None);
        assert_eq!(shared_exponent(&[], 2), None);
    }

    #[test]
    fn shared_exponent_ignores_non_finite() {
        assert_eq!(shared_exponent(&[f32::NAN, 4.0], 2), Some(0));
    }

    #[test]
    fn default_scale_is_one() {
        assert_eq!(SharedScale::default().value(), 1.0);
    }
}
