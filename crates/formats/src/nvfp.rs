//! NVIDIA's NVFP4 format and the paper's NVFP4+ extension (Section 8.2).
//!
//! NVFP4 resembles MXFP4 (E2M1 elements) but uses a 16-element block and an E4M3
//! floating-point scale factor chosen so that the block max maps as closely as possible to
//! the maximum representable FP4 magnitude (6.0). NVFP4+ extends the mantissa of the block
//! max exactly as MX+ does, except when the BM is so small that its element exponent is
//! not at the maximum, in which case the block falls back to plain NVFP4.

use serde::{Deserialize, Serialize};

use crate::block::MxBlock;
use crate::element::ElementType;
use crate::minifloat;

/// NVFP4 block size.
pub const NVFP4_BLOCK_SIZE: usize = 16;

/// Quantizes the per-block E4M3 scale factor of NVFP4.
///
/// The raw scale is `max|x| / 6.0` (so that the BM maps to the FP4 maximum); it is then
/// rounded to the nearest representable E4M3 value.
#[must_use]
pub fn nvfp4_scale(values: &[f32]) -> f32 {
    let max_abs = values.iter().map(|v| v.abs()).filter(|v| v.is_finite()).fold(0.0_f32, f32::max);
    if max_abs == 0.0 {
        return 0.0;
    }
    let raw = max_abs / ElementType::E2M1.max_normal();
    let q = minifloat::quantize_fp(ElementType::E4M3, raw);
    if q == 0.0 {
        // Keep a tiny non-zero scale so the block does not collapse; use the smallest
        // subnormal E4M3 value.
        ElementType::E4M3.min_subnormal()
    } else {
        q
    }
}

/// A quantized NVFP4 block (optionally with the NVFP4+ BM extension).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nvfp4Block {
    scale: f32,
    plus: bool,
    bm_index: u8,
    /// True when the `plus` extension is actually active for this block (the BM element's
    /// exponent is at its maximum); otherwise the block is stored as plain NVFP4.
    bm_extended: bool,
    codes: Vec<u8>,
}

impl Nvfp4Block {
    /// Quantizes a block of up to 16 values as plain NVFP4.
    #[must_use]
    pub fn quantize(values: &[f32]) -> Self {
        Self::quantize_impl(values, false)
    }

    /// Quantizes a block of up to 16 values as NVFP4+ (extended BM mantissa).
    #[must_use]
    pub fn quantize_plus(values: &[f32]) -> Self {
        Self::quantize_impl(values, true)
    }

    fn quantize_impl(values: &[f32], plus: bool) -> Self {
        let scale = nvfp4_scale(values);
        if scale == 0.0 {
            return Nvfp4Block { scale, plus, bm_index: 0, bm_extended: false, codes: vec![0; values.len()] };
        }
        let bm_index = MxBlock::block_max_index(values);
        // The BM extension applies only when the scaled BM's exponent is at the FP4
        // maximum (>= 4.0), which holds unless the E4M3 scale rounding pushed it lower.
        let scaled_bm = (values[bm_index] / scale).abs();
        let bm_extended = plus && scaled_bm >= (2.0_f32).powi(ElementType::E2M1.emax());
        let codes = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let scaled = v / scale;
                if bm_extended && i == bm_index {
                    minifloat::encode_bm_extended(ElementType::E2M1, scaled.abs(), v.is_sign_negative())
                } else {
                    minifloat::encode_fp(ElementType::E2M1, scaled)
                }
            })
            .collect();
        Nvfp4Block { scale, plus, bm_index: bm_index as u8, bm_extended, codes }
    }

    /// The E4M3 scale factor.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Index of the block-max element (meaningful only when the extension is active).
    #[must_use]
    pub fn bm_index(&self) -> usize {
        usize::from(self.bm_index)
    }

    /// Whether the NVFP4+ extended BM representation is active for this block.
    #[must_use]
    pub fn bm_extended(&self) -> bool {
        self.bm_extended
    }

    /// Dequantizes the block.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        if self.scale == 0.0 {
            return vec![0.0; self.codes.len()];
        }
        self.codes
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let e = if self.bm_extended && i == usize::from(self.bm_index) {
                    minifloat::decode_bm_extended(ElementType::E2M1, c)
                } else {
                    minifloat::decode_fp(ElementType::E2M1, c)
                };
                e * self.scale
            })
            .collect()
    }

    /// Storage bits: 16 FP4 elements + 8-bit E4M3 scale (+ 4-bit BM index for NVFP4+).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.codes.len() * 4 + 8 + if self.plus { 4 } else { 0 }
    }
}

/// Direct-cast fake quantization of a row with NVFP4 blocks.
#[must_use]
pub fn nvfp4_quantize_dequantize(values: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(values.len());
    for chunk in values.chunks(NVFP4_BLOCK_SIZE) {
        out.extend(Nvfp4Block::quantize(chunk).dequantize());
    }
    out
}

/// Direct-cast fake quantization of a row with NVFP4+ blocks.
#[must_use]
pub fn nvfp4_plus_quantize_dequantize(values: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(values.len());
    for chunk in values.chunks(NVFP4_BLOCK_SIZE) {
        out.extend(Nvfp4Block::quantize_plus(chunk).dequantize());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mxfp::MxFormat;
    use crate::mxplus::MxPlusFormat;

    fn mse(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| ((x - y) * (x - y)) as f64).sum::<f64>() / a.len() as f64
    }

    fn activations(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0;
                let v = u * u * u;
                if i % 127 == 31 {
                    v * 60.0
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn zero_block() {
        let b = Nvfp4Block::quantize(&[0.0; 16]);
        assert_eq!(b.scale(), 0.0);
        assert_eq!(b.dequantize(), vec![0.0; 16]);
    }

    #[test]
    fn bm_maps_near_fp4_maximum() {
        let values = [9.0_f32, 0.1, -0.2, 0.3, 0.05, -0.07, 0.0, 0.01, 0.2, -0.3, 0.1, 0.0, 0.4, -0.1, 0.02, 0.3];
        let b = Nvfp4Block::quantize(&values);
        let deq = b.dequantize();
        // scale = 9/6 = 1.5 exactly representable in E4M3, so the BM is exact.
        assert!((deq[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn nvfp4_plus_improves_or_matches_nvfp4() {
        let row = activations(1024);
        let plain = mse(&row, &nvfp4_quantize_dequantize(&row));
        let plus = mse(&row, &nvfp4_plus_quantize_dequantize(&row));
        assert!(plus <= plain + 1e-12);
    }

    #[test]
    fn nvfp4_beats_mxfp4_but_loses_to_mxfp4_plus() {
        // Section 8.2 / Table 11: NVFP4's finer blocks beat MXFP4, but MXFP4+ is better
        // than or comparable to NVFP4 because outliers get extra precision.
        let row = activations(4096);
        let nv = mse(&row, &nvfp4_quantize_dequantize(&row));
        let mx = mse(&row, &MxFormat::MXFP4.quantize_dequantize(&row));
        let mxp = mse(&row, &MxPlusFormat::MXFP4_PLUS.quantize_dequantize(&row));
        assert!(nv <= mx, "NVFP4 {nv} should beat MXFP4 {mx}");
        // On raw MSE the two are close (NVFP4's 16-element blocks and FP scale versus
        // MXFP4+'s extended BM mantissa); the paper's accuracy tables favour MXFP4+.
        assert!(mxp <= nv * 2.0, "MXFP4+ {mxp} should be competitive with NVFP4 {nv}");
        assert!(mxp <= mx, "MXFP4+ {mxp} must beat plain MXFP4 {mx}");
    }

    #[test]
    fn extension_falls_back_when_scaled_bm_is_low() {
        // Construct a block where E4M3 scale rounding pushes the scaled BM below 4.0:
        // then NVFP4+ must fall back to the plain representation (Section 8.2).
        // A max of 1e-9 forces the raw scale (max/6) to round towards a coarse subnormal
        // E4M3 grid point that can exceed the raw value considerably.
        let mut values = [0.0_f32; 16];
        values[3] = 3.0e-9;
        let b = Nvfp4Block::quantize_plus(&values);
        // Whether or not the extension engaged, dequantization must be finite and the
        // flag must be consistent with the representation.
        let deq = b.dequantize();
        assert!(deq.iter().all(|v| v.is_finite()));
        if !b.bm_extended() {
            assert_eq!(b.storage_bits(), 16 * 4 + 8 + 4);
        }
    }

    #[test]
    fn storage_accounting() {
        let values = [1.0_f32; 16];
        assert_eq!(Nvfp4Block::quantize(&values).storage_bits(), 72);
        assert_eq!(Nvfp4Block::quantize_plus(&values).storage_bits(), 76);
    }

    #[test]
    fn scale_is_e4m3_representable() {
        for &m in &[0.013_f32, 0.7, 3.3, 57.0, 412.0] {
            let values = [m, m * 0.1, -m * 0.2, 0.0];
            let s = nvfp4_scale(&values);
            assert_eq!(minifloat::quantize_fp(ElementType::E4M3, s), s, "scale for max {m}");
        }
    }

    #[test]
    fn row_api_preserves_length() {
        let row = activations(100);
        assert_eq!(nvfp4_quantize_dequantize(&row).len(), 100);
        assert_eq!(nvfp4_plus_quantize_dequantize(&row).len(), 100);
    }
}
