//! Concrete MX-compliant formats (Table 1 of the paper) and the row-level direct-cast API.

use serde::{Deserialize, Serialize};

use crate::block::{fake_quantize_row, MxBlock, BLOCK_SIZE};
use crate::element::ElementType;
use crate::error::FormatError;

/// A concrete MX-compliant format: an element data type plus a block size.
///
/// The OCP specification fixes the block size at 32 and the scale at E8M0 for every
/// concrete format; the block size is kept as a field so that the paper's block-size
/// ablation (and NVFP4's 16-element blocks) can reuse the same machinery.
///
/// ```
/// use mx_formats::MxFormat;
///
/// assert_eq!(MxFormat::MXFP4.average_bits_per_element(), 4.25);
/// assert_eq!(MxFormat::MXFP6_E2M3.average_bits_per_element(), 6.25);
/// assert_eq!(MxFormat::MXFP8_E4M3.average_bits_per_element(), 8.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MxFormat {
    /// Element data type for the 32 private elements.
    pub element: ElementType,
    /// Number of elements sharing one scale.
    pub block_size: usize,
}

impl MxFormat {
    /// MXFP4: E2M1 elements, 32-element blocks.
    pub const MXFP4: MxFormat = MxFormat { element: ElementType::E2M1, block_size: BLOCK_SIZE };
    /// MXFP6 with the E2M3 element type (the variant the paper evaluates).
    pub const MXFP6_E2M3: MxFormat = MxFormat { element: ElementType::E2M3, block_size: BLOCK_SIZE };
    /// MXFP6 with the E3M2 element type.
    pub const MXFP6_E3M2: MxFormat = MxFormat { element: ElementType::E3M2, block_size: BLOCK_SIZE };
    /// MXFP8 with the E4M3 element type (the variant the paper evaluates).
    pub const MXFP8_E4M3: MxFormat = MxFormat { element: ElementType::E4M3, block_size: BLOCK_SIZE };
    /// MXFP8 with the E5M2 element type.
    pub const MXFP8_E5M2: MxFormat = MxFormat { element: ElementType::E5M2, block_size: BLOCK_SIZE };
    /// MXINT8: INT8 elements with an implicit 2^-6 scale.
    pub const MXINT8: MxFormat = MxFormat { element: ElementType::Int8, block_size: BLOCK_SIZE };
    /// The paper's hypothetical MXINT4 format (Section 8.2).
    pub const MXINT4: MxFormat = MxFormat { element: ElementType::Int4, block_size: BLOCK_SIZE };

    /// All concrete formats evaluated by the paper.
    pub const ALL: [MxFormat; 7] = [
        MxFormat::MXFP4,
        MxFormat::MXFP6_E2M3,
        MxFormat::MXFP6_E3M2,
        MxFormat::MXFP8_E4M3,
        MxFormat::MXFP8_E5M2,
        MxFormat::MXINT8,
        MxFormat::MXINT4,
    ];

    /// Creates a format with the standard 32-element block.
    #[must_use]
    pub const fn new(element: ElementType) -> Self {
        MxFormat { element, block_size: BLOCK_SIZE }
    }

    /// Creates a format with a non-standard block size (used by the block-size ablation).
    #[must_use]
    pub const fn with_block_size(element: ElementType, block_size: usize) -> Self {
        MxFormat { element, block_size }
    }

    /// Average storage bits per element including the shared-scale byte
    /// (e.g. 4.25 for MXFP4, 8.25 for MXFP8).
    #[must_use]
    pub fn average_bits_per_element(&self) -> f64 {
        self.element.bits() as f64 + 8.0 / self.block_size as f64
    }

    /// Quantizes one row (last tensor dimension) into MX blocks.
    #[must_use]
    pub fn quantize_row(&self, values: &[f32]) -> Vec<MxBlock> {
        values.chunks(self.block_size).map(|c| MxBlock::quantize(self.element, c)).collect()
    }

    /// Dequantizes a sequence of blocks produced by [`MxFormat::quantize_row`].
    #[must_use]
    pub fn dequantize_row(&self, blocks: &[MxBlock]) -> Vec<f32> {
        let mut out = Vec::new();
        for b in blocks {
            out.extend(b.dequantize());
        }
        out
    }

    /// Direct-cast "fake quantization" of a row: quantize then immediately dequantize.
    #[must_use]
    pub fn quantize_dequantize(&self, values: &[f32]) -> Vec<f32> {
        fake_quantize_row(self.element, self.block_size, values)
    }

    /// Buffer-reusing variant of [`MxFormat::quantize_dequantize`]: writes the
    /// fake-quantized row into `out` instead of allocating a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != values.len()`.
    pub fn quantize_dequantize_into(&self, values: &[f32], out: &mut [f32]) {
        crate::block::fake_quantize_row_into(self.element, self.block_size, values, out);
    }

    /// Direct-cast fake quantization of a row-major matrix, blocking along the rows
    /// (the last/contiguous dimension), which is how the paper quantizes both weight and
    /// activation tensors for dot products.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Alignment`] if `data.len()` is not a multiple of `cols`.
    pub fn quantize_dequantize_matrix(&self, data: &[f32], cols: usize) -> Result<Vec<f32>, FormatError> {
        if cols == 0 || !data.len().is_multiple_of(cols) {
            return Err(FormatError::Alignment { len: data.len(), block: cols.max(1) });
        }
        let mut out = Vec::with_capacity(data.len());
        for row in data.chunks(cols) {
            out.extend(self.quantize_dequantize(row));
        }
        Ok(out)
    }

    /// Short display name like "MXFP4" or "MXFP6 (E2M3)".
    #[must_use]
    pub fn name(&self) -> String {
        let base = match self.element {
            ElementType::E2M1 => "MXFP4".to_string(),
            ElementType::E2M3 => "MXFP6 (E2M3)".to_string(),
            ElementType::E3M2 => "MXFP6 (E3M2)".to_string(),
            ElementType::E4M3 => "MXFP8 (E4M3)".to_string(),
            ElementType::E5M2 => "MXFP8 (E5M2)".to_string(),
            ElementType::Int8 => "MXINT8".to_string(),
            ElementType::Int4 => "MXINT4".to_string(),
        };
        if self.block_size == BLOCK_SIZE {
            base
        } else {
            format!("{base} (k={})", self.block_size)
        }
    }
}

impl std::fmt::Display for MxFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mse(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| ((x - y) * (x - y)) as f64).sum::<f64>() / a.len() as f64
    }

    fn synthetic_row(n: usize) -> Vec<f32> {
        // Deterministic pseudo-random values with a couple of channel outliers.
        (0..n)
            .map(|i| {
                let base = ((i * 2_654_435_761_usize) % 1000) as f32 / 1000.0 - 0.5;
                if i % 97 == 13 {
                    base * 40.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn average_bit_widths_match_table_1() {
        assert_eq!(MxFormat::MXFP4.average_bits_per_element(), 4.25);
        assert_eq!(MxFormat::MXFP6_E2M3.average_bits_per_element(), 6.25);
        assert_eq!(MxFormat::MXFP6_E3M2.average_bits_per_element(), 6.25);
        assert_eq!(MxFormat::MXFP8_E4M3.average_bits_per_element(), 8.25);
        assert_eq!(MxFormat::MXINT8.average_bits_per_element(), 8.25);
    }

    #[test]
    fn quantize_row_block_count() {
        let row = synthetic_row(100);
        let blocks = MxFormat::MXFP4.quantize_row(&row);
        assert_eq!(blocks.len(), 4); // 32 + 32 + 32 + 4
        assert_eq!(blocks[3].len(), 4);
        let deq = MxFormat::MXFP4.dequantize_row(&blocks);
        assert_eq!(deq.len(), 100);
    }

    #[test]
    fn higher_precision_formats_have_lower_error() {
        // Note: MSE between MXFP6 and MXFP8 is not strictly ordered on outlier-heavy data
        // because E4M3 reserves its top mantissa code for NaN and therefore saturates
        // slightly earlier within the block-max binade; the robust ordering (as in the
        // paper's perplexity results) is relative to MXFP4.
        let row = synthetic_row(1024);
        let e = |fmt: MxFormat| mse(&row, &fmt.quantize_dequantize(&row));
        assert!(e(MxFormat::MXFP6_E2M3) <= e(MxFormat::MXFP4));
        assert!(e(MxFormat::MXFP8_E4M3) <= e(MxFormat::MXFP4));
        assert!(e(MxFormat::MXINT8) <= e(MxFormat::MXFP4));
    }

    #[test]
    fn e2m3_beats_e3m2_on_moderate_dynamic_range() {
        // Prior work (and the paper) choose E2M3 for MXFP6 because activations after
        // block scaling rarely need the extra exponent range.
        let row: Vec<f32> = (0..512).map(|i| ((i % 23) as f32 - 11.0) * 0.07).collect();
        let e2m3 = mse(&row, &MxFormat::MXFP6_E2M3.quantize_dequantize(&row));
        let e3m2 = mse(&row, &MxFormat::MXFP6_E3M2.quantize_dequantize(&row));
        assert!(e2m3 <= e3m2);
    }

    #[test]
    fn matrix_quantization_requires_alignment() {
        let data = vec![0.5_f32; 12];
        assert!(MxFormat::MXFP4.quantize_dequantize_matrix(&data, 5).is_err());
        assert!(MxFormat::MXFP4.quantize_dequantize_matrix(&data, 4).is_ok());
        assert!(MxFormat::MXFP4.quantize_dequantize_matrix(&data, 0).is_err());
    }

    #[test]
    fn smaller_blocks_reduce_error_but_cost_more_bits() {
        let row = synthetic_row(512);
        let k32 = MxFormat::with_block_size(ElementType::E2M1, 32);
        let k16 = MxFormat::with_block_size(ElementType::E2M1, 16);
        assert!(mse(&row, &k16.quantize_dequantize(&row)) <= mse(&row, &k32.quantize_dequantize(&row)));
        assert!(k16.average_bits_per_element() > k32.average_bits_per_element());
    }

    #[test]
    fn display_names() {
        assert_eq!(MxFormat::MXFP4.to_string(), "MXFP4");
        assert_eq!(MxFormat::MXFP6_E2M3.to_string(), "MXFP6 (E2M3)");
        assert_eq!(MxFormat::with_block_size(ElementType::E2M1, 16).to_string(), "MXFP4 (k=16)");
    }

    #[test]
    fn idempotent_fake_quantization() {
        let row = synthetic_row(256);
        let once = MxFormat::MXFP4.quantize_dequantize(&row);
        let twice = MxFormat::MXFP4.quantize_dequantize(&once);
        assert_eq!(once, twice);
    }
}
