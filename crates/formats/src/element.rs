//! Element data types used inside MX blocks.
//!
//! The OCP Microscaling specification defines five floating-point element encodings
//! (E2M1, E2M3, E3M2, E4M3, E5M2) and one integer encoding (INT8). The paper
//! additionally evaluates a hypothetical INT4 element. [`ElementType`] captures the
//! static properties of each encoding (bit widths, exponent bias, maximum representable
//! exponent and magnitude) that the block codecs need.

use serde::{Deserialize, Serialize};

/// Element data types for MX-compliant and related block formats.
///
/// The floating-point variants follow the OCP MX specification: `E2M1`, `E2M3` and
/// `E3M2` have no NaN/Inf encodings, `E4M3` reserves the all-ones exponent + mantissa
/// pattern for NaN (FN style), and `E5M2` follows IEEE-754 special-value semantics.
///
/// ```
/// use mx_formats::ElementType;
///
/// assert_eq!(ElementType::E2M1.bits(), 4);
/// assert_eq!(ElementType::E2M1.emax(), 2);
/// assert_eq!(ElementType::E2M1.max_normal(), 6.0);
/// assert_eq!(ElementType::E4M3.max_normal(), 448.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementType {
    /// 4-bit float: 1 sign, 2 exponent, 1 mantissa bit (the MXFP4 element).
    E2M1,
    /// 6-bit float: 1 sign, 2 exponent, 3 mantissa bits (an MXFP6 element).
    E2M3,
    /// 6-bit float: 1 sign, 3 exponent, 2 mantissa bits (an MXFP6 element).
    E3M2,
    /// 8-bit float: 1 sign, 4 exponent, 3 mantissa bits (an MXFP8 element).
    E4M3,
    /// 8-bit float: 1 sign, 5 exponent, 2 mantissa bits (an MXFP8 element).
    E5M2,
    /// 8-bit two's-complement integer with an implicit scale of 2^-6 (the MXINT8 element).
    Int8,
    /// Hypothetical 4-bit two's-complement integer with an implicit scale of 2^-2
    /// (the paper's MXINT4 exploration, Section 8.2).
    Int4,
}

impl ElementType {
    /// All floating-point element types, in increasing bit width.
    pub const FP_TYPES: [ElementType; 5] =
        [ElementType::E2M1, ElementType::E2M3, ElementType::E3M2, ElementType::E4M3, ElementType::E5M2];

    /// Total number of bits per element.
    #[must_use]
    pub const fn bits(self) -> u32 {
        match self {
            ElementType::E2M1 | ElementType::Int4 => 4,
            ElementType::E2M3 | ElementType::E3M2 => 6,
            ElementType::E4M3 | ElementType::E5M2 | ElementType::Int8 => 8,
        }
    }

    /// Number of exponent bits (0 for the integer types).
    #[must_use]
    pub const fn exp_bits(self) -> u32 {
        match self {
            ElementType::E2M1 | ElementType::E2M3 => 2,
            ElementType::E3M2 => 3,
            ElementType::E4M3 => 4,
            ElementType::E5M2 => 5,
            ElementType::Int8 | ElementType::Int4 => 0,
        }
    }

    /// Number of explicitly stored mantissa (fraction) bits.
    ///
    /// For the integer types this is the number of fractional bits of the fixed-point
    /// interpretation (6 for INT8, 2 for INT4).
    #[must_use]
    pub const fn man_bits(self) -> u32 {
        match self {
            ElementType::E2M1 => 1,
            ElementType::E2M3 => 3,
            ElementType::E3M2 => 2,
            ElementType::E4M3 => 3,
            ElementType::E5M2 => 2,
            ElementType::Int8 => 6,
            ElementType::Int4 => 2,
        }
    }

    /// Exponent bias of the floating-point encoding (0 for integers).
    #[must_use]
    pub const fn bias(self) -> i32 {
        match self {
            ElementType::E2M1 | ElementType::E2M3 => 1,
            ElementType::E3M2 => 3,
            ElementType::E4M3 => 7,
            ElementType::E5M2 => 15,
            ElementType::Int8 | ElementType::Int4 => 0,
        }
    }

    /// Maximum representable (unbiased) exponent `e_max` used in the MX shared-scale
    /// computation (Equation 1 of the paper).
    ///
    /// For the integer element types `e_max` is 0 because element magnitudes are always
    /// below 2 (Section 8.2 of the paper).
    #[must_use]
    pub const fn emax(self) -> i32 {
        match self {
            ElementType::E2M1 | ElementType::E2M3 => 2,
            ElementType::E3M2 => 4,
            // E4M3 reserves S.1111.111 for NaN but S.1111.110 is a normal number,
            // so the maximum exponent is 1111 - bias = 8.
            ElementType::E4M3 => 8,
            // E5M2 reserves the all-ones exponent for Inf/NaN, so emax is 11110 - bias = 15.
            ElementType::E5M2 => 15,
            ElementType::Int8 | ElementType::Int4 => 0,
        }
    }

    /// Largest finite representable magnitude of the element data type.
    #[must_use]
    pub fn max_normal(self) -> f32 {
        match self {
            ElementType::E2M1 => 6.0,
            ElementType::E2M3 => 7.5,
            ElementType::E3M2 => 28.0,
            ElementType::E4M3 => 448.0,
            ElementType::E5M2 => 57_344.0,
            // 127 / 64 and 7 / 4 for the fixed-point integer interpretations.
            ElementType::Int8 => 127.0 / 64.0,
            ElementType::Int4 => 7.0 / 4.0,
        }
    }

    /// Smallest positive *normal* magnitude of the floating-point encodings
    /// (2^(1 - bias)); for integers this is one unit in the last place.
    #[must_use]
    pub fn min_normal(self) -> f32 {
        match self {
            ElementType::Int8 => 1.0 / 64.0,
            ElementType::Int4 => 0.25,
            fp => (2.0_f32).powi(1 - fp.bias()),
        }
    }

    /// Smallest positive subnormal magnitude (2^(1 - bias - man_bits)); for integers this
    /// equals [`ElementType::min_normal`].
    #[must_use]
    pub fn min_subnormal(self) -> f32 {
        match self {
            ElementType::Int8 | ElementType::Int4 => self.min_normal(),
            fp => (2.0_f32).powi(1 - fp.bias() - fp.man_bits() as i32),
        }
    }

    /// Whether the encoding reserves NaN representations (only E4M3 and E5M2 do).
    #[must_use]
    pub const fn has_nan(self) -> bool {
        matches!(self, ElementType::E4M3 | ElementType::E5M2)
    }

    /// Whether this is one of the integer element types.
    #[must_use]
    pub const fn is_int(self) -> bool {
        matches!(self, ElementType::Int8 | ElementType::Int4)
    }

    /// Number of extended mantissa bits available to the block-max element under the MX+
    /// extension: the exponent field is repurposed, so the BM gains `exp_bits` mantissa
    /// bits on top of the regular ones (Figure 7: E0M3 / E0M5 / E0M7).
    ///
    /// For the integer types the single always-one integer bit is made implicit, which
    /// frees exactly one extra fraction bit (Section 8.2).
    #[must_use]
    pub const fn plus_bm_man_bits(self) -> u32 {
        match self {
            ElementType::Int8 | ElementType::Int4 => self.man_bits() + 1,
            _ => self.man_bits() + self.exp_bits(),
        }
    }

    /// Short human-readable name ("E2M1", "INT8", ...).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            ElementType::E2M1 => "E2M1",
            ElementType::E2M3 => "E2M3",
            ElementType::E3M2 => "E3M2",
            ElementType::E4M3 => "E4M3",
            ElementType::E5M2 => "E5M2",
            ElementType::Int8 => "INT8",
            ElementType::Int4 => "INT4",
        }
    }
}

impl std::fmt::Display for ElementType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths_are_consistent() {
        for et in ElementType::FP_TYPES {
            assert_eq!(1 + et.exp_bits() + et.man_bits(), et.bits(), "{et}");
        }
        assert_eq!(ElementType::Int8.bits(), 8);
        assert_eq!(ElementType::Int4.bits(), 4);
    }

    #[test]
    fn emax_matches_paper_examples() {
        // Paper Section 2: "in MXFP4 ... emax becomes 2 (i.e., 11_2 - 1)".
        assert_eq!(ElementType::E2M1.emax(), 2);
        assert_eq!(ElementType::E2M3.emax(), 2);
        assert_eq!(ElementType::E3M2.emax(), 4);
        // Paper Section 4.2: "2 for E2M1 and E2M3; 8 for E4M3".
        assert_eq!(ElementType::E4M3.emax(), 8);
        assert_eq!(ElementType::E5M2.emax(), 15);
        assert_eq!(ElementType::Int8.emax(), 0);
    }

    #[test]
    fn max_normals_match_known_values() {
        assert_eq!(ElementType::E2M1.max_normal(), 6.0);
        assert_eq!(ElementType::E2M3.max_normal(), 7.5);
        assert_eq!(ElementType::E3M2.max_normal(), 28.0);
        assert_eq!(ElementType::E4M3.max_normal(), 448.0);
        assert_eq!(ElementType::E5M2.max_normal(), 57_344.0);
    }

    #[test]
    fn max_normal_is_consistent_with_emax_and_mantissa() {
        for et in [ElementType::E2M1, ElementType::E2M3, ElementType::E3M2] {
            // No NaN reservation: max mantissa is all ones.
            let man_max = 1.0 + ((1u32 << et.man_bits()) - 1) as f32 / (1u32 << et.man_bits()) as f32;
            let expected = man_max * (2.0_f32).powi(et.emax());
            assert!((et.max_normal() - expected).abs() < 1e-6, "{et}");
        }
        // E4M3: mantissa 111 with exponent 1111 is NaN, so the max normal mantissa is 110.
        let expected = (1.0 + 6.0 / 8.0) * (2.0_f32).powi(8);
        assert_eq!(ElementType::E4M3.max_normal(), expected);
    }

    #[test]
    fn subnormal_below_normal() {
        for et in ElementType::FP_TYPES {
            assert!(et.min_subnormal() <= et.min_normal());
            assert!(et.min_subnormal() > 0.0);
        }
    }

    #[test]
    fn plus_extension_mantissa_widths_match_figure_7() {
        // MXFP4+: BM stored as E0M3; MXFP6+ (E2M3) as E0M5; MXFP8+ (E4M3) as E0M7.
        assert_eq!(ElementType::E2M1.plus_bm_man_bits(), 3);
        assert_eq!(ElementType::E2M3.plus_bm_man_bits(), 5);
        assert_eq!(ElementType::E4M3.plus_bm_man_bits(), 7);
        // MXINT8+: 6 -> 7 fraction bits; MXINT4+: 2 -> 3 fraction bits.
        assert_eq!(ElementType::Int8.plus_bm_man_bits(), 7);
        assert_eq!(ElementType::Int4.plus_bm_man_bits(), 3);
    }

    #[test]
    fn names_round_trip_via_display() {
        for et in [
            ElementType::E2M1,
            ElementType::E2M3,
            ElementType::E3M2,
            ElementType::E4M3,
            ElementType::E5M2,
            ElementType::Int8,
            ElementType::Int4,
        ] {
            assert_eq!(et.to_string(), et.name());
        }
    }

    #[test]
    fn nan_support_only_for_8_bit_floats() {
        assert!(ElementType::E4M3.has_nan());
        assert!(ElementType::E5M2.has_nan());
        assert!(!ElementType::E2M1.has_nan());
        assert!(!ElementType::E2M3.has_nan());
        assert!(!ElementType::E3M2.has_nan());
    }
}
