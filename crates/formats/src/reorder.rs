//! Channel reordering (Section 8.3): scattering co-located outliers across blocks.
//!
//! Activation outliers are concentrated in a small number of channels (Figure 4a). When
//! two outlier channels fall into the same 32-channel MX block, only one of them can be
//! the block max, so the other keeps its large quantization error. The paper proposes an
//! optional channel-wise reordering that places the most outlier-heavy channels one per
//! block, so that (almost) every outlier becomes a BM and benefits from the MX+ extended
//! mantissa.

use serde::{Deserialize, Serialize};

use crate::block::BLOCK_SIZE;
use crate::metrics::three_sigma_outliers;

/// A channel permutation: `new_order[i]` is the original channel placed at position `i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelPermutation {
    new_order: Vec<usize>,
}

impl ChannelPermutation {
    /// Identity permutation over `cols` channels.
    #[must_use]
    pub fn identity(cols: usize) -> Self {
        ChannelPermutation { new_order: (0..cols).collect() }
    }

    /// Builds the permutation from an explicit ordering.
    ///
    /// # Panics
    ///
    /// Panics if `new_order` is not a permutation of `0..new_order.len()`.
    #[must_use]
    pub fn from_order(new_order: Vec<usize>) -> Self {
        let mut seen = vec![false; new_order.len()];
        for &c in &new_order {
            assert!(c < new_order.len() && !seen[c], "not a permutation");
            seen[c] = true;
        }
        ChannelPermutation { new_order }
    }

    /// Number of channels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.new_order.len()
    }

    /// Whether the permutation is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.new_order.is_empty()
    }

    /// The ordering: position `i` holds original channel `order()[i]`.
    #[must_use]
    pub fn order(&self) -> &[usize] {
        &self.new_order
    }

    /// Applies the permutation to a row-major `rows x cols` matrix, returning the
    /// reordered matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not `rows * self.len()`.
    #[must_use]
    pub fn apply(&self, data: &[f32], rows: usize) -> Vec<f32> {
        let cols = self.new_order.len();
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        let mut out = vec![0.0; data.len()];
        for r in 0..rows {
            for (new_c, &old_c) in self.new_order.iter().enumerate() {
                out[r * cols + new_c] = data[r * cols + old_c];
            }
        }
        out
    }

    /// Applies the inverse permutation (restoring the original channel order).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not `rows * self.len()`.
    #[must_use]
    pub fn invert(&self, data: &[f32], rows: usize) -> Vec<f32> {
        let cols = self.new_order.len();
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        let mut out = vec![0.0; data.len()];
        for r in 0..rows {
            for (new_c, &old_c) in self.new_order.iter().enumerate() {
                out[r * cols + old_c] = data[r * cols + new_c];
            }
        }
        out
    }
}

/// Counts 3-sigma outliers per channel of a row-major `rows x cols` matrix.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
#[must_use]
pub fn per_channel_outlier_counts(data: &[f32], rows: usize, cols: usize) -> Vec<usize> {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    let mut counts = vec![0usize; cols];
    for &idx in &three_sigma_outliers(data) {
        counts[idx % cols] += 1;
    }
    let _ = rows;
    counts
}

/// Builds the paper's reordering from per-channel outlier counts.
///
/// Channels are sorted by outlier count (descending). The heaviest channels are placed one
/// every [`BLOCK_SIZE`] positions; the remaining sorted channels are split in half, the
/// lower half filling the remaining slots in descending order followed by the upper half
/// (Section 8.3).
#[must_use]
pub fn reorder_by_outlier_count(counts: &[usize]) -> ChannelPermutation {
    let cols = counts.len();
    if cols == 0 {
        return ChannelPermutation::identity(0);
    }
    // Sort channel indices by outlier count descending (stable by index for determinism).
    let mut sorted: Vec<usize> = (0..cols).collect();
    sorted.sort_by_key(|&c| (std::cmp::Reverse(counts[c]), c));

    let n_blocks = cols.div_ceil(BLOCK_SIZE);
    let n_leaders = n_blocks.min(cols);

    let mut order = vec![usize::MAX; cols];
    // Leaders: one per block at the block's first position.
    for (b, &c) in sorted.iter().take(n_leaders).enumerate() {
        order[b * BLOCK_SIZE] = c;
    }
    // Remaining channels: lower half (next heaviest) then upper half, filling the gaps in
    // descending order of outlier count.
    let rest: Vec<usize> = sorted[n_leaders..].to_vec();
    let half = rest.len() / 2;
    let fill: Vec<usize> = rest[..half].iter().chain(rest[half..].iter()).copied().collect();
    // Exactly `cols - n_leaders` slots are unfilled, matching `fill`'s length; if that
    // ever broke, a usize::MAX left behind would fail `from_order`'s validation below.
    debug_assert_eq!(fill.len(), cols - n_leaders, "fill list does not cover the non-leader slots");
    let mut fill_iter = fill.into_iter();
    for slot in order.iter_mut() {
        if *slot == usize::MAX {
            if let Some(c) = fill_iter.next() {
                *slot = c;
            }
        }
    }
    ChannelPermutation::from_order(order)
}

/// Convenience: derive the permutation directly from an activation matrix.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
#[must_use]
pub fn reorder_from_activations(data: &[f32], rows: usize, cols: usize) -> ChannelPermutation {
    reorder_by_outlier_count(&per_channel_outlier_counts(data, rows, cols))
}

/// Fraction of outlier-containing [`BLOCK_SIZE`]-channel blocks that hold more than one
/// outlier, before/after statistics used in Section 8.3 ("decreases from 22.52% to 4.58%").
#[must_use]
pub fn multi_outlier_block_fraction(data: &[f32], rows: usize, cols: usize) -> f64 {
    crate::metrics::outlier_stats(data, rows, cols).multi_outlier_block_fraction
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic activation matrix with outliers concentrated in the given channels.
    fn activations(rows: usize, cols: usize, outlier_channels: &[usize]) -> Vec<f32> {
        let mut data = vec![0.0_f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let u = (((r * cols + c) * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0;
                data[r * cols + c] = u * 0.1;
            }
            for &oc in outlier_channels {
                data[r * cols + oc] = 15.0 + (r as f32 * 0.3);
            }
        }
        data
    }

    #[test]
    fn identity_round_trip() {
        let p = ChannelPermutation::identity(8);
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        assert_eq!(p.apply(&data, 2), data);
        assert_eq!(p.invert(&data, 2), data);
    }

    #[test]
    fn apply_then_invert_is_identity() {
        let p = ChannelPermutation::from_order(vec![2, 0, 3, 1]);
        let data: Vec<f32> = (0..12).map(|i| i as f32 * 0.5).collect();
        let reordered = p.apply(&data, 3);
        assert_eq!(p.invert(&reordered, 3), data);
        assert_ne!(reordered, data);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_order_rejects_duplicates() {
        let _ = ChannelPermutation::from_order(vec![0, 0, 1]);
    }

    #[test]
    fn per_channel_counts_find_outlier_channels() {
        let data = activations(16, 64, &[7, 40]);
        let counts = per_channel_outlier_counts(&data, 16, 64);
        assert_eq!(counts[7], 16);
        assert_eq!(counts[40], 16);
        assert!(counts.iter().enumerate().all(|(c, &n)| c == 7 || c == 40 || n == 0));
    }

    #[test]
    fn reorder_scatters_colocated_outliers() {
        // Two outlier channels in the SAME 32-channel block (3 and 9): after reordering
        // they must land in different blocks.
        let data = activations(16, 64, &[3, 9]);
        let before = multi_outlier_block_fraction(&data, 16, 64);
        assert_eq!(before, 1.0);
        let perm = reorder_from_activations(&data, 16, 64);
        let reordered = perm.apply(&data, 16);
        let after = multi_outlier_block_fraction(&reordered, 16, 64);
        assert_eq!(after, 0.0);
    }

    #[test]
    fn reorder_places_leaders_at_block_starts() {
        let data = activations(8, 96, &[10, 42, 80]);
        let perm = reorder_from_activations(&data, 8, 96);
        let leaders: Vec<usize> = (0..3).map(|b| perm.order()[b * BLOCK_SIZE]).collect();
        let mut sorted_leaders = leaders.clone();
        sorted_leaders.sort_unstable();
        assert_eq!(sorted_leaders, vec![10, 42, 80]);
    }

    #[test]
    fn reorder_is_a_valid_permutation_even_without_outliers() {
        let data = activations(4, 64, &[]);
        let perm = reorder_from_activations(&data, 4, 64);
        assert_eq!(perm.len(), 64);
        let mut order = perm.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn reorder_handles_non_multiple_of_block_size() {
        let data = activations(4, 40, &[1, 35]);
        let perm = reorder_from_activations(&data, 4, 40);
        assert_eq!(perm.len(), 40);
        let reordered = perm.apply(&data, 4);
        assert_eq!(perm.invert(&reordered, 4), data);
    }
}
