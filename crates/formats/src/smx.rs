//! Shared microexponents (SMX) block formats.
//!
//! SMX (Rouhani et al., ISCA 2023) uses *two-level* scaling: a group of 16 elements shares
//! an 8-bit first-level exponent, and every pair of elements inside the group shares a
//! 1-bit second-level microexponent that optionally shifts the pair's effective scale down
//! by one. Elements store sign + mantissa with no implicit leading bit, as in MSFP.
//!
//! The paper evaluates SMX4, SMX6 and SMX9, whose average bits per element are 4.0, 6.0
//! and 9.0 respectively (1 sign + {2,4,7} mantissa bits + 0.5 bits of microexponent +
//! 0.5 bits of shared exponent).

use serde::{Deserialize, Serialize};

use crate::scale::{floor_log2, SharedScale};

/// First-level group size (elements sharing the 8-bit exponent).
pub const SMX_GROUP_SIZE: usize = 16;
/// Second-level subgroup size (elements sharing the 1-bit microexponent).
pub const SMX_SUBGROUP_SIZE: usize = 2;

/// An SMX format descriptor.
///
/// ```
/// use mx_formats::smx::SmxFormat;
///
/// assert_eq!(SmxFormat::SMX4.average_bits_per_element(), 4.0);
/// assert_eq!(SmxFormat::SMX6.average_bits_per_element(), 6.0);
/// assert_eq!(SmxFormat::SMX9.average_bits_per_element(), 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SmxFormat {
    /// Explicit mantissa bits per element (excluding the sign bit).
    pub man_bits: u32,
}

impl SmxFormat {
    /// SMX4: 1 sign + 2 mantissa bits.
    pub const SMX4: SmxFormat = SmxFormat { man_bits: 2 };
    /// SMX6: 1 sign + 4 mantissa bits.
    pub const SMX6: SmxFormat = SmxFormat { man_bits: 4 };
    /// SMX9: 1 sign + 7 mantissa bits.
    pub const SMX9: SmxFormat = SmxFormat { man_bits: 7 };

    /// Average storage bits per element: sign + mantissa + 1/2 microexponent bit +
    /// 8/16 shared-exponent bits.
    #[must_use]
    pub fn average_bits_per_element(&self) -> f64 {
        1.0 + self.man_bits as f64 + 1.0 / SMX_SUBGROUP_SIZE as f64 + 8.0 / SMX_GROUP_SIZE as f64
    }

    /// Quantizes one group of up to 16 values.
    #[must_use]
    pub fn quantize_group(&self, values: &[f32]) -> SmxGroup {
        let max_abs = values.iter().map(|v| v.abs()).filter(|v| v.is_finite()).fold(0.0_f32, f32::max);
        if max_abs == 0.0 {
            return SmxGroup {
                format: *self,
                scale: SharedScale::ZERO_BLOCK,
                micro_exps: vec![0; values.len().div_ceil(SMX_SUBGROUP_SIZE)],
                codes: vec![0; values.len()],
            };
        }
        let shared_exp = floor_log2(max_abs);
        let scale = SharedScale::from_exponent(shared_exp);
        let steps = (1u32 << (self.man_bits - 1)) as f32;
        let max_code = (1u32 << self.man_bits) - 1;

        let mut micro_exps = Vec::with_capacity(values.len().div_ceil(SMX_SUBGROUP_SIZE));
        let mut codes = Vec::with_capacity(values.len());
        for pair in values.chunks(SMX_SUBGROUP_SIZE) {
            let pair_max = pair.iter().map(|v| v.abs()).filter(|v| v.is_finite()).fold(0.0_f32, f32::max);
            // The microexponent shifts the pair's scale down by one whenever the pair
            // still fits without saturating at the reduced scale.
            let reduced_max = (max_code as f32 / steps) * (2.0_f32).powi(shared_exp - 1);
            let micro = u8::from(pair_max > 0.0 && pair_max <= reduced_max);
            micro_exps.push(micro);
            let pair_scale = (2.0_f32).powi(shared_exp - i32::from(micro));
            for &v in pair {
                let scaled = (v.abs() / pair_scale).min(2.0);
                let m = ((scaled * steps).round_ties_even() as u32).min(max_code);
                let sign = u16::from(v.is_sign_negative() && m != 0);
                codes.push((sign << self.man_bits) | m as u16);
            }
        }
        SmxGroup { format: *self, scale, micro_exps, codes }
    }

    /// Direct-cast fake quantization of a row.
    #[must_use]
    pub fn quantize_dequantize(&self, values: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(values.len());
        for chunk in values.chunks(SMX_GROUP_SIZE) {
            out.extend(self.quantize_group(chunk).dequantize());
        }
        out
    }

    /// Display name ("SMX4", "SMX6", "SMX9").
    #[must_use]
    pub fn name(&self) -> String {
        format!("SMX{}", (self.average_bits_per_element()).round() as u32)
    }
}

impl std::fmt::Display for SmxFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A quantized SMX group (16 elements, one shared exponent, 8 microexponent bits).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmxGroup {
    format: SmxFormat,
    scale: SharedScale,
    micro_exps: Vec<u8>,
    codes: Vec<u16>,
}

impl SmxGroup {
    /// The first-level shared scale.
    #[must_use]
    pub fn scale(&self) -> SharedScale {
        self.scale
    }

    /// The per-pair microexponent bits (0 or 1).
    #[must_use]
    pub fn micro_exps(&self) -> &[u8] {
        &self.micro_exps
    }

    /// Raw sign+mantissa codes.
    #[must_use]
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Dequantizes the group.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        if self.scale.is_zero_block() {
            return vec![0.0; self.codes.len()];
        }
        let shared_exp = self.scale.exponent().unwrap_or(0);
        let steps = (1u32 << (self.format.man_bits - 1)) as f32;
        self.codes
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let micro = i32::from(self.micro_exps[i / SMX_SUBGROUP_SIZE]);
                let pair_scale = (2.0_f32).powi(shared_exp - micro);
                let sign = if c >> self.format.man_bits & 1 == 1 { -1.0 } else { 1.0 };
                let m = (c & ((1 << self.format.man_bits) - 1) as u16) as f32;
                sign * (m / steps) * pair_scale
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msfp::MsfpFormat;

    fn mse(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| ((x - y) * (x - y)) as f64).sum::<f64>() / a.len() as f64
    }

    fn bell(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0;
                u * u * u * 1.5
            })
            .collect()
    }

    #[test]
    fn average_bits_match_figure_1() {
        assert_eq!(SmxFormat::SMX4.average_bits_per_element(), 4.0);
        assert_eq!(SmxFormat::SMX6.average_bits_per_element(), 6.0);
        assert_eq!(SmxFormat::SMX9.average_bits_per_element(), 9.0);
    }

    #[test]
    fn names() {
        assert_eq!(SmxFormat::SMX4.to_string(), "SMX4");
        assert_eq!(SmxFormat::SMX6.to_string(), "SMX6");
        assert_eq!(SmxFormat::SMX9.to_string(), "SMX9");
    }

    #[test]
    fn zero_group() {
        let g = SmxFormat::SMX4.quantize_group(&[0.0; 16]);
        assert!(g.scale().is_zero_block());
        assert_eq!(g.dequantize(), vec![0.0; 16]);
    }

    #[test]
    fn microexponent_helps_small_pairs() {
        // Pair (0.4, 0.3) sits one binade below the group max 2.0: its microexponent must
        // be set, halving the effective scale and the quantization step.
        let values = [2.0_f32, 1.8, 0.4, 0.3];
        let g = SmxFormat::SMX4.quantize_group(&values);
        assert_eq!(g.micro_exps(), &[0, 1]);
        let deq = g.dequantize();
        // With the microexponent the step for the small pair is 0.5 instead of 1.0.
        assert!((deq[2] - 0.5).abs() < 1e-6);

        // Same values quantized as MSFP-style single-level (microexponent forced off)
        // would round 0.4 to 0.0 or 1.0; verify SMX is strictly better on this pair.
        let single = MsfpFormat { man_bits: 2, block_size: 16 }.quantize_block(&values).dequantize();
        assert!((deq[2] - 0.4).abs() <= (single[2] - 0.4).abs());
    }

    #[test]
    fn microexponent_is_zero_for_pairs_near_the_max() {
        // The second pair's max (1.7) would saturate at the reduced scale (max 1.5),
        // so its microexponent must stay 0.
        let values = [2.0_f32, 1.8, 1.7, 0.3];
        let g = SmxFormat::SMX4.quantize_group(&values);
        assert_eq!(g.micro_exps(), &[0, 0]);
    }

    #[test]
    fn higher_width_reduces_error() {
        let row = bell(512);
        let e4 = mse(&row, &SmxFormat::SMX4.quantize_dequantize(&row));
        let e6 = mse(&row, &SmxFormat::SMX6.quantize_dequantize(&row));
        let e9 = mse(&row, &SmxFormat::SMX9.quantize_dequantize(&row));
        assert!(e6 <= e4);
        assert!(e9 <= e6);
    }

    #[test]
    fn smx_is_competitive_with_msfp_despite_fewer_bits() {
        // SMX6 spends 6.0 average bits versus MSFP14's 6.5 (a whole mantissa bit less per
        // element); the 1-bit microexponent recovers part of that gap, keeping SMX within
        // a small factor of MSFP on bell-shaped data. SMX4 versus MSFP12 behaves the same.
        let row = bell(2048);
        let smx6 = mse(&row, &SmxFormat::SMX6.quantize_dequantize(&row));
        let msfp14 = mse(&row, &MsfpFormat::MSFP14.quantize_dequantize(&row));
        assert!(smx6 <= msfp14 * 3.0, "SMX6 {smx6} should be within 3x of MSFP14 {msfp14}");
        let smx4 = mse(&row, &SmxFormat::SMX4.quantize_dequantize(&row));
        let msfp12 = mse(&row, &MsfpFormat::MSFP12.quantize_dequantize(&row));
        assert!(smx4 <= msfp12 * 3.0, "SMX4 {smx4} should be within 3x of MSFP12 {msfp12}");
    }

    #[test]
    fn row_quantization_preserves_length_with_partial_groups() {
        let row = bell(37);
        assert_eq!(SmxFormat::SMX6.quantize_dequantize(&row).len(), 37);
    }

    #[test]
    fn odd_length_group_handles_trailing_singleton_pair() {
        let values = [1.0_f32, 0.5, 0.25];
        let g = SmxFormat::SMX6.quantize_group(&values);
        assert_eq!(g.micro_exps().len(), 2);
        assert_eq!(g.dequantize().len(), 3);
    }
}
