//! Bfloat16 support.
//!
//! The paper's baseline ("B") stores tensors in BF16 and performs matrix multiplications
//! in BF16 with FP32 accumulation. This module provides a minimal, dependency-free BF16
//! type with round-to-nearest-even conversion from `f32`, which the tensor and LLM
//! substrates use for the baseline path.

use serde::{Deserialize, Serialize};

/// A bfloat16 value (1 sign, 8 exponent, 7 mantissa bits).
///
/// ```
/// use mx_formats::Bf16;
///
/// let x = Bf16::from_f32(1.0 + 1.0 / 256.0);
/// // 1 + 2^-8 is exactly halfway between 1.0 and 1 + 2^-7; ties go to even (1.0).
/// assert_eq!(x.to_f32(), 1.0);
/// assert_eq!(Bf16::from_f32(3.1416).to_f32(), Bf16::from_f32(3.1416).to_f32());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3f80);

    /// Converts an `f32` to BF16 with round-to-nearest-even.
    #[must_use]
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Preserve a quiet NaN.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits.
        let round_bit = (bits >> 15) & 1;
        let sticky = bits & 0x7fff;
        let mut upper = (bits >> 16) as u16;
        if round_bit == 1 && (sticky != 0 || (upper & 1) == 1) {
            upper = upper.wrapping_add(1);
        }
        Bf16(upper)
    }

    /// Converts back to `f32` (exact).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    /// Raw storage bits.
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Reconstructs from raw bits.
    #[must_use]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Bf16::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}

/// Rounds an `f32` through BF16 and back: the "fake quantization" used by the baseline.
#[must_use]
pub fn round_to_bf16(x: f32) -> f32 {
    Bf16::from_f32(x).to_f32()
}

/// Rounds every element of a slice through BF16 in place.
pub fn round_slice_to_bf16(values: &mut [f32]) {
    for v in values {
        *v = round_to_bf16(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for x in [0.0_f32, 1.0, -1.0, 0.5, 2.0, -3.5, 256.0, 1.0e-20, 3.0e38] {
            let bf = round_to_bf16(x);
            assert_eq!(round_to_bf16(bf), bf);
        }
    }

    #[test]
    fn relative_error_is_below_2e_minus_3() {
        for i in 1..1000 {
            let x = i as f32 * 0.137;
            let bf = round_to_bf16(x);
            assert!(((bf - x) / x).abs() < 1.0 / 256.0, "x={x} bf={bf}");
        }
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2^-8 is exactly halfway between representable 1.0 and 1 + 2^-7.
        assert_eq!(round_to_bf16(1.0 + 1.0 / 256.0), 1.0);
        // 1 + 3*2^-8 is halfway between 1+2^-7 and 1+2^-6; mantissa of 1+2^-7 is odd,
        // so the tie rounds up to 1+2^-6.
        assert_eq!(round_to_bf16(1.0 + 3.0 / 256.0), 1.0 + 2.0 / 128.0);
    }

    #[test]
    fn nan_and_infinity_preserved() {
        assert!(round_to_bf16(f32::NAN).is_nan());
        assert_eq!(round_to_bf16(f32::INFINITY), f32::INFINITY);
        assert_eq!(round_to_bf16(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn sign_preserved() {
        assert!(round_to_bf16(-0.1) < 0.0);
        assert_eq!(round_to_bf16(-2.0), -2.0);
    }

    #[test]
    fn slice_rounding_matches_scalar() {
        let mut v = vec![0.1_f32, 0.2, 0.3, -7.77];
        let expected: Vec<f32> = v.iter().map(|&x| round_to_bf16(x)).collect();
        round_slice_to_bf16(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // Values above the max finite BF16 (~3.39e38) overflow to infinity when rounding up.
        let big = 3.4e38_f32;
        let bf = round_to_bf16(big);
        assert!(bf.is_infinite() || bf <= f32::MAX);
    }
}
