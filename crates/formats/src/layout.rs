//! Bit-packed storage layouts for MX and MX+ tensors (Figure 7 of the paper).
//!
//! Element codes are packed contiguously at their native width (4, 6 or 8 bits), the
//! shared scales form a separate byte array, and — for MX+ — a third byte array carries
//! the per-block metadata (5-bit BM index + 3 reserved bits). Keeping the three streams
//! separate mirrors the paper's observation that the index metadata "does not need to be
//! stored contiguously with the element data or the shared scale".

use serde::{Deserialize, Serialize};

use crate::element::ElementType;
use crate::error::FormatError;
use crate::mxplus::MxPlusBlock;
use crate::scale::SharedScale;

/// Packs a sequence of element codes of width `bits` into a byte vector (little-endian bit
/// order within each byte).
#[must_use]
pub fn pack_codes(codes: &[u8], bits: u32) -> Vec<u8> {
    assert!((1..=8).contains(&bits), "element width must be between 1 and 8 bits");
    let total_bits = codes.len() * bits as usize;
    let mut out = vec![0u8; total_bits.div_ceil(8)];
    let mask = if bits == 8 { 0xff } else { (1u16 << bits) - 1 };
    for (i, &code) in codes.iter().enumerate() {
        let value = u16::from(code) & mask;
        let bit_pos = i * bits as usize;
        let byte = bit_pos / 8;
        let offset = bit_pos % 8;
        out[byte] |= (value << offset) as u8;
        if offset + bits as usize > 8 {
            out[byte + 1] |= (value >> (8 - offset)) as u8;
        }
    }
    out
}

/// Unpacks `count` element codes of width `bits` from a packed byte buffer.
///
/// # Errors
///
/// Returns [`FormatError::PackedLength`] if the buffer is too short.
pub fn unpack_codes(packed: &[u8], bits: u32, count: usize) -> Result<Vec<u8>, FormatError> {
    assert!((1..=8).contains(&bits), "element width must be between 1 and 8 bits");
    let needed = (count * bits as usize).div_ceil(8);
    if packed.len() < needed {
        return Err(FormatError::PackedLength { expected: needed, actual: packed.len() });
    }
    let mask = if bits == 8 { 0xff } else { (1u16 << bits) - 1 };
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let bit_pos = i * bits as usize;
        let byte = bit_pos / 8;
        let offset = bit_pos % 8;
        let mut value = u16::from(packed[byte]) >> offset;
        if offset + bits as usize > 8 {
            value |= u16::from(packed[byte + 1]) << (8 - offset);
        }
        out.push((value & mask) as u8);
    }
    Ok(out)
}

/// A bit-packed MX+ tensor row: element stream, shared-scale stream and metadata stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedMxPlusRow {
    /// Element data type of the packed codes.
    pub element: ElementType,
    /// Number of elements in each block (the last block may be shorter).
    pub block_size: usize,
    /// Total number of elements in the row.
    pub len: usize,
    /// Bit-packed element codes for all blocks, concatenated.
    pub elements: Vec<u8>,
    /// One E8M0 byte per block.
    pub scales: Vec<u8>,
    /// One metadata byte per block (5-bit BM index + 3 reserved bits).
    pub metadata: Vec<u8>,
}

impl PackedMxPlusRow {
    /// Packs a sequence of MX+ blocks (as produced by
    /// [`MxPlusFormat::quantize_row`](crate::mxplus::MxPlusFormat::quantize_row)).
    ///
    /// # Panics
    ///
    /// Panics if the blocks do not all share the same element type, or if a block other
    /// than the last is shorter than the first block.
    #[must_use]
    pub fn pack(blocks: &[MxPlusBlock]) -> Self {
        assert!(!blocks.is_empty(), "cannot pack an empty block sequence");
        let element = blocks[0].element();
        let block_size = blocks[0].len();
        let mut all_codes = Vec::new();
        let mut scales = Vec::with_capacity(blocks.len());
        let mut metadata = Vec::with_capacity(blocks.len());
        let mut len = 0usize;
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.element(), element, "mixed element types in one packed row");
            if i + 1 < blocks.len() {
                assert_eq!(b.len(), block_size, "only the last block may be shorter");
            }
            all_codes.extend_from_slice(b.codes());
            scales.push(b.scale().to_bits());
            metadata.push(b.metadata_byte());
            len += b.len();
        }
        PackedMxPlusRow { element, block_size, len, elements: pack_codes(&all_codes, element.bits()), scales, metadata }
    }

    /// Unpacks back into MX+ blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] if the streams are inconsistent with the stored lengths.
    pub fn unpack(&self) -> Result<Vec<MxPlusBlock>, FormatError> {
        let codes = unpack_codes(&self.elements, self.element.bits(), self.len)?;
        let n_blocks = if self.block_size == 0 { 0 } else { self.len.div_ceil(self.block_size) };
        if self.scales.len() != n_blocks || self.metadata.len() != n_blocks {
            return Err(FormatError::PackedLength { expected: n_blocks, actual: self.scales.len() });
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        for (i, chunk) in codes.chunks(self.block_size).enumerate() {
            let scale = SharedScale::from_bits(self.scales[i]);
            let meta = self.metadata[i];
            blocks.push(MxPlusBlock::from_parts(self.element, scale, meta & 0x1f, meta >> 5, chunk.to_vec())?);
        }
        Ok(blocks)
    }

    /// Total storage in bytes across the three streams.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.elements.len() + self.scales.len() + self.metadata.len()
    }

    /// Average bits per element of the packed representation.
    #[must_use]
    pub fn average_bits_per_element(&self) -> f64 {
        self.storage_bytes() as f64 * 8.0 / self.len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mxplus::MxPlusFormat;

    fn sample_row(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0;
                if i % 50 == 9 {
                    u * 25.0
                } else {
                    u
                }
            })
            .collect()
    }

    #[test]
    fn pack_unpack_4bit_codes() {
        let codes: Vec<u8> = (0..32).map(|i| (i % 16) as u8).collect();
        let packed = pack_codes(&codes, 4);
        assert_eq!(packed.len(), 16);
        assert_eq!(unpack_codes(&packed, 4, 32).unwrap(), codes);
    }

    #[test]
    fn pack_unpack_6bit_codes() {
        let codes: Vec<u8> = (0..32).map(|i| ((i * 7) % 64) as u8).collect();
        let packed = pack_codes(&codes, 6);
        assert_eq!(packed.len(), 24); // 32 * 6 bits = 192 bits = 24 bytes
        assert_eq!(unpack_codes(&packed, 6, 32).unwrap(), codes);
    }

    #[test]
    fn pack_unpack_8bit_codes() {
        let codes: Vec<u8> = (0..40).map(|i| (i * 13 % 256) as u8).collect();
        let packed = pack_codes(&codes, 8);
        assert_eq!(packed, codes);
        assert_eq!(unpack_codes(&packed, 8, 40).unwrap(), codes);
    }

    #[test]
    fn unpack_detects_short_buffers() {
        let packed = pack_codes(&[1, 2, 3, 4], 4);
        assert!(unpack_codes(&packed, 4, 5).is_err());
    }

    #[test]
    fn packed_row_round_trips_mxfp4_plus() {
        let row = sample_row(256);
        let blocks = MxPlusFormat::MXFP4_PLUS.quantize_row(&row);
        let packed = PackedMxPlusRow::pack(&blocks);
        let unpacked = packed.unpack().unwrap();
        assert_eq!(unpacked.len(), blocks.len());
        for (a, b) in blocks.iter().zip(&unpacked) {
            assert_eq!(a.dequantize(), b.dequantize());
            assert_eq!(a.bm_index(), b.bm_index());
        }
    }

    #[test]
    fn packed_row_round_trips_partial_tail() {
        let row = sample_row(100); // 3 full blocks + 4-element tail
        let blocks = MxPlusFormat::MXFP4_PLUS.quantize_row(&row);
        let packed = PackedMxPlusRow::pack(&blocks);
        let unpacked = packed.unpack().unwrap();
        let deq: Vec<f32> = unpacked.iter().flat_map(|b| b.dequantize()).collect();
        let expected: Vec<f32> = blocks.iter().flat_map(|b| b.dequantize()).collect();
        assert_eq!(deq, expected);
        assert_eq!(deq.len(), 100);
    }

    #[test]
    fn average_bits_match_section_4_2_for_full_blocks() {
        // 256 elements in full 32-blocks: MXFP4+ packs to exactly 4.5 bits/element.
        let row = sample_row(256);
        let blocks = MxPlusFormat::MXFP4_PLUS.quantize_row(&row);
        let packed = PackedMxPlusRow::pack(&blocks);
        assert!((packed.average_bits_per_element() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn mxfp8_plus_row_packs_at_one_byte_per_element_plus_overhead() {
        let row = sample_row(128);
        let blocks = MxPlusFormat::MXFP8_PLUS.quantize_row(&row);
        let packed = PackedMxPlusRow::pack(&blocks);
        assert_eq!(packed.elements.len(), 128);
        assert_eq!(packed.scales.len(), 4);
        assert_eq!(packed.metadata.len(), 4);
        assert!((packed.average_bits_per_element() - 8.5).abs() < 1e-12);
    }

    #[test]
    fn corrupted_metadata_is_rejected() {
        let row = sample_row(64);
        let blocks = MxPlusFormat::MXFP4_PLUS.quantize_row(&row);
        let mut packed = PackedMxPlusRow::pack(&blocks);
        packed.metadata.pop();
        assert!(packed.unpack().is_err());
    }
}
