//! Bit-packed storage layouts for MX and MX+ tensors (Figure 7 of the paper).
//!
//! Element codes are packed contiguously at their native width (4, 6 or 8 bits), the
//! shared scales form a separate byte array, and — for MX+ — a third byte array carries
//! the per-block metadata (5-bit BM index + 3 reserved bits). Keeping the three streams
//! separate mirrors the paper's observation that the index metadata "does not need to be
//! stored contiguously with the element data or the shared scale".

use serde::{Deserialize, Serialize};

use crate::block::{self, MxBlock};
use crate::element::ElementType;
use crate::error::FormatError;
use crate::kernels::{self, code_at, pack_codes_into, unpack_codes_into, MAX_FUSED_BLOCK};
use crate::minifloat;
use crate::mxfp::MxFormat;
use crate::mxplus::{self, MxPlusBlock, MxPlusFormat};
use crate::quantize::QuantScheme;
use crate::scale::SharedScale;

/// Packs a sequence of element codes of width `bits` into a byte vector (little-endian bit
/// order within each byte). Thin allocating wrapper over
/// [`pack_codes_into`](crate::kernels::pack_codes_into); hot paths call the into-buffer
/// form directly.
#[must_use]
pub fn pack_codes(codes: &[u8], bits: u32) -> Vec<u8> {
    let mut out = vec![0u8; kernels::packed_len(codes.len(), bits)];
    pack_codes_into(codes, bits, &mut out);
    out
}

/// Unpacks `count` element codes of width `bits` from a packed byte buffer. Thin
/// allocating wrapper over [`unpack_codes_into`](crate::kernels::unpack_codes_into); hot
/// paths call the into-buffer form directly.
///
/// # Errors
///
/// Returns [`FormatError::PackedLength`] if the buffer is too short.
pub fn unpack_codes(packed: &[u8], bits: u32, count: usize) -> Result<Vec<u8>, FormatError> {
    assert!((1..=8).contains(&bits), "element width must be between 1 and 8 bits");
    let needed = kernels::packed_len(count, bits);
    if packed.len() < needed {
        return Err(FormatError::PackedLength { expected: needed, actual: packed.len() });
    }
    let mut out = vec![0u8; count];
    unpack_codes_into(packed, bits, &mut out);
    Ok(out)
}

/// A bit-packed MX+ tensor row: element stream, shared-scale stream and metadata stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedMxPlusRow {
    /// Element data type of the packed codes.
    pub element: ElementType,
    /// Number of elements in each block (the last block may be shorter).
    pub block_size: usize,
    /// Total number of elements in the row.
    pub len: usize,
    /// Bit-packed element codes for all blocks, concatenated.
    pub elements: Vec<u8>,
    /// One E8M0 byte per block.
    pub scales: Vec<u8>,
    /// One metadata byte per block (5-bit BM index + 3 reserved bits).
    pub metadata: Vec<u8>,
}

impl PackedMxPlusRow {
    /// Packs a sequence of MX+ blocks (as produced by
    /// [`MxPlusFormat::quantize_row`](crate::mxplus::MxPlusFormat::quantize_row)).
    ///
    /// # Panics
    ///
    /// Panics if the blocks do not all share the same element type, or if a block other
    /// than the last is shorter than the first block.
    #[must_use]
    pub fn pack(blocks: &[MxPlusBlock]) -> Self {
        assert!(!blocks.is_empty(), "cannot pack an empty block sequence");
        let element = blocks[0].element();
        let block_size = blocks[0].len();
        let mut all_codes = Vec::new();
        let mut scales = Vec::with_capacity(blocks.len());
        let mut metadata = Vec::with_capacity(blocks.len());
        let mut len = 0usize;
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.element(), element, "mixed element types in one packed row");
            if i + 1 < blocks.len() {
                assert_eq!(b.len(), block_size, "only the last block may be shorter");
            }
            all_codes.extend_from_slice(b.codes());
            scales.push(b.scale().to_bits());
            metadata.push(b.metadata_byte());
            len += b.len();
        }
        PackedMxPlusRow { element, block_size, len, elements: pack_codes(&all_codes, element.bits()), scales, metadata }
    }

    /// Unpacks back into MX+ blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] if the streams are inconsistent with the stored lengths.
    pub fn unpack(&self) -> Result<Vec<MxPlusBlock>, FormatError> {
        let codes = unpack_codes(&self.elements, self.element.bits(), self.len)?;
        let n_blocks = if self.block_size == 0 { 0 } else { self.len.div_ceil(self.block_size) };
        if self.scales.len() != n_blocks || self.metadata.len() != n_blocks {
            return Err(FormatError::PackedLength { expected: n_blocks, actual: self.scales.len() });
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        for (i, chunk) in codes.chunks(self.block_size).enumerate() {
            let scale = SharedScale::from_bits(self.scales[i]);
            let meta = self.metadata[i];
            blocks.push(MxPlusBlock::from_parts(self.element, scale, meta & 0x1f, meta >> 5, chunk.to_vec())?);
        }
        Ok(blocks)
    }

    /// Total storage in bytes across the three streams.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.elements.len() + self.scales.len() + self.metadata.len()
    }

    /// Average bits per element of the packed representation.
    #[must_use]
    pub fn average_bits_per_element(&self) -> f64 {
        self.storage_bytes() as f64 * 8.0 / self.len as f64
    }
}

/// Decodes one block's packed codes into `out` (`bm` names the MX+ block-max slot, if
/// any), bit-identically to the original per-code scalar loop.
///
/// The fast path bulk-unpacks the codes through the dispatched kernel into a stack
/// buffer and maps them through the per-element-type decode table — the same decoder
/// outputs, minus the per-element bit extraction and decode branching. Forced-scalar
/// mode and oversized blocks take the original random-access reference loop.
fn decode_block(element: ElementType, scale: SharedScale, code_bytes: &[u8], bm: Option<usize>, out: &mut [f32]) {
    if scale.is_zero_block() {
        out.fill(0.0);
        return;
    }
    let s = scale.value();
    let bits = element.bits();
    if kernels::scalar_forced() || out.len() > MAX_FUSED_BLOCK {
        for (i, o) in out.iter_mut().enumerate() {
            let c = code_at(code_bytes, bits, i);
            let e = if bm == Some(i) {
                minifloat::decode_bm_extended(element, c)
            } else if element.is_int() {
                minifloat::decode_int(element, c)
            } else {
                minifloat::decode_fp(element, c)
            };
            *o = e * s;
        }
        return;
    }
    let mut codes = [0u8; MAX_FUSED_BLOCK];
    let codes = &mut codes[..out.len()];
    unpack_codes_into(code_bytes, bits, codes);
    let table = kernels::decode_table(element);
    for (o, &c) in out.iter_mut().zip(codes.iter()) {
        *o = table[usize::from(c)] * s;
    }
    // A BM index pointing past a short tail block decodes as if absent, matching the
    // reference loop (where `i == bm` simply never holds).
    if let Some(i) = bm.filter(|&i| i < out.len()) {
        out[i] = kernels::bm_decode_table(element)[usize::from(codes[i])] * s;
    }
}

/// A row codec that stores quantized rows **genuinely bit-packed** in caller-provided
/// byte buffers, for storage systems (e.g. the paged KV cache) that hold tensors at their
/// true scheme width instead of as dequantized `f32`.
///
/// The MX and MX+ families pack to their native element widths (4/6/8-bit codes plus one
/// shared-scale byte per block, plus the MX+ metadata byte); every other
/// [`QuantScheme`] falls back to [`RowCodec::Dequantized`], which stores the
/// fake-quantized values as little-endian `f32` bytes. In all cases the round trip
/// `pack_row_into` → `unpack_row_into` reproduces `scheme.quantize_dequantize(values)`
/// **bit for bit**, so a packed store can substitute for an `f32` store without changing
/// a single output.
///
/// ```
/// use mx_formats::layout::RowCodec;
/// use mx_formats::QuantScheme;
///
/// let scheme = QuantScheme::mxfp4();
/// let codec = RowCodec::for_scheme(scheme);
/// let row = [0.1_f32, -0.7, 3.3, 0.02, -9.1, 0.5, 0.25, -0.125];
/// let mut packed = vec![0u8; codec.packed_bytes(row.len())];
/// codec.pack_row_into(&row, &mut packed);
/// let mut restored = vec![0.0_f32; row.len()];
/// codec.unpack_row_into(&packed, &mut restored);
/// assert_eq!(restored, scheme.quantize_dequantize(&row));
/// assert_eq!(packed.len(), 5); // one scale byte + 8 nibbles, vs 32 bytes of f32
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RowCodec {
    /// Bit-packed MX blocks: per block one E8M0 scale byte followed by the element codes
    /// packed at their native width (each block padded to a whole byte).
    Mx(MxFormat),
    /// Bit-packed MX+ blocks: per block one scale byte, one metadata byte (5-bit BM index)
    /// and the packed element codes.
    MxPlus(MxPlusFormat),
    /// Fallback for schemes without a byte-exact code representation here: the row is
    /// fake-quantized and stored as little-endian `f32` bytes (no compression).
    Dequantized(QuantScheme),
}

impl RowCodec {
    /// The codec that stores rows of `scheme` at their true width: bit-packed for the MX
    /// and MX+ families, [`RowCodec::Dequantized`] otherwise.
    #[must_use]
    pub fn for_scheme(scheme: QuantScheme) -> Self {
        match scheme {
            QuantScheme::Mx(f) => RowCodec::Mx(f),
            QuantScheme::MxPlus(f) => RowCodec::MxPlus(f),
            other => RowCodec::Dequantized(other),
        }
    }

    /// Whether rows are stored below `f32` width (false only for the fallback codec).
    #[must_use]
    pub fn is_bit_packed(&self) -> bool {
        !matches!(self, RowCodec::Dequantized(_))
    }

    /// Exact number of bytes a packed row of `len` elements occupies.
    #[must_use]
    pub fn packed_bytes(&self, len: usize) -> usize {
        match self {
            RowCodec::Mx(f) => row_block_bytes(len, f.block_size, f.element.bits(), 1),
            RowCodec::MxPlus(f) => row_block_bytes(len, f.block_size, f.element.bits(), 2),
            RowCodec::Dequantized(_) => len * 4,
        }
    }

    /// Quantizes `values` and packs the result into `out`
    /// (which must be exactly [`RowCodec::packed_bytes`] long).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.packed_bytes(values.len())`.
    pub fn pack_row_into(&self, values: &[f32], out: &mut [u8]) {
        assert_eq!(out.len(), self.packed_bytes(values.len()), "packed row buffer size mismatch");
        let mut codes_buf = [0u8; MAX_FUSED_BLOCK];
        match self {
            RowCodec::Mx(f) => {
                let bits = f.element.bits();
                let mut off = 0;
                for chunk in values.chunks(f.block_size) {
                    let nb = kernels::packed_len(chunk.len(), bits);
                    if chunk.len() <= MAX_FUSED_BLOCK {
                        let codes = &mut codes_buf[..chunk.len()];
                        out[off] = block::quantize_codes_into(f.element, chunk, codes).to_bits();
                        pack_codes_into(codes, bits, &mut out[off + 1..off + 1 + nb]);
                    } else {
                        let block = MxBlock::quantize(f.element, chunk);
                        out[off] = block.scale().to_bits();
                        pack_codes_into(block.codes(), bits, &mut out[off + 1..off + 1 + nb]);
                    }
                    off += 1 + nb;
                }
            }
            RowCodec::MxPlus(f) => {
                let bits = f.element.bits();
                let mut off = 0;
                for chunk in values.chunks(f.block_size) {
                    let nb = kernels::packed_len(chunk.len(), bits);
                    if chunk.len() <= MAX_FUSED_BLOCK {
                        let codes = &mut codes_buf[..chunk.len()];
                        let (scale, bm_index) = mxplus::quantize_codes_into(f.element, chunk, codes);
                        out[off] = scale.to_bits();
                        out[off + 1] = bm_index & 0x1f;
                        pack_codes_into(codes, bits, &mut out[off + 2..off + 2 + nb]);
                    } else {
                        let block = MxPlusBlock::quantize(f.element, chunk);
                        out[off] = block.scale().to_bits();
                        out[off + 1] = block.metadata_byte();
                        pack_codes_into(block.codes(), bits, &mut out[off + 2..off + 2 + nb]);
                    }
                    off += 2 + nb;
                }
            }
            RowCodec::Dequantized(scheme) => {
                for (o, q) in out.chunks_exact_mut(4).zip(scheme.quantize_dequantize(values)) {
                    o.copy_from_slice(&q.to_le_bytes());
                }
            }
        }
    }

    /// Decodes a packed row into `out` (whose length gives the element count), producing
    /// exactly what `scheme.quantize_dequantize` produced for the original values.
    ///
    /// # Panics
    ///
    /// Panics if `packed.len() != self.packed_bytes(out.len())`.
    pub fn unpack_row_into(&self, packed: &[u8], out: &mut [f32]) {
        assert_eq!(packed.len(), self.packed_bytes(out.len()), "packed row buffer size mismatch");
        match self {
            RowCodec::Mx(f) => {
                let bits = f.element.bits();
                let mut off = 0;
                for out_chunk in out.chunks_mut(f.block_size) {
                    let scale = SharedScale::from_bits(packed[off]);
                    let nb = kernels::packed_len(out_chunk.len(), bits);
                    decode_block(f.element, scale, &packed[off + 1..off + 1 + nb], None, out_chunk);
                    off += 1 + nb;
                }
            }
            RowCodec::MxPlus(f) => {
                let bits = f.element.bits();
                let mut off = 0;
                for out_chunk in out.chunks_mut(f.block_size) {
                    let scale = SharedScale::from_bits(packed[off]);
                    let bm = usize::from(packed[off + 1] & 0x1f);
                    let nb = kernels::packed_len(out_chunk.len(), bits);
                    decode_block(f.element, scale, &packed[off + 2..off + 2 + nb], Some(bm), out_chunk);
                    off += 2 + nb;
                }
            }
            RowCodec::Dequantized(_) => {
                for (o, bytes) in out.iter_mut().zip(packed.chunks_exact(4)) {
                    *o = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
                }
            }
        }
    }

    /// Walks a packed row of `len` elements block by block, handing each block's
    /// dequantized values to `visit(block_start, values)` from a register/stack buffer —
    /// the read primitive behind fused packed-row attention: consumers reduce each block
    /// on the spot (e.g. fold query·key products into per-head accumulators) and the full
    /// `f32` row is never materialized.
    ///
    /// The values passed to `visit` are bit-identical to the corresponding slice of
    /// [`RowCodec::unpack_row_into`]'s output, in ascending block order. Returns `false`
    /// *without calling `visit`* when the row must take the materializing scratch path
    /// instead: scalar kernels are forced (see [`crate::kernels::force_scalar`]) or the
    /// codec's block size exceeds [`MAX_FUSED_BLOCK`](crate::kernels::MAX_FUSED_BLOCK).
    ///
    /// # Panics
    ///
    /// Panics if `packed.len() != self.packed_bytes(len)`.
    pub fn walk_row_blocks<F: FnMut(usize, &[f32])>(&self, packed: &[u8], len: usize, mut visit: F) -> bool {
        assert_eq!(packed.len(), self.packed_bytes(len), "packed row buffer size mismatch");
        if kernels::scalar_forced() {
            return false;
        }
        let mut values = [0.0f32; MAX_FUSED_BLOCK];
        match self {
            RowCodec::Mx(f) => {
                if f.block_size > MAX_FUSED_BLOCK || f.block_size == 0 {
                    return false;
                }
                let bits = f.element.bits();
                let mut off = 0;
                let mut start = 0;
                while start < len {
                    let n = f.block_size.min(len - start);
                    let scale = SharedScale::from_bits(packed[off]);
                    let nb = kernels::packed_len(n, bits);
                    decode_block(f.element, scale, &packed[off + 1..off + 1 + nb], None, &mut values[..n]);
                    visit(start, &values[..n]);
                    off += 1 + nb;
                    start += n;
                }
            }
            RowCodec::MxPlus(f) => {
                if f.block_size > MAX_FUSED_BLOCK || f.block_size == 0 {
                    return false;
                }
                let bits = f.element.bits();
                let mut off = 0;
                let mut start = 0;
                while start < len {
                    let n = f.block_size.min(len - start);
                    let scale = SharedScale::from_bits(packed[off]);
                    let bm = usize::from(packed[off + 1] & 0x1f);
                    let nb = kernels::packed_len(n, bits);
                    decode_block(f.element, scale, &packed[off + 2..off + 2 + nb], Some(bm), &mut values[..n]);
                    visit(start, &values[..n]);
                    off += 2 + nb;
                    start += n;
                }
            }
            RowCodec::Dequantized(_) => {
                let mut start = 0;
                while start < len {
                    let n = MAX_FUSED_BLOCK.min(len - start);
                    for (o, bytes) in values[..n].iter_mut().zip(packed[4 * start..].chunks_exact(4)) {
                        *o = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
                    }
                    visit(start, &values[..n]);
                    start += n;
                }
            }
        }
        true
    }
}

/// Bytes of a row of `len` elements split into `block_size` blocks, each paying
/// `header_bytes` of header plus its byte-padded packed codes.
fn row_block_bytes(len: usize, block_size: usize, bits: u32, header_bytes: usize) -> usize {
    let full = len / block_size;
    let tail = len % block_size;
    let mut bytes = full * (header_bytes + (block_size * bits as usize).div_ceil(8));
    if tail > 0 {
        bytes += header_bytes + (tail * bits as usize).div_ceil(8);
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mxplus::MxPlusFormat;

    fn sample_row(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0;
                if i % 50 == 9 {
                    u * 25.0
                } else {
                    u
                }
            })
            .collect()
    }

    #[test]
    fn pack_unpack_4bit_codes() {
        let codes: Vec<u8> = (0..32).map(|i| (i % 16) as u8).collect();
        let packed = pack_codes(&codes, 4);
        assert_eq!(packed.len(), 16);
        assert_eq!(unpack_codes(&packed, 4, 32).unwrap(), codes);
    }

    #[test]
    fn pack_unpack_6bit_codes() {
        let codes: Vec<u8> = (0..32).map(|i| ((i * 7) % 64) as u8).collect();
        let packed = pack_codes(&codes, 6);
        assert_eq!(packed.len(), 24); // 32 * 6 bits = 192 bits = 24 bytes
        assert_eq!(unpack_codes(&packed, 6, 32).unwrap(), codes);
    }

    #[test]
    fn pack_unpack_8bit_codes() {
        let codes: Vec<u8> = (0..40).map(|i| (i * 13 % 256) as u8).collect();
        let packed = pack_codes(&codes, 8);
        assert_eq!(packed, codes);
        assert_eq!(unpack_codes(&packed, 8, 40).unwrap(), codes);
    }

    #[test]
    fn unpack_detects_short_buffers() {
        let packed = pack_codes(&[1, 2, 3, 4], 4);
        assert!(unpack_codes(&packed, 4, 5).is_err());
    }

    #[test]
    fn packed_row_round_trips_mxfp4_plus() {
        let row = sample_row(256);
        let blocks = MxPlusFormat::MXFP4_PLUS.quantize_row(&row);
        let packed = PackedMxPlusRow::pack(&blocks);
        let unpacked = packed.unpack().unwrap();
        assert_eq!(unpacked.len(), blocks.len());
        for (a, b) in blocks.iter().zip(&unpacked) {
            assert_eq!(a.dequantize(), b.dequantize());
            assert_eq!(a.bm_index(), b.bm_index());
        }
    }

    #[test]
    fn packed_row_round_trips_partial_tail() {
        let row = sample_row(100); // 3 full blocks + 4-element tail
        let blocks = MxPlusFormat::MXFP4_PLUS.quantize_row(&row);
        let packed = PackedMxPlusRow::pack(&blocks);
        let unpacked = packed.unpack().unwrap();
        let deq: Vec<f32> = unpacked.iter().flat_map(|b| b.dequantize()).collect();
        let expected: Vec<f32> = blocks.iter().flat_map(|b| b.dequantize()).collect();
        assert_eq!(deq, expected);
        assert_eq!(deq.len(), 100);
    }

    #[test]
    fn average_bits_match_section_4_2_for_full_blocks() {
        // 256 elements in full 32-blocks: MXFP4+ packs to exactly 4.5 bits/element.
        let row = sample_row(256);
        let blocks = MxPlusFormat::MXFP4_PLUS.quantize_row(&row);
        let packed = PackedMxPlusRow::pack(&blocks);
        assert!((packed.average_bits_per_element() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn mxfp8_plus_row_packs_at_one_byte_per_element_plus_overhead() {
        let row = sample_row(128);
        let blocks = MxPlusFormat::MXFP8_PLUS.quantize_row(&row);
        let packed = PackedMxPlusRow::pack(&blocks);
        assert_eq!(packed.elements.len(), 128);
        assert_eq!(packed.scales.len(), 4);
        assert_eq!(packed.metadata.len(), 4);
        assert!((packed.average_bits_per_element() - 8.5).abs() < 1e-12);
    }

    #[test]
    fn corrupted_metadata_is_rejected() {
        let row = sample_row(64);
        let blocks = MxPlusFormat::MXFP4_PLUS.quantize_row(&row);
        let mut packed = PackedMxPlusRow::pack(&blocks);
        packed.metadata.pop();
        assert!(packed.unpack().is_err());
    }

    fn codec_round_trip(scheme: QuantScheme, len: usize) {
        let row = sample_row(len);
        let codec = RowCodec::for_scheme(scheme);
        let mut packed = vec![0xaa_u8; codec.packed_bytes(len)];
        codec.pack_row_into(&row, &mut packed);
        let mut restored = vec![f32::NAN; len];
        codec.unpack_row_into(&packed, &mut restored);
        assert_eq!(restored, scheme.quantize_dequantize(&row), "{scheme} len {len}");
    }

    #[test]
    fn row_codec_matches_fake_quantization_bit_for_bit() {
        for scheme in [
            QuantScheme::mxfp4(),
            QuantScheme::mxfp6(),
            QuantScheme::mxfp8(),
            QuantScheme::mxint4(),
            QuantScheme::mxint8(),
            QuantScheme::mxfp4_plus(),
            QuantScheme::mxfp6_plus(),
            QuantScheme::mxfp8_plus(),
            QuantScheme::mxint8_plus(),
            QuantScheme::Fp32,
            QuantScheme::Bf16,
            QuantScheme::mxfp4_pp(),
            QuantScheme::Nvfp4Plus,
        ] {
            for len in [1, 31, 32, 33, 64, 100] {
                codec_round_trip(scheme, len);
            }
        }
    }

    #[test]
    fn row_codec_bytes_are_the_true_scheme_width() {
        // 64 elements = 2 full MXFP4 blocks: 2 * (1 scale + 16 code bytes) = 34 bytes
        // (4.25 bits/element exactly), vs 256 bytes of f32.
        assert_eq!(RowCodec::for_scheme(QuantScheme::mxfp4()).packed_bytes(64), 34);
        // MXFP4+ adds one metadata byte per block: 36 bytes = 4.5 bits/element.
        assert_eq!(RowCodec::for_scheme(QuantScheme::mxfp4_plus()).packed_bytes(64), 36);
        // MXFP6: 32 * 6 bits = 24 code bytes + scale per block.
        assert_eq!(RowCodec::for_scheme(QuantScheme::mxfp6()).packed_bytes(64), 50);
        // Partial tail blocks are byte-ceiled per block: 40 = 32 + 8 elements.
        assert_eq!(RowCodec::for_scheme(QuantScheme::mxfp4()).packed_bytes(40), 17 + 1 + 4);
        // Fallback schemes store f32.
        assert_eq!(RowCodec::for_scheme(QuantScheme::Bf16).packed_bytes(64), 256);
        assert!(!RowCodec::for_scheme(QuantScheme::Bf16).is_bit_packed());
        assert!(RowCodec::for_scheme(QuantScheme::mxfp4()).is_bit_packed());
    }

    #[test]
    fn row_codec_fallback_survives_a_byte_level_round_trip() {
        // The fallback stores exact f32 bit patterns, so even schemes with no packed
        // representation round-trip losslessly through the byte buffer.
        codec_round_trip(QuantScheme::TopK(2), 100);
        codec_round_trip(QuantScheme::Nvfp4, 48);
    }

    #[test]
    fn walk_row_blocks_is_bit_identical_to_unpack() {
        for scheme in [
            QuantScheme::mxfp4(),
            QuantScheme::mxfp6(),
            QuantScheme::mxfp8(),
            QuantScheme::mxint4(),
            QuantScheme::mxint8(),
            QuantScheme::mxfp4_plus(),
            QuantScheme::mxfp6_plus(),
            QuantScheme::mxfp8_plus(),
            QuantScheme::Fp32,
            QuantScheme::Bf16,
        ] {
            for len in [1usize, 31, 32, 33, 64, 100, 130] {
                let row = sample_row(len);
                let codec = RowCodec::for_scheme(scheme);
                let mut packed = vec![0u8; codec.packed_bytes(len)];
                codec.pack_row_into(&row, &mut packed);
                let mut expected = vec![f32::NAN; len];
                codec.unpack_row_into(&packed, &mut expected);
                let mut walked = vec![f32::NAN; len];
                let mut starts = Vec::new();
                let fused = codec.walk_row_blocks(&packed, len, |start, vals| {
                    starts.push(start);
                    walked[start..start + vals.len()].copy_from_slice(vals);
                });
                assert!(fused, "{scheme} len {len} should take the fused walk");
                let bits: Vec<u32> = walked.iter().map(|v| v.to_bits()).collect();
                let expected_bits: Vec<u32> = expected.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits, expected_bits, "{scheme} len {len}");
                assert_eq!(starts.first(), Some(&0), "{scheme} len {len}");
                assert!(starts.windows(2).all(|w| w[0] < w[1]), "blocks must arrive in order");
            }
        }
    }

    #[test]
    fn walk_row_blocks_declines_oversized_blocks() {
        use crate::kernels::MAX_FUSED_BLOCK;
        let scheme = QuantScheme::Mx(crate::mxfp::MxFormat::with_block_size(ElementType::E2M1, MAX_FUSED_BLOCK * 2));
        let codec = RowCodec::for_scheme(scheme);
        let len = MAX_FUSED_BLOCK * 2;
        let row = sample_row(len);
        let mut packed = vec![0u8; codec.packed_bytes(len)];
        codec.pack_row_into(&row, &mut packed);
        let mut called = false;
        assert!(!codec.walk_row_blocks(&packed, len, |_, _| called = true));
        assert!(!called);
        // The materializing path still decodes such rows fine.
        let mut out = vec![0.0f32; len];
        codec.unpack_row_into(&packed, &mut out);
        assert_eq!(out, scheme.quantize_dequantize(&row));
    }

    #[test]
    #[should_panic(expected = "packed row buffer size mismatch")]
    fn row_codec_pack_validates_buffer_size() {
        RowCodec::for_scheme(QuantScheme::mxfp4()).pack_row_into(&[1.0; 32], &mut [0u8; 16]);
    }

    #[test]
    #[should_panic(expected = "packed row buffer size mismatch")]
    fn row_codec_unpack_validates_buffer_size() {
        RowCodec::for_scheme(QuantScheme::mxfp4()).unpack_row_into(&[0u8; 16], &mut [0.0; 32]);
    }
}
