//! The MX+ extension (Section 4 of the paper).
//!
//! MX+ keeps the MX block structure (32 elements, one E8M0 shared scale) but observes
//! that the block-max (BM) element's private exponent is *always* the maximum
//! representable exponent of the element data type — because the shared scale is derived
//! from the BM via Equation 1. The BM's exponent field is therefore redundant and can be
//! repurposed as an **extended mantissa**, giving the outlier element
//! `man_bits + exp_bits` mantissa bits at the same storage width. A one-byte metadata
//! word per block stores the 5-bit BM index (3 bits reserved; MX++ uses them for the
//! decoupled NBM scale, see [`crate::mxpp`]).

use serde::{Deserialize, Serialize};

use crate::block::{MxBlock, BLOCK_SIZE};
use crate::element::ElementType;
use crate::error::FormatError;
use crate::minifloat;
use crate::scale::{self, SharedScale, MIN_SHARED_EXP};

/// A quantized MX+ block.
///
/// ```
/// use mx_formats::{ElementType, MxPlusBlock};
///
/// // The Figure 6 block: the outlier -9.84 is the BM.
/// let values = [-0.27_f32, -0.19, 0.99, -0.20, -9.84, -0.39];
/// let block = MxPlusBlock::quantize(ElementType::E2M1, &values);
/// assert_eq!(block.bm_index(), 4);
/// let deq = block.dequantize();
/// // MXFP4 would represent the outlier as -8.0; MXFP4+ recovers -10.0.
/// assert_eq!(deq[4], -10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MxPlusBlock {
    element: ElementType,
    scale: SharedScale,
    bm_index: u8,
    reserved: u8,
    codes: Vec<u8>,
}

impl MxPlusBlock {
    /// Quantizes a slice of values into an MX+ block.
    ///
    /// Follows Section 4.1: the BM element is identified during shared-scale computation;
    /// if the BM's exponent is at or below `-127 + e_max` the entire block is flushed to
    /// zero and encoded with the reserved zero-block scale.
    #[must_use]
    pub fn quantize(element: ElementType, values: &[f32]) -> Self {
        let mut codes = vec![0u8; values.len()];
        let (scale, bm_index) = quantize_codes_into(element, values, &mut codes);
        MxPlusBlock { element, scale, bm_index, reserved: 0, codes }
    }

    /// Reconstructs a block from stored parts (used by the packed-layout decoder).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::BlockLength`] if the BM index is outside the block.
    pub fn from_parts(
        element: ElementType,
        scale: SharedScale,
        bm_index: u8,
        reserved: u8,
        codes: Vec<u8>,
    ) -> Result<Self, FormatError> {
        if !codes.is_empty() && usize::from(bm_index) >= codes.len() {
            return Err(FormatError::BlockLength { expected: codes.len(), actual: usize::from(bm_index) });
        }
        Ok(MxPlusBlock { element, scale, bm_index, reserved: reserved & 0x7, codes })
    }

    /// The element data type of this block.
    #[must_use]
    pub fn element(&self) -> ElementType {
        self.element
    }

    /// The shared scale.
    #[must_use]
    pub fn scale(&self) -> SharedScale {
        self.scale
    }

    /// Index of the block-max element within the block (5-bit field of the metadata byte).
    #[must_use]
    pub fn bm_index(&self) -> usize {
        usize::from(self.bm_index)
    }

    /// The three reserved metadata bits (zero for MX+; the NBM scale delta for MX++).
    #[must_use]
    pub fn reserved_bits(&self) -> u8 {
        self.reserved
    }

    /// Raw element codes (the BM slot holds the extended-mantissa code).
    #[must_use]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Number of elements in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the block holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The metadata byte of Figure 7: 5-bit BM index in the low bits, 3 reserved bits above.
    #[must_use]
    pub fn metadata_byte(&self) -> u8 {
        (self.reserved << 5) | (self.bm_index & 0x1f)
    }

    /// Dequantizes the block (Equation 2 of the paper).
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.codes.len()];
        self.dequantize_into(&mut out);
        out
    }

    /// Dequantizes into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.codes.len(), "output length must equal block length");
        if self.scale.is_zero_block() {
            out.fill(0.0);
            return;
        }
        let s = self.scale.value();
        for (i, (o, &c)) in out.iter_mut().zip(&self.codes).enumerate() {
            let e = if i == usize::from(self.bm_index) {
                minifloat::decode_bm_extended(self.element, c)
            } else if self.element.is_int() {
                minifloat::decode_int(self.element, c)
            } else {
                minifloat::decode_fp(self.element, c)
            };
            *o = e * s;
        }
    }

    /// Splits the BM element into the sum `BM_H + BM_L` of two values that are exactly
    /// representable in the plain element data type (Equation 3), as required by the
    /// software Tensor-Core integration of Section 5.
    ///
    /// Both returned values are in the *scaled* domain (multiply by the shared scale to
    /// recover the real magnitudes). Returns `(0.0, 0.0)` for a zero block.
    #[must_use]
    pub fn split_bm(&self) -> (f32, f32) {
        if self.scale.is_zero_block() {
            return (0.0, 0.0);
        }
        let et = self.element;
        let k = et.plus_bm_man_bits();
        let code = self.codes[usize::from(self.bm_index)];
        let sign = if code >> k & 1 == 1 { -1.0_f32 } else { 1.0 };
        let m = u32::from(code) & ((1 << k) - 1);
        // u_m[k..0]: explicit leading one followed by the k extended mantissa bits.
        let um = (1u32 << k) | m;
        let base = if et.is_int() { 0 } else { et.emax() };
        // Split the mantissa into the high man_bits+1 bits and the low exp_bits bits
        // (for E2M1: u_m[3:2] and u_m[1:0]).
        let low_bits = k - et.man_bits();
        let high = um >> low_bits;
        let low = um & ((1 << low_bits) - 1);
        let bm_h = sign * high as f32 * (2.0_f32).powi(base - et.man_bits() as i32);
        let bm_l = sign * low as f32 * (2.0_f32).powi(base - k as i32);
        (bm_h, bm_l)
    }

    /// Storage cost in bits: elements + shared-scale byte + the extra metadata byte.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.codes.len() * self.element.bits() as usize + 8 + 8
    }
}

/// Quantizes `values` into MX+ per-element codes written to `codes` (the BM slot gets the
/// extended-mantissa code) and returns the shared scale plus the BM index — the
/// allocation-free core of [`MxPlusBlock::quantize`], for hot paths (the packed row
/// encoder) that reuse one stack buffer across blocks.
///
/// Follows Section 4.1: the BM element is identified during shared-scale computation; if
/// the shared exponent would clamp at its lower bound of -127 the entire block is flushed
/// to zero and encoded with the reserved zero-block scale (BM index 0).
///
/// # Panics
///
/// Panics if `codes.len() != values.len()`.
pub fn quantize_codes_into(element: ElementType, values: &[f32], codes: &mut [u8]) -> (SharedScale, u8) {
    assert_eq!(codes.len(), values.len(), "code buffer length must equal block length");
    let shared_exp = scale::shared_exponent(values, element.emax());
    // Flush-to-zero rule: below MIN_SHARED_EXP the BM's private exponent would sit below
    // e_max, breaking the MX+ invariant that makes the exponent field redundant.
    let Some(shared_exp) = shared_exp.filter(|&e| e >= MIN_SHARED_EXP) else {
        codes.fill(0);
        return (SharedScale::ZERO_BLOCK, 0);
    };
    let bm_index = MxBlock::block_max_index(values);
    let scale = SharedScale::from_exponent(shared_exp);
    let s = scale.value();
    for (i, (c, &v)) in codes.iter_mut().zip(values).enumerate() {
        let scaled = v / s;
        *c = if i == bm_index {
            minifloat::encode_bm_extended(element, scaled.abs(), v.is_sign_negative())
        } else if element.is_int() {
            minifloat::encode_int(element, scaled)
        } else {
            minifloat::encode_fp(element, scaled)
        };
    }
    (scale, bm_index as u8)
}

/// An MX+ format descriptor: element type plus block size, mirroring
/// [`MxFormat`](crate::MxFormat) for the extended formats MXFP4+/MXFP6+/MXFP8+/MXINT8+.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MxPlusFormat {
    /// Element data type of the NBM elements.
    pub element: ElementType,
    /// Number of elements per block.
    pub block_size: usize,
}

impl MxPlusFormat {
    /// MXFP4+ (extension of MXFP4).
    pub const MXFP4_PLUS: MxPlusFormat = MxPlusFormat { element: ElementType::E2M1, block_size: BLOCK_SIZE };
    /// MXFP6+ (extension of MXFP6 E2M3).
    pub const MXFP6_PLUS: MxPlusFormat = MxPlusFormat { element: ElementType::E2M3, block_size: BLOCK_SIZE };
    /// MXFP8+ (extension of MXFP8 E4M3).
    pub const MXFP8_PLUS: MxPlusFormat = MxPlusFormat { element: ElementType::E4M3, block_size: BLOCK_SIZE };
    /// MXINT8+ (extension of MXINT8, Section 8.2).
    pub const MXINT8_PLUS: MxPlusFormat = MxPlusFormat { element: ElementType::Int8, block_size: BLOCK_SIZE };
    /// MXINT4+ (extension of the hypothetical MXINT4, Section 8.2).
    pub const MXINT4_PLUS: MxPlusFormat = MxPlusFormat { element: ElementType::Int4, block_size: BLOCK_SIZE };

    /// Creates an MX+ format with the standard 32-element block.
    #[must_use]
    pub const fn new(element: ElementType) -> Self {
        MxPlusFormat { element, block_size: BLOCK_SIZE }
    }

    /// Average storage bits per element: the MX figure plus the extra metadata byte,
    /// e.g. 4.5 for MXFP4+ versus 4.25 for MXFP4 (Section 4.2).
    #[must_use]
    pub fn average_bits_per_element(&self) -> f64 {
        self.element.bits() as f64 + 16.0 / self.block_size as f64
    }

    /// Quantizes one row into MX+ blocks.
    #[must_use]
    pub fn quantize_row(&self, values: &[f32]) -> Vec<MxPlusBlock> {
        values.chunks(self.block_size).map(|c| MxPlusBlock::quantize(self.element, c)).collect()
    }

    /// Direct-cast fake quantization of a row.
    #[must_use]
    pub fn quantize_dequantize(&self, values: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(values.len());
        for chunk in values.chunks(self.block_size) {
            out.extend(MxPlusBlock::quantize(self.element, chunk).dequantize());
        }
        out
    }

    /// Short display name like "MXFP4+".
    #[must_use]
    pub fn name(&self) -> String {
        let base = match self.element {
            ElementType::E2M1 => "MXFP4+",
            ElementType::E2M3 => "MXFP6+",
            ElementType::E3M2 => "MXFP6+ (E3M2)",
            ElementType::E4M3 => "MXFP8+",
            ElementType::E5M2 => "MXFP8+ (E5M2)",
            ElementType::Int8 => "MXINT8+",
            ElementType::Int4 => "MXINT4+",
        };
        if self.block_size == BLOCK_SIZE {
            base.to_string()
        } else {
            format!("{base} (k={})", self.block_size)
        }
    }
}

impl std::fmt::Display for MxPlusFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::fake_quantize_row;

    fn mse(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| ((x - y) * (x - y)) as f64).sum::<f64>() / a.len() as f64
    }

    const FIG6_BLOCK: [f32; 6] = [-0.27, -0.19, 0.99, -0.20, -9.84, -0.39];

    #[test]
    fn figure_6_encoding_example() {
        // MXFP4 turns the outlier -9.84 into -8.0; MXFP4+ recovers -10.0 using the
        // repurposed exponent bits (shared scale stays 2^1).
        let plain = MxBlock::quantize(ElementType::E2M1, &FIG6_BLOCK);
        let plus = MxPlusBlock::quantize(ElementType::E2M1, &FIG6_BLOCK);
        assert_eq!(plain.scale(), plus.scale());
        assert_eq!(plain.dequantize()[4], -8.0);
        assert_eq!(plus.dequantize()[4], -10.0);
        assert_eq!(plus.bm_index(), 4);
        // NBM elements are identical between MX and MX+.
        assert_eq!(plain.dequantize()[..4], plus.dequantize()[..4]);
        assert_eq!(plain.dequantize()[5], plus.dequantize()[5]);
    }

    #[test]
    fn metadata_byte_layout() {
        let plus = MxPlusBlock::quantize(ElementType::E2M1, &FIG6_BLOCK);
        assert_eq!(plus.metadata_byte() & 0x1f, 4);
        assert_eq!(plus.metadata_byte() >> 5, 0);
    }

    #[test]
    fn mx_plus_never_increases_block_error() {
        // Property over a deterministic sweep: MX+ error <= MX error for every block,
        // because only the BM representation changes and it gains mantissa bits.
        for seed in 0..200u32 {
            let values: Vec<f32> = (0..BLOCK_SIZE)
                .map(|i| {
                    let x = ((seed as usize * 131 + i * 2_654_435_761) % 2000) as f32 / 1000.0 - 1.0;
                    if i == (seed as usize % BLOCK_SIZE) && seed % 3 == 0 {
                        x * 50.0
                    } else {
                        x
                    }
                })
                .collect();
            let mx = fake_quantize_row(ElementType::E2M1, BLOCK_SIZE, &values);
            let mxp = MxPlusFormat::MXFP4_PLUS.quantize_dequantize(&values);
            assert!(mse(&values, &mxp) <= mse(&values, &mx) + 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn mx_plus_shared_scale_is_unchanged() {
        for seed in 0..50u32 {
            let values: Vec<f32> =
                (0..BLOCK_SIZE).map(|i| ((seed as usize * 37 + i * 101) % 997) as f32 * 0.013 - 6.0).collect();
            let mx = MxBlock::quantize(ElementType::E2M1, &values);
            let mxp = MxPlusBlock::quantize(ElementType::E2M1, &values);
            if !mx.scale().is_zero_block() {
                assert_eq!(mx.scale(), mxp.scale(), "MX+ must not alter the shared scale");
            }
        }
    }

    #[test]
    fn flush_to_zero_for_tiny_blocks() {
        // BM exponent at or below -127 + emax forces the whole block to zero with the
        // reserved zero scale (Section 4.1).
        let tiny = vec![1.0e-38_f32; BLOCK_SIZE];
        let block = MxPlusBlock::quantize(ElementType::E2M1, &tiny);
        assert!(block.scale().is_zero_block());
        assert_eq!(block.dequantize(), vec![0.0; BLOCK_SIZE]);
    }

    #[test]
    fn all_zero_block() {
        let block = MxPlusBlock::quantize(ElementType::E2M3, &[0.0; 8]);
        assert!(block.scale().is_zero_block());
        assert_eq!(block.dequantize(), vec![0.0; 8]);
        assert_eq!(block.split_bm(), (0.0, 0.0));
    }

    #[test]
    fn bm_effective_precision_matches_figure_7() {
        // MXFP4+ BM is effectively E2M3: within [4, 8) x scale the grid step is scale/2.
        let values = [9.3_f32, 0.1, -0.2, 0.3];
        let block = MxPlusBlock::quantize(ElementType::E2M1, &values);
        let deq = block.dequantize();
        // shared exp = 3 - 2 = 1 -> scale 2; grid step = 2 * 2^2 / 8 = 1.0.
        assert!((deq[0] - 9.0).abs() < 1e-6 || (deq[0] - 10.0).abs() < 1e-6);
        assert!((deq[0] - 9.3).abs() <= 0.5 + 1e-6);
    }

    #[test]
    fn split_bm_reconstructs_bm_and_parts_are_element_representable() {
        for &v in &[9.84_f32, -9.84, 5.1, 7.9, 4.0, -6.3, 12.7] {
            let mut values = vec![0.1_f32; BLOCK_SIZE];
            values[7] = v;
            let block = MxPlusBlock::quantize(ElementType::E2M1, &values);
            let s = block.scale().value();
            let (h, l) = block.split_bm();
            let bm_deq = block.dequantize()[7];
            // BM_H + BM_L == dequantized BM (in the real domain).
            assert!(((h + l) * s - bm_deq).abs() < 1e-5, "v={v}");
            // Both parts are exactly representable in plain E2M1.
            assert_eq!(minifloat::quantize_fp(ElementType::E2M1, h), h, "BM_H for {v}");
            assert_eq!(minifloat::quantize_fp(ElementType::E2M1, l), l, "BM_L for {v}");
        }
    }

    #[test]
    fn average_bits_match_section_4_2() {
        assert_eq!(MxPlusFormat::MXFP4_PLUS.average_bits_per_element(), 4.5);
        assert_eq!(MxPlusFormat::MXFP6_PLUS.average_bits_per_element(), 6.5);
        assert_eq!(MxPlusFormat::MXFP8_PLUS.average_bits_per_element(), 8.5);
    }

    #[test]
    fn storage_bits_include_metadata_byte() {
        let block = MxPlusBlock::quantize(ElementType::E2M1, &[1.0; BLOCK_SIZE]);
        assert_eq!(block.storage_bits(), 32 * 4 + 8 + 8);
    }

    #[test]
    fn from_parts_validates_bm_index() {
        let err = MxPlusBlock::from_parts(ElementType::E2M1, SharedScale::from_exponent(0), 9, 0, vec![0; 4]);
        assert!(err.is_err());
        let ok = MxPlusBlock::from_parts(ElementType::E2M1, SharedScale::from_exponent(0), 3, 0, vec![0; 4]);
        assert!(ok.is_ok());
    }

    #[test]
    fn mxint8_plus_gains_one_fraction_bit_for_bm() {
        // With MXINT8 the BM is stored as +-1.xxxxxx (6 fraction bits); MXINT8+ makes the
        // integer bit implicit and gains a seventh fraction bit (Section 8.2).
        let mut values = vec![0.01_f32; BLOCK_SIZE];
        values[3] = 1.0 + 65.0 / 128.0; // needs 7 fraction bits at scale 1
        let plain = MxBlock::quantize(ElementType::Int8, &values);
        let plus = MxPlusBlock::quantize(ElementType::Int8, &values);
        let e_plain = (plain.dequantize()[3] - values[3]).abs();
        let e_plus = (plus.dequantize()[3] - values[3]).abs();
        assert!(e_plus < e_plain);
        assert!(e_plus < 1e-6);
    }

    #[test]
    fn display_names() {
        assert_eq!(MxPlusFormat::MXFP4_PLUS.to_string(), "MXFP4+");
        assert_eq!(MxPlusFormat::MXFP8_PLUS.to_string(), "MXFP8+");
        assert_eq!(MxPlusFormat::MXINT8_PLUS.to_string(), "MXINT8+");
    }

    #[test]
    fn negative_bm_keeps_sign() {
        let mut values = vec![0.2_f32; BLOCK_SIZE];
        values[11] = -7.7;
        let block = MxPlusBlock::quantize(ElementType::E2M1, &values);
        assert!(block.dequantize()[11] < 0.0);
        let (h, l) = block.split_bm();
        assert!(h <= 0.0 && l <= 0.0);
    }
}
