//! Top-k mixed-precision blocks (Figure 14 of the paper).
//!
//! Section 8.3 analyses how much model quality would improve if the *k* largest-magnitude
//! elements of every MX block were kept in MXFP6 (E2M3) while the rest stay in MXFP4.
//! This module implements that hybrid block quantizer and the outlier-coverage statistic
//! plotted in Figure 14 (percentage of 3-sigma outliers that end up in the MXFP6 set).

use crate::block::BLOCK_SIZE;
use crate::element::ElementType;
use crate::metrics::three_sigma_outliers;
use crate::minifloat;
use crate::scale::{self, SharedScale};

/// Result of quantizing a row with the top-k hybrid scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// The fake-quantized values.
    pub values: Vec<f32>,
    /// Fraction (0..=1) of the row's 3-sigma outliers that were represented in MXFP6.
    pub outlier_coverage: f64,
}

/// Quantizes one block keeping the `k` largest-magnitude elements in `high` precision and
/// the rest in `low` precision, under a single MX shared scale derived from the block max
/// and the low element type's `e_max` (so the layout stays MX-compatible).
#[must_use]
pub fn quantize_block_topk(low: ElementType, high: ElementType, k: usize, values: &[f32]) -> Vec<f32> {
    let Some(shared_exp) = scale::shared_exponent(values, low.emax()) else {
        return vec![0.0; values.len()];
    };
    let s = SharedScale::from_exponent(shared_exp).value();

    // Indices of the k largest magnitudes.
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].abs().partial_cmp(&values[a].abs()).unwrap_or(std::cmp::Ordering::Equal));
    let top: std::collections::HashSet<usize> = idx.into_iter().take(k).collect();

    values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let et = if top.contains(&i) { high } else { low };
            let scaled = v / s;
            let q = if et.is_int() { minifloat::quantize_int(et, scaled) } else { minifloat::quantize_fp(et, scaled) };
            q * s
        })
        .collect()
}

/// Quantizes a whole row with the top-k hybrid scheme (MXFP4 base, MXFP6/E2M3 for the top
/// `k` elements of every 32-element block) and reports outlier coverage.
#[must_use]
pub fn quantize_row_topk(k: usize, values: &[f32]) -> TopKResult {
    quantize_row_topk_with(ElementType::E2M1, ElementType::E2M3, BLOCK_SIZE, k, values)
}

/// Fully parameterised top-k row quantizer.
#[must_use]
pub fn quantize_row_topk_with(
    low: ElementType,
    high: ElementType,
    block_size: usize,
    k: usize,
    values: &[f32],
) -> TopKResult {
    assert!(block_size > 0, "block size must be positive");
    let outliers: std::collections::HashSet<usize> = three_sigma_outliers(values).into_iter().collect();
    let mut covered = 0usize;
    let mut out = Vec::with_capacity(values.len());
    for (b, chunk) in values.chunks(block_size).enumerate() {
        // Determine which global indices fall in the top-k of this block.
        let mut idx: Vec<usize> = (0..chunk.len()).collect();
        idx.sort_by(|&x, &y| chunk[y].abs().partial_cmp(&chunk[x].abs()).unwrap_or(std::cmp::Ordering::Equal));
        for &local in idx.iter().take(k) {
            if outliers.contains(&(b * block_size + local)) {
                covered += 1;
            }
        }
        out.extend(quantize_block_topk(low, high, k, chunk));
    }
    let coverage = if outliers.is_empty() { 1.0 } else { covered as f64 / outliers.len() as f64 };
    TopKResult { values: out, outlier_coverage: coverage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;
    use crate::mxfp::MxFormat;

    fn activations(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0;
                let v = u * u * u * 0.4;
                // Two outliers co-located in some blocks.
                if i % 64 == 5 || i % 64 == 21 {
                    (6.0 + u.abs() * 8.0) * u.signum()
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn top_zero_equals_plain_mxfp4() {
        let row = activations(512);
        let topk = quantize_row_topk(0, &row);
        let plain = MxFormat::MXFP4.quantize_dequantize(&row);
        assert_eq!(topk.values, plain);
    }

    #[test]
    fn error_decreases_monotonically_with_k_figure_14() {
        let row = activations(2048);
        let errors: Vec<f64> = (0..=4).map(|k| mse(&row, &quantize_row_topk(k, &row).values)).collect();
        for w in errors.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "top-k error must not increase with k: {errors:?}");
        }
        // Top-1 alone removes a substantial share of the error (the BM insight).
        assert!(errors[1] < errors[0] * 0.8, "top-1 should remove a large share: {errors:?}");
    }

    #[test]
    fn diminishing_returns_beyond_top_2() {
        // Figure 14: gains beyond top-2 are marginal because most activation outliers are
        // covered at k=2.
        let row = activations(4096);
        let e1 = mse(&row, &quantize_row_topk(1, &row).values);
        let e2 = mse(&row, &quantize_row_topk(2, &row).values);
        let e4 = mse(&row, &quantize_row_topk(4, &row).values);
        let gain_1_to_2 = e1 - e2;
        let gain_2_to_4 = e2 - e4;
        assert!(gain_2_to_4 <= gain_1_to_2 + 1e-12);
    }

    #[test]
    fn outlier_coverage_grows_with_k() {
        let row = activations(4096);
        let c1 = quantize_row_topk(1, &row).outlier_coverage;
        let c2 = quantize_row_topk(2, &row).outlier_coverage;
        assert!(c2 >= c1);
        // With two outliers per 64 elements (one per 32-block on average but co-located in
        // some blocks), top-2 must cover essentially all of them.
        assert!(c2 > 0.95, "top-2 coverage {c2}");
    }

    #[test]
    fn zero_block_handling() {
        let out = quantize_block_topk(ElementType::E2M1, ElementType::E2M3, 2, &[0.0; 8]);
        assert_eq!(out, vec![0.0; 8]);
    }

    #[test]
    fn coverage_is_one_when_there_are_no_outliers() {
        let row = vec![0.25_f32; 128];
        assert_eq!(quantize_row_topk(1, &row).outlier_coverage, 1.0);
    }
}
