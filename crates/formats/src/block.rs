//! The basic MX block codec: 32 elements sharing one power-of-two scale.

use serde::{Deserialize, Serialize};

use crate::element::ElementType;
use crate::error::FormatError;
use crate::minifloat;
use crate::scale::{self, SharedScale};

/// Number of elements per MX block as defined by the OCP specification.
pub const BLOCK_SIZE: usize = 32;

/// A quantized MX block: one shared scale plus per-element codes.
///
/// The block length is whatever slice was passed to [`MxBlock::quantize`]; full MX blocks
/// hold [`BLOCK_SIZE`] elements but tails of tensors whose inner dimension is not a
/// multiple of 32 may produce shorter blocks.
///
/// ```
/// use mx_formats::{ElementType, MxBlock};
///
/// let values = [0.4_f32, -1.3, 2.0, 0.05];
/// let block = MxBlock::quantize(ElementType::E2M1, &values);
/// let restored = block.dequantize();
/// assert_eq!(restored.len(), values.len());
/// // The block max is always representable within one element ULP of the scaled grid.
/// assert!((restored[2] - 2.0).abs() <= 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MxBlock {
    element: ElementType,
    scale: SharedScale,
    codes: Vec<u8>,
}

impl MxBlock {
    /// Quantizes a slice of values into an MX block with element type `element`.
    ///
    /// The shared exponent follows Equation 1 of the paper:
    /// `shared_exp = floor(log2(max|x|)) - e_max`. An all-zero block is encoded with the
    /// reserved zero-block scale.
    #[must_use]
    pub fn quantize(element: ElementType, values: &[f32]) -> Self {
        let mut codes = vec![0u8; values.len()];
        let scale = quantize_codes_into(element, values, &mut codes);
        MxBlock { element, scale, codes }
    }

    /// Reconstructs the block from stored parts.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidCode`] if any code does not fit in the element width.
    pub fn from_parts(element: ElementType, scale: SharedScale, codes: Vec<u8>) -> Result<Self, FormatError> {
        let mask = if element.bits() == 8 { 0xffu16 } else { (1u16 << element.bits()) - 1 };
        for &c in &codes {
            if u16::from(c) > mask {
                return Err(FormatError::InvalidCode { code: u16::from(c), bits: element.bits() });
            }
        }
        Ok(MxBlock { element, scale, codes })
    }

    /// The element data type of this block.
    #[must_use]
    pub fn element(&self) -> ElementType {
        self.element
    }

    /// The shared scale of this block.
    #[must_use]
    pub fn scale(&self) -> SharedScale {
        self.scale
    }

    /// The raw element codes.
    #[must_use]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Number of elements in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the block holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dequantizes the block back to `f32` values.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.codes.len()];
        self.dequantize_into(&mut out);
        out
    }

    /// Dequantizes into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn dequantize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.codes.len(), "output length must equal block length");
        if self.scale.is_zero_block() {
            out.fill(0.0);
            return;
        }
        let s = self.scale.value();
        for (o, &c) in out.iter_mut().zip(&self.codes) {
            let e = if self.element.is_int() {
                minifloat::decode_int(self.element, c)
            } else {
                minifloat::decode_fp(self.element, c)
            };
            *o = e * s;
        }
    }

    /// Index of the block-max (largest magnitude) element of the original values.
    ///
    /// This is the element whose exponent determined the shared scale; ties resolve to
    /// the first occurrence, matching the conversion-kernel behaviour described in
    /// Section 4.1 of the paper.
    #[must_use]
    pub fn block_max_index(values: &[f32]) -> usize {
        let mut best = 0;
        let mut best_abs = f32::NEG_INFINITY;
        for (i, &v) in values.iter().enumerate() {
            let a = if v.is_finite() { v.abs() } else { 0.0 };
            if a > best_abs {
                best_abs = a;
                best = i;
            }
        }
        best
    }

    /// Storage cost of one block in bits (elements plus the shared-scale byte).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.codes.len() * self.element.bits() as usize + 8
    }
}

/// Quantizes `values` into per-element codes written to `codes` and returns the shared
/// scale — the allocation-free core of [`MxBlock::quantize`], for hot paths (the packed
/// row encoder) that reuse one stack buffer across blocks.
///
/// # Panics
///
/// Panics if `codes.len() != values.len()`.
pub fn quantize_codes_into(element: ElementType, values: &[f32], codes: &mut [u8]) -> SharedScale {
    assert_eq!(codes.len(), values.len(), "code buffer length must equal block length");
    let Some(exp) = scale::shared_exponent(values, element.emax()) else {
        codes.fill(0);
        return SharedScale::ZERO_BLOCK;
    };
    let scale = SharedScale::from_exponent(exp);
    let s = scale.value();
    for (c, &v) in codes.iter_mut().zip(values) {
        let scaled = v / s;
        *c = if element.is_int() {
            minifloat::encode_int(element, scaled)
        } else {
            minifloat::encode_fp(element, scaled)
        };
    }
    scale
}

/// Splits a row into blocks of `block_size`, quantizes each with `element`, and returns
/// the dequantized ("fake quantized") row. This is the drop-in direct-cast path used for
/// the model-quality experiments.
#[must_use]
pub fn fake_quantize_row(element: ElementType, block_size: usize, values: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; values.len()];
    fake_quantize_row_into(element, block_size, values, &mut out);
    out
}

/// Like [`fake_quantize_row`], but writes into a caller-provided buffer so hot loops can
/// reuse one scratch allocation across rows (the KV-cache append path depends on this).
///
/// # Panics
///
/// Panics if `block_size == 0` or `out.len() != values.len()`.
pub fn fake_quantize_row_into(element: ElementType, block_size: usize, values: &[f32], out: &mut [f32]) {
    assert!(block_size > 0, "block size must be positive");
    assert_eq!(out.len(), values.len(), "output length must equal input length");
    for (chunk, out_chunk) in values.chunks(block_size).zip(out.chunks_mut(block_size)) {
        let block = MxBlock::quantize(element, chunk);
        block.dequantize_into(out_chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mse(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>() / a.len() as f32
    }

    #[test]
    fn zero_block_round_trips_to_zero() {
        let block = MxBlock::quantize(ElementType::E2M1, &[0.0; BLOCK_SIZE]);
        assert!(block.scale().is_zero_block());
        assert_eq!(block.dequantize(), vec![0.0; BLOCK_SIZE]);
    }

    #[test]
    fn paper_figure_4_upper_block_mxfp4() {
        // Figure 4(b), upper sampled block: BF16 values and their MXFP4 representation.
        // The outlier -9.84 forces shared scale 2^1 and the small values collapse to 0.
        let values = [-0.27_f32, -0.19, 0.99, -0.20, -9.84, -0.39];
        let block = MxBlock::quantize(ElementType::E2M1, &values);
        let deq = block.dequantize();
        assert_eq!(block.scale().exponent(), Some(1));
        assert_eq!(deq[0], 0.0);
        assert_eq!(deq[1], 0.0);
        assert_eq!(deq[2], 1.0);
        assert_eq!(deq[3], 0.0);
        assert_eq!(deq[4], -8.0);
        assert_eq!(deq[5], 0.0);
    }

    #[test]
    fn paper_figure_4_upper_block_mxfp6() {
        // Same block in MXFP6 (E2M3): the paper reports -0.25, -0.25(?), 1.00, -0.25(?), -10.00.
        // The key checks: the outlier maps to -10.0 and small values stay non-zero.
        let values = [-0.27_f32, -0.19, 0.99, -0.20, -9.84, -0.39];
        let block = MxBlock::quantize(ElementType::E2M3, &values);
        let deq = block.dequantize();
        assert_eq!(block.scale().exponent(), Some(1));
        assert_eq!(deq[4], -10.0);
        assert_eq!(deq[2], 1.0);
        assert!((deq[0] - -0.25).abs() < 1e-6);
        assert!(deq[1] != 0.0 && deq[5] != 0.0);
    }

    #[test]
    fn paper_figure_4_lower_block_mxfp4() {
        // Figure 4(b), lower sampled block (no outlier): MXFP4 keeps reasonable precision.
        let values = [-0.27_f32, 0.04, -1.02, 0.18, -0.45, -0.20];
        let block = MxBlock::quantize(ElementType::E2M1, &values);
        let deq = block.dequantize();
        assert_eq!(block.scale().exponent(), Some(-2));
        assert_eq!(deq[2], -1.0);
        assert!((deq[0] - -0.25).abs() < 1e-6);
        assert!((deq[4] - -0.5).abs() < 1e-6);
        // Paper reports 0.13 for the 0.18 input, i.e. the representable value 0.125.
        assert!((deq[3] - 0.125).abs() < 1e-6);
    }

    #[test]
    fn outlier_block_has_higher_error_than_regular_block() {
        let with_outlier = [-0.27_f32, -0.19, 0.99, -0.20, -9.84, -0.39];
        let without = [-0.27_f32, 0.04, -1.02, 0.18, -0.45, -0.20];
        let b1 = MxBlock::quantize(ElementType::E2M1, &with_outlier);
        let b2 = MxBlock::quantize(ElementType::E2M1, &without);
        // Exclude the outlier itself when comparing the error on the small elements:
        // the shared scale inflated by the outlier destroys the NBMs.
        let deq1 = b1.dequantize();
        let deq2 = b2.dequantize();
        let nbm_err1: f32 = with_outlier
            .iter()
            .zip(&deq1)
            .enumerate()
            .filter(|(i, _)| *i != 4)
            .map(|(_, (x, y))| (x - y) * (x - y))
            .sum();
        let nbm_err2: f32 = without.iter().zip(&deq2).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!(nbm_err1 > nbm_err2 * 2.0);
    }

    #[test]
    fn larger_element_types_reduce_error() {
        let values: Vec<f32> = (0..BLOCK_SIZE).map(|i| ((i * 37 % 17) as f32 - 8.0) * 0.21).collect();
        let e4 = fake_quantize_row(ElementType::E2M1, BLOCK_SIZE, &values);
        let e6 = fake_quantize_row(ElementType::E2M3, BLOCK_SIZE, &values);
        let e8 = fake_quantize_row(ElementType::E4M3, BLOCK_SIZE, &values);
        assert!(mse(&values, &e6) <= mse(&values, &e4));
        assert!(mse(&values, &e8) <= mse(&values, &e6));
    }

    #[test]
    fn block_max_index_finds_outlier() {
        let values = [-0.27_f32, -0.19, 0.99, -0.20, -9.84, -0.39];
        assert_eq!(MxBlock::block_max_index(&values), 4);
        let tie = [1.0_f32, -1.0, 0.5];
        assert_eq!(MxBlock::block_max_index(&tie), 0);
    }

    #[test]
    fn mxint8_block_quantization() {
        let values = [0.5_f32, -0.25, 1.0, 0.125, -1.5, 0.75];
        let block = MxBlock::quantize(ElementType::Int8, &values);
        let deq = block.dequantize();
        // shared exp = floor(log2 1.5) - 0 = 0, so the grid step is 2^0 / 64.
        assert_eq!(block.scale().exponent(), Some(0));
        for (v, d) in values.iter().zip(&deq) {
            assert!((v - d).abs() <= 1.0 / 128.0 + 1e-6, "{v} vs {d}");
        }
    }

    #[test]
    fn fake_quantize_handles_partial_tail_blocks() {
        let values: Vec<f32> = (0..40).map(|i| i as f32 * 0.1).collect();
        let out = fake_quantize_row(ElementType::E2M3, BLOCK_SIZE, &values);
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn fake_quantize_into_matches_allocating_path() {
        let values: Vec<f32> = (0..100).map(|i| ((i * 37 % 29) as f32 - 14.0) * 0.13).collect();
        let alloc = fake_quantize_row(ElementType::E2M1, BLOCK_SIZE, &values);
        let mut scratch = vec![f32::NAN; values.len()];
        fake_quantize_row_into(ElementType::E2M1, BLOCK_SIZE, &values, &mut scratch);
        assert_eq!(alloc, scratch);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn fake_quantize_into_validates_length() {
        fake_quantize_row_into(ElementType::E2M1, BLOCK_SIZE, &[1.0; 8], &mut [0.0; 7]);
    }

    #[test]
    fn storage_bits_accounting() {
        let block = MxBlock::quantize(ElementType::E2M1, &[1.0; BLOCK_SIZE]);
        // 32 elements x 4 bits + 8-bit scale = 136 bits = 4.25 bits/element.
        assert_eq!(block.storage_bits(), 136);
    }

    #[test]
    fn from_parts_validates_codes() {
        let err = MxBlock::from_parts(ElementType::E2M1, SharedScale::from_exponent(0), vec![0x1f]);
        assert!(err.is_err());
        let ok = MxBlock::from_parts(ElementType::E2M1, SharedScale::from_exponent(0), vec![0x0f]);
        assert!(ok.is_ok());
    }

    #[test]
    fn non_finite_inputs_do_not_poison_the_block() {
        let values = [1.0_f32, f32::NAN, 2.0, f32::INFINITY];
        let block = MxBlock::quantize(ElementType::E2M1, &values);
        let deq = block.dequantize();
        assert!(deq.iter().all(|v| v.is_finite()));
        assert_eq!(deq[2], 2.0);
    }
}
