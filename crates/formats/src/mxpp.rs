//! The MX++ variant (Section 4.3): decoupling the NBM shared scale from the BM.
//!
//! MX+ leaves the non-block-max (NBM) elements quantized against a shared scale dictated
//! by the outlier, so they may still collapse toward zero. MX++ uses the three reserved
//! metadata bits to store the difference between the BM's shared exponent and a smaller
//! shared exponent used only by the NBM elements, mapping them onto a finer grid.

use serde::{Deserialize, Serialize};

use crate::block::{MxBlock, BLOCK_SIZE};
use crate::element::ElementType;
use crate::minifloat;
use crate::scale::{self, SharedScale, MIN_SHARED_EXP};

/// A quantized MX++ block.
///
/// ```
/// use mx_formats::mxpp::MxPlusPlusBlock;
/// use mx_formats::ElementType;
///
/// // The Section 4.3 worked example: with the NBM scale decoupled, -0.39 maps to -1.5
/// // on the finer grid instead of flushing to zero.
/// let values = [-0.27_f32, -0.19, 0.99, -0.20, -9.84, -0.39];
/// let block = MxPlusPlusBlock::quantize(ElementType::E2M1, &values);
/// let deq = block.dequantize();
/// assert!((deq[5] - -0.375).abs() < 1e-6);
/// assert_eq!(deq[4], -10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MxPlusPlusBlock {
    element: ElementType,
    scale: SharedScale,
    bm_index: u8,
    /// `shared_exp - shared_exp_new`, in [0, 7], stored in the reserved metadata bits.
    scale_delta: u8,
    codes: Vec<u8>,
}

impl MxPlusPlusBlock {
    /// Quantizes a slice of values into an MX++ block.
    #[must_use]
    pub fn quantize(element: ElementType, values: &[f32]) -> Self {
        let emax = element.emax();
        let zero_block = |len: usize| MxPlusPlusBlock {
            element,
            scale: SharedScale::ZERO_BLOCK,
            bm_index: 0,
            scale_delta: 0,
            codes: vec![0; len],
        };
        let Some(shared_exp) = scale::shared_exponent(values, emax) else {
            return zero_block(values.len());
        };
        if shared_exp < MIN_SHARED_EXP {
            return zero_block(values.len());
        }
        let bm_index = MxBlock::block_max_index(values);

        // Smallest feasible shared exponent for the NBM elements (Section 4.3):
        // e = max2(floor(log2|x|)) - emax + 1, clipped to [shared_exp - 7, shared_exp].
        let max2_exp = values
            .iter()
            .enumerate()
            .filter(|(i, v)| *i != bm_index && v.is_finite() && **v != 0.0)
            .map(|(_, &v)| scale::floor_log2(v.abs()))
            .max();
        let nbm_exp = match max2_exp {
            None => shared_exp,
            Some(m2) => {
                let e = m2 - emax + 1;
                e.clamp(shared_exp - 7, shared_exp)
            }
        };
        let scale_delta = (shared_exp - nbm_exp) as u8;

        let bm_scale = SharedScale::from_exponent(shared_exp);
        let nbm_scale_value = SharedScale::from_exponent(nbm_exp).value();
        let s_bm = bm_scale.value();
        let codes = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i == bm_index {
                    minifloat::encode_bm_extended(element, (v / s_bm).abs(), v.is_sign_negative())
                } else if element.is_int() {
                    minifloat::encode_int(element, v / nbm_scale_value)
                } else {
                    minifloat::encode_fp(element, v / nbm_scale_value)
                }
            })
            .collect();
        MxPlusPlusBlock { element, scale: bm_scale, bm_index: bm_index as u8, scale_delta, codes }
    }

    /// The element data type.
    #[must_use]
    pub fn element(&self) -> ElementType {
        self.element
    }

    /// The BM shared scale (identical to the MX/MX+ shared scale).
    #[must_use]
    pub fn scale(&self) -> SharedScale {
        self.scale
    }

    /// The NBM shared scale, `2^(shared_exp - delta)`.
    #[must_use]
    pub fn nbm_scale(&self) -> SharedScale {
        match self.scale.exponent() {
            None => SharedScale::ZERO_BLOCK,
            Some(e) => SharedScale::from_exponent(e - i32::from(self.scale_delta)),
        }
    }

    /// Index of the BM element.
    #[must_use]
    pub fn bm_index(&self) -> usize {
        usize::from(self.bm_index)
    }

    /// The scale delta stored in the reserved metadata bits (0..=7).
    #[must_use]
    pub fn scale_delta(&self) -> u8 {
        self.scale_delta
    }

    /// The metadata byte: 5-bit BM index plus the 3-bit scale delta.
    #[must_use]
    pub fn metadata_byte(&self) -> u8 {
        (self.scale_delta << 5) | (self.bm_index & 0x1f)
    }

    /// Raw element codes.
    #[must_use]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Number of elements in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the block holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dequantizes the block.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        if self.scale.is_zero_block() {
            return vec![0.0; self.codes.len()];
        }
        let s_bm = self.scale.value();
        let s_nbm = self.nbm_scale().value();
        self.codes
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if i == usize::from(self.bm_index) {
                    minifloat::decode_bm_extended(self.element, c) * s_bm
                } else if self.element.is_int() {
                    minifloat::decode_int(self.element, c) * s_nbm
                } else {
                    minifloat::decode_fp(self.element, c) * s_nbm
                }
            })
            .collect()
    }
}

/// Direct-cast fake quantization of a row with MX++ blocks of `block_size` elements.
#[must_use]
pub fn fake_quantize_row_pp(element: ElementType, block_size: usize, values: &[f32]) -> Vec<f32> {
    assert!(block_size > 0, "block size must be positive");
    let mut out = Vec::with_capacity(values.len());
    for chunk in values.chunks(block_size) {
        out.extend(MxPlusPlusBlock::quantize(element, chunk).dequantize());
    }
    out
}

/// Convenience descriptor for MXFP4++ with the standard block size.
#[must_use]
pub fn mxfp4_pp_quantize_dequantize(values: &[f32]) -> Vec<f32> {
    fake_quantize_row_pp(ElementType::E2M1, BLOCK_SIZE, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mxplus::MxPlusBlock;

    fn mse(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| ((x - y) * (x - y)) as f64).sum::<f64>() / a.len() as f64
    }

    const FIG6_BLOCK: [f32; 6] = [-0.27, -0.19, 0.99, -0.20, -9.84, -0.39];

    #[test]
    fn section_4_3_worked_example() {
        // shared_exp = 1 (from the BM -9.84); max2 exponent comes from 0.99 (-1), so
        // e = -1 - 2 + 1 = -2, within the clip range -> delta = 3.
        let block = MxPlusPlusBlock::quantize(ElementType::E2M1, &FIG6_BLOCK);
        assert_eq!(block.scale().exponent(), Some(1));
        assert_eq!(block.nbm_scale().exponent(), Some(-2));
        assert_eq!(block.scale_delta(), 3);
        let deq = block.dequantize();
        // The paper: with shared_exp_new = -2, the NBM -0.39 scales to -1.56 and maps to
        // -1.5, i.e. -0.375 in the real domain (it was 0 under MXFP4 and MXFP4+).
        assert!((deq[5] - -0.375).abs() < 1e-6);
        // 0.99 scales to 3.96 and stays representable (maps to 4.0 -> 1.0).
        assert!((deq[2] - 1.0).abs() < 1e-6);
        // The BM is still the MX+ value.
        assert_eq!(deq[4], -10.0);
    }

    #[test]
    fn offset_prevents_nbm_saturation() {
        // Without the +1 offset the largest NBM would scale to 7.92 and saturate at 6.0;
        // verify our implementation keeps it within range (Section 4.3 discussion).
        let block = MxPlusPlusBlock::quantize(ElementType::E2M1, &FIG6_BLOCK);
        let deq = block.dequantize();
        assert!((deq[2] - 0.99).abs() < 0.27, "NBM max must not saturate badly: {}", deq[2]);
    }

    #[test]
    fn delta_is_clipped_to_three_bits() {
        // A block where the second-largest element is astronomically smaller than the BM:
        // the delta must clamp at 7.
        let mut values = vec![1.0e-6_f32; BLOCK_SIZE];
        values[0] = 100.0;
        let block = MxPlusPlusBlock::quantize(ElementType::E2M1, &values);
        assert_eq!(block.scale_delta(), 7);
        assert!(block.metadata_byte() >> 5 == 7);
    }

    #[test]
    fn identical_bm_and_nbm_exponents_clip_at_upper_bound() {
        // When the BM and the largest NBM share the same exponent, e exceeds shared_exp
        // because of the +1 offset and must clip to shared_exp (delta 0).
        let mut values = vec![0.0_f32; BLOCK_SIZE];
        values[0] = 3.9;
        values[1] = -3.8;
        let block = MxPlusPlusBlock::quantize(ElementType::E2M1, &values);
        assert_eq!(block.scale_delta(), 0);
    }

    #[test]
    fn mxpp_never_worse_than_mxplus_on_outlier_blocks() {
        for seed in 0..100u32 {
            let values: Vec<f32> = (0..BLOCK_SIZE)
                .map(|i| {
                    let x = ((seed as usize * 97 + i * 2_654_435_761) % 2000) as f32 / 1000.0 - 1.0;
                    if i == 5 {
                        x.signum() * (20.0 + x.abs() * 10.0)
                    } else {
                        x * 0.3
                    }
                })
                .collect();
            let plus = MxPlusBlock::quantize(ElementType::E2M1, &values).dequantize();
            let pp = MxPlusPlusBlock::quantize(ElementType::E2M1, &values).dequantize();
            assert!(
                mse(&values, &pp) <= mse(&values, &plus) * 1.05 + 1e-12,
                "seed {seed}: MX++ should not be meaningfully worse than MX+"
            );
        }
    }

    #[test]
    fn blocks_without_outliers_keep_delta_small_and_match_mxplus() {
        let values: Vec<f32> = (0..BLOCK_SIZE).map(|i| (i as f32 - 16.0) * 0.05).collect();
        let pp = MxPlusPlusBlock::quantize(ElementType::E2M1, &values);
        // BM is -0.8, the next largest 0.75: same binade, so delta is at most 1.
        assert!(pp.scale_delta() <= 1);
    }

    #[test]
    fn zero_and_single_element_blocks() {
        let zero = MxPlusPlusBlock::quantize(ElementType::E2M1, &[0.0; 4]);
        assert!(zero.scale().is_zero_block());
        assert_eq!(zero.dequantize(), vec![0.0; 4]);

        // A block whose only non-zero element is the BM has no max2; delta stays 0.
        let mut values = vec![0.0_f32; 8];
        values[3] = 5.0;
        let single = MxPlusPlusBlock::quantize(ElementType::E2M1, &values);
        assert_eq!(single.scale_delta(), 0);
        assert!((single.dequantize()[3] - 5.0).abs() <= 0.25);
    }

    #[test]
    fn quantization_cost_model_hook() {
        // MX++ requires finding the second maximum, which the paper reports as a small
        // quantization-time increase (Table 6); functionally the result must still be a
        // valid block for any input length.
        let values: Vec<f32> = (0..40).map(|i| i as f32 * 0.01).collect();
        let out = fake_quantize_row_pp(ElementType::E2M1, BLOCK_SIZE, &values);
        assert_eq!(out.len(), 40);
    }
}
