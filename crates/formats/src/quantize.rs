//! The high-level quantization-scheme selector used by the model-quality experiments.
//!
//! Every format in the paper's evaluation — the BF16 baseline, the BFP variants, the MX
//! family and the MX+ / MX++ / NVFP4+ extensions — is exposed as a variant of
//! [`QuantScheme`] with one uniform `quantize_dequantize` entry point, so the LLM, DNN and
//! baseline crates can sweep over formats without knowing their internals.

use serde::{Deserialize, Serialize};

use crate::bf16::round_to_bf16;
use crate::block::BLOCK_SIZE;
use crate::element::ElementType;
use crate::msfp::MsfpFormat;
use crate::mxfp::MxFormat;
use crate::mxplus::MxPlusFormat;
use crate::mxpp::fake_quantize_row_pp;
use crate::nvfp::{nvfp4_plus_quantize_dequantize, nvfp4_quantize_dequantize};
use crate::smx::SmxFormat;
use crate::topk::quantize_row_topk;

/// A quantization scheme applicable to a tensor row (the last, contiguous dimension).
///
/// ```
/// use mx_formats::QuantScheme;
///
/// let row = vec![0.1_f32, -0.7, 3.3, 0.02, -9.1, 0.5, 0.25, -0.125];
/// for scheme in [QuantScheme::Fp32, QuantScheme::Bf16, QuantScheme::mxfp4(),
///                QuantScheme::mxfp4_plus(), QuantScheme::mxfp4_pp()] {
///     assert_eq!(scheme.quantize_dequantize(&row).len(), row.len());
/// }
/// assert_eq!(QuantScheme::Fp32.quantize_dequantize(&row), row);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum QuantScheme {
    /// No quantization (FP32 reference).
    Fp32,
    /// Bfloat16 rounding (the paper's baseline "B").
    Bf16,
    /// A plain MX-compliant format (MXFP4/6/8, MXINT8/4).
    Mx(MxFormat),
    /// An MX+ format (MXFP4+/6+/8+, MXINT8+/4+).
    MxPlus(MxPlusFormat),
    /// An MX++ format (decoupled NBM scale), parameterised by element type.
    MxPlusPlus(ElementType),
    /// A Microsoft Floating Point format (MSFP12/14/16).
    Msfp(MsfpFormat),
    /// A shared-microexponents format (SMX4/6/9).
    Smx(SmxFormat),
    /// NVIDIA NVFP4.
    Nvfp4,
    /// NVFP4 with the MX+-style BM extension (NVFP4+).
    Nvfp4Plus,
    /// Hybrid top-k blocks: the k largest elements of every block in MXFP6, others MXFP4.
    TopK(usize),
}

impl QuantScheme {
    /// MXFP4 (E2M1, 32-element blocks).
    #[must_use]
    pub const fn mxfp4() -> Self {
        QuantScheme::Mx(MxFormat::MXFP4)
    }
    /// MXFP6 with E2M3 elements.
    #[must_use]
    pub const fn mxfp6() -> Self {
        QuantScheme::Mx(MxFormat::MXFP6_E2M3)
    }
    /// MXFP8 with E4M3 elements.
    #[must_use]
    pub const fn mxfp8() -> Self {
        QuantScheme::Mx(MxFormat::MXFP8_E4M3)
    }
    /// MXINT8.
    #[must_use]
    pub const fn mxint8() -> Self {
        QuantScheme::Mx(MxFormat::MXINT8)
    }
    /// The hypothetical MXINT4.
    #[must_use]
    pub const fn mxint4() -> Self {
        QuantScheme::Mx(MxFormat::MXINT4)
    }
    /// MXFP4+.
    #[must_use]
    pub const fn mxfp4_plus() -> Self {
        QuantScheme::MxPlus(MxPlusFormat::MXFP4_PLUS)
    }
    /// MXFP6+.
    #[must_use]
    pub const fn mxfp6_plus() -> Self {
        QuantScheme::MxPlus(MxPlusFormat::MXFP6_PLUS)
    }
    /// MXFP8+.
    #[must_use]
    pub const fn mxfp8_plus() -> Self {
        QuantScheme::MxPlus(MxPlusFormat::MXFP8_PLUS)
    }
    /// MXINT8+.
    #[must_use]
    pub const fn mxint8_plus() -> Self {
        QuantScheme::MxPlus(MxPlusFormat::MXINT8_PLUS)
    }
    /// MXINT4+.
    #[must_use]
    pub const fn mxint4_plus() -> Self {
        QuantScheme::MxPlus(MxPlusFormat::MXINT4_PLUS)
    }
    /// MXFP4++.
    #[must_use]
    pub const fn mxfp4_pp() -> Self {
        QuantScheme::MxPlusPlus(ElementType::E2M1)
    }

    /// All schemes compared in Figure 2 (BF16 baseline plus the three bit-width tiers of
    /// MX, SMX and MSFP).
    #[must_use]
    pub fn figure2_schemes() -> Vec<(String, QuantScheme)> {
        vec![
            ("BF16".into(), QuantScheme::Bf16),
            ("MXFP8 (e4m3)".into(), QuantScheme::mxfp8()),
            ("MXFP6 (e2m3)".into(), QuantScheme::mxfp6()),
            ("MXFP4 (e2m1)".into(), QuantScheme::mxfp4()),
            ("SMX9".into(), QuantScheme::Smx(SmxFormat::SMX9)),
            ("SMX6".into(), QuantScheme::Smx(SmxFormat::SMX6)),
            ("SMX4".into(), QuantScheme::Smx(SmxFormat::SMX4)),
            ("MSFP16".into(), QuantScheme::Msfp(MsfpFormat::MSFP16)),
            ("MSFP14".into(), QuantScheme::Msfp(MsfpFormat::MSFP14)),
            ("MSFP12".into(), QuantScheme::Msfp(MsfpFormat::MSFP12)),
        ]
    }

    /// All MX / MX+ schemes compared in Tables 2 and 3.
    #[must_use]
    pub fn table2_schemes() -> Vec<(String, QuantScheme)> {
        vec![
            ("BF16".into(), QuantScheme::Bf16),
            ("MXFP8+".into(), QuantScheme::mxfp8_plus()),
            ("MXFP8".into(), QuantScheme::mxfp8()),
            ("MXFP6+".into(), QuantScheme::mxfp6_plus()),
            ("MXFP6".into(), QuantScheme::mxfp6()),
            ("MXFP4++".into(), QuantScheme::mxfp4_pp()),
            ("MXFP4+".into(), QuantScheme::mxfp4_plus()),
            ("MXFP4".into(), QuantScheme::mxfp4()),
        ]
    }

    /// Fake-quantizes a row with this scheme.
    #[must_use]
    pub fn quantize_dequantize(&self, values: &[f32]) -> Vec<f32> {
        match self {
            QuantScheme::Fp32 => values.to_vec(),
            QuantScheme::Bf16 => values.iter().map(|&v| round_to_bf16(v)).collect(),
            QuantScheme::Mx(f) => f.quantize_dequantize(values),
            QuantScheme::MxPlus(f) => f.quantize_dequantize(values),
            QuantScheme::MxPlusPlus(et) => fake_quantize_row_pp(*et, BLOCK_SIZE, values),
            QuantScheme::Msfp(f) => f.quantize_dequantize(values),
            QuantScheme::Smx(f) => f.quantize_dequantize(values),
            QuantScheme::Nvfp4 => nvfp4_quantize_dequantize(values),
            QuantScheme::Nvfp4Plus => nvfp4_plus_quantize_dequantize(values),
            QuantScheme::TopK(k) => quantize_row_topk(*k, values).values,
        }
    }

    /// Buffer-reusing variant of [`QuantScheme::quantize_dequantize`]: writes the
    /// fake-quantized row into `out` so per-row callers (KV-cache appends, column-block
    /// weight casts) can reuse one scratch buffer instead of allocating a `Vec` per row.
    ///
    /// Identity/rounding schemes and the MX family quantize fully in place; the remaining
    /// schemes fall back to their allocating kernel and copy the result into `out`, so the
    /// two entry points always agree bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != values.len()`.
    pub fn quantize_dequantize_into(&self, values: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), values.len(), "output length must equal input length");
        match self {
            QuantScheme::Fp32 => out.copy_from_slice(values),
            QuantScheme::Bf16 => {
                for (o, &v) in out.iter_mut().zip(values) {
                    *o = round_to_bf16(v);
                }
            }
            QuantScheme::Mx(f) => f.quantize_dequantize_into(values, out),
            _ => out.copy_from_slice(&self.quantize_dequantize(values)),
        }
    }

    /// Average storage bits per element of the scheme (used by the bandwidth model).
    #[must_use]
    pub fn average_bits_per_element(&self) -> f64 {
        match self {
            QuantScheme::Fp32 => 32.0,
            QuantScheme::Bf16 => 16.0,
            QuantScheme::Mx(f) => f.average_bits_per_element(),
            QuantScheme::MxPlus(f) => f.average_bits_per_element(),
            QuantScheme::MxPlusPlus(et) => f64::from(et.bits()) + 16.0 / BLOCK_SIZE as f64,
            QuantScheme::Msfp(f) => f.average_bits_per_element(),
            QuantScheme::Smx(f) => f.average_bits_per_element(),
            QuantScheme::Nvfp4 => 4.0 + 8.0 / 16.0,
            QuantScheme::Nvfp4Plus => 4.0 + 12.0 / 16.0,
            QuantScheme::TopK(k) => {
                // Per 32-element block: every element carries at least the MXFP4 (E2M1)
                // width plus the shared-scale byte; the k promoted elements additionally
                // pay the E2M1->E2M3 width difference and a log2(block) index each so the
                // decoder can locate them.
                let k = (*k).min(BLOCK_SIZE) as f64;
                let low = f64::from(ElementType::E2M1.bits());
                let high = f64::from(ElementType::E2M3.bits());
                let index_bits = (BLOCK_SIZE as f64).log2().ceil();
                low + (8.0 + k * (high - low) + k * index_bits) / BLOCK_SIZE as f64
            }
        }
    }

    /// Human-readable name matching the paper's tables.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            QuantScheme::Fp32 => "FP32".into(),
            QuantScheme::Bf16 => "BF16".into(),
            QuantScheme::Mx(f) => f.name(),
            QuantScheme::MxPlus(f) => f.name(),
            QuantScheme::MxPlusPlus(et) => match et {
                ElementType::E2M1 => "MXFP4++".into(),
                ElementType::E2M3 => "MXFP6++".into(),
                ElementType::E4M3 => "MXFP8++".into(),
                other => format!("MX++ ({other})"),
            },
            QuantScheme::Msfp(f) => f.name(),
            QuantScheme::Smx(f) => f.name(),
            QuantScheme::Nvfp4 => "NVFP4".into(),
            QuantScheme::Nvfp4Plus => "NVFP4+".into(),
            QuantScheme::TopK(k) => format!("Top-{k} (MXFP6/MXFP4)"),
        }
    }

    /// Whether the scheme is lossless for values already representable in BF16
    /// (used by tests and by the baseline path selection).
    #[must_use]
    pub fn is_lossless_baseline(&self) -> bool {
        matches!(self, QuantScheme::Fp32 | QuantScheme::Bf16)
    }
}

impl std::fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A weight/activation quantization configuration for one matrix multiplication, matching
/// the paper's "A-x, W-y" notation (e.g. `A-MXFP4+` uses MXFP4+ for activations and MXFP4
/// for weights).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatmulQuantConfig {
    /// Scheme applied to the activation operand.
    pub activations: QuantScheme,
    /// Scheme applied to the weight operand.
    pub weights: QuantScheme,
}

impl MatmulQuantConfig {
    /// Both operands in BF16 (the paper's baseline).
    pub const BASELINE: MatmulQuantConfig =
        MatmulQuantConfig { activations: QuantScheme::Bf16, weights: QuantScheme::Bf16 };

    /// Uniform configuration: the same scheme for activations and weights.
    #[must_use]
    pub const fn uniform(scheme: QuantScheme) -> Self {
        MatmulQuantConfig { activations: scheme, weights: scheme }
    }

    /// The paper's A-MXFP4+ configuration: MXFP4+ activations, MXFP4 weights.
    #[must_use]
    pub const fn a_mxfp4_plus() -> Self {
        MatmulQuantConfig { activations: QuantScheme::mxfp4_plus(), weights: QuantScheme::mxfp4() }
    }

    /// The paper's A8W4 configuration: MXFP8 activations, MXFP4 weights.
    #[must_use]
    pub const fn a8w4() -> Self {
        MatmulQuantConfig { activations: QuantScheme::mxfp8(), weights: QuantScheme::mxfp4() }
    }

    /// Display name like "A-MXFP4+, W-MXFP4".
    #[must_use]
    pub fn name(&self) -> String {
        if self.activations == self.weights {
            self.activations.name()
        } else {
            format!("A-{}, W-{}", self.activations.name(), self.weights.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn activations(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0;
                let v = u * u * u;
                if i % 96 == 11 {
                    v * 55.0
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn fp32_is_identity_and_bf16_is_idempotent() {
        let row = activations(128);
        assert_eq!(QuantScheme::Fp32.quantize_dequantize(&row), row);
        let bf = QuantScheme::Bf16.quantize_dequantize(&row);
        assert_eq!(QuantScheme::Bf16.quantize_dequantize(&bf), bf);
    }

    #[test]
    fn all_schemes_preserve_length_and_finiteness() {
        let row = activations(200);
        let schemes = [
            QuantScheme::Fp32,
            QuantScheme::Bf16,
            QuantScheme::mxfp4(),
            QuantScheme::mxfp6(),
            QuantScheme::mxfp8(),
            QuantScheme::mxint8(),
            QuantScheme::mxint4(),
            QuantScheme::mxfp4_plus(),
            QuantScheme::mxfp6_plus(),
            QuantScheme::mxfp8_plus(),
            QuantScheme::mxfp4_pp(),
            QuantScheme::Msfp(MsfpFormat::MSFP12),
            QuantScheme::Smx(SmxFormat::SMX6),
            QuantScheme::Nvfp4,
            QuantScheme::Nvfp4Plus,
            QuantScheme::TopK(2),
        ];
        for s in schemes {
            let q = s.quantize_dequantize(&row);
            assert_eq!(q.len(), row.len(), "{s}");
            assert!(q.iter().all(|v| v.is_finite()), "{s}");
        }
    }

    #[test]
    fn quality_ordering_matches_paper_headline() {
        // The paper's headline ordering on outlier-bearing activations:
        // MXFP4 << MXFP4+ <= MXFP4++ <= MXFP6 <= MXFP8 <= BF16.
        let row = activations(8192);
        let e = |s: QuantScheme| mse(&row, &s.quantize_dequantize(&row));
        let e_fp4 = e(QuantScheme::mxfp4());
        let e_fp4p = e(QuantScheme::mxfp4_plus());
        let e_fp4pp = e(QuantScheme::mxfp4_pp());
        let e_fp6 = e(QuantScheme::mxfp6());
        let e_fp8 = e(QuantScheme::mxfp8());
        let e_bf16 = e(QuantScheme::Bf16);
        assert!(e_fp4p < e_fp4 * 0.7, "MX+ should cut MXFP4 error substantially: {e_fp4p} vs {e_fp4}");
        assert!(e_fp4pp <= e_fp4p * 1.05);
        assert!(e_fp6 < e_fp4);
        assert!(e_fp8 < e_fp6);
        assert!(e_bf16 < e_fp8);
    }

    #[test]
    fn average_bits_are_sensible() {
        assert_eq!(QuantScheme::mxfp4().average_bits_per_element(), 4.25);
        assert_eq!(QuantScheme::mxfp4_plus().average_bits_per_element(), 4.5);
        assert_eq!(QuantScheme::mxfp4_pp().average_bits_per_element(), 4.5);
        assert_eq!(QuantScheme::Nvfp4.average_bits_per_element(), 4.5);
        assert_eq!(QuantScheme::Bf16.average_bits_per_element(), 16.0);
    }

    #[test]
    fn topk_bits_account_for_promoted_elements_and_indices() {
        // Per 32-block: 32 x 4-bit base + 8-bit scale + per promoted element 2 extra
        // mantissa bits (E2M1 -> E2M3) and a 5-bit index.
        assert_eq!(QuantScheme::TopK(0).average_bits_per_element(), 4.25);
        assert_eq!(QuantScheme::TopK(1).average_bits_per_element(), 4.25 + 7.0 / 32.0);
        assert_eq!(QuantScheme::TopK(2).average_bits_per_element(), 4.6875);
        // The hybrid must cost strictly more than plain MXFP4 and less than full MXFP6.
        let k2 = QuantScheme::TopK(2).average_bits_per_element();
        assert!(k2 > QuantScheme::mxfp4().average_bits_per_element());
        assert!(k2 < QuantScheme::mxfp6().average_bits_per_element());
        // k saturates at the block size instead of growing without bound.
        assert_eq!(QuantScheme::TopK(64).average_bits_per_element(), QuantScheme::TopK(32).average_bits_per_element());
    }

    #[test]
    fn quantize_into_matches_allocating_path_for_all_schemes() {
        let row = activations(200);
        let schemes = [
            QuantScheme::Fp32,
            QuantScheme::Bf16,
            QuantScheme::mxfp4(),
            QuantScheme::mxfp6(),
            QuantScheme::mxfp8(),
            QuantScheme::mxint8(),
            QuantScheme::mxfp4_plus(),
            QuantScheme::mxfp4_pp(),
            QuantScheme::Msfp(MsfpFormat::MSFP12),
            QuantScheme::Smx(SmxFormat::SMX6),
            QuantScheme::Nvfp4,
            QuantScheme::Nvfp4Plus,
            QuantScheme::TopK(2),
        ];
        let mut scratch = vec![0.0_f32; row.len()];
        for s in schemes {
            scratch.fill(f32::NAN);
            s.quantize_dequantize_into(&row, &mut scratch);
            assert_eq!(scratch, s.quantize_dequantize(&row), "{s}");
        }
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn quantize_into_validates_length() {
        QuantScheme::mxfp4().quantize_dequantize_into(&[1.0; 8], &mut [0.0; 9]);
    }

    #[test]
    fn names_match_paper_nomenclature() {
        assert_eq!(QuantScheme::mxfp4().name(), "MXFP4");
        assert_eq!(QuantScheme::mxfp4_plus().name(), "MXFP4+");
        assert_eq!(QuantScheme::mxfp4_pp().name(), "MXFP4++");
        assert_eq!(QuantScheme::Nvfp4Plus.name(), "NVFP4+");
        assert_eq!(MatmulQuantConfig::a_mxfp4_plus().name(), "A-MXFP4+, W-MXFP4");
        assert_eq!(MatmulQuantConfig::uniform(QuantScheme::mxfp4()).name(), "MXFP4");
    }

    #[test]
    fn scheme_lists_are_complete() {
        assert_eq!(QuantScheme::figure2_schemes().len(), 10);
        assert_eq!(QuantScheme::table2_schemes().len(), 8);
    }

    #[test]
    fn baseline_flag() {
        assert!(QuantScheme::Bf16.is_lossless_baseline());
        assert!(!QuantScheme::mxfp4().is_lossless_baseline());
    }
}
