//! Word-parallel and SIMD pack/unpack kernels behind runtime dispatch.
//!
//! The scalar loops in [`crate::layout`] move one 4/6/8-bit code at a time through
//! shift/mask arithmetic keyed on the code's absolute bit position. This module is the
//! kernel layer underneath them: the same transformations expressed as u64 word-level
//! bit manipulation (several codes inserted or extracted per word, no per-code byte/bit
//! bookkeeping) plus `std::arch` SIMD specializations for the 4-bit path — AVX2/SSE2 on
//! x86_64, NEON on aarch64 — selected once by runtime feature detection.
//!
//! Every path is bit-exact against the scalar reference (pinned by the unit tests here
//! and the `kernel_dispatch` proptest suite): for identical inputs, identical packed
//! bytes and identical unpacked codes, for every bit width in `1..=8` and every length
//! including partial tail bytes. The scalar reference itself stays available two ways:
//! programmatically via [`force_scalar`], or for a whole process via the
//! `MX_FORCE_SCALAR_KERNELS` environment variable (any non-empty value other than `0`).
//! Forcing scalar also disables the fused packed-row attention walk
//! ([`crate::layout::RowCodec::walk_row_blocks`] returns `false`), so one switch yields
//! the full reference execution path end to end.
//!
//! The module also hosts the per-element-type decode lookup tables used by the block
//! decoder and the fused attention kernel: a code is at most 8 bits, so each decoder is
//! a pure function on 256 inputs and tabulates exactly — the table path is bit-identical
//! to calling the decoder, just without re-deriving sign/exponent/mantissa per element.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::element::ElementType;
use crate::minifloat;

/// Which implementation serves [`pack_codes_into`]/[`unpack_codes_into`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The per-code shift/mask reference loops (bit-exact baseline).
    Scalar,
    /// Portable u64 word-parallel paths (multiple codes per word).
    Word,
    /// x86_64 SSE2 vectors for the 4-bit path, word-parallel otherwise.
    Sse2,
    /// x86_64 AVX2 vectors for the 4-bit path, word-parallel otherwise.
    Avx2,
    /// aarch64 NEON vectors for the 4-bit path, word-parallel otherwise.
    Neon,
}

impl KernelBackend {
    /// Stable lower-case name for logs and bench labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Word => "word",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Neon => "neon",
        }
    }
}

/// Largest block length (in elements) the register-resident kernels handle; blocks above
/// this fall back to the scalar per-code path. Twice the OCP standard block of 32, so
/// every stock MX/MX+ format fits with headroom.
pub const MAX_FUSED_BLOCK: usize = 64;

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Force all kernel entry points onto the scalar reference path (`true`) or restore
/// runtime-detected dispatch (`false`). Intended for tests and A/B benchmarks; the
/// scalar and dispatched paths produce identical bytes either way.
pub fn force_scalar(enabled: bool) {
    FORCE_SCALAR.store(enabled, Ordering::SeqCst);
}

/// Whether the scalar reference path is currently forced (via [`force_scalar`] or the
/// `MX_FORCE_SCALAR_KERNELS` environment variable). The fused packed-row attention walk
/// checks this and reports itself unavailable, so forcing scalar exercises the complete
/// reference pipeline.
#[must_use]
pub fn scalar_forced() -> bool {
    active_backend() == KernelBackend::Scalar
}

/// The backend that will serve the next kernel call: the runtime-detected best backend
/// for this CPU, unless scalar is forced.
#[must_use]
pub fn active_backend() -> KernelBackend {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        return KernelBackend::Scalar;
    }
    static DETECTED: OnceLock<KernelBackend> = OnceLock::new();
    *DETECTED.get_or_init(detect)
}

/// One-time backend selection: environment override first, then ISA feature detection.
fn detect() -> KernelBackend {
    if std::env::var_os("MX_FORCE_SCALAR_KERNELS").is_some_and(|v| !v.is_empty() && v != "0") {
        return KernelBackend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            KernelBackend::Avx2
        } else {
            // SSE2 is part of the x86_64 baseline; no detection needed.
            KernelBackend::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON (asimd) is mandatory on aarch64.
        KernelBackend::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        KernelBackend::Word
    }
}

/// Exact number of bytes `count` codes of width `bits` occupy when packed.
#[must_use]
pub fn packed_len(count: usize, bits: u32) -> usize {
    (count * bits as usize).div_ceil(8)
}

/// Packs element codes of width `bits` into `out` (little-endian bit order within each
/// byte), overwriting the `packed_len(codes.len(), bits)`-byte prefix. Dispatches to the
/// active backend; bytes are identical to [`pack_codes_into_scalar`] on every path.
///
/// # Panics
///
/// Panics if `bits` is outside `1..=8` or `out` is shorter than the packed size.
pub fn pack_codes_into(codes: &[u8], bits: u32, out: &mut [u8]) {
    assert!((1..=8).contains(&bits), "element width must be between 1 and 8 bits");
    let needed = packed_len(codes.len(), bits);
    assert!(out.len() >= needed, "packed output buffer too short");
    let out = &mut out[..needed];
    match active_backend() {
        KernelBackend::Scalar => scalar_pack(codes, bits, out),
        backend => match bits {
            4 => {
                let done = simd_pack4(codes, out, backend);
                word_pack4(&codes[done..], &mut out[done / 2..]);
            }
            6 => word_pack6(codes, out),
            8 => out.copy_from_slice(codes),
            _ => word_pack_generic(codes, bits, out),
        },
    }
}

/// Unpacks `out.len()` element codes of width `bits` from a packed byte buffer.
/// Dispatches to the active backend; codes are identical to
/// [`unpack_codes_into_scalar`] on every path.
///
/// # Panics
///
/// Panics if `bits` is outside `1..=8` or `packed` is shorter than the packed size of
/// `out.len()` codes.
pub fn unpack_codes_into(packed: &[u8], bits: u32, out: &mut [u8]) {
    assert!((1..=8).contains(&bits), "element width must be between 1 and 8 bits");
    let needed = packed_len(out.len(), bits);
    assert!(packed.len() >= needed, "packed input buffer too short");
    let packed = &packed[..needed];
    match active_backend() {
        KernelBackend::Scalar => scalar_unpack(packed, bits, out),
        backend => match bits {
            4 => {
                let done = simd_unpack4(packed, out, backend);
                word_unpack4(&packed[done / 2..], &mut out[done..]);
            }
            6 => word_unpack6(packed, out),
            8 => out.copy_from_slice(packed),
            _ => word_unpack_generic(packed, bits, out),
        },
    }
}

/// The scalar reference for [`pack_codes_into`]: one code at a time, shift/mask keyed on
/// the code's absolute bit position. Every other path must match it byte for byte.
///
/// # Panics
///
/// Panics under the same conditions as [`pack_codes_into`].
pub fn pack_codes_into_scalar(codes: &[u8], bits: u32, out: &mut [u8]) {
    assert!((1..=8).contains(&bits), "element width must be between 1 and 8 bits");
    let needed = packed_len(codes.len(), bits);
    assert!(out.len() >= needed, "packed output buffer too short");
    scalar_pack(codes, bits, &mut out[..needed]);
}

/// The scalar reference for [`unpack_codes_into`]: random-access extraction of one code
/// at a time via [`code_at`]. Every other path must match it code for code.
///
/// # Panics
///
/// Panics under the same conditions as [`unpack_codes_into`].
pub fn unpack_codes_into_scalar(packed: &[u8], bits: u32, out: &mut [u8]) {
    assert!((1..=8).contains(&bits), "element width must be between 1 and 8 bits");
    let needed = packed_len(out.len(), bits);
    assert!(packed.len() >= needed, "packed input buffer too short");
    scalar_unpack(&packed[..needed], bits, out);
}

/// Reads the `i`-th element code of width `bits` from a packed byte slice without
/// allocating (the random-access primitive behind the scalar reference paths).
#[must_use]
pub fn code_at(packed: &[u8], bits: u32, i: usize) -> u8 {
    let mask = if bits == 8 { 0xff } else { (1u16 << bits) - 1 };
    let bit_pos = i * bits as usize;
    let byte = bit_pos / 8;
    let offset = bit_pos % 8;
    let mut value = u16::from(packed[byte]) >> offset;
    if offset + bits as usize > 8 {
        value |= u16::from(packed[byte + 1]) << (8 - offset);
    }
    (value & mask) as u8
}

fn scalar_pack(codes: &[u8], bits: u32, out: &mut [u8]) {
    out.fill(0);
    let mask = if bits == 8 { 0xff } else { (1u16 << bits) - 1 };
    for (i, &code) in codes.iter().enumerate() {
        let value = u16::from(code) & mask;
        let bit_pos = i * bits as usize;
        let byte = bit_pos / 8;
        let offset = bit_pos % 8;
        out[byte] |= (value << offset) as u8;
        if offset + bits as usize > 8 {
            out[byte + 1] |= (value >> (8 - offset)) as u8;
        }
    }
}

fn scalar_unpack(packed: &[u8], bits: u32, out: &mut [u8]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = code_at(packed, bits, i);
    }
}

/// 4-bit pack, one output byte per code pair (`lo | hi << 4`); the `u8` shift discards
/// the high nibble of the odd code exactly as the scalar mask does.
fn word_pack4(codes: &[u8], out: &mut [u8]) {
    for (o, pair) in out.iter_mut().zip(codes.chunks_exact(2)) {
        *o = (pair[0] & 0x0f) | (pair[1] << 4);
    }
    if let [last] = codes.chunks_exact(2).remainder() {
        out[codes.len() / 2] = last & 0x0f;
    }
}

/// 4-bit unpack, two codes per packed byte.
fn word_unpack4(packed: &[u8], out: &mut [u8]) {
    for (o, &b) in out.chunks_exact_mut(2).zip(packed) {
        o[0] = b & 0x0f;
        o[1] = b >> 4;
    }
    if out.len() % 2 == 1 {
        out[out.len() - 1] = packed[out.len() / 2] & 0x0f;
    }
}

/// 6-bit pack: four codes become one 24-bit little-endian word (three bytes).
fn word_pack6(codes: &[u8], out: &mut [u8]) {
    const M6: u32 = 0x3f;
    let full = codes.len() / 4;
    for (o, quad) in out.chunks_exact_mut(3).zip(codes.chunks_exact(4)) {
        let w = (u32::from(quad[0]) & M6)
            | ((u32::from(quad[1]) & M6) << 6)
            | ((u32::from(quad[2]) & M6) << 12)
            | ((u32::from(quad[3]) & M6) << 18);
        o.copy_from_slice(&w.to_le_bytes()[..3]);
    }
    let tail = codes.chunks_exact(4).remainder();
    if !tail.is_empty() {
        let mut w = 0u32;
        for (k, &c) in tail.iter().enumerate() {
            w |= (u32::from(c) & M6) << (6 * k);
        }
        let nb = packed_len(tail.len(), 6);
        out[3 * full..3 * full + nb].copy_from_slice(&w.to_le_bytes()[..nb]);
    }
}

/// 6-bit unpack: three packed bytes yield four codes per 24-bit word.
fn word_unpack6(packed: &[u8], out: &mut [u8]) {
    let full = out.len() / 4;
    for (o, p) in out.chunks_exact_mut(4).zip(packed.chunks_exact(3)) {
        let w = u32::from(p[0]) | (u32::from(p[1]) << 8) | (u32::from(p[2]) << 16);
        o[0] = (w & 0x3f) as u8;
        o[1] = ((w >> 6) & 0x3f) as u8;
        o[2] = ((w >> 12) & 0x3f) as u8;
        o[3] = ((w >> 18) & 0x3f) as u8;
    }
    let t = out.len() % 4;
    if t > 0 {
        let base = 3 * full;
        let nb = packed_len(t, 6);
        let mut w = 0u32;
        for (k, &b) in packed[base..base + nb].iter().enumerate() {
            w |= u32::from(b) << (8 * k);
        }
        for (k, o) in out[4 * full..].iter_mut().enumerate() {
            *o = ((w >> (6 * k)) & 0x3f) as u8;
        }
    }
}

/// Generic word-parallel pack for the remaining widths (1/2/3/5/7 bits): codes stream
/// into a u64 bit accumulator and whole bytes drain out, so the inner loop is branch-lean
/// (one conditional flush per code — the accumulator never holds more than 15 bits).
fn word_pack_generic(codes: &[u8], bits: u32, out: &mut [u8]) {
    let mask = (1u64 << bits) - 1;
    let mut acc = 0u64;
    let mut acc_bits = 0u32;
    let mut o = 0usize;
    for &c in codes {
        acc |= (u64::from(c) & mask) << acc_bits;
        acc_bits += bits;
        if acc_bits >= 8 {
            out[o] = acc as u8;
            o += 1;
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out[o] = acc as u8;
    }
}

/// Generic word-parallel unpack: bytes stream into a u64 window and codes shift out.
fn word_unpack_generic(packed: &[u8], bits: u32, out: &mut [u8]) {
    let mask = (1u64 << bits) - 1;
    let mut acc = 0u64;
    let mut acc_bits = 0u32;
    let mut idx = 0usize;
    for o in out.iter_mut() {
        if acc_bits < bits {
            acc |= u64::from(packed[idx]) << acc_bits;
            idx += 1;
            acc_bits += 8;
        }
        *o = (acc & mask) as u8;
        acc >>= bits;
        acc_bits -= bits;
    }
}

/// Vector 4-bit pack for the aligned prefix; returns the number of codes consumed (a
/// multiple of 32, so the remainder stays byte-aligned for the word tail).
#[cfg(target_arch = "x86_64")]
fn simd_pack4(codes: &[u8], out: &mut [u8], backend: KernelBackend) -> usize {
    let mut done = 0usize;
    if backend == KernelBackend::Avx2 && codes.len() >= 64 {
        let n = codes.len() & !63;
        // SAFETY: the Avx2 backend is only selected after `is_x86_feature_detected!("avx2")`
        // succeeded in `detect()`, and the slices are pre-cut to matching lengths.
        unsafe { x86::pack4_avx2(&codes[..n], &mut out[..n / 2]) };
        done = n;
    }
    if matches!(backend, KernelBackend::Avx2 | KernelBackend::Sse2) && codes.len() - done >= 32 {
        let n = (codes.len() - done) & !31;
        // SAFETY: SSE2 is unconditionally available on x86_64 (baseline ISA), and the
        // slices are pre-cut to matching lengths.
        unsafe { x86::pack4_sse2(&codes[done..done + n], &mut out[done / 2..(done + n) / 2]) };
        done += n;
    }
    done
}

/// Vector 4-bit unpack for the aligned prefix; returns the number of codes produced.
#[cfg(target_arch = "x86_64")]
fn simd_unpack4(packed: &[u8], out: &mut [u8], backend: KernelBackend) -> usize {
    let mut done = 0usize;
    if backend == KernelBackend::Avx2 && out.len() >= 64 {
        let n = out.len() & !63;
        // SAFETY: the Avx2 backend is only selected after `is_x86_feature_detected!("avx2")`
        // succeeded in `detect()`, and the slices are pre-cut to matching lengths.
        unsafe { x86::unpack4_avx2(&packed[..n / 2], &mut out[..n]) };
        done = n;
    }
    if matches!(backend, KernelBackend::Avx2 | KernelBackend::Sse2) && out.len() - done >= 32 {
        let n = (out.len() - done) & !31;
        // SAFETY: SSE2 is unconditionally available on x86_64 (baseline ISA), and the
        // slices are pre-cut to matching lengths.
        unsafe { x86::unpack4_sse2(&packed[done / 2..(done + n) / 2], &mut out[done..done + n]) };
        done += n;
    }
    done
}

#[cfg(target_arch = "aarch64")]
fn simd_pack4(codes: &[u8], out: &mut [u8], backend: KernelBackend) -> usize {
    if backend == KernelBackend::Neon && codes.len() >= 32 {
        let n = codes.len() & !31;
        // SAFETY: NEON is mandatory on aarch64, and the slices are pre-cut to matching
        // lengths.
        unsafe { neon::pack4_neon(&codes[..n], &mut out[..n / 2]) };
        n
    } else {
        let _ = out;
        0
    }
}

#[cfg(target_arch = "aarch64")]
fn simd_unpack4(packed: &[u8], out: &mut [u8], backend: KernelBackend) -> usize {
    if backend == KernelBackend::Neon && out.len() >= 32 {
        let n = out.len() & !31;
        // SAFETY: NEON is mandatory on aarch64, and the slices are pre-cut to matching
        // lengths.
        unsafe { neon::unpack4_neon(&packed[..n / 2], &mut out[..n]) };
        n
    } else {
        let _ = packed;
        0
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn simd_pack4(_codes: &[u8], _out: &mut [u8], _backend: KernelBackend) -> usize {
    0
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn simd_unpack4(_packed: &[u8], _out: &mut [u8], _backend: KernelBackend) -> usize {
    0
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2/AVX2 4-bit kernels. The layout invariant throughout: packed byte `k` holds
    //! codes `2k` (low nibble) and `2k+1` (high nibble), matching the scalar reference.

    use std::arch::x86_64::*;

    /// Packs code pairs into nibbles, 64 codes (two 256-bit loads) per iteration.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime. `codes.len()` must be a
    /// multiple of 64 with `out.len() == codes.len() / 2`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn pack4_avx2(codes: &[u8], out: &mut [u8]) {
        debug_assert!(codes.len().is_multiple_of(64) && out.len() * 2 == codes.len());
        let lownib = _mm256_set1_epi16(0x000f);
        let mut i = 0usize;
        while i + 64 <= codes.len() {
            // SAFETY: `i + 64 <= codes.len()` bounds both unaligned 32-byte loads.
            let (c0, c1) = unsafe {
                (
                    _mm256_loadu_si256(codes.as_ptr().add(i).cast()),
                    _mm256_loadu_si256(codes.as_ptr().add(i + 32).cast()),
                )
            };
            // Per u16 lane: low-nibble of the even byte | low-nibble of the odd byte << 4.
            let v0 = _mm256_or_si256(
                _mm256_and_si256(c0, lownib),
                _mm256_slli_epi16::<4>(_mm256_and_si256(_mm256_srli_epi16::<8>(c0), lownib)),
            );
            let v1 = _mm256_or_si256(
                _mm256_and_si256(c1, lownib),
                _mm256_slli_epi16::<4>(_mm256_and_si256(_mm256_srli_epi16::<8>(c1), lownib)),
            );
            // packus interleaves 128-bit lanes of v0/v1; the qword permute restores
            // sequential byte order (v0.lane0, v0.lane1, v1.lane0, v1.lane1).
            let packed = _mm256_packus_epi16(v0, v1);
            let packed = _mm256_permute4x64_epi64::<0b11_01_10_00>(packed);
            // SAFETY: `out.len() == codes.len() / 2`, so `i / 2 + 32 <= out.len()`.
            unsafe { _mm256_storeu_si256(out.as_mut_ptr().add(i / 2).cast(), packed) };
            i += 64;
        }
    }

    /// Unpacks nibbles into code bytes, 32 packed bytes (64 codes) per iteration.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime. `out.len()` must be a
    /// multiple of 64 with `packed.len() == out.len() / 2`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn unpack4_avx2(packed: &[u8], out: &mut [u8]) {
        debug_assert!(out.len().is_multiple_of(64) && packed.len() * 2 == out.len());
        let lownib = _mm256_set1_epi8(0x0f);
        let mut i = 0usize;
        while i + 32 <= packed.len() {
            // SAFETY: `i + 32 <= packed.len()` bounds the unaligned 32-byte load.
            let v = unsafe { _mm256_loadu_si256(packed.as_ptr().add(i).cast()) };
            let lo = _mm256_and_si256(v, lownib);
            let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), lownib);
            // Byte interleave happens within 128-bit lanes; the cross-lane permutes
            // reassemble codes 0..31 and 32..63 in order.
            let a = _mm256_unpacklo_epi8(lo, hi);
            let b = _mm256_unpackhi_epi8(lo, hi);
            let first = _mm256_permute2x128_si256::<0x20>(a, b);
            let second = _mm256_permute2x128_si256::<0x31>(a, b);
            // SAFETY: `out.len() == 2 * packed.len()`, so `2 * i + 64 <= out.len()`.
            unsafe {
                _mm256_storeu_si256(out.as_mut_ptr().add(2 * i).cast(), first);
                _mm256_storeu_si256(out.as_mut_ptr().add(2 * i + 32).cast(), second);
            }
            i += 32;
        }
    }

    /// Packs code pairs into nibbles, 32 codes (two 128-bit loads) per iteration.
    ///
    /// # Safety
    ///
    /// SSE2 is baseline on x86_64 so the target feature always holds; `codes.len()` must
    /// be a multiple of 32 with `out.len() == codes.len() / 2`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn pack4_sse2(codes: &[u8], out: &mut [u8]) {
        debug_assert!(codes.len().is_multiple_of(32) && out.len() * 2 == codes.len());
        let lownib = _mm_set1_epi16(0x000f);
        let mut i = 0usize;
        while i + 32 <= codes.len() {
            // SAFETY: `i + 32 <= codes.len()` bounds both unaligned 16-byte loads.
            let (c0, c1) = unsafe {
                (_mm_loadu_si128(codes.as_ptr().add(i).cast()), _mm_loadu_si128(codes.as_ptr().add(i + 16).cast()))
            };
            let v0 = _mm_or_si128(
                _mm_and_si128(c0, lownib),
                _mm_slli_epi16::<4>(_mm_and_si128(_mm_srli_epi16::<8>(c0), lownib)),
            );
            let v1 = _mm_or_si128(
                _mm_and_si128(c1, lownib),
                _mm_slli_epi16::<4>(_mm_and_si128(_mm_srli_epi16::<8>(c1), lownib)),
            );
            let packed = _mm_packus_epi16(v0, v1);
            // SAFETY: `out.len() == codes.len() / 2`, so `i / 2 + 16 <= out.len()`.
            unsafe { _mm_storeu_si128(out.as_mut_ptr().add(i / 2).cast(), packed) };
            i += 32;
        }
    }

    /// Unpacks nibbles into code bytes, 16 packed bytes (32 codes) per iteration.
    ///
    /// # Safety
    ///
    /// SSE2 is baseline on x86_64 so the target feature always holds; `out.len()` must be
    /// a multiple of 32 with `packed.len() == out.len() / 2`.
    #[target_feature(enable = "sse2")]
    pub unsafe fn unpack4_sse2(packed: &[u8], out: &mut [u8]) {
        debug_assert!(out.len().is_multiple_of(32) && packed.len() * 2 == out.len());
        let lownib = _mm_set1_epi8(0x0f);
        let mut i = 0usize;
        while i + 16 <= packed.len() {
            // SAFETY: `i + 16 <= packed.len()` bounds the unaligned 16-byte load.
            let v = unsafe { _mm_loadu_si128(packed.as_ptr().add(i).cast()) };
            let lo = _mm_and_si128(v, lownib);
            let hi = _mm_and_si128(_mm_srli_epi16::<4>(v), lownib);
            let a = _mm_unpacklo_epi8(lo, hi);
            let b = _mm_unpackhi_epi8(lo, hi);
            // SAFETY: `out.len() == 2 * packed.len()`, so `2 * i + 32 <= out.len()`.
            unsafe {
                _mm_storeu_si128(out.as_mut_ptr().add(2 * i).cast(), a);
                _mm_storeu_si128(out.as_mut_ptr().add(2 * i + 16).cast(), b);
            }
            i += 16;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON 4-bit kernels; `vld2`/`vst2` do the even/odd (de)interleave in hardware.

    use std::arch::aarch64::*;

    /// Packs code pairs into nibbles, 32 codes per iteration.
    ///
    /// # Safety
    ///
    /// NEON is mandatory on aarch64 so the target feature always holds; `codes.len()`
    /// must be a multiple of 32 with `out.len() == codes.len() / 2`.
    #[target_feature(enable = "neon")]
    pub unsafe fn pack4_neon(codes: &[u8], out: &mut [u8]) {
        debug_assert!(codes.len().is_multiple_of(32) && out.len() * 2 == codes.len());
        let mut i = 0usize;
        while i + 32 <= codes.len() {
            // SAFETY: `i + 32 <= codes.len()` bounds the 32-byte deinterleaving load.
            let pair = unsafe { vld2q_u8(codes.as_ptr().add(i)) };
            let even = vandq_u8(pair.0, vdupq_n_u8(0x0f));
            let merged = vorrq_u8(even, vshlq_n_u8::<4>(pair.1));
            // SAFETY: `out.len() == codes.len() / 2`, so `i / 2 + 16 <= out.len()`.
            unsafe { vst1q_u8(out.as_mut_ptr().add(i / 2), merged) };
            i += 32;
        }
    }

    /// Unpacks nibbles into code bytes, 16 packed bytes (32 codes) per iteration.
    ///
    /// # Safety
    ///
    /// NEON is mandatory on aarch64 so the target feature always holds; `out.len()` must
    /// be a multiple of 32 with `packed.len() == out.len() / 2`.
    #[target_feature(enable = "neon")]
    pub unsafe fn unpack4_neon(packed: &[u8], out: &mut [u8]) {
        debug_assert!(out.len().is_multiple_of(32) && packed.len() * 2 == out.len());
        let mut i = 0usize;
        while i + 16 <= packed.len() {
            // SAFETY: `i + 16 <= packed.len()` bounds the 16-byte load.
            let v = unsafe { vld1q_u8(packed.as_ptr().add(i)) };
            let lo = vandq_u8(v, vdupq_n_u8(0x0f));
            let hi = vshrq_n_u8::<4>(v);
            // SAFETY: `out.len() == 2 * packed.len()`, so `2 * i + 32 <= out.len()`.
            unsafe { vst2q_u8(out.as_mut_ptr().add(2 * i), uint8x16x2_t(lo, hi)) };
            i += 16;
        }
    }
}

const NUM_ELEMENT_TYPES: usize = 7;

fn type_index(element: ElementType) -> usize {
    match element {
        ElementType::E2M1 => 0,
        ElementType::E2M3 => 1,
        ElementType::E3M2 => 2,
        ElementType::E4M3 => 3,
        ElementType::E5M2 => 4,
        ElementType::Int8 => 5,
        ElementType::Int4 => 6,
    }
}

static DECODE_TABLES: [OnceLock<[f32; 256]>; NUM_ELEMENT_TYPES] = [const { OnceLock::new() }; NUM_ELEMENT_TYPES];
static BM_DECODE_TABLES: [OnceLock<[f32; 256]>; NUM_ELEMENT_TYPES] = [const { OnceLock::new() }; NUM_ELEMENT_TYPES];

fn build_table(element: ElementType, bm: bool) -> [f32; 256] {
    let mut table = [0.0f32; 256];
    for (code, slot) in table.iter_mut().enumerate() {
        let c = code as u8;
        *slot = if bm {
            minifloat::decode_bm_extended(element, c)
        } else if element.is_int() {
            minifloat::decode_int(element, c)
        } else {
            minifloat::decode_fp(element, c)
        };
    }
    table
}

/// The 256-entry decode table for ordinary (non-block-max) codes of `element`: entry `c`
/// is exactly `decode_int`/`decode_fp` of `c`, bit for bit, built once per process.
#[must_use]
pub fn decode_table(element: ElementType) -> &'static [f32; 256] {
    DECODE_TABLES[type_index(element)].get_or_init(|| build_table(element, false))
}

/// The 256-entry decode table for the MX+ block-max slot: entry `c` is exactly
/// `decode_bm_extended` of `c`.
#[must_use]
pub fn bm_decode_table(element: ElementType) -> &'static [f32; 256] {
    BM_DECODE_TABLES[type_index(element)].get_or_init(|| build_table(element, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that flip the global force-scalar switch; concurrent kernel
    /// *outputs* are identical either way, but backend-identity assertions are not.
    static FORCE_LOCK: Mutex<()> = Mutex::new(());

    fn sample_codes(n: usize, bits: u32) -> Vec<u8> {
        let mask = ((1u16 << bits) - 1) as u8;
        (0..n).map(|i| ((i * 167 + 13) % 256) as u8 & mask).collect()
    }

    #[test]
    fn word_paths_match_scalar_for_every_width_and_length() {
        for bits in 1..=8u32 {
            for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 33, 63, 64, 65, 67, 100, 129] {
                let codes = sample_codes(n, bits);
                let nb = packed_len(n, bits);
                let mut reference = vec![0u8; nb];
                scalar_pack(&codes, bits, &mut reference);
                let mut packed = vec![0xaa_u8; nb];
                match bits {
                    4 => word_pack4(&codes, &mut packed),
                    6 => word_pack6(&codes, &mut packed),
                    8 => packed.copy_from_slice(&codes),
                    _ => word_pack_generic(&codes, bits, &mut packed),
                }
                assert_eq!(packed, reference, "pack bits {bits} len {n}");
                let mut decoded = vec![0xaa_u8; n];
                match bits {
                    4 => word_unpack4(&packed, &mut decoded),
                    6 => word_unpack6(&packed, &mut decoded),
                    8 => decoded.copy_from_slice(&packed),
                    _ => word_unpack_generic(&packed, bits, &mut decoded),
                }
                assert_eq!(decoded, codes, "unpack bits {bits} len {n}");
            }
        }
    }

    #[test]
    fn dispatched_paths_match_scalar_for_every_width_and_length() {
        for bits in 1..=8u32 {
            for n in [0usize, 1, 5, 16, 31, 32, 33, 63, 64, 65, 96, 127, 128, 200, 1024, 1031] {
                let codes = sample_codes(n, bits);
                let nb = packed_len(n, bits);
                let mut reference = vec![0u8; nb];
                pack_codes_into_scalar(&codes, bits, &mut reference);
                let mut packed = vec![0xaa_u8; nb];
                pack_codes_into(&codes, bits, &mut packed);
                assert_eq!(packed, reference, "pack bits {bits} len {n} backend {:?}", active_backend());
                let mut decoded = vec![0xaa_u8; n];
                unpack_codes_into(&packed, bits, &mut decoded);
                let mut decoded_ref = vec![0u8; n];
                unpack_codes_into_scalar(&reference, bits, &mut decoded_ref);
                assert_eq!(decoded, decoded_ref, "unpack bits {bits} len {n}");
                assert_eq!(decoded, codes, "round trip bits {bits} len {n}");
            }
        }
    }

    #[test]
    fn pack_masks_out_of_range_codes_exactly_like_scalar() {
        // The pack contract masks each code to its width; dispatched paths must drop the
        // same high bits the scalar reference drops.
        for bits in 1..=8u32 {
            let codes: Vec<u8> = (0..=255u8).collect();
            let nb = packed_len(codes.len(), bits);
            let mut reference = vec![0u8; nb];
            pack_codes_into_scalar(&codes, bits, &mut reference);
            let mut packed = vec![0u8; nb];
            pack_codes_into(&codes, bits, &mut packed);
            assert_eq!(packed, reference, "bits {bits}");
        }
    }

    #[test]
    fn force_scalar_switch_selects_the_scalar_backend() {
        let _guard = FORCE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let auto = active_backend();
        force_scalar(true);
        assert_eq!(active_backend(), KernelBackend::Scalar);
        assert!(scalar_forced());
        force_scalar(false);
        assert_eq!(active_backend(), auto);
    }

    #[test]
    fn detected_backend_matches_the_target_isa() {
        let _guard = FORCE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        force_scalar(false);
        let backend = active_backend();
        #[cfg(target_arch = "x86_64")]
        assert!(matches!(backend, KernelBackend::Avx2 | KernelBackend::Sse2 | KernelBackend::Scalar));
        #[cfg(target_arch = "aarch64")]
        assert!(matches!(backend, KernelBackend::Neon | KernelBackend::Scalar));
        assert!(!backend.name().is_empty());
    }

    #[test]
    fn decode_tables_are_bit_identical_to_the_decoders() {
        for element in [
            ElementType::E2M1,
            ElementType::E2M3,
            ElementType::E3M2,
            ElementType::E4M3,
            ElementType::E5M2,
            ElementType::Int8,
            ElementType::Int4,
        ] {
            let table = decode_table(element);
            let bm_table = bm_decode_table(element);
            for code in 0..=255u8 {
                let direct = if element.is_int() {
                    minifloat::decode_int(element, code)
                } else {
                    minifloat::decode_fp(element, code)
                };
                assert_eq!(table[usize::from(code)].to_bits(), direct.to_bits(), "{element:?} code {code}");
                let direct_bm = minifloat::decode_bm_extended(element, code);
                assert_eq!(bm_table[usize::from(code)].to_bits(), direct_bm.to_bits(), "{element:?} bm code {code}");
            }
        }
    }

    #[test]
    fn packed_len_matches_bit_arithmetic() {
        assert_eq!(packed_len(32, 4), 16);
        assert_eq!(packed_len(32, 6), 24);
        assert_eq!(packed_len(5, 4), 3);
        assert_eq!(packed_len(1, 1), 1);
        assert_eq!(packed_len(0, 7), 0);
    }
}
