//! Quantization-error metrics used throughout the paper's analysis (Figures 4 and 5).

use crate::block::{MxBlock, BLOCK_SIZE};
use crate::element::ElementType;

/// Mean squared error between a reference and a quantized slice.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn mse(reference: &[f32], quantized: &[f32]) -> f64 {
    assert_eq!(reference.len(), quantized.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty input");
    reference
        .iter()
        .zip(quantized)
        .map(|(a, b)| {
            let d = f64::from(a - b);
            d * d
        })
        .sum::<f64>()
        / reference.len() as f64
}

/// Root mean squared error.
#[must_use]
pub fn rmse(reference: &[f32], quantized: &[f32]) -> f64 {
    mse(reference, quantized).sqrt()
}

/// Maximum absolute elementwise error.
#[must_use]
pub fn max_abs_error(reference: &[f32], quantized: &[f32]) -> f32 {
    assert_eq!(reference.len(), quantized.len(), "length mismatch");
    reference.iter().zip(quantized).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
}

/// Signal-to-quantization-noise ratio in decibels: `10 log10(signal power / error power)`.
///
/// Returns `f64::INFINITY` when a non-zero signal is quantized exactly, and `0.0` for the
/// degenerate all-zero case (zero signal, zero noise), where no ratio is defined and the
/// neutral value keeps downstream averages finite.
#[must_use]
pub fn sqnr_db(reference: &[f32], quantized: &[f32]) -> f64 {
    let signal: f64 = reference.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
    let noise: f64 = reference
        .iter()
        .zip(quantized)
        .map(|(a, b)| {
            let d = f64::from(a - b);
            d * d
        })
        .sum();
    if noise == 0.0 {
        if signal == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Per-block error attribution used to reproduce Figure 5: how much of the total MSE is
/// contributed by the block-max elements versus by the elements with the largest error in
/// each block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MseAttribution {
    /// Total mean squared error over the tensor.
    pub total_mse: f64,
    /// Fraction (0..=1) of the total squared error contributed by the block-max element of
    /// every block.
    pub bm_fraction: f64,
    /// Fraction (0..=1) of the total squared error contributed by the single largest-error
    /// element of every block.
    pub largest_error_fraction: f64,
}

/// Computes the Figure 5 attribution for a row quantized with the given MX element type.
///
/// The row is split into blocks of `block_size`; each block is quantized with plain MX and
/// the squared error of (a) the block-max element and (b) the element with the largest
/// error is accumulated and reported as a fraction of the total squared error.
#[must_use]
pub fn bm_mse_attribution(element: ElementType, block_size: usize, values: &[f32]) -> MseAttribution {
    assert!(block_size > 0, "block size must be positive");
    let mut total_sq = 0.0_f64;
    let mut bm_sq = 0.0_f64;
    let mut largest_sq = 0.0_f64;
    for chunk in values.chunks(block_size) {
        let block = MxBlock::quantize(element, chunk);
        let deq = block.dequantize();
        let bm = MxBlock::block_max_index(chunk);
        let mut block_largest = 0.0_f64;
        for (i, (&x, &q)) in chunk.iter().zip(&deq).enumerate() {
            let sq = f64::from(x - q) * f64::from(x - q);
            total_sq += sq;
            if i == bm {
                bm_sq += sq;
            }
            if sq > block_largest {
                block_largest = sq;
            }
        }
        largest_sq += block_largest;
    }
    if total_sq == 0.0 {
        return MseAttribution::default();
    }
    MseAttribution {
        total_mse: total_sq / values.len() as f64,
        bm_fraction: bm_sq / total_sq,
        largest_error_fraction: largest_sq / total_sq,
    }
}

/// Identifies outliers with the 3-sigma rule used by the paper (following OliVe):
/// returns the indices of elements whose magnitude exceeds `mean(|x|) + 3 * std(|x|)`.
#[must_use]
pub fn three_sigma_outliers(values: &[f32]) -> Vec<usize> {
    if values.is_empty() {
        return Vec::new();
    }
    let n = values.len() as f64;
    let mean = values.iter().map(|&v| f64::from(v.abs())).sum::<f64>() / n;
    let var = values
        .iter()
        .map(|&v| {
            let d = f64::from(v.abs()) - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let threshold = mean + 3.0 * var.sqrt();
    values.iter().enumerate().filter(|(_, &v)| f64::from(v.abs()) > threshold).map(|(i, _)| i).collect()
}

/// Summary of outlier structure in a (tokens x channels) activation matrix, used by the
/// channel-reordering analysis (Section 8.3).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OutlierStats {
    /// Number of outliers detected per channel.
    pub per_channel_counts: Vec<usize>,
    /// Total number of outliers.
    pub total: usize,
    /// Fraction of 32-element blocks (row-major blocking) that contain at least one outlier.
    pub blocks_with_outliers: f64,
    /// Among outlier-containing blocks, the fraction that contain more than one outlier.
    pub multi_outlier_block_fraction: f64,
}

/// Computes [`OutlierStats`] for a row-major `rows x cols` matrix.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
#[must_use]
pub fn outlier_stats(data: &[f32], rows: usize, cols: usize) -> OutlierStats {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    let outliers = three_sigma_outliers(data);
    let mut per_channel = vec![0usize; cols];
    for &idx in &outliers {
        per_channel[idx % cols] += 1;
    }
    let mut blocks_with = 0usize;
    let mut blocks_multi = 0usize;
    let mut total_blocks = 0usize;
    let outlier_set: std::collections::HashSet<usize> = outliers.iter().copied().collect();
    for r in 0..rows {
        for block_start in (0..cols).step_by(BLOCK_SIZE) {
            total_blocks += 1;
            let count = (block_start..(block_start + BLOCK_SIZE).min(cols))
                .filter(|c| outlier_set.contains(&(r * cols + c)))
                .count();
            if count > 0 {
                blocks_with += 1;
            }
            if count > 1 {
                blocks_multi += 1;
            }
        }
    }
    OutlierStats {
        per_channel_counts: per_channel,
        total: outliers.len(),
        blocks_with_outliers: if total_blocks == 0 { 0.0 } else { blocks_with as f64 / total_blocks as f64 },
        multi_outlier_block_fraction: if blocks_with == 0 { 0.0 } else { blocks_multi as f64 / blocks_with as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_rmse_basics() {
        let a = [1.0_f32, 2.0, 3.0];
        let b = [1.0_f32, 2.0, 5.0];
        assert!((mse(&a, &b) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&a, &b) - (4.0_f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(max_abs_error(&a, &b), 2.0);
    }

    #[test]
    fn sqnr_infinite_for_exact() {
        let a = [1.0_f32, -2.0, 0.5];
        assert_eq!(sqnr_db(&a, &a), f64::INFINITY);
        let b = [1.1_f32, -2.0, 0.5];
        assert!(sqnr_db(&a, &b).is_finite());
    }

    #[test]
    fn sqnr_zero_for_all_zero_rows() {
        // An all-zero row quantizes exactly under every block scheme (zero-block scale);
        // 0/0 must report the neutral 0.0 dB, not +inf.
        let zeros = [0.0_f32; 64];
        assert_eq!(sqnr_db(&zeros, &zeros), 0.0);
        // A zero signal with non-zero noise is all noise: -inf dB.
        let mut noisy = [0.0_f32; 64];
        noisy[3] = 0.25;
        assert_eq!(sqnr_db(&zeros, &noisy), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_panics_on_length_mismatch() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn bm_attribution_dominates_with_outliers_figure_5() {
        // Activation-like rows with strong channel outliers: the BM elements contribute a
        // large share of the MSE under MXFP4 (the paper reports ~60-90%).
        let values: Vec<f32> = (0..2048)
            .map(|i| {
                let u = ((i * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0;
                let v = u * u * u * 0.5;
                if i % 32 == 13 {
                    (8.0 + u.abs() * 6.0) * u.signum()
                } else {
                    v
                }
            })
            .collect();
        let attr = bm_mse_attribution(ElementType::E2M1, BLOCK_SIZE, &values);
        assert!(attr.bm_fraction > 0.4, "BM fraction {}", attr.bm_fraction);
        // The largest-error element is at least as big a contributor as the BM element.
        assert!(attr.largest_error_fraction >= attr.bm_fraction - 1e-12);
        assert!(attr.largest_error_fraction <= 1.0 + 1e-12);
    }

    #[test]
    fn bm_attribution_zero_for_exact_quantization() {
        // Values already on the E2M1 grid with a power-of-two max quantize exactly.
        let values = vec![0.5_f32, 1.0, 2.0, 4.0];
        let attr = bm_mse_attribution(ElementType::E2M1, 4, &values);
        assert_eq!(attr.total_mse, 0.0);
        assert_eq!(attr.bm_fraction, 0.0);
    }

    #[test]
    fn three_sigma_finds_planted_outliers() {
        let mut values = vec![0.1_f32; 256];
        values[17] = 9.0;
        values[101] = -12.0;
        let out = three_sigma_outliers(&values);
        assert_eq!(out, vec![17, 101]);
    }

    #[test]
    fn three_sigma_empty_and_uniform() {
        assert!(three_sigma_outliers(&[]).is_empty());
        assert!(three_sigma_outliers(&[0.5; 64]).is_empty());
    }

    #[test]
    fn outlier_stats_channel_concentration() {
        // 8 tokens x 64 channels with outliers always in channel 5.
        let rows = 8;
        let cols = 64;
        let mut data = vec![0.05_f32; rows * cols];
        for r in 0..rows {
            data[r * cols + 5] = 20.0;
        }
        let stats = outlier_stats(&data, rows, cols);
        assert_eq!(stats.total, rows);
        assert_eq!(stats.per_channel_counts[5], rows);
        assert!(stats.per_channel_counts.iter().enumerate().all(|(c, &n)| c == 5 || n == 0));
        // Outliers land in the first of the two 32-channel blocks of every row.
        assert!((stats.blocks_with_outliers - 0.5).abs() < 1e-12);
        assert_eq!(stats.multi_outlier_block_fraction, 0.0);
    }

    #[test]
    fn outlier_stats_multi_outlier_blocks() {
        let rows = 4;
        let cols = 32;
        let mut data = vec![0.02_f32; rows * cols];
        for r in 0..rows {
            data[r * cols + 3] = 15.0;
            data[r * cols + 9] = -18.0;
        }
        let stats = outlier_stats(&data, rows, cols);
        assert_eq!(stats.multi_outlier_block_fraction, 1.0);
    }
}
