//! Scalar codecs for the low-bit element data types.
//!
//! These functions convert between `f32` and the raw bit codes of each
//! [`ElementType`](crate::ElementType), using round-to-nearest-even and saturation
//! semantics, exactly as the MX block codecs require. They are deliberately scalar and
//! branch-heavy rather than table-driven so that every rounding decision is visible and
//! testable; the block codecs compose them.

use crate::element::ElementType;

/// Encodes `x` into the raw bit code of the floating-point element type `et`.
///
/// Rounding is round-to-nearest-even. Values whose magnitude exceeds the largest finite
/// representable value saturate to it (MX conversions never generate Inf/NaN). NaN inputs
/// encode as the canonical NaN for types that have one (E4M3, E5M2) and as zero otherwise.
///
/// # Panics
///
/// Panics if `et` is an integer element type; use [`encode_int`] for those.
#[must_use]
pub fn encode_fp(et: ElementType, x: f32) -> u8 {
    assert!(!et.is_int(), "encode_fp called with integer element type {et}");
    let man_bits = et.man_bits();
    let exp_bits = et.exp_bits();
    let bias = et.bias();
    let sign_bit = u8::from(x.is_sign_negative()) << (exp_bits + man_bits);

    if x.is_nan() {
        return if et.has_nan() { nan_code(et) } else { 0 };
    }
    let a = x.abs();
    if a == 0.0 {
        return sign_bit;
    }
    if a >= et.max_normal() {
        return sign_bit | max_finite_code(et);
    }

    // Below the normal range: encode as a subnormal (no implicit leading one).
    let min_normal = et.min_normal();
    if a < min_normal {
        let ulp = et.min_subnormal();
        let m = (a / ulp).round_ties_even() as u32;
        if m == 0 {
            return sign_bit;
        }
        if m >= (1 << man_bits) {
            // Rounded up into the normal range: exponent field 1, mantissa 0.
            return sign_bit | (1 << man_bits);
        }
        return sign_bit | (m as u8);
    }

    // Normal range.
    let mut e = a.log2().floor() as i32;
    // Guard against log2 landing exactly on a power-of-two boundary from below.
    if a < (2.0_f32).powi(e) {
        e -= 1;
    } else if a >= (2.0_f32).powi(e + 1) {
        e += 1;
    }
    let scale = (2.0_f32).powi(e);
    let frac = ((a / scale - 1.0) * (1u32 << man_bits) as f32).round_ties_even() as u32;
    let (mut e, mut frac) = (e, frac);
    if frac >= (1 << man_bits) {
        e += 1;
        frac = 0;
    }
    if e > et.emax() || (e == et.emax() && frac > (max_finite_code(et) & man_mask(et)) as u32) {
        return sign_bit | max_finite_code(et);
    }
    let exp_field = (e + bias) as u8;
    sign_bit | (exp_field << man_bits) | frac as u8
}

/// Decodes a raw element code of floating-point type `et` back to `f32`.
///
/// Codes with bits above the element width are ignored (masked off).
///
/// # Panics
///
/// Panics if `et` is an integer element type; use [`decode_int`] for those.
#[must_use]
pub fn decode_fp(et: ElementType, code: u8) -> f32 {
    assert!(!et.is_int(), "decode_fp called with integer element type {et}");
    let man_bits = et.man_bits();
    let exp_bits = et.exp_bits();
    let bias = et.bias();
    let code = code & (((1u16 << et.bits()) - 1) as u8);

    let sign = if code >> (exp_bits + man_bits) & 1 == 1 { -1.0 } else { 1.0 };
    let exp_field = (code >> man_bits) & (((1u16 << exp_bits) - 1) as u8);
    let man_field = code & (((1u16 << man_bits) - 1) as u8);

    // Special values for the 8-bit types.
    if et == ElementType::E5M2 && exp_field == (1 << exp_bits) - 1 {
        return if man_field == 0 { sign * f32::INFINITY } else { f32::NAN };
    }
    if et == ElementType::E4M3 && exp_field == (1 << exp_bits) - 1 && man_field == (1 << man_bits) - 1 {
        return f32::NAN;
    }

    let man_den = (1u32 << man_bits) as f32;
    if exp_field == 0 {
        // Subnormal: no implicit leading one.
        sign * (man_field as f32 / man_den) * (2.0_f32).powi(1 - bias)
    } else {
        sign * (1.0 + man_field as f32 / man_den) * (2.0_f32).powi(exp_field as i32 - bias)
    }
}

/// Quantizes `x` to the floating-point element type `et` and returns the representable
/// value (an encode/decode round trip).
#[must_use]
pub fn quantize_fp(et: ElementType, x: f32) -> f32 {
    decode_fp(et, encode_fp(et, x))
}

/// Encodes `x` into the two's-complement code of the integer element type `et`.
///
/// The fixed-point interpretation is `value = int * 2^-man_bits`; the integer is clamped
/// symmetrically to `±(2^(bits-1) - 1)` as in the MXINT8 definition.
///
/// # Panics
///
/// Panics if `et` is a floating-point element type.
#[must_use]
pub fn encode_int(et: ElementType, x: f32) -> u8 {
    assert!(et.is_int(), "encode_int called with floating-point element type {et}");
    let bits = et.bits();
    let max_int = (1i32 << (bits - 1)) - 1;
    let scaled = (x * (1u32 << et.man_bits()) as f32).round_ties_even();
    let clamped = if scaled.is_nan() { 0 } else { scaled.clamp(-(max_int as f32), max_int as f32) as i32 };
    (clamped as u32 & ((1u32 << bits) - 1)) as u8
}

/// Decodes a two's-complement integer element code back to `f32`.
///
/// # Panics
///
/// Panics if `et` is a floating-point element type.
#[must_use]
pub fn decode_int(et: ElementType, code: u8) -> f32 {
    assert!(et.is_int(), "decode_int called with floating-point element type {et}");
    let bits = et.bits();
    let raw = u32::from(code) & ((1 << bits) - 1);
    // Sign extend.
    let value = if raw & (1 << (bits - 1)) != 0 { (raw as i32) - (1 << bits) } else { raw as i32 };
    value as f32 / (1u32 << et.man_bits()) as f32
}

/// Quantizes `x` to the integer element type `et` (encode/decode round trip).
#[must_use]
pub fn quantize_int(et: ElementType, x: f32) -> f32 {
    decode_int(et, encode_int(et, x))
}

/// Quantizes `x` with whichever codec matches the element type.
#[must_use]
pub fn quantize(et: ElementType, x: f32) -> f32 {
    if et.is_int() {
        quantize_int(et, x)
    } else {
        quantize_fp(et, x)
    }
}

/// Encodes the *block-max* element under the MX+ extension.
///
/// `scaled_abs` is the magnitude of the BM element *after* division by the shared scale.
/// For floating-point element types it lies in `[2^emax, 2^(emax+1))` by construction of
/// Equation 1; the exponent is therefore implicit and the value is stored as a pure
/// extended mantissa of [`ElementType::plus_bm_man_bits`] bits (Figure 7: E0M3/E0M5/E0M7).
/// For the integer element types the scaled magnitude lies in `[1, 2)` and the always-one
/// integer bit is made implicit (Section 8.2).
///
/// Returns the `(code, sign)` pair where `code` has exactly `plus_bm_man_bits` significant
/// bits. Out-of-range inputs saturate.
#[must_use]
pub fn encode_bm_extended(et: ElementType, scaled_abs: f32, negative: bool) -> u8 {
    let k = et.plus_bm_man_bits();
    let base = if et.is_int() { 1.0 } else { (2.0_f32).powi(et.emax()) };
    let frac = ((scaled_abs / base - 1.0) * (1u32 << k) as f32).round_ties_even();
    let m = if frac.is_nan() { 0 } else { frac.clamp(0.0, ((1u32 << k) - 1) as f32) as u32 };
    let sign_bit = u8::from(negative) << k;
    sign_bit | m as u8
}

/// Decodes an MX+ block-max code produced by [`encode_bm_extended`] back to the scaled
/// magnitude (still relative to the shared scale), with the sign applied.
#[must_use]
pub fn decode_bm_extended(et: ElementType, code: u8) -> f32 {
    let k = et.plus_bm_man_bits();
    let base = if et.is_int() { 1.0 } else { (2.0_f32).powi(et.emax()) };
    let sign = if code >> k & 1 == 1 { -1.0 } else { 1.0 };
    let m = u32::from(code) & ((1 << k) - 1);
    sign * base * (1.0 + m as f32 / (1u32 << k) as f32)
}

/// The largest finite code (positive sign) for a floating-point element type.
#[must_use]
pub fn max_finite_code(et: ElementType) -> u8 {
    match et {
        // No NaN: all bits set below the sign are the max finite value.
        ElementType::E2M1 | ElementType::E2M3 | ElementType::E3M2 => {
            ((1u16 << (et.exp_bits() + et.man_bits())) - 1) as u8
        }
        // E4M3: S.1111.111 is NaN, so the max finite is S.1111.110.
        ElementType::E4M3 => 0x7e,
        // E5M2: S.11111.xx are Inf/NaN, so the max finite is S.11110.11.
        ElementType::E5M2 => 0x7b,
        ElementType::Int8 => 0x7f,
        ElementType::Int4 => 0x07,
    }
}

/// The canonical NaN code for element types that have one.
#[must_use]
pub fn nan_code(et: ElementType) -> u8 {
    match et {
        ElementType::E4M3 => 0x7f,
        ElementType::E5M2 => 0x7e,
        _ => 0,
    }
}

fn man_mask(et: ElementType) -> u8 {
    ((1u16 << et.man_bits()) - 1) as u8
}

/// Enumerates every representable non-negative value of a floating-point element type,
/// in increasing order. Useful for exhaustive tests and for the quantization-grid
/// analysis in the paper's Section 3.2.
#[must_use]
pub fn positive_grid(et: ElementType) -> Vec<f32> {
    assert!(!et.is_int());
    let mut out = Vec::new();
    for code in 0..(1u16 << (et.bits() - 1)) {
        let v = decode_fp(et, code as u8);
        if v.is_finite() {
            out.push(v);
        }
    }
    // total_cmp orders finite floats identically to partial_cmp, without the NaN escape
    // hatch (the is_finite filter above already excludes NaN anyway).
    out.sort_by(f32::total_cmp);
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP_TYPES: [ElementType; 5] = ElementType::FP_TYPES;

    #[test]
    fn zero_round_trips() {
        for et in FP_TYPES {
            assert_eq!(quantize_fp(et, 0.0), 0.0);
            assert_eq!(quantize_fp(et, -0.0), 0.0);
        }
        assert_eq!(quantize_int(ElementType::Int8, 0.0), 0.0);
    }

    #[test]
    fn representable_values_round_trip_exactly() {
        for et in FP_TYPES {
            for v in positive_grid(et) {
                assert_eq!(quantize_fp(et, v), v, "{et} value {v}");
                assert_eq!(quantize_fp(et, -v), -v, "{et} value -{v}");
            }
        }
    }

    #[test]
    fn e2m1_grid_matches_spec() {
        // E2M1 representable magnitudes: 0, 0.5, 1, 1.5, 2, 3, 4, 6.
        let grid = positive_grid(ElementType::E2M1);
        assert_eq!(grid, vec![0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn e2m3_grid_extremes() {
        let grid = positive_grid(ElementType::E2M3);
        assert_eq!(grid.len(), 32);
        assert_eq!(*grid.last().unwrap(), 7.5);
        assert_eq!(grid[1], 0.125); // smallest subnormal 2^(1-1-3)
    }

    #[test]
    fn saturation_to_max_normal() {
        for et in FP_TYPES {
            assert_eq!(quantize_fp(et, 1e30), et.max_normal());
            assert_eq!(quantize_fp(et, -1e30), -et.max_normal());
        }
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // In E2M1 the grid around 1.0 is {1.0, 1.5}: 1.25 is a tie and must go to even
        // mantissa (1.0, whose mantissa bit is 0).
        assert_eq!(quantize_fp(ElementType::E2M1, 1.25), 1.0);
        // 1.75 ties between 1.5 and 2.0 -> 2.0 (mantissa 0 at the next exponent).
        assert_eq!(quantize_fp(ElementType::E2M1, 1.75), 2.0);
        // 2.5 ties between 2 and 3 -> 2 (even mantissa).
        assert_eq!(quantize_fp(ElementType::E2M1, 2.5), 2.0);
        // 5.0 ties between 4 and 6 -> 4.
        assert_eq!(quantize_fp(ElementType::E2M1, 5.0), 4.0);
    }

    #[test]
    fn rounding_never_moves_more_than_half_ulp_for_normals() {
        let et = ElementType::E4M3;
        for i in 0..2000 {
            // Stay within the normal range (above min_normal = 2^-6).
            let x = 0.05 * i as f32 + 0.03;
            if x >= et.max_normal() {
                break;
            }
            let q = quantize_fp(et, x);
            let e = q.abs().log2().floor() as i32;
            let ulp = (2.0_f32).powi(e - et.man_bits() as i32);
            assert!((q - x).abs() <= ulp * 0.5 + 1e-7, "x={x} q={q} ulp={ulp}");
        }
    }

    #[test]
    fn subnormals_flush_and_round_correctly() {
        let et = ElementType::E2M1;
        // min subnormal is 0.5; 0.24 rounds to 0, 0.26 rounds to 0.5.
        assert_eq!(quantize_fp(et, 0.24), 0.0);
        assert_eq!(quantize_fp(et, 0.26), 0.5);
        // Tie at exactly 0.25 goes to even (0.0).
        assert_eq!(quantize_fp(et, 0.25), 0.0);
        assert_eq!(quantize_fp(et, 0.75), 1.0); // tie between 0.5 and 1.0 -> 1.0 (even)
    }

    #[test]
    fn nan_handling() {
        assert!(decode_fp(ElementType::E4M3, nan_code(ElementType::E4M3)).is_nan());
        assert!(decode_fp(ElementType::E5M2, 0x7e).is_nan());
        assert!(decode_fp(ElementType::E5M2, 0x7c).is_infinite());
        assert_eq!(encode_fp(ElementType::E2M1, f32::NAN), 0);
        assert_eq!(encode_fp(ElementType::E4M3, f32::NAN), nan_code(ElementType::E4M3));
    }

    #[test]
    fn e4m3_max_finite_is_448() {
        assert_eq!(decode_fp(ElementType::E4M3, max_finite_code(ElementType::E4M3)), 448.0);
        assert_eq!(decode_fp(ElementType::E5M2, max_finite_code(ElementType::E5M2)), 57_344.0);
    }

    #[test]
    fn int8_round_trip_and_clamp() {
        let et = ElementType::Int8;
        assert_eq!(quantize_int(et, 1.0), 1.0);
        assert_eq!(quantize_int(et, -1.0), -1.0);
        assert_eq!(quantize_int(et, 0.015625), 1.0 / 64.0);
        // Clamps symmetrically at 127/64.
        assert_eq!(quantize_int(et, 5.0), 127.0 / 64.0);
        assert_eq!(quantize_int(et, -5.0), -127.0 / 64.0);
    }

    #[test]
    fn int4_round_trip() {
        let et = ElementType::Int4;
        assert_eq!(quantize_int(et, 0.25), 0.25);
        assert_eq!(quantize_int(et, 1.75), 1.75);
        assert_eq!(quantize_int(et, 2.5), 1.75);
        assert_eq!(quantize_int(et, -1.75), -1.75);
    }

    #[test]
    fn bm_extended_has_more_precision_than_element() {
        // Scaled BM for E2M1 lives in [4, 8). Plain E2M1 can only represent 4 and 6 there;
        // the extended mantissa gives eight steps of 0.5.
        let et = ElementType::E2M1;
        let code = encode_bm_extended(et, 5.0, false);
        assert_eq!(decode_bm_extended(et, code), 5.0);
        let code = encode_bm_extended(et, 7.5, true);
        assert_eq!(decode_bm_extended(et, code), -7.5);
        // Plain E2M1 would round 5.0 to 4.0 or 6.0.
        assert_ne!(quantize_fp(et, 5.0), 5.0);
    }

    #[test]
    fn bm_extended_saturates_gracefully() {
        let et = ElementType::E2M1;
        // At or above 8.0 the mantissa saturates to 7.5 (all ones).
        assert_eq!(decode_bm_extended(et, encode_bm_extended(et, 8.5, false)), 7.5);
        // Below the base it clamps to the base value.
        assert_eq!(decode_bm_extended(et, encode_bm_extended(et, 3.0, false)), 4.0);
    }

    #[test]
    fn bm_extended_int_uses_implicit_integer_bit() {
        let et = ElementType::Int8;
        // Scaled BM in [1, 2): 7 fraction bits available.
        let code = encode_bm_extended(et, 1.0 + 3.0 / 128.0, false);
        assert!((decode_bm_extended(et, code) - (1.0 + 3.0 / 128.0)).abs() < 1e-7);
    }

    #[test]
    fn decode_masks_out_of_range_bits() {
        // Upper bits beyond the element width must be ignored.
        let v1 = decode_fp(ElementType::E2M1, 0b0000_0101);
        let v2 = decode_fp(ElementType::E2M1, 0b1111_0101);
        assert_eq!(v1, v2);
    }

    #[test]
    fn grid_is_monotone_in_code_for_positive_codes() {
        for et in FP_TYPES {
            let mut prev = f32::NEG_INFINITY;
            for code in 0..(1u16 << (et.bits() - 1)) {
                let v = decode_fp(et, code as u8);
                if v.is_finite() {
                    assert!(v >= prev, "{et} code {code}");
                    prev = v;
                }
            }
        }
    }
}
