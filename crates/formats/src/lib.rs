//! # mx-formats
//!
//! Block floating-point (BFP) and Open Compute Project *Microscaling* (MX) data formats,
//! together with the **MX+** / **MX++** outlier-aware extensions proposed in
//! *"MX+: Pushing the Limits of Microscaling Formats for Efficient Large Language Model
//! Serving"* (MICRO 2025).
//!
//! The crate provides bit-exact software implementations of:
//!
//! * IEEE-like low-bit *minifloat* element codecs (E2M1, E2M3, E3M2, E4M3, E5M2 and any
//!   other `ExMy` configuration) with round-to-nearest-even semantics
//!   ([`minifloat`], [`element`]).
//! * The E8M0 power-of-two shared-scale codec used by the MX family ([`scale`]).
//! * The concrete MX-compliant formats MXFP4 / MXFP6 / MXFP8 / MXINT8 (and the paper's
//!   hypothetical MXINT4), plus the industry BFP variants MSFP12/14/16 and SMX4/6/9, and
//!   NVIDIA's NVFP4 ([`mxfp`], [`mxint`], [`msfp`], [`smx`], [`nvfp`]).
//! * The **MX+** extension: the block-max (BM) element's exponent field is repurposed as an
//!   extended mantissa, with a one-byte-per-block metadata word carrying the BM index
//!   ([`mxplus`]), and the **MX++** variant that additionally decouples the non-block-max
//!   shared scale using the reserved metadata bits ([`mxpp`]).
//! * Bit-packed storage layouts ([`layout`]), quantization-error metrics ([`metrics`]),
//!   channel reordering ([`reorder`]) and top-k outlier promotion ([`topk`]) used by the
//!   paper's analysis sections.
//! * A single high-level entry point, [`quantize::QuantScheme`], that fake-quantizes a
//!   tensor row with any of the above formats so that downstream crates (the LLM and DNN
//!   substrates) can evaluate model quality under each format.
//!
//! ## Quickstart
//!
//! ```
//! use mx_formats::quantize::QuantScheme;
//!
//! // A block with a large outlier, as in Figure 4 of the paper.
//! let row = [-0.27_f32, -0.19, 0.99, -0.20, -9.84, -0.39, 0.11, -0.05,
//!            0.02, 0.33, -0.41, 0.25, 0.17, -0.08, 0.61, -0.13,
//!            0.04, -0.22, 0.09, 0.31, -0.29, 0.14, -0.36, 0.07,
//!            0.19, -0.11, 0.23, -0.16, 0.27, -0.21, 0.12, 0.05];
//!
//! let mxfp4 = QuantScheme::mxfp4().quantize_dequantize(&row);
//! let mxfp4_plus = QuantScheme::mxfp4_plus().quantize_dequantize(&row);
//!
//! let err = |q: &[f32]| -> f32 {
//!     row.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / row.len() as f32
//! };
//! // MX+ always has lower (or equal) block error than plain MXFP4.
//! assert!(err(&mxfp4_plus) <= err(&mxfp4));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bf16;
pub mod block;
pub mod element;
pub mod error;
pub mod kernels;
pub mod layout;
pub mod metrics;
pub mod minifloat;
pub mod msfp;
pub mod mxfp;
pub mod mxint;
pub mod mxplus;
pub mod mxpp;
pub mod nvfp;
pub mod quantize;
pub mod reorder;
pub mod scale;
pub mod smx;
pub mod topk;

pub use bf16::Bf16;
pub use block::{MxBlock, BLOCK_SIZE};
pub use element::ElementType;
pub use error::FormatError;
pub use layout::RowCodec;
pub use mxfp::MxFormat;
pub use mxplus::MxPlusBlock;
pub use quantize::QuantScheme;
pub use scale::SharedScale;
