//! Microsoft Floating Point (MSFP) block formats.
//!
//! MSFP (deployed in Project Brainwave) groups 16 elements into a block with one shared
//! 8-bit exponent. Each element stores a sign bit and a mantissa *without* an implicit
//! leading one; the mantissa is the original value right-shifted by the difference between
//! the shared exponent and its own exponent. MSFP formats are named by their total bit
//! width: MSFP12 has 4 sign+mantissa bits (1+3), MSFP14 has 6 (1+5), MSFP16 has 8 (1+7).

use serde::{Deserialize, Serialize};

use crate::scale::{floor_log2, SharedScale};

/// Default MSFP block (bounding-box) size.
pub const MSFP_BLOCK_SIZE: usize = 16;

/// An MSFP format descriptor.
///
/// ```
/// use mx_formats::msfp::MsfpFormat;
///
/// assert_eq!(MsfpFormat::MSFP12.average_bits_per_element(), 4.5);
/// assert_eq!(MsfpFormat::MSFP16.average_bits_per_element(), 8.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MsfpFormat {
    /// Explicit mantissa bits per element (excluding the sign bit).
    pub man_bits: u32,
    /// Number of elements sharing the exponent.
    pub block_size: usize,
}

impl MsfpFormat {
    /// MSFP12: 1 sign + 3 mantissa bits, 16-element blocks (avg 4.5 bits/element).
    pub const MSFP12: MsfpFormat = MsfpFormat { man_bits: 3, block_size: MSFP_BLOCK_SIZE };
    /// MSFP14: 1 sign + 5 mantissa bits (avg 6.5 bits/element).
    pub const MSFP14: MsfpFormat = MsfpFormat { man_bits: 5, block_size: MSFP_BLOCK_SIZE };
    /// MSFP16: 1 sign + 7 mantissa bits (avg 8.5 bits/element).
    pub const MSFP16: MsfpFormat = MsfpFormat { man_bits: 7, block_size: MSFP_BLOCK_SIZE };

    /// Total bits per element excluding the amortized shared exponent.
    #[must_use]
    pub const fn element_bits(&self) -> u32 {
        1 + self.man_bits
    }

    /// Average storage bits per element including the shared 8-bit exponent.
    #[must_use]
    pub fn average_bits_per_element(&self) -> f64 {
        self.element_bits() as f64 + 8.0 / self.block_size as f64
    }

    /// Quantizes one block of values (up to `block_size` elements).
    #[must_use]
    pub fn quantize_block(&self, values: &[f32]) -> MsfpBlock {
        let max_abs = values.iter().map(|v| v.abs()).filter(|v| v.is_finite()).fold(0.0_f32, f32::max);
        if max_abs == 0.0 {
            return MsfpBlock { format: *self, scale: SharedScale::ZERO_BLOCK, codes: vec![0; values.len()] };
        }
        let shared_exp = floor_log2(max_abs);
        let scale = SharedScale::from_exponent(shared_exp);
        let s = scale.value();
        // Fixed-point mantissa covering [0, 2): one integer bit + (man_bits - 1) fraction bits.
        let steps = (1u32 << (self.man_bits - 1)) as f32;
        let max_code = (1u32 << self.man_bits) - 1;
        let codes = values
            .iter()
            .map(|&v| {
                let scaled = (v.abs() / s).min(2.0);
                let m = (scaled * steps).round_ties_even() as u32;
                let m = m.min(max_code);
                let sign = u16::from(v.is_sign_negative() && m != 0);
                (sign << self.man_bits) | m as u16
            })
            .collect();
        MsfpBlock { format: *self, scale, codes }
    }

    /// Direct-cast fake quantization of a row.
    #[must_use]
    pub fn quantize_dequantize(&self, values: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(values.len());
        for chunk in values.chunks(self.block_size) {
            out.extend(self.quantize_block(chunk).dequantize());
        }
        out
    }

    /// Display name ("MSFP12", ...).
    #[must_use]
    pub fn name(&self) -> String {
        format!("MSFP{}", self.element_bits() + 8)
    }
}

impl std::fmt::Display for MsfpFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A quantized MSFP block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsfpBlock {
    format: MsfpFormat,
    scale: SharedScale,
    codes: Vec<u16>,
}

impl MsfpBlock {
    /// The format this block was quantized with.
    #[must_use]
    pub fn format(&self) -> MsfpFormat {
        self.format
    }

    /// The shared exponent scale.
    #[must_use]
    pub fn scale(&self) -> SharedScale {
        self.scale
    }

    /// Raw sign+mantissa codes.
    #[must_use]
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Dequantizes the block.
    #[must_use]
    pub fn dequantize(&self) -> Vec<f32> {
        if self.scale.is_zero_block() {
            return vec![0.0; self.codes.len()];
        }
        let s = self.scale.value();
        let steps = (1u32 << (self.format.man_bits - 1)) as f32;
        self.codes
            .iter()
            .map(|&c| {
                let sign = if c >> self.format.man_bits & 1 == 1 { -1.0 } else { 1.0 };
                let m = (c & ((1 << self.format.man_bits) - 1) as u16) as f32;
                sign * (m / steps) * s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mxfp::MxFormat;

    fn mse(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| ((x - y) * (x - y)) as f64).sum::<f64>() / a.len() as f64
    }

    fn synthetic(n: usize, outliers: bool) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let base = ((i * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0;
                if outliers && i % 61 == 17 {
                    base * 30.0
                } else {
                    base
                }
            })
            .collect()
    }

    #[test]
    fn average_bits_match_paper_figure_1() {
        // MSFP named by total width: MSFP12 -> 4 bits element + 8/16 = 4.5 average.
        assert_eq!(MsfpFormat::MSFP12.average_bits_per_element(), 4.5);
        assert_eq!(MsfpFormat::MSFP14.average_bits_per_element(), 6.5);
        assert_eq!(MsfpFormat::MSFP16.average_bits_per_element(), 8.5);
    }

    #[test]
    fn names() {
        assert_eq!(MsfpFormat::MSFP12.to_string(), "MSFP12");
        assert_eq!(MsfpFormat::MSFP14.to_string(), "MSFP14");
        assert_eq!(MsfpFormat::MSFP16.to_string(), "MSFP16");
    }

    #[test]
    fn zero_block() {
        let block = MsfpFormat::MSFP12.quantize_block(&[0.0; 16]);
        assert!(block.scale().is_zero_block());
        assert_eq!(block.dequantize(), vec![0.0; 16]);
    }

    #[test]
    fn no_implicit_leading_bit_means_coarse_small_values() {
        // With a shared exponent from a max of 8.0, MSFP12's grid step is 8/4 = 2.0.
        let values = [8.0_f32, 0.9, -0.9, 0.4];
        let deq = MsfpFormat::MSFP12.quantize_block(&values).dequantize();
        assert_eq!(deq[0], 8.0);
        assert_eq!(deq[3], 0.0); // 0.4 is below half a step
        assert!(deq[1] == 0.0 || deq[1] == 2.0);
    }

    #[test]
    fn block_max_is_represented_within_half_step() {
        for &m in &[0.3_f32, 1.7, 9.84, 120.0] {
            let values = [m, -m * 0.3, m * 0.1, 0.0];
            let deq = MsfpFormat::MSFP16.quantize_block(&values).dequantize();
            let step = (2.0_f32).powi(floor_log2(m)) / 64.0;
            assert!((deq[0] - m).abs() <= step / 2.0 + 1e-6, "m={m}");
        }
    }

    #[test]
    fn higher_width_msfp_reduces_error() {
        let row = synthetic(512, true);
        let e12 = mse(&row, &MsfpFormat::MSFP12.quantize_dequantize(&row));
        let e14 = mse(&row, &MsfpFormat::MSFP14.quantize_dequantize(&row));
        let e16 = mse(&row, &MsfpFormat::MSFP16.quantize_dequantize(&row));
        assert!(e14 <= e12);
        assert!(e16 <= e14);
    }

    #[test]
    fn mxfp6_preserves_relative_precision_better_than_msfp14() {
        // Section 3.1: at moderate bit widths MXFP6 stays close to the baseline while
        // MSFP14 begins to diverge, because each MXFP element keeps a private exponent
        // (plus an implicit leading one) and therefore preserves *relative* precision for
        // the many small values of activation distributions, whereas MSFP's fixed-point
        // mantissa loses them entirely. Compare mean squared relative error on values
        // spanning several binades within each block.
        let row: Vec<f32> = (0..2048)
            .map(|i| {
                let u = ((i * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0; // [-1, 1]
                u.signum() * (10.0_f32).powf(-2.5 * u.abs()) // log-uniform magnitudes
            })
            .collect();
        let rel_err = |q: &[f32]| -> f64 {
            row.iter()
                .zip(q)
                .map(|(x, y)| {
                    let d = f64::from((x - y) / x.abs().max(1e-12));
                    d * d
                })
                .sum::<f64>()
                / row.len() as f64
        };
        let mx = rel_err(&MxFormat::MXFP6_E2M3.quantize_dequantize(&row));
        let ms = rel_err(&MsfpFormat::MSFP14.quantize_dequantize(&row));
        assert!(mx < ms, "MXFP6 relative error {mx} should be below MSFP14 {ms}");
    }

    #[test]
    fn saturation_is_clamped_to_max_code() {
        // A value exactly at 2x the shared scale cannot occur (scale comes from the max),
        // but rounding up at the top of the range must clamp to the max code.
        let values = [1.999_f32, 1.0];
        let block = MsfpFormat::MSFP12.quantize_block(&values);
        let deq = block.dequantize();
        assert!(deq[0] <= 1.999 + 0.25);
        assert!(deq.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn signed_zero_is_canonical() {
        let block = MsfpFormat::MSFP12.quantize_block(&[-0.001_f32, 4.0]);
        // -0.001 quantizes to zero and must not keep a negative sign code.
        assert_eq!(block.dequantize()[0], 0.0);
        assert_eq!(block.codes()[0], 0);
    }

    #[test]
    fn row_quantization_preserves_length() {
        let row = synthetic(100, false);
        assert_eq!(MsfpFormat::MSFP14.quantize_dequantize(&row).len(), 100);
    }
}
