//! Integer-element microscaling formats: MXINT8, the paper's hypothetical MXINT4, and
//! their MX+ extensions (Section 8.2, Table 10).
//!
//! MXINT8 stores each element as a two's-complement INT8 with an implicit scale of 2^-6,
//! so element magnitudes are always below 2 and `e_max` is 0 in the shared-exponent
//! computation. The MX+ idea transfers directly: the block-max element is always of the
//! form ±1.xxxxxx after scaling, so its integer bit is redundant and can be made implicit
//! to gain one extra fraction bit.

use crate::block::{fake_quantize_row, BLOCK_SIZE};
use crate::element::ElementType;
use crate::mxplus::MxPlusFormat;
use crate::mxpp::fake_quantize_row_pp;

/// Direct-cast fake quantization of a row with MXINT8.
#[must_use]
pub fn mxint8_quantize_dequantize(values: &[f32]) -> Vec<f32> {
    fake_quantize_row(ElementType::Int8, BLOCK_SIZE, values)
}

/// Direct-cast fake quantization of a row with MXINT8+ (implicit integer bit for the BM).
#[must_use]
pub fn mxint8_plus_quantize_dequantize(values: &[f32]) -> Vec<f32> {
    MxPlusFormat::MXINT8_PLUS.quantize_dequantize(values)
}

/// Direct-cast fake quantization of a row with the hypothetical MXINT4.
#[must_use]
pub fn mxint4_quantize_dequantize(values: &[f32]) -> Vec<f32> {
    fake_quantize_row(ElementType::Int4, BLOCK_SIZE, values)
}

/// Direct-cast fake quantization of a row with MXINT4+.
#[must_use]
pub fn mxint4_plus_quantize_dequantize(values: &[f32]) -> Vec<f32> {
    MxPlusFormat::MXINT4_PLUS.quantize_dequantize(values)
}

/// Direct-cast fake quantization of a row with an MX++-style NBM scale decoupling applied
/// to the integer element types (not evaluated in the paper, provided for completeness of
/// the ablation benches).
#[must_use]
pub fn mxint4_pp_quantize_dequantize(values: &[f32]) -> Vec<f32> {
    fake_quantize_row_pp(ElementType::Int4, BLOCK_SIZE, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mse(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| ((x - y) * (x - y)) as f64).sum::<f64>() / a.len() as f64
    }

    fn activations(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let u = ((i * 2_654_435_761_usize) % 2001) as f32 / 1000.0 - 1.0;
                let v = u * u * u;
                if i % 113 == 7 {
                    v * 45.0
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn int8_plus_barely_helps_table_10() {
        // Table 10: going from 6 to 7 fraction bits for the BM "barely helps" MXINT8.
        let row = activations(4096);
        let plain = mse(&row, &mxint8_quantize_dequantize(&row));
        let plus = mse(&row, &mxint8_plus_quantize_dequantize(&row));
        assert!(plus <= plain + 1e-12);
        // The improvement is marginal: well under a 10% MSE reduction.
        assert!(plus >= plain * 0.9, "MXINT8+ improvement should be marginal: {plus} vs {plain}");
    }

    #[test]
    fn int4_plus_helps_clearly_table_10() {
        // Table 10: MXINT4 benefits from the extra fraction bit similarly to MXFP4+.
        let row = activations(4096);
        let plain = mse(&row, &mxint4_quantize_dequantize(&row));
        let plus = mse(&row, &mxint4_plus_quantize_dequantize(&row));
        assert!(plus < plain, "MXINT4+ {plus} must improve on MXINT4 {plain}");
        assert!(plus < plain * 0.95);
    }

    #[test]
    fn int8_is_much_more_accurate_than_int4() {
        let row = activations(2048);
        let i8_err = mse(&row, &mxint8_quantize_dequantize(&row));
        let i4_err = mse(&row, &mxint4_quantize_dequantize(&row));
        assert!(i8_err < i4_err / 4.0);
    }

    #[test]
    fn lengths_preserved() {
        let row = activations(77);
        for f in [
            mxint8_quantize_dequantize(&row),
            mxint8_plus_quantize_dequantize(&row),
            mxint4_quantize_dequantize(&row),
            mxint4_plus_quantize_dequantize(&row),
            mxint4_pp_quantize_dequantize(&row),
        ] {
            assert_eq!(f.len(), 77);
        }
    }
}
