//! Error types for the format codecs.

use std::fmt;

/// Errors produced by the format codecs and block packers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormatError {
    /// A block was given with a length different from the format's block size.
    BlockLength {
        /// Number of elements the format expects per block.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// An element code was out of range for the element data type.
    InvalidCode {
        /// The offending raw code.
        code: u16,
        /// Number of bits the element data type uses.
        bits: u32,
    },
    /// A packed byte buffer had the wrong length for the requested number of blocks.
    PackedLength {
        /// Expected number of bytes.
        expected: usize,
        /// Actual number of bytes.
        actual: usize,
    },
    /// The element data type does not support the requested operation
    /// (e.g. asking for a floating-point exponent field of an integer type).
    UnsupportedElement {
        /// Human-readable description of the element type involved.
        element: &'static str,
        /// Description of the unsupported operation.
        operation: &'static str,
    },
    /// A tensor dimension was not divisible by the block size where required.
    Alignment {
        /// The dimension length.
        len: usize,
        /// The required divisor (block size).
        block: usize,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BlockLength { expected, actual } => {
                write!(f, "block length mismatch: expected {expected}, got {actual}")
            }
            FormatError::InvalidCode { code, bits } => {
                write!(f, "element code {code:#x} does not fit in {bits} bits")
            }
            FormatError::PackedLength { expected, actual } => {
                write!(f, "packed buffer length mismatch: expected {expected} bytes, got {actual}")
            }
            FormatError::UnsupportedElement { element, operation } => {
                write!(f, "element type {element} does not support {operation}")
            }
            FormatError::Alignment { len, block } => {
                write!(f, "length {len} is not a multiple of the block size {block}")
            }
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_complete() {
        let cases: Vec<FormatError> = vec![
            FormatError::BlockLength { expected: 32, actual: 31 },
            FormatError::InvalidCode { code: 0x1ff, bits: 8 },
            FormatError::PackedLength { expected: 17, actual: 16 },
            FormatError::UnsupportedElement { element: "INT8", operation: "exponent extraction" },
            FormatError::Alignment { len: 33, block: 32 },
        ];
        for case in cases {
            let msg = case.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("block"));
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FormatError>();
    }
}
