//! # mx-dnn
//!
//! A small CNN / Vision-Transformer forward substrate used to reproduce Table 9 of the
//! MX+ paper (ImageNet top-1 accuracy of DeiT and ResNet models under MXFP4 and MXFP4+,
//! with direct-cast and quantization-aware fine-tuning).
//!
//! As with the LLM substrate, pre-trained vision weights and ImageNet are not shipped:
//! the networks run with deterministic synthetic weights and inputs whose activation
//! statistics carry the scattered outliers the paper describes for vision models, and
//! accuracy is a margin-based proxy anchored at the paper's FP32 column and driven by the
//! *measured* logit perturbation of the quantized forward pass.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod eval;
pub mod models;
pub mod ops;

pub use eval::{evaluate_vision_model, VisionAccuracyReport};
pub use models::{VisionModel, VisionModelKind};
