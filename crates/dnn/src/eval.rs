//! Table 9 evaluation: ImageNet top-1 accuracy proxy for vision models.

use mx_formats::quantize::MatmulQuantConfig;
use serde::{Deserialize, Serialize};

use crate::models::{synthetic_image, VisionModel, VisionModelKind};

/// Direct-cast or quantization-aware fine-tuned evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VisionEvalMode {
    /// Direct cast: the FP32 model is cast into the low-bit format with no retraining.
    DirectCast,
    /// Quantization-aware fine-tuning: the paper fine-tunes the model under quantization,
    /// which recovers most (but not all) of the lost accuracy. We model fine-tuning as
    /// recovering a fixed fraction of the logit perturbation (the network re-adapts its
    /// weights to the quantization grid); the fraction is calibrated to Table 9's
    /// MXFP4 column (roughly 60% of the perturbation is absorbed).
    QaFineTuning,
}

impl VisionEvalMode {
    /// Fraction of the measured logit perturbation that survives fine-tuning.
    #[must_use]
    pub fn residual_noise_fraction(self) -> f64 {
        match self {
            VisionEvalMode::DirectCast => 1.0,
            VisionEvalMode::QaFineTuning => 0.4,
        }
    }
}

/// The accuracy report for one (model, scheme, mode) cell of Table 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisionAccuracyReport {
    /// Model.
    pub model: VisionModelKind,
    /// Scheme name.
    pub scheme: String,
    /// Evaluation mode.
    pub mode: VisionEvalMode,
    /// Measured relative logit error of the quantized forward pass.
    pub relative_logit_error: f64,
    /// Top-1 accuracy percentage (0-100).
    pub accuracy_percent: f64,
}

/// Measures the relative logit error of a quantized vision model over a few synthetic
/// images, against the FP32 reference of the same model.
#[must_use]
pub fn vision_logit_error(kind: VisionModelKind, quant: MatmulQuantConfig, images: usize) -> f64 {
    if quant == MatmulQuantConfig::BASELINE {
        return 0.0;
    }
    let reference = VisionModel::new(kind, MatmulQuantConfig::BASELINE);
    let quantized = VisionModel::new(kind, quant);
    let mut diff = 0.0_f64;
    let mut power = 0.0_f64;
    let mut mean_acc = 0.0_f64;
    let mut count = 0usize;
    for i in 0..images.max(1) {
        let img = synthetic_image(i as u64, 16);
        let a = reference.forward(&img);
        let b = quantized.forward(&img);
        for (x, y) in a.iter().zip(&b) {
            diff += f64::from(x - y) * f64::from(x - y);
            mean_acc += f64::from(*x);
            count += 1;
        }
        let mean = a.iter().map(|&v| f64::from(v)).sum::<f64>() / a.len() as f64;
        power += a.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>();
    }
    let _ = mean_acc;
    let _ = count;
    if power == 0.0 {
        0.0
    } else {
        (diff / power).sqrt()
    }
}

/// Evaluates one Table 9 cell.
#[must_use]
pub fn evaluate_vision_model(
    kind: VisionModelKind,
    quant: MatmulQuantConfig,
    mode: VisionEvalMode,
    images: usize,
) -> VisionAccuracyReport {
    let sigma = vision_logit_error(kind, quant, images) * mode.residual_noise_fraction();
    let fp32 = kind.fp32_accuracy();
    let chance = 1.0 / 1000.0; // ImageNet's 1000 classes
    let above_chance = ((fp32 - chance) / (1.0 - chance)).clamp(1e-4, 1.0 - 1e-4);
    let mu = probit(0.5 + 0.5 * above_chance);
    // Vision logits are less redundant than LLM next-token distributions; use a
    // sensitivity of 1.5 to map relative logit error to margin noise.
    let eff = 1.5 * sigma;
    let shifted = 2.0 * normal_cdf(mu / (1.0 + eff * eff).sqrt()) - 1.0;
    let acc = chance + (1.0 - chance) * shifted;
    VisionAccuracyReport {
        model: kind,
        scheme: quant.name(),
        mode,
        relative_logit_error: sigma,
        accuracy_percent: 100.0 * acc,
    }
}

fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn probit(p: f64) -> f64 {
    let (mut lo, mut hi) = (-10.0_f64, 10.0_f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_formats::QuantScheme;

    #[test]
    fn baseline_reproduces_fp32_anchor() {
        let r = evaluate_vision_model(
            VisionModelKind::ResNet18,
            MatmulQuantConfig::BASELINE,
            VisionEvalMode::DirectCast,
            1,
        );
        assert!((r.accuracy_percent - 69.18).abs() < 0.2);
        assert_eq!(r.relative_logit_error, 0.0);
    }

    #[test]
    fn mxfp4_plus_beats_mxfp4_direct_cast_table_9() {
        for kind in [VisionModelKind::DeiTTiny, VisionModelKind::ResNet18] {
            let fp4 = evaluate_vision_model(
                kind,
                MatmulQuantConfig::uniform(QuantScheme::mxfp4()),
                VisionEvalMode::DirectCast,
                2,
            );
            let fp4p = evaluate_vision_model(
                kind,
                MatmulQuantConfig::uniform(QuantScheme::mxfp4_plus()),
                VisionEvalMode::DirectCast,
                2,
            );
            assert!(
                fp4p.accuracy_percent > fp4.accuracy_percent,
                "{}: MXFP4+ {} must beat MXFP4 {}",
                kind.name(),
                fp4p.accuracy_percent,
                fp4.accuracy_percent
            );
        }
    }

    #[test]
    fn fine_tuning_narrows_the_gap_table_9() {
        let kind = VisionModelKind::ResNet18;
        let quant = MatmulQuantConfig::uniform(QuantScheme::mxfp4());
        let direct = evaluate_vision_model(kind, quant, VisionEvalMode::DirectCast, 2);
        let tuned = evaluate_vision_model(kind, quant, VisionEvalMode::QaFineTuning, 2);
        assert!(tuned.accuracy_percent > direct.accuracy_percent);
        assert!(tuned.accuracy_percent <= 100.0 * kind.fp32_accuracy() + 1e-9);
    }

    #[test]
    fn accuracy_stays_within_bounds() {
        for kind in VisionModelKind::ALL {
            let r = evaluate_vision_model(
                kind,
                MatmulQuantConfig::uniform(QuantScheme::mxfp4()),
                VisionEvalMode::DirectCast,
                1,
            );
            assert!(r.accuracy_percent >= 0.0 && r.accuracy_percent <= 100.0 * kind.fp32_accuracy() + 1e-9);
        }
    }
}
