//! Scaled-down DeiT-style Vision Transformers and ResNet-style CNNs for Table 9.

use mx_formats::quantize::MatmulQuantConfig;
use mx_tensor::{kernels, synth, Matrix};
use serde::{Deserialize, Serialize};

use crate::ops::{global_avg_pool, max_pool_2x2, patch_embed, relu_inplace, Conv2d, FeatureMap};

/// Which vision model family (the four rows of Table 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VisionModelKind {
    /// DeiT-Tiny analogue (Vision Transformer).
    DeiTTiny,
    /// DeiT-Small analogue.
    DeiTSmall,
    /// ResNet-18 analogue.
    ResNet18,
    /// ResNet-34 analogue.
    ResNet34,
}

impl VisionModelKind {
    /// All Table 9 models in order.
    pub const ALL: [VisionModelKind; 4] =
        [VisionModelKind::DeiTTiny, VisionModelKind::DeiTSmall, VisionModelKind::ResNet18, VisionModelKind::ResNet34];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VisionModelKind::DeiTTiny => "DeiT-Tiny",
            VisionModelKind::DeiTSmall => "DeiT-Small",
            VisionModelKind::ResNet18 => "ResNet-18",
            VisionModelKind::ResNet34 => "ResNet-34",
        }
    }

    /// The paper's FP32 top-1 accuracy (fraction) used as the proxy anchor.
    #[must_use]
    pub fn fp32_accuracy(self) -> f64 {
        match self {
            VisionModelKind::DeiTTiny => 0.7164,
            VisionModelKind::DeiTSmall => 0.7982,
            VisionModelKind::ResNet18 => 0.6918,
            VisionModelKind::ResNet34 => 0.7455,
        }
    }

    /// Whether this is a transformer (true) or CNN (false).
    #[must_use]
    pub fn is_transformer(self) -> bool {
        matches!(self, VisionModelKind::DeiTTiny | VisionModelKind::DeiTSmall)
    }
}

/// A scaled-down vision model with quantizable dot products.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisionModel {
    kind: VisionModelKind,
    quant: MatmulQuantConfig,
    // CNN weights.
    convs: Vec<Conv2d>,
    // ViT weights.
    patch_proj: Matrix,
    attn_qkv: Vec<Matrix>,
    attn_out: Vec<Matrix>,
    mlp_up: Vec<Matrix>,
    mlp_down: Vec<Matrix>,
    // Shared classifier head.
    classifier: Matrix,
    embed_dim: usize,
    classes: usize,
}

impl VisionModel {
    /// Number of classes of the synthetic classification task.
    pub const CLASSES: usize = 64;

    /// Builds the model with deterministic weights.
    #[must_use]
    pub fn new(kind: VisionModelKind, quant: MatmulQuantConfig) -> Self {
        let seed = match kind {
            VisionModelKind::DeiTTiny => 0xd317,
            VisionModelKind::DeiTSmall => 0xd35a,
            VisionModelKind::ResNet18 => 0x0e18,
            VisionModelKind::ResNet34 => 0x0e34,
        };
        let (embed_dim, depth) = match kind {
            VisionModelKind::DeiTTiny => (96, 2),
            VisionModelKind::DeiTSmall => (128, 3),
            VisionModelKind::ResNet18 => (64, 2),
            VisionModelKind::ResNet34 => (96, 3),
        };
        let mut convs = Vec::new();
        let mut attn_qkv = Vec::new();
        let mut attn_out = Vec::new();
        let mut mlp_up = Vec::new();
        let mut mlp_down = Vec::new();
        if kind.is_transformer() {
            for l in 0..depth {
                let ls = seed + 13 * l as u64;
                attn_qkv.push(synth::xavier_weights(embed_dim, 3 * embed_dim, 1.0, ls ^ 0x11));
                attn_out.push(synth::xavier_weights(embed_dim, embed_dim, 1.0, ls ^ 0x12));
                mlp_up.push(synth::xavier_weights(embed_dim, embed_dim * 4, 1.0, ls ^ 0x13));
                mlp_down.push(synth::xavier_weights(embed_dim * 4, embed_dim, 1.0, ls ^ 0x14));
            }
        } else {
            let mut ch = 8;
            convs.push(Conv2d::new(3, ch, 3, 1, 1, seed ^ 0x21));
            for l in 0..depth {
                convs.push(Conv2d::new(ch, ch * 2, 3, 1, 1, seed ^ (0x22 + l as u64)));
                ch *= 2;
            }
            // embed_dim for the classifier equals the final channel count.
            return VisionModel {
                kind,
                quant,
                patch_proj: Matrix::zeros(0, 0),
                classifier: synth::xavier_weights(ch, Self::CLASSES, 1.5, seed ^ 0x31),
                convs,
                attn_qkv,
                attn_out,
                mlp_up,
                mlp_down,
                embed_dim: ch,
                classes: Self::CLASSES,
            };
        }
        VisionModel {
            kind,
            quant,
            patch_proj: synth::xavier_weights(3 * 4 * 4, embed_dim, 1.0, seed ^ 0x30),
            classifier: synth::xavier_weights(embed_dim, Self::CLASSES, 1.5, seed ^ 0x31),
            convs,
            attn_qkv,
            attn_out,
            mlp_up,
            mlp_down,
            embed_dim,
            classes: Self::CLASSES,
        }
    }

    /// The model kind.
    #[must_use]
    pub fn kind(&self) -> VisionModelKind {
        self.kind
    }

    /// The quantization configuration.
    #[must_use]
    pub fn quant(&self) -> MatmulQuantConfig {
        self.quant
    }

    /// Changes the quantization configuration.
    pub fn set_quant(&mut self, quant: MatmulQuantConfig) {
        self.quant = quant;
    }

    /// Classifies a synthetic image, returning class logits.
    #[must_use]
    pub fn forward(&self, image: &FeatureMap) -> Vec<f32> {
        let features = if self.kind.is_transformer() { self.vit_features(image) } else { self.cnn_features(image) };
        let f = Matrix::from_vec(1, features.len(), features);
        f.matmul_quantized(&self.classifier, self.quant).row(0).to_vec()
    }

    fn cnn_features(&self, image: &FeatureMap) -> Vec<f32> {
        let mut x = image.clone();
        for (i, conv) in self.convs.iter().enumerate() {
            let mut y = conv.forward(&x, self.quant);
            relu_inplace(&mut y);
            // Inject the vision-style scattered activation outliers after the first conv:
            // a few channels are amplified, as observed in prior work cited by Section 8.2.
            if i == 0 {
                amplify_channels(&mut y, 4.0);
            }
            x = max_pool_2x2(&y);
        }
        global_avg_pool(&x)
    }

    fn vit_features(&self, image: &FeatureMap) -> Vec<f32> {
        let mut tokens = patch_embed(image, 4, &self.patch_proj, self.quant);
        // Amplify a couple of embedding channels to create the scattered outliers.
        for r in 0..tokens.rows() {
            for c in (0..tokens.cols()).step_by(37) {
                let v = tokens.get(r, c) * 6.0;
                tokens.set(r, c, v);
            }
        }
        for l in 0..self.attn_qkv.len() {
            tokens = self.encoder_block(&tokens, l);
        }
        // Mean-pool tokens into a single feature vector.
        let mut pooled = vec![0.0_f32; self.embed_dim];
        for r in 0..tokens.rows() {
            for (c, p) in pooled.iter_mut().enumerate() {
                *p += tokens.get(r, c);
            }
        }
        for p in &mut pooled {
            *p /= tokens.rows() as f32;
        }
        pooled
    }

    fn encoder_block(&self, tokens: &Matrix, layer: usize) -> Matrix {
        let dim = self.embed_dim;
        let heads = 4;
        let head_dim = dim / heads;
        // Pre-norm.
        let normed =
            Matrix::from_fn(tokens.rows(), dim, |r, c| kernels::rmsnorm(tokens.row(r), &vec![1.0; dim], 1e-6)[c]);
        let qkv = normed.matmul_quantized(&self.attn_qkv[layer], self.quant);
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut attn_out = Matrix::zeros(tokens.rows(), dim);
        for h in 0..heads {
            let off = h * head_dim;
            for i in 0..tokens.rows() {
                let mut scores: Vec<f32> = (0..tokens.rows())
                    .map(|j| {
                        (0..head_dim).map(|d| qkv.get(i, off + d) * qkv.get(j, dim + off + d)).sum::<f32>() * scale
                    })
                    .collect();
                kernels::softmax_inplace(&mut scores);
                for d in 0..head_dim {
                    let v: f32 = scores.iter().enumerate().map(|(j, &p)| p * qkv.get(j, 2 * dim + off + d)).sum();
                    attn_out.set(i, off + d, v);
                }
            }
        }
        let x = tokens.add(&attn_out.matmul_quantized(&self.attn_out[layer], self.quant));
        let normed = Matrix::from_fn(x.rows(), dim, |r, c| kernels::rmsnorm(x.row(r), &vec![1.0; dim], 1e-6)[c]);
        let up = normed.matmul_quantized(&self.mlp_up[layer], self.quant);
        let act = Matrix::from_fn(up.rows(), up.cols(), |r, c| kernels::gelu(up.get(r, c)));
        x.add(&act.matmul_quantized(&self.mlp_down[layer], self.quant))
    }
}

fn amplify_channels(map: &mut FeatureMap, factor: f32) {
    let plane = map.height * map.width;
    for c in (0..map.channels).step_by(7) {
        for v in &mut map.data[c * plane..(c + 1) * plane] {
            *v *= factor;
        }
    }
}

/// A deterministic synthetic test image.
#[must_use]
pub fn synthetic_image(seed: u64, size: usize) -> FeatureMap {
    FeatureMap::from_fn(3, size, size, |c, y, x| {
        let t = (seed as usize).wrapping_mul(2_654_435_761).wrapping_add(c * 97 + y * 13 + x * 7);
        ((t % 1000) as f32 / 500.0 - 1.0) * 0.5
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_formats::QuantScheme;

    #[test]
    fn all_models_produce_class_logits() {
        for kind in VisionModelKind::ALL {
            let model = VisionModel::new(kind, MatmulQuantConfig::BASELINE);
            let logits = model.forward(&synthetic_image(1, 16));
            assert_eq!(logits.len(), VisionModel::CLASSES, "{}", kind.name());
            assert!(logits.iter().all(|v| v.is_finite()), "{}", kind.name());
        }
    }

    #[test]
    fn forward_is_deterministic() {
        let model = VisionModel::new(VisionModelKind::ResNet18, MatmulQuantConfig::BASELINE);
        assert_eq!(model.forward(&synthetic_image(3, 16)), model.forward(&synthetic_image(3, 16)));
    }

    #[test]
    fn quantization_perturbs_logits() {
        let base = VisionModel::new(VisionModelKind::DeiTTiny, MatmulQuantConfig::BASELINE);
        let quant = VisionModel::new(VisionModelKind::DeiTTiny, MatmulQuantConfig::uniform(QuantScheme::mxfp4()));
        let img = synthetic_image(5, 16);
        let a = base.forward(&img);
        let b = quant.forward(&img);
        assert_ne!(a, b);
        assert!(b.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fp32_anchors_match_table_9() {
        assert_eq!(VisionModelKind::DeiTTiny.fp32_accuracy(), 0.7164);
        assert_eq!(VisionModelKind::ResNet34.fp32_accuracy(), 0.7455);
    }

    #[test]
    fn kind_metadata() {
        assert!(VisionModelKind::DeiTTiny.is_transformer());
        assert!(!VisionModelKind::ResNet18.is_transformer());
        assert_eq!(VisionModelKind::ALL.len(), 4);
    }
}
