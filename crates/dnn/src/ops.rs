//! Vision building blocks: im2col convolution, pooling and patch embedding, with the
//! convolution's inner matrix multiplication quantized like any other dot product.

use mx_formats::quantize::MatmulQuantConfig;
use mx_tensor::{kernels, Matrix};
use serde::{Deserialize, Serialize};

/// A feature map: `channels` planes of `height x width` values, stored channel-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMap {
    /// Number of channels.
    pub channels: usize,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
    /// Channel-major data of length `channels * height * width`.
    pub data: Vec<f32>,
}

impl FeatureMap {
    /// Creates a zero-filled feature map.
    #[must_use]
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        FeatureMap { channels, height, width, data: vec![0.0; channels * height * width] }
    }

    /// Creates a feature map from a generator `f(channel, y, x)`.
    #[must_use]
    pub fn from_fn(
        channels: usize,
        height: usize,
        width: usize,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> Self {
        let mut data = Vec::with_capacity(channels * height * width);
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    data.push(f(c, y, x));
                }
            }
        }
        FeatureMap { channels, height, width, data }
    }

    /// Value at `(channel, y, x)`; zero for out-of-bounds coordinates (implicit padding).
    #[must_use]
    pub fn get_padded(&self, c: usize, y: isize, x: isize) -> f32 {
        if y < 0 || x < 0 || y as usize >= self.height || x as usize >= self.width {
            0.0
        } else {
            self.data[(c * self.height + y as usize) * self.width + x as usize]
        }
    }

    /// Total number of values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A 2-D convolution layer realized as im2col + quantized matmul.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
    /// Weights as a `(kernel*kernel*in_channels, out_channels)` matrix.
    pub weight: Matrix,
}

impl Conv2d {
    /// Creates a convolution with deterministic Xavier weights.
    #[must_use]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        let weight = mx_tensor::synth::xavier_weights(kernel * kernel * in_channels, out_channels, 1.4, seed);
        Conv2d { in_channels, out_channels, kernel, stride, padding, weight }
    }

    /// Output spatial size for a given input size.
    #[must_use]
    pub fn output_size(&self, input: usize) -> usize {
        (input + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Forward pass with the inner matmul quantized by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count does not match.
    #[must_use]
    pub fn forward(&self, input: &FeatureMap, config: MatmulQuantConfig) -> FeatureMap {
        assert_eq!(input.channels, self.in_channels, "channel mismatch");
        let oh = self.output_size(input.height);
        let ow = self.output_size(input.width);
        // im2col: one row per output pixel, one column per (channel, ky, kx).
        let cols = self.kernel * self.kernel * self.in_channels;
        let im2col = Matrix::from_fn(oh * ow, cols, |row, col| {
            let (oy, ox) = (row / ow, row % ow);
            let c = col / (self.kernel * self.kernel);
            let rem = col % (self.kernel * self.kernel);
            let (ky, kx) = (rem / self.kernel, rem % self.kernel);
            let y = (oy * self.stride + ky) as isize - self.padding as isize;
            let x = (ox * self.stride + kx) as isize - self.padding as isize;
            input.get_padded(c, y, x)
        });
        let out = im2col.matmul_quantized(&self.weight, config);
        // Rearrange (pixels x out_channels) into channel-major planes.
        let mut fm = FeatureMap::zeros(self.out_channels, oh, ow);
        for p in 0..oh * ow {
            for c in 0..self.out_channels {
                fm.data[c * oh * ow + p] = out.get(p, c);
            }
        }
        fm
    }
}

/// Global average pooling over the spatial dimensions: returns one value per channel.
#[must_use]
pub fn global_avg_pool(input: &FeatureMap) -> Vec<f32> {
    let hw = (input.height * input.width) as f32;
    (0..input.channels)
        .map(|c| {
            input.data[c * input.height * input.width..(c + 1) * input.height * input.width].iter().sum::<f32>() / hw
        })
        .collect()
}

/// 2x2 max pooling with stride 2.
#[must_use]
pub fn max_pool_2x2(input: &FeatureMap) -> FeatureMap {
    let oh = input.height / 2;
    let ow = input.width / 2;
    FeatureMap::from_fn(input.channels, oh, ow, |c, y, x| {
        let mut best = f32::NEG_INFINITY;
        for dy in 0..2 {
            for dx in 0..2 {
                best = best.max(input.get_padded(c, (2 * y + dy) as isize, (2 * x + dx) as isize));
            }
        }
        best
    })
}

/// Applies ReLU in place.
pub fn relu_inplace(map: &mut FeatureMap) {
    for v in &mut map.data {
        *v = kernels::relu(*v);
    }
}

/// Splits an image into non-overlapping patches and linearly embeds them (ViT patch
/// embedding) with the projection quantized by `config`. Returns a `(patches, dim)` matrix.
#[must_use]
pub fn patch_embed(input: &FeatureMap, patch: usize, projection: &Matrix, config: MatmulQuantConfig) -> Matrix {
    let ph = input.height / patch;
    let pw = input.width / patch;
    let patch_dim = input.channels * patch * patch;
    assert_eq!(projection.rows(), patch_dim, "projection must take flattened patches");
    let patches = Matrix::from_fn(ph * pw, patch_dim, |row, col| {
        let (py, px) = (row / pw, row % pw);
        let c = col / (patch * patch);
        let rem = col % (patch * patch);
        let (dy, dx) = (rem / patch, rem % patch);
        input.get_padded(c, (py * patch + dy) as isize, (px * patch + dx) as isize)
    });
    patches.matmul_quantized(projection, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_formats::QuantScheme;

    fn image(channels: usize, size: usize) -> FeatureMap {
        FeatureMap::from_fn(channels, size, size, |c, y, x| (((c * 31 + y * 7 + x) % 17) as f32 - 8.0) * 0.1)
    }

    #[test]
    fn conv_output_shape() {
        let conv = Conv2d::new(3, 8, 3, 1, 1, 1);
        let out = conv.forward(&image(3, 16), MatmulQuantConfig::BASELINE);
        assert_eq!((out.channels, out.height, out.width), (8, 16, 16));
        let strided = Conv2d::new(3, 8, 3, 2, 1, 2);
        assert_eq!(strided.output_size(16), 8);
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        // A 1x1 convolution with an identity weight matrix reproduces the input channels.
        let mut conv = Conv2d::new(3, 3, 1, 1, 0, 3);
        conv.weight = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let input = image(3, 8);
        let out = conv.forward(&input, MatmulQuantConfig::uniform(QuantScheme::Fp32));
        for (a, b) in input.data.iter().zip(&out.data) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn quantized_conv_error_ordering() {
        let conv = Conv2d::new(3, 16, 3, 1, 1, 7);
        let input = image(3, 16);
        let exact = conv.forward(&input, MatmulQuantConfig::BASELINE);
        let fp4 = conv.forward(&input, MatmulQuantConfig::uniform(QuantScheme::mxfp4()));
        let fp8 = conv.forward(&input, MatmulQuantConfig::uniform(QuantScheme::mxfp8()));
        let err = |a: &FeatureMap, b: &FeatureMap| mx_formats::metrics::mse(&a.data, &b.data);
        assert!(err(&exact, &fp8) < err(&exact, &fp4));
    }

    #[test]
    fn pooling_shapes_and_values() {
        let fm = FeatureMap::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
        let pooled = max_pool_2x2(&fm);
        assert_eq!((pooled.height, pooled.width), (2, 2));
        assert_eq!(pooled.data, vec![5.0, 7.0, 13.0, 15.0]);
        let gap = global_avg_pool(&fm);
        assert_eq!(gap, vec![7.5]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut fm = FeatureMap::from_fn(1, 2, 2, |_, y, x| if (y + x) % 2 == 0 { -1.0 } else { 2.0 });
        relu_inplace(&mut fm);
        assert_eq!(fm.data, vec![0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn patch_embedding_shape() {
        let proj = mx_tensor::synth::xavier_weights(3 * 4 * 4, 32, 1.0, 5);
        let tokens = patch_embed(&image(3, 16), 4, &proj, MatmulQuantConfig::BASELINE);
        assert_eq!(tokens.shape(), (16, 32));
    }
}
