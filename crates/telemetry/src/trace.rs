//! A drained, timestamp-sorted event stream and its Chrome trace-event JSON export.
//!
//! The export follows the Trace Event Format's JSON-object flavour
//! (`{"traceEvents": [...]}`) with `B`/`E` duration events, `i` instants, `C` counters
//! and `M` thread-name metadata, so the file loads unmodified in `chrome://tracing`
//! and Perfetto. Timestamps convert from the recorder's nanoseconds to the format's
//! microseconds with fixed three-decimal rendering, keeping the output byte-identical
//! for identical event streams (pinned by a test under [`crate::TestClock`]).

use crate::recorder::{Category, Event, EventKind};

/// An immutable, `(ts, lane)`-sorted event stream from [`crate::Telemetry::drain_trace`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Wraps an already-sorted event stream (the hub sorts at drain time).
    #[must_use]
    pub fn new(events: Vec<Event>) -> Self {
        Trace { events }
    }

    /// The events, sorted by `(ts_nanos, lane)`.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Whether the trace holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct categories present, in taxonomy order.
    #[must_use]
    pub fn categories(&self) -> Vec<Category> {
        [Category::Lifecycle, Category::Pass, Category::Worker, Category::Occupancy, Category::Fault]
            .into_iter()
            .filter(|c| self.events.iter().any(|e| e.cat == *c))
            .collect()
    }

    /// Events on one lane (0 = coordinator, `1..=N` = workers).
    pub fn lane_events(&self, lane: u32) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.lane == lane)
    }

    /// Renders the trace as Chrome trace-event JSON (the `{"traceEvents": [...]}`
    /// object form). Deterministic: identical event streams render byte-identically.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        // Thread-name metadata first, so the viewer labels lanes before any event.
        let mut lanes: Vec<u32> = self.events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        for lane in lanes {
            push_sep(&mut out, &mut first);
            let name = if lane == 0 { "coordinator".to_string() } else { format!("worker-{lane}") };
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        for e in &self.events {
            push_sep(&mut out, &mut first);
            self.push_event(&mut out, e);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    fn push_event(&self, out: &mut String, e: &Event) {
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            escape(e.name),
            e.cat.label(),
            micros(e.ts_nanos),
            e.lane,
        ));
        if e.kind == EventKind::Instant {
            // Instant scope: thread-local marker.
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(&format!(",\"args\":{{\"{}\":{}}}}}", escape(e.arg_name), e.arg));
    }
}

/// Nanoseconds → the trace format's microseconds, rendered with exactly three decimals
/// by integer math (no float formatting wobble).
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn push_sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
}

/// Minimal JSON string escaping for the `&'static str` names this crate emits.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use crate::recorder::{Telemetry, TelemetryConfig};
    use std::sync::Arc;

    /// The satellite pin: a fixed test clock must produce byte-identical trace JSON.
    #[test]
    fn chrome_json_is_deterministic_under_a_test_clock() {
        let render = || {
            let hub = Telemetry::new(&TelemetryConfig::on_with_clock(Arc::new(TestClock::with_step(500))));
            let mut coord = hub.recorder(0);
            coord.instant(Category::Lifecycle, "submitted", "seq", 0); // ts 0
            coord.begin(Category::Pass, "pass", "pass", 0); // ts 500
            let mut worker = hub.recorder(1);
            {
                let mut span = worker.span(Category::Worker, "prefill", "seq", 0); // ts 1000
                span.recorder().instant(Category::Lifecycle, "first_token", "seq", 0);
            } // ts 2000
            worker.counter(Category::Occupancy, "in_use_pages", 3); // ts 2500
            coord.end(Category::Pass, "pass", "pass", 0); // ts 3000
            drop(worker);
            drop(coord);
            hub.drain_trace().to_chrome_json()
        };
        let json = render();
        assert_eq!(json, render(), "same event stream must render byte-identically");
        let expected = concat!(
            "{\"traceEvents\":[",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"coordinator\"}},",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"worker-1\"}},",
            "{\"name\":\"submitted\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"ts\":0.000,\"pid\":1,\"tid\":0,\"s\":\"t\",\"args\":{\"seq\":0}},",
            "{\"name\":\"pass\",\"cat\":\"pass\",\"ph\":\"B\",\"ts\":0.500,\"pid\":1,\"tid\":0,\"args\":{\"pass\":0}},",
            "{\"name\":\"prefill\",\"cat\":\"worker\",\"ph\":\"B\",\"ts\":1.000,\"pid\":1,\"tid\":1,\"args\":{\"seq\":0}},",
            "{\"name\":\"first_token\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"ts\":1.500,\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{\"seq\":0}},",
            "{\"name\":\"prefill\",\"cat\":\"worker\",\"ph\":\"E\",\"ts\":2.000,\"pid\":1,\"tid\":1,\"args\":{\"seq\":0}},",
            "{\"name\":\"in_use_pages\",\"cat\":\"occupancy\",\"ph\":\"C\",\"ts\":2.500,\"pid\":1,\"tid\":1,\"args\":{\"value\":3}},",
            "{\"name\":\"pass\",\"cat\":\"pass\",\"ph\":\"E\",\"ts\":3.000,\"pid\":1,\"tid\":0,\"args\":{\"pass\":0}}",
            "],\"displayTimeUnit\":\"ms\"}",
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn categories_reports_the_distinct_set_in_order() {
        let hub = Telemetry::new(&TelemetryConfig::on_with_clock(Arc::new(TestClock::with_step(1))));
        let mut rec = hub.recorder(0);
        rec.counter(Category::Occupancy, "in_use_pages", 1);
        rec.instant(Category::Lifecycle, "submitted", "seq", 0);
        drop(rec);
        let trace = hub.drain_trace();
        assert_eq!(trace.categories(), vec![Category::Lifecycle, Category::Occupancy]);
    }

    #[test]
    fn empty_trace_renders_a_loadable_document() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.to_chrome_json(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn escaping_handles_quotes_and_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn micros_renders_three_fixed_decimals() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(1_000_007), "1000.007");
    }
}
