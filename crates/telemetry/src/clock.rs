//! Injectable monotonic time sources.
//!
//! Everything in this crate timestamps through the [`Clock`] trait so that tests can
//! substitute a deterministic [`TestClock`] and pin exact trace JSON, while production
//! code uses the [`Instant`]-backed [`MonotonicClock`]. Timestamps are plain `u64`
//! nanosecond offsets from the clock's own origin — never wall-clock time — so they are
//! monotone across threads and immune to system clock adjustments.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source measured in nanoseconds since the clock's origin.
///
/// Implementations must be `Send + Sync` (one clock is shared by every recorder) and
/// monotone: a later call never returns a smaller value than an earlier one, across
/// threads.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since this clock's origin.
    fn now_nanos(&self) -> u64;
}

/// The production clock: [`Instant`]-based, origin = construction time.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is *now*.
    #[must_use]
    pub fn new() -> Self {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // A u64 of nanoseconds covers ~584 years of run time; the cast never truncates
        // in practice.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic clock for tests: every reading advances by a fixed step, so repeated
/// runs produce byte-identical traces while timestamps stay strictly monotone.
#[derive(Debug)]
pub struct TestClock {
    next: AtomicU64,
    step: u64,
}

impl TestClock {
    /// A clock that returns 0, `step`, `2 * step`, ... on successive readings.
    #[must_use]
    pub fn with_step(step: u64) -> Self {
        TestClock { next: AtomicU64::new(0), step }
    }
}

impl Clock for TestClock {
    fn now_nanos(&self) -> u64 {
        // Relaxed is enough: the returned ticket alone defines the reading, and tests
        // that need cross-thread ordering already synchronize through channels.
        self.next.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let mut last = 0;
        for _ in 0..1000 {
            let now = clock.now_nanos();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn test_clock_steps_deterministically() {
        let clock = TestClock::with_step(250);
        assert_eq!(clock.now_nanos(), 0);
        assert_eq!(clock.now_nanos(), 250);
        assert_eq!(clock.now_nanos(), 500);
    }
}
