//! # mx-telemetry
//!
//! Dependency-free observability substrate for the MX+ serving stack: an injectable
//! monotonic [`Clock`], a sharded per-worker event [`Recorder`] with RAII span guards,
//! log-bucketed latency [`Histogram`]s with p50/p95/p99 extraction, and a Chrome
//! trace-event JSON exporter ([`Trace::to_chrome_json`]) whose output loads directly
//! into `chrome://tracing` / Perfetto.
//!
//! ## Design in one paragraph
//!
//! A [`Telemetry`] hub owns the clock and a mutex-protected list of *finished* shard
//! buffers. Every thread that wants to record events asks the hub for its own
//! [`Recorder`] (one per worker thread plus one for the coordinator) and appends to a
//! plain `Vec<Event>` it exclusively owns — the hot path is an `enabled` branch plus a
//! `Vec::push`, never a lock. The buffer merges back into the hub exactly once, when
//! the recorder is dropped at the end of the run; [`Telemetry::drain_trace`] then
//! stitches the shards into one timestamp-sorted [`Trace`]. When the hub is built from
//! [`TelemetryConfig::Off`] every recording call is a no-op behind a single bool check,
//! so a disabled engine pays nothing but that branch (pinned by the
//! `telemetry_overhead` bench in `mx-bench`), and recording never alters scheduling
//! decisions — runs are token-identical with telemetry on or off.
//!
//! ```
//! use mx_telemetry::{Category, Telemetry, TelemetryConfig, TestClock};
//! use std::sync::Arc;
//!
//! let hub = Telemetry::new(&TelemetryConfig::on_with_clock(Arc::new(TestClock::with_step(1_000))));
//! let mut rec = hub.recorder(0);
//! {
//!     let mut span = rec.span(Category::Pass, "pass", "pass", 0);
//!     span.recorder().instant(Category::Lifecycle, "submitted", "seq", 7);
//! } // RAII: the span's End event is emitted here
//! drop(rec);
//! let trace = hub.drain_trace();
//! assert_eq!(trace.events().len(), 3);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod clock;
mod histogram;
mod recorder;
mod trace;

pub use clock::{Clock, MonotonicClock, TestClock};
pub use histogram::{Histogram, LatencySummary, QuantileSummary};
pub use recorder::{Category, Event, EventKind, Recorder, Span, Telemetry, TelemetryConfig};
pub use trace::Trace;
