//! The sharded event recorder: a [`Telemetry`] hub handing out per-worker
//! [`Recorder`]s whose hot path is an `enabled` branch plus a `Vec::push`.
//!
//! Shard lifecycle: [`Telemetry::recorder`] → events append to the recorder's own
//! buffer (no locks, no allocation beyond the `Vec`'s growth) → the buffer merges into
//! the hub under a mutex exactly once, when the recorder drops →
//! [`Telemetry::drain_trace`] stitches all merged shards into one sorted [`Trace`].

use std::sync::{Arc, Mutex, PoisonError};

use crate::clock::{Clock, MonotonicClock};
use crate::trace::Trace;

/// What a run records into: the event taxonomy's top-level grouping, rendered as the
/// `cat` field of the Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Per-sequence lifecycle: submitted → admitted → first_token → preempted /
    /// restored / evicted → retired.
    Lifecycle,
    /// Coordinator scheduler passes (one span per pass).
    Pass,
    /// Per-worker compute: prefill and decode-step spans.
    Worker,
    /// Pool-occupancy gauges sampled at pass boundaries.
    Occupancy,
    /// Fault-tolerance lifecycle: injected faults, worker panics and respawns,
    /// checkpoint retries, deadline misses and load shedding.
    Fault,
}

impl Category {
    /// The Chrome-trace `cat` string.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Category::Lifecycle => "lifecycle",
            Category::Pass => "pass",
            Category::Worker => "worker",
            Category::Occupancy => "occupancy",
            Category::Fault => "fault",
        }
    }
}

/// The Chrome-trace phase of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opening (`ph: "B"`); paired with a later [`EventKind::End`] on the same lane.
    Begin,
    /// Span closing (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A gauge sample (`ph: "C"`); `arg` is the gauge value.
    Counter,
}

/// One recorded event. `name`/`arg_name` are `&'static str` so the hot path never
/// allocates; `arg` carries the sequence id, pass number or gauge value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the hub clock's origin.
    pub ts_nanos: u64,
    /// Chrome-trace thread id: 0 = coordinator, `1..=N` = decode workers.
    pub lane: u32,
    /// Phase (span begin/end, instant, counter).
    pub kind: EventKind,
    /// Taxonomy grouping (the trace's `cat`).
    pub cat: Category,
    /// Event name (e.g. `"prefill"`, `"decode_step"`, `"in_use_pages"`).
    pub name: &'static str,
    /// Key under which `arg` renders in the trace's `args` object.
    pub arg_name: &'static str,
    /// Sequence id, pass number, or gauge value depending on the event.
    pub arg: u64,
}

/// How an engine's telemetry is configured.
#[derive(Clone, Default)]
pub enum TelemetryConfig {
    /// No event recording: every recorder call is a no-op behind one bool check.
    /// Latency summaries still work — they come from always-on histograms, not events.
    #[default]
    Off,
    /// Record events against a fresh [`MonotonicClock`].
    On,
    /// Record events against an injected clock (deterministic traces in tests).
    OnWithClock(Arc<dyn Clock>),
}

impl TelemetryConfig {
    /// Shorthand for [`TelemetryConfig::OnWithClock`].
    #[must_use]
    pub fn on_with_clock(clock: Arc<dyn Clock>) -> Self {
        TelemetryConfig::OnWithClock(clock)
    }

    /// Whether this configuration records events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !matches!(self, TelemetryConfig::Off)
    }
}

impl std::fmt::Debug for TelemetryConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryConfig::Off => f.write_str("TelemetryConfig::Off"),
            TelemetryConfig::On => f.write_str("TelemetryConfig::On"),
            TelemetryConfig::OnWithClock(_) => f.write_str("TelemetryConfig::OnWithClock(..)"),
        }
    }
}

/// The telemetry hub: owns the clock and collects finished recorder shards.
///
/// Cheap to share (`Arc`), safe to share (`Send + Sync`); the only lock it holds is
/// taken when a recorder merges its finished buffer back — never per event.
pub struct Telemetry {
    enabled: bool,
    clock: Arc<dyn Clock>,
    shards: Mutex<Vec<Vec<Event>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.enabled).finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Builds a hub from a configuration. [`TelemetryConfig::Off`] and
    /// [`TelemetryConfig::On`] anchor a fresh monotonic clock at this call.
    #[must_use]
    pub fn new(config: &TelemetryConfig) -> Arc<Telemetry> {
        let clock: Arc<dyn Clock> = match config {
            TelemetryConfig::OnWithClock(clock) => Arc::clone(clock),
            TelemetryConfig::Off | TelemetryConfig::On => Arc::new(MonotonicClock::new()),
        };
        Arc::new(Telemetry { enabled: config.is_enabled(), clock, shards: Mutex::new(Vec::new()) })
    }

    /// A hub that records nothing (still serves timestamps for latency accounting).
    #[must_use]
    pub fn disabled() -> Arc<Telemetry> {
        Telemetry::new(&TelemetryConfig::Off)
    }

    /// Whether recorders from this hub record events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The current reading of the hub clock, in nanoseconds since its origin.
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// A new recorder shard on `lane` (0 = coordinator, `1..=N` = workers). Each thread
    /// should hold exactly one; its buffer merges back when it drops.
    #[must_use]
    pub fn recorder(self: &Arc<Self>, lane: u32) -> Recorder {
        Recorder { hub: Arc::clone(self), lane, enabled: self.enabled, buf: Vec::new() }
    }

    /// Takes every merged shard and returns one timestamp-sorted [`Trace`]. Call after
    /// all recorders have dropped; shards merged later feed the *next* drain.
    #[must_use]
    pub fn drain_trace(&self) -> Trace {
        let shards = std::mem::take(&mut *self.lock_shards());
        let mut events: Vec<Event> = shards.into_iter().flatten().collect();
        // Stable by (ts, lane): simultaneous test-clock events keep a deterministic
        // cross-shard order.
        events.sort_by_key(|e| (e.ts_nanos, e.lane));
        Trace::new(events)
    }

    fn lock_shards(&self) -> std::sync::MutexGuard<'_, Vec<Vec<Event>>> {
        // A recorder panicking mid-merge leaves at worst a truncated shard; the events
        // themselves are plain Copy data, so poison recovery is safe.
        self.shards.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn merge(&self, buf: Vec<Event>) {
        if !buf.is_empty() {
            self.lock_shards().push(buf);
        }
    }
}

/// One thread's exclusively-owned event shard (see [`Telemetry::recorder`]).
///
/// All recording methods take `&mut self` and append to a private `Vec` — the hot path
/// never locks. Dropping the recorder merges the buffer into the hub.
#[derive(Debug)]
pub struct Recorder {
    hub: Arc<Telemetry>,
    lane: u32,
    enabled: bool,
    buf: Vec<Event>,
}

impl Recorder {
    /// This recorder's Chrome-trace lane (0 = coordinator, `1..=N` = workers).
    #[must_use]
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Whether this recorder records events (false ⇒ every call below is a no-op).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The hub clock's current reading — available even when recording is disabled, so
    /// latency accounting works without event buffers.
    #[must_use]
    pub fn now_nanos(&self) -> u64 {
        self.hub.now_nanos()
    }

    /// Records a point-in-time marker.
    pub fn instant(&mut self, cat: Category, name: &'static str, arg_name: &'static str, arg: u64) {
        self.push(EventKind::Instant, cat, name, arg_name, arg);
    }

    /// Records a gauge sample (`value` renders as the counter's height).
    pub fn counter(&mut self, cat: Category, name: &'static str, value: u64) {
        self.push(EventKind::Counter, cat, name, "value", value);
    }

    /// Opens a span explicitly; pair with [`Recorder::end`] on the same lane. Prefer
    /// [`Recorder::span`] (RAII) unless events must nest inside the span from the same
    /// `&mut` borrow chain.
    pub fn begin(&mut self, cat: Category, name: &'static str, arg_name: &'static str, arg: u64) {
        self.push(EventKind::Begin, cat, name, arg_name, arg);
    }

    /// Closes a span opened by [`Recorder::begin`].
    pub fn end(&mut self, cat: Category, name: &'static str, arg_name: &'static str, arg: u64) {
        self.push(EventKind::End, cat, name, arg_name, arg);
    }

    /// Opens an RAII span: the Begin event is emitted now, the matching End when the
    /// guard drops. Nested events go through [`Span::recorder`].
    pub fn span(&mut self, cat: Category, name: &'static str, arg_name: &'static str, arg: u64) -> Span<'_> {
        self.begin(cat, name, arg_name, arg);
        Span { cat, name, arg_name, arg, rec: self }
    }

    fn push(&mut self, kind: EventKind, cat: Category, name: &'static str, arg_name: &'static str, arg: u64) {
        if !self.enabled {
            return;
        }
        let ts_nanos = self.hub.now_nanos();
        self.buf.push(Event { ts_nanos, lane: self.lane, kind, cat, name, arg_name, arg });
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.hub.merge(std::mem::take(&mut self.buf));
    }
}

/// RAII span guard from [`Recorder::span`]: emits the End event when dropped.
#[derive(Debug)]
pub struct Span<'r> {
    rec: &'r mut Recorder,
    cat: Category,
    name: &'static str,
    arg_name: &'static str,
    arg: u64,
}

impl Span<'_> {
    /// Reborrows the underlying recorder so events can nest inside the span.
    pub fn recorder(&mut self) -> &mut Recorder {
        self.rec
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.rec.end(self.cat, self.name, self.arg_name, self.arg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    fn test_hub() -> Arc<Telemetry> {
        Telemetry::new(&TelemetryConfig::on_with_clock(Arc::new(TestClock::with_step(100))))
    }

    #[test]
    fn events_merge_and_sort_across_shards() {
        let hub = test_hub();
        let mut a = hub.recorder(1);
        let mut b = hub.recorder(2);
        a.instant(Category::Lifecycle, "submitted", "seq", 0); // ts 0
        b.instant(Category::Lifecycle, "submitted", "seq", 1); // ts 100
        a.counter(Category::Occupancy, "in_use_pages", 4); // ts 200
        drop(b);
        drop(a);
        let trace = hub.drain_trace();
        let ts: Vec<u64> = trace.events().iter().map(|e| e.ts_nanos).collect();
        assert_eq!(ts, vec![0, 100, 200]);
        assert_eq!(trace.events()[2].arg, 4);
    }

    #[test]
    fn raii_span_emits_begin_and_end_with_nesting() {
        let hub = test_hub();
        let mut rec = hub.recorder(0);
        {
            let mut span = rec.span(Category::Pass, "pass", "pass", 3);
            span.recorder().instant(Category::Lifecycle, "admitted", "seq", 9);
        }
        drop(rec);
        let trace = hub.drain_trace();
        let kinds: Vec<EventKind> = trace.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EventKind::Begin, EventKind::Instant, EventKind::End]);
        assert_eq!(trace.events()[0].name, "pass");
        assert_eq!(trace.events()[2].name, "pass");
    }

    #[test]
    fn disabled_hub_records_nothing_but_still_tells_time() {
        let hub = Telemetry::disabled();
        let mut rec = hub.recorder(0);
        rec.instant(Category::Lifecycle, "submitted", "seq", 0);
        let _ = rec.span(Category::Worker, "prefill", "seq", 0);
        rec.counter(Category::Occupancy, "in_use_pages", 1);
        let t0 = rec.now_nanos();
        drop(rec);
        assert!(hub.drain_trace().events().is_empty());
        assert!(hub.now_nanos() >= t0);
    }

    #[test]
    fn draining_twice_returns_only_new_shards() {
        let hub = test_hub();
        let mut rec = hub.recorder(0);
        rec.instant(Category::Lifecycle, "submitted", "seq", 0);
        drop(rec);
        assert_eq!(hub.drain_trace().events().len(), 1);
        assert!(hub.drain_trace().events().is_empty());
    }
}
