//! Log-bucketed latency histograms and the quantile summaries built from them.
//!
//! The bucket layout is HdrHistogram-flavoured: values below [`SUB_BUCKETS`] get one
//! exact bucket each, and every power-of-two octave above that is split into
//! [`SUB_BUCKETS`] linear sub-buckets, so recording is two shifts and an increment and
//! the relative quantile error is bounded by half a sub-bucket (≈ 3%). A histogram is
//! ~8 KiB and lives on the coordinator, so recording never contends with decode
//! workers.

/// Linear sub-buckets per power-of-two octave (and the exact-bucket cutoff).
const SUB_BUCKETS: u64 = 16;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;
/// Total bucket count: 16 exact + 16 per octave for octaves 4..=63.
const BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// A log-bucketed histogram of `u64` samples (typically latency nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram { buckets: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples, rounded down (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the representative value (bucket midpoint)
    /// of the bucket holding the rank-`ceil(q * count)` sample; exact for values below
    /// [`SUB_BUCKETS`], within half a sub-bucket (≈ 3% relative) above. Returns 0 when
    /// empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::representative(i);
            }
        }
        self.max
    }

    /// Bucket index of `value`: exact below [`SUB_BUCKETS`], `(octave, sub-bucket)`
    /// above.
    fn index(value: u64) -> usize {
        if value < SUB_BUCKETS {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros(); // >= SUB_BITS here
        let sub = (value >> (octave - SUB_BITS)) & (SUB_BUCKETS - 1);
        (SUB_BUCKETS as usize) * (octave - SUB_BITS + 1) as usize + sub as usize
    }

    /// Midpoint of bucket `i` (exact value for the exact buckets).
    fn representative(i: usize) -> u64 {
        let i = i as u64;
        if i < SUB_BUCKETS {
            return i;
        }
        let octave = i / SUB_BUCKETS - 1 + u64::from(SUB_BITS);
        let sub = i % SUB_BUCKETS;
        let lower = (SUB_BUCKETS + sub) << (octave - u64::from(SUB_BITS));
        let width = 1u64 << (octave - u64::from(SUB_BITS));
        lower + width / 2
    }
}

/// p50/p95/p99 (plus count, mean and max) extracted from one [`Histogram`], in
/// nanoseconds. Plain integers so reports stay `PartialEq` and JSON-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantileSummary {
    /// Number of samples summarized.
    pub count: u64,
    /// Median, nanoseconds.
    pub p50_nanos: u64,
    /// 95th percentile, nanoseconds.
    pub p95_nanos: u64,
    /// 99th percentile, nanoseconds.
    pub p99_nanos: u64,
    /// Mean, nanoseconds (rounded down).
    pub mean_nanos: u64,
    /// Largest sample, nanoseconds.
    pub max_nanos: u64,
}

impl QuantileSummary {
    /// Summarizes a histogram.
    #[must_use]
    pub fn from_histogram(h: &Histogram) -> Self {
        QuantileSummary {
            count: h.count(),
            p50_nanos: h.quantile(0.50),
            p95_nanos: h.quantile(0.95),
            p99_nanos: h.quantile(0.99),
            mean_nanos: h.mean(),
            max_nanos: h.max(),
        }
    }

    /// Median in seconds (for display).
    #[must_use]
    pub fn p50_seconds(&self) -> f64 {
        self.p50_nanos as f64 / 1e9
    }

    /// 99th percentile in seconds (for display).
    #[must_use]
    pub fn p99_seconds(&self) -> f64 {
        self.p99_nanos as f64 / 1e9
    }
}

/// The per-request latency summary a serving run reports (all values nanoseconds).
///
/// * `ttft` — time to first token: first generated token's availability minus the
///   sequence's arrival at the scheduler, one sample per sequence that produced tokens.
/// * `tpot` — time per output token: the decode-step forward latency, one sample per
///   generated token that ran a forward pass.
/// * `pass_latency` — coordinator scheduler-pass wall time, one sample per pass.
/// * `queue_wait` — arrival → admission (page reservation granted), one sample per
///   admitted sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Time-to-first-token quantiles.
    pub ttft: QuantileSummary,
    /// Time-per-output-token quantiles.
    pub tpot: QuantileSummary,
    /// Scheduler-pass wall-time quantiles.
    pub pass_latency: QuantileSummary,
    /// Admission queue-wait quantiles.
    pub queue_wait: QuantileSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        // Rank math: p50 of 16 samples is the 8th smallest = value 7.
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn constant_distribution_collapses_all_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(7_000);
        }
        let s = QuantileSummary::from_histogram(&h);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_nanos, s.p95_nanos);
        assert_eq!(s.p95_nanos, s.p99_nanos);
        // 7000 lands in the octave starting at 4096 with 256-wide sub-buckets:
        // lower 6912, midpoint 7040 — within half a sub-bucket of the true value.
        assert_eq!(s.p50_nanos, 7_040);
        assert_eq!(s.mean_nanos, 7_000);
        assert_eq!(s.max_nanos, 7_000);
    }

    #[test]
    fn golden_quantiles_on_uniform_1_to_1000() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Golden values derived by hand from the bucket layout: the rank-500 sample is
        // 500 (bucket [496, 512) → midpoint 504), rank-950 is 950 (bucket [928, 960) →
        // 944), rank-990 is 990 (bucket [960, 992) → 976).
        assert_eq!(h.quantile(0.50), 504);
        assert_eq!(h.quantile(0.95), 944);
        assert_eq!(h.quantile(0.99), 976);
        assert_eq!(h.mean(), 500);
        assert_eq!(h.max(), 1000);
        // Every quantile is within the documented 1/16 relative error of the truth.
        for (q, truth) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q) as f64;
            assert!((got - truth).abs() / truth < 1.0 / 16.0, "q={q}: {got} vs {truth}");
        }
    }

    #[test]
    fn bimodal_distribution_separates_p50_from_p99() {
        let mut h = Histogram::new();
        for _ in 0..95 {
            h.record(1_000); // fast path
        }
        for _ in 0..5 {
            h.record(1_000_000); // tail
        }
        let s = QuantileSummary::from_histogram(&h);
        assert!(s.p50_nanos < 1_100);
        assert!(s.p99_nanos > 900_000, "p99 must land in the tail mode: {}", s.p99_nanos);
        assert!(s.p95_nanos < 1_100, "rank 95 is still the fast mode");
    }

    #[test]
    fn huge_values_do_not_overflow_the_bucket_table() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) > u64::MAX / 2);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        let s = QuantileSummary::from_histogram(&h);
        assert_eq!(s, QuantileSummary::default());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
    }
}
