//! The transformer model: prefill and decode with quantized dot products.

use mx_tensor::{kernels, Matrix};
use serde::{Deserialize, Serialize};

use crate::config::{MlpKind, ModelConfig, NormKind};
use crate::kvcache::KvCache;
use crate::quant_config::ModelQuantConfig;
use crate::weights::ModelWeights;

/// A decoder-only transformer with pluggable quantization of every dot-product operand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerModel {
    config: ModelConfig,
    weights: ModelWeights,
    quant: ModelQuantConfig,
}

impl TransformerModel {
    /// Builds the model, generating deterministic weights from the configuration's seed.
    #[must_use]
    pub fn new(config: ModelConfig, quant: ModelQuantConfig) -> Self {
        let weights = ModelWeights::generate(&config);
        TransformerModel { config, weights, quant }
    }

    /// Builds the model from explicit weights.
    #[must_use]
    pub fn with_weights(config: ModelConfig, weights: ModelWeights, quant: ModelQuantConfig) -> Self {
        TransformerModel { config, weights, quant }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The quantization configuration.
    #[must_use]
    pub fn quant(&self) -> ModelQuantConfig {
        self.quant
    }

    /// The model weights.
    #[must_use]
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Changes the quantization configuration (weights are stored unquantized and are
    /// direct-cast on every projection, so this is a pure configuration change).
    pub fn set_quant(&mut self, quant: ModelQuantConfig) {
        self.quant = quant;
    }

    /// Creates an empty KV cache sized for this model.
    #[must_use]
    pub fn new_cache(&self) -> KvCache {
        KvCache::new(self.config.layers, self.config.head_dim() * self.config.kv_heads)
    }

    /// Runs the model over `tokens`, appending to `cache`, and returns the logits for
    /// every input position as a `(tokens.len(), vocab)` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains an id outside the vocabulary.
    #[must_use]
    pub fn forward(&self, tokens: &[usize], cache: &mut KvCache) -> Matrix {
        assert!(!tokens.is_empty(), "token sequence must be non-empty");
        let h = self.config.hidden;
        let start_pos = cache.seq_len();

        // Token embeddings (vector op: BF16 precision like the baseline).
        let mut x = Matrix::from_fn(tokens.len(), h, |r, c| {
            let t = tokens[r];
            assert!(t < self.config.vocab, "token id {t} out of vocabulary");
            self.weights.embedding.get(t, c)
        });

        for layer in 0..self.config.layers {
            x = self.layer_forward(layer, &x, start_pos, cache);
        }

        // Final norm + LM head.
        let normed = self.apply_norm(&x, &self.weights.final_norm_gain, &self.weights.final_norm_bias);
        normed.matmul_quantized(&self.weights.lm_head, self.quant.lm_head)
    }

    /// Prefill convenience: runs `forward` with a fresh cache and returns `(logits, cache)`.
    #[must_use]
    pub fn prefill(&self, tokens: &[usize]) -> (Matrix, KvCache) {
        let mut cache = self.new_cache();
        let logits = self.forward(tokens, &mut cache);
        (logits, cache)
    }

    /// Decodes a single token given an existing cache, returning its logits.
    #[must_use]
    pub fn decode_step(&self, token: usize, cache: &mut KvCache) -> Vec<f32> {
        let logits = self.forward(&[token], cache);
        logits.row(0).to_vec()
    }

    /// Greedy generation of `n` tokens after prefilling `prompt`.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    #[must_use]
    pub fn generate_greedy(&self, prompt: &[usize], n: usize) -> Vec<usize> {
        let (logits, mut cache) = self.prefill(prompt);
        let mut out = Vec::with_capacity(n);
        let mut next = argmax(logits.row(logits.rows() - 1));
        for _ in 0..n {
            out.push(next);
            let step = self.decode_step(next, &mut cache);
            next = argmax(&step);
        }
        out
    }

    fn apply_norm(&self, x: &Matrix, gain: &[f32], bias: &[f32]) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let normed = match self.config.norm {
                NormKind::Rms => kernels::rmsnorm(x.row(r), gain, 1e-6),
                NormKind::Layer => kernels::layernorm(x.row(r), gain, bias, 1e-6),
            };
            out.row_mut(r).copy_from_slice(&normed);
        }
        out
    }

    fn layer_forward(&self, layer: usize, x: &Matrix, start_pos: usize, cache: &mut KvCache) -> Matrix {
        let lw = &self.weights.layers[layer];
        let cfg = &self.config;
        let head_dim = cfg.head_dim();
        let kv_dim = head_dim * cfg.kv_heads;
        let group = cfg.heads / cfg.kv_heads;
        let seq = x.rows();

        // --- Attention ---
        let normed = self.apply_norm(x, &lw.attn_norm_gain, &lw.attn_norm_bias);
        let mut q = normed.matmul_quantized(&lw.wq, self.quant.linear);
        let mut k = normed.matmul_quantized(&lw.wk, self.quant.linear);
        let v = normed.matmul_quantized(&lw.wv, self.quant.linear);

        // Rotary embeddings per head (vector op, baseline precision).
        if cfg.rope_theta > 0.0 {
            for r in 0..seq {
                let pos = start_pos + r;
                for head in 0..cfg.heads {
                    let s = head * head_dim;
                    kernels::apply_rope(&mut q.row_mut(r)[s..s + head_dim], pos, cfg.rope_theta);
                }
                for kv_head in 0..cfg.kv_heads {
                    let s = kv_head * head_dim;
                    kernels::apply_rope(&mut k.row_mut(r)[s..s + head_dim], pos, cfg.rope_theta);
                }
            }
        }

        // Append the new keys/values to the cache (stored quantized).
        for r in 0..seq {
            cache.layer_mut(layer).append(k.row(r), v.row(r), self.quant.kv_cache);
        }
        let keys = cache.layer(layer).keys();
        let values = cache.layer(layer).values();

        // Attention per query position and head, causal over the cache.
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut attn_out = Matrix::zeros(seq, cfg.heads * head_dim);
        for r in 0..seq {
            let visible = start_pos + r + 1;
            // Quantize the query row operand (it feeds a dot product against cached keys).
            let q_row = self.quant.linear.activations.quantize_dequantize(q.row(r));
            for head in 0..cfg.heads {
                let kv_head = head / group;
                let qs = head * head_dim;
                let ks = kv_head * head_dim;
                let mut scores = Vec::with_capacity(visible);
                for t in 0..visible {
                    let key_row = keys.row(t);
                    let dot: f32 =
                        q_row[qs..qs + head_dim].iter().zip(&key_row[ks..ks + head_dim]).map(|(a, b)| a * b).sum();
                    scores.push(dot * scale);
                }
                kernels::softmax_inplace(&mut scores);
                // The probability operand of the probs x V matmul is also a dot-product
                // operand; quantize it with the activation scheme.
                let probs = self.quant.attention_probs.quantize_dequantize(&scores);
                let out_slice = &mut attn_out.row_mut(r)[qs..qs + head_dim];
                for (t, &p) in probs.iter().enumerate() {
                    if p == 0.0 {
                        continue;
                    }
                    let value_row = values.row(t);
                    for (o, &vv) in out_slice.iter_mut().zip(&value_row[ks..ks + head_dim]) {
                        *o += p * vv;
                    }
                }
            }
        }
        let _ = kv_dim;

        let attn_proj = attn_out.matmul_quantized(&lw.wo, self.quant.linear);
        let x = x.add(&attn_proj);

        // --- MLP ---
        let normed = self.apply_norm(&x, &lw.mlp_norm_gain, &lw.mlp_norm_bias);
        let mlp_out = match cfg.mlp {
            MlpKind::GatedSilu => {
                let gate = normed.matmul_quantized(&lw.w_gate, self.quant.linear);
                let up = normed.matmul_quantized(&lw.w_up, self.quant.linear);
                let mut hidden = Matrix::zeros(seq, cfg.intermediate);
                for r in 0..seq {
                    for c in 0..cfg.intermediate {
                        hidden.set(r, c, kernels::silu(gate.get(r, c)) * up.get(r, c));
                    }
                }
                hidden.matmul_quantized(&lw.w_down, self.quant.linear)
            }
            MlpKind::Gelu => {
                let fc1 = normed.matmul_quantized(&lw.w_gate, self.quant.linear);
                let mut hidden = Matrix::zeros(seq, cfg.intermediate);
                for r in 0..seq {
                    for c in 0..cfg.intermediate {
                        hidden.set(r, c, kernels::gelu(fc1.get(r, c)));
                    }
                }
                hidden.matmul_quantized(&lw.w_down, self.quant.linear)
            }
        };
        x.add(&mlp_out)
    }
}

/// Index of the maximum element (first occurrence on ties).
#[must_use]
pub fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_formats::QuantScheme;

    fn tiny_model(quant: ModelQuantConfig) -> TransformerModel {
        TransformerModel::new(ModelConfig::tiny_test(7), quant)
    }

    #[test]
    fn forward_shapes() {
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let (logits, cache) = model.prefill(&[1, 2, 3, 4, 5]);
        assert_eq!(logits.shape(), (5, model.config().vocab));
        assert_eq!(cache.seq_len(), 5);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn decode_extends_cache() {
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let (_, mut cache) = model.prefill(&[1, 2, 3]);
        let logits = model.decode_step(4, &mut cache);
        assert_eq!(logits.len(), model.config().vocab);
        assert_eq!(cache.seq_len(), 4);
    }

    #[test]
    fn prefill_then_decode_matches_full_prefill() {
        // Causality check: running [a, b, c] at once must give the same last-position
        // logits as prefilling [a, b] and decoding c.
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let (full, _) = model.prefill(&[5, 9, 13]);
        let (_, mut cache) = model.prefill(&[5, 9]);
        let step = model.decode_step(13, &mut cache);
        let last = full.row(2);
        for (a, b) in last.iter().zip(&step) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn earlier_logits_unaffected_by_later_tokens() {
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let (l1, _) = model.prefill(&[3, 7, 11, 2]);
        let (l2, _) = model.prefill(&[3, 7, 99, 100]);
        for (a, b) in l1.row(1).iter().zip(l2.row(1)) {
            assert!((a - b).abs() < 1e-5, "causality violated");
        }
    }

    #[test]
    fn deterministic_given_seed_and_quant() {
        let m1 = tiny_model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let m2 = tiny_model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let (a, _) = m1.prefill(&[1, 2, 3, 4]);
        let (b, _) = m2.prefill(&[1, 2, 3, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn quantization_perturbs_but_does_not_break_logits() {
        let base = tiny_model(ModelQuantConfig::BASELINE);
        let quant = tiny_model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let tokens = [1, 2, 3, 4, 5, 6, 7, 8];
        let (lb, _) = base.prefill(&tokens);
        let (lq, _) = quant.prefill(&tokens);
        assert!(lq.data().iter().all(|v| v.is_finite()));
        assert!(lb.mse(&lq) > 0.0);
    }

    #[test]
    fn mxfp4_plus_is_closer_to_baseline_than_mxfp4() {
        // Use a configuration with pronounced activation outliers (as in the full model
        // presets) so the block-max effect dominates the logit perturbation.
        let mut cfg = ModelConfig::tiny_test(7);
        cfg.outliers = mx_tensor::OutlierSpec { channel_fraction: 0.02, magnitude: 60.0, fire_probability: 0.97 };
        let base = TransformerModel::new(cfg.clone(), ModelQuantConfig::BASELINE);
        let fp4 = TransformerModel::new(cfg.clone(), ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let fp4p = TransformerModel::new(cfg, ModelQuantConfig::uniform(QuantScheme::mxfp4_plus()));
        let tokens: Vec<usize> = (0..24).map(|i| (i * 7) % 128).collect();
        let (lb, _) = base.prefill(&tokens);
        let (l4, _) = fp4.prefill(&tokens);
        let (l4p, _) = fp4p.prefill(&tokens);
        assert!(lb.mse(&l4p) < lb.mse(&l4), "MX+ logits must be closer to the baseline");
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let a = model.generate_greedy(&[1, 2, 3], 6);
        let b = model.generate_greedy(&[1, 2, 3], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&t| t < model.config().vocab));
    }

    #[test]
    fn argmax_ties_resolve_to_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn gelu_layernorm_model_variant_runs() {
        // OPT-style: LayerNorm + GELU MLP + no RoPE.
        let mut cfg = ModelConfig::tiny_test(9);
        cfg.norm = crate::config::NormKind::Layer;
        cfg.mlp = crate::config::MlpKind::Gelu;
        cfg.rope_theta = 0.0;
        let model = TransformerModel::new(cfg, ModelQuantConfig::uniform(QuantScheme::mxfp6()));
        let (logits, _) = model.prefill(&[1, 2, 3, 4]);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_out_of_vocab_tokens() {
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let _ = model.prefill(&[9999]);
    }
}
