//! The transformer model: prefill and decode with quantized dot products.
//!
//! The decode hot path ([`DecodePath::ZeroCopy`], the default) reads cached keys/values
//! through borrowed row slices ([`crate::kvcache::LayerKvCache::key_row`]) — zero copies
//! per token — runs its score/probability operands through reusable scratch buffers, and
//! multiplies against weights that were direct-cast **once** at construction. The seed's
//! decode path — one full-cache [`Matrix`] materialization per tensor per layer per
//! forward call (O(T²) over a decoded sequence) plus per-call weight re-quantization —
//! is preserved behind [`DecodePath::SeedClone`] as a bit-identical regression baseline
//! and as the "before" arm of the decode benchmark.

use mx_tensor::{kernels, Matrix};
use serde::{Deserialize, Serialize};

use crate::config::{MlpKind, ModelConfig, NormKind};
use crate::kvcache::{AttnGeometry, KvBackend, KvCache, KvLayerReader, LayerKvCache};
use crate::quant_config::ModelQuantConfig;
use crate::weights::ModelWeights;

/// Which implementation of the decode/prefill hot path to run. Both produce bit-identical
/// logits; they differ only in work performed per token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodePath {
    /// The serving path: borrowed `&[f32]` cache views, reusable scratch buffers, shared
    /// per-row activation quantization, and weights direct-cast once at load time.
    ZeroCopy,
    /// The seed's path: owned per-call `Matrix` clones of the whole KV cache (O(T²) per
    /// decoded sequence), per-head score/probability allocations, and weight operands
    /// re-quantized on every projection. Kept as the regression/benchmark baseline.
    SeedClone,
}

/// Per-layer weights after the one-time direct cast with the configured weight schemes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CastLayerWeights {
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    w_gate: Matrix,
    w_up: Matrix,
    w_down: Matrix,
}

/// All weight operands quantized once (column-blocked along the reduction dimension),
/// exactly as `matmul_quantized` would per call — precomputing them is bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CastWeights {
    layers: Vec<CastLayerWeights>,
    lm_head: Matrix,
}

impl CastWeights {
    fn cast(weights: &ModelWeights, quant: &ModelQuantConfig) -> Self {
        let w = quant.linear.weights;
        CastWeights {
            layers: weights
                .layers
                .iter()
                .map(|lw| CastLayerWeights {
                    wq: lw.wq.quantize_columns(w),
                    wk: lw.wk.quantize_columns(w),
                    wv: lw.wv.quantize_columns(w),
                    wo: lw.wo.quantize_columns(w),
                    w_gate: lw.w_gate.quantize_columns(w),
                    w_up: lw.w_up.quantize_columns(w),
                    w_down: lw.w_down.quantize_columns(w),
                })
                .collect(),
            lm_head: weights.lm_head.quantize_columns(quant.lm_head.weights),
        }
    }
}

/// A decoder-only transformer with pluggable quantization of every dot-product operand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerModel {
    config: ModelConfig,
    weights: ModelWeights,
    quant: ModelQuantConfig,
    cast: CastWeights,
}

impl TransformerModel {
    /// Builds the model, generating deterministic weights from the configuration's seed.
    #[must_use]
    pub fn new(config: ModelConfig, quant: ModelQuantConfig) -> Self {
        let weights = ModelWeights::generate(&config);
        TransformerModel::with_weights(config, weights, quant)
    }

    /// Builds the model from explicit weights (direct-casting them once for the zero-copy
    /// serving path).
    #[must_use]
    pub fn with_weights(config: ModelConfig, weights: ModelWeights, quant: ModelQuantConfig) -> Self {
        let cast = CastWeights::cast(&weights, &quant);
        TransformerModel { config, weights, quant, cast }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The quantization configuration.
    #[must_use]
    pub fn quant(&self) -> ModelQuantConfig {
        self.quant
    }

    /// The model weights.
    #[must_use]
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Changes the quantization configuration. The unquantized weights are retained, so
    /// this re-runs the one-time direct cast under the new weight schemes.
    pub fn set_quant(&mut self, quant: ModelQuantConfig) {
        self.quant = quant;
        self.cast = CastWeights::cast(&self.weights, &self.quant);
    }

    /// Creates an empty KV cache sized for this model.
    #[must_use]
    pub fn new_cache(&self) -> KvCache {
        KvCache::new(self.config.layers, self.config.head_dim() * self.config.kv_heads)
    }

    /// Runs the model over `tokens`, appending to `cache`, and returns the logits for
    /// every input position as a `(tokens.len(), vocab)` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains an id outside the vocabulary.
    #[must_use]
    pub fn forward(&self, tokens: &[usize], cache: &mut KvCache) -> Matrix {
        self.forward_with_path(tokens, cache, DecodePath::ZeroCopy)
    }

    /// [`TransformerModel::forward`] with an explicit decode path. Both paths are
    /// bit-identical; [`DecodePath::SeedClone`] exists only to pin that equivalence in
    /// tests and to benchmark the seed's clone-based decode behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains an id outside the vocabulary.
    #[must_use]
    pub fn forward_with_path(&self, tokens: &[usize], cache: &mut KvCache, path: DecodePath) -> Matrix {
        match path {
            DecodePath::ZeroCopy => self.forward_backend(tokens, cache),
            DecodePath::SeedClone => self.forward_seed(tokens, cache),
        }
    }

    /// The zero-copy forward pass over any cache backend: the `f32` [`KvCache`] (where it
    /// equals [`DecodePath::ZeroCopy`] exactly) or a bit-packed
    /// [`PagedKvCache`](crate::paging::PagedKvCache). Because every backend serves rows
    /// equal to `scheme.quantize_dequantize(row)` bit for bit, the logits — and therefore
    /// the generated tokens — do not depend on the backend.
    ///
    /// The pass always *continues* from `cache.seq_len()`: positions, rotary phases and
    /// causal visibility all derive from the backend's current length, and every
    /// per-position operation is row-independent. Prefix sharing relies on exactly this:
    /// prefilling only the suffix of a prompt on top of shared (already-populated) cache
    /// rows produces logits bit-identical to a full prefill.
    ///
    /// Allocates a fresh [`KvBackend::Scratch`] per call; loops that decode many tokens
    /// (or worker threads stepping many sequences) should hold one scratch and call
    /// [`TransformerModel::forward_backend_with_scratch`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains an id outside the vocabulary.
    #[must_use]
    pub fn forward_backend<B: KvBackend>(&self, tokens: &[usize], cache: &mut B) -> Matrix {
        let mut scratch = B::Scratch::default();
        self.forward_backend_with_scratch(tokens, cache, &mut scratch)
    }

    /// [`TransformerModel::forward_backend`] decoding cache rows through a caller-owned
    /// `scratch` — the reusable working memory a decode worker thread carries across all
    /// the sequences it steps (see
    /// [`PagedScratch`](crate::paging::PagedScratch)).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains an id outside the vocabulary.
    #[must_use]
    pub fn forward_backend_with_scratch<B: KvBackend>(
        &self,
        tokens: &[usize],
        cache: &mut B,
        scratch: &mut B::Scratch,
    ) -> Matrix {
        assert!(!tokens.is_empty(), "token sequence must be non-empty");
        let start_pos = cache.seq_len();
        let mut x = self.embed(tokens);
        for layer in 0..self.config.layers {
            x = self.layer_forward_backend(layer, &x, start_pos, cache, scratch);
        }
        let normed = self.apply_norm(&x, &self.weights.final_norm_gain, &self.weights.final_norm_bias);
        normed.quantize_rows(self.quant.lm_head.activations).matmul(&self.cast.lm_head)
    }

    /// The seed's clone-based forward pass (see [`DecodePath::SeedClone`]).
    fn forward_seed(&self, tokens: &[usize], cache: &mut KvCache) -> Matrix {
        assert!(!tokens.is_empty(), "token sequence must be non-empty");
        let start_pos = cache.seq_len();
        let mut x = self.embed(tokens);
        for layer in 0..self.config.layers {
            x = self.layer_forward_seed(layer, &x, start_pos, cache);
        }
        let normed = self.apply_norm(&x, &self.weights.final_norm_gain, &self.weights.final_norm_bias);
        normed.matmul_quantized(&self.weights.lm_head, self.quant.lm_head)
    }

    /// Token embeddings (vector op: BF16 precision like the baseline).
    fn embed(&self, tokens: &[usize]) -> Matrix {
        Matrix::from_fn(tokens.len(), self.config.hidden, |r, c| {
            let t = tokens[r];
            assert!(t < self.config.vocab, "token id {t} out of vocabulary");
            self.weights.embedding.get(t, c)
        })
    }

    /// Prefill convenience: runs `forward` with a fresh cache and returns `(logits, cache)`.
    #[must_use]
    pub fn prefill(&self, tokens: &[usize]) -> (Matrix, KvCache) {
        let mut cache = self.new_cache();
        let logits = self.forward(tokens, &mut cache);
        (logits, cache)
    }

    /// Decodes a single token given an existing cache, returning its logits.
    #[must_use]
    pub fn decode_step(&self, token: usize, cache: &mut KvCache) -> Vec<f32> {
        self.decode_step_with_path(token, cache, DecodePath::ZeroCopy)
    }

    /// [`TransformerModel::decode_step`] with an explicit decode path
    /// (see [`DecodePath`]).
    #[must_use]
    pub fn decode_step_with_path(&self, token: usize, cache: &mut KvCache, path: DecodePath) -> Vec<f32> {
        let logits = self.forward_with_path(&[token], cache, path);
        logits.row(0).to_vec()
    }

    /// Decodes a single token over any cache backend
    /// (see [`TransformerModel::forward_backend`]).
    #[must_use]
    pub fn decode_step_backend<B: KvBackend>(&self, token: usize, cache: &mut B) -> Vec<f32> {
        let logits = self.forward_backend(&[token], cache);
        logits.row(0).to_vec()
    }

    /// [`TransformerModel::decode_step_backend`] decoding cache rows through a
    /// caller-owned scratch (see [`TransformerModel::forward_backend_with_scratch`]).
    #[must_use]
    pub fn decode_step_backend_with_scratch<B: KvBackend>(
        &self,
        token: usize,
        cache: &mut B,
        scratch: &mut B::Scratch,
    ) -> Vec<f32> {
        let logits = self.forward_backend_with_scratch(&[token], cache, scratch);
        logits.row(0).to_vec()
    }

    /// Greedy generation of `n` tokens after prefilling `prompt`.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    #[must_use]
    pub fn generate_greedy(&self, prompt: &[usize], n: usize) -> Vec<usize> {
        let (logits, mut cache) = self.prefill(prompt);
        let mut out = Vec::with_capacity(n);
        let mut next = argmax(logits.row(logits.rows() - 1));
        for _ in 0..n {
            out.push(next);
            let step = self.decode_step(next, &mut cache);
            next = argmax(&step);
        }
        out
    }

    /// Zero-copy attention over any cache backend: cached keys/values are read row by row
    /// through a [`KvLayerReader`] (borrowed slices on the `f32` backend, per-row packed
    /// decodes on the paged backend), the cache is walked position-outer so every cached
    /// row is loaded once per query row (not once per head), and the
    /// score/probability/query operands go through reusable scratch buffers.
    ///
    /// Backends with fused row kernels ([`KvLayerReader::fused_key_dots`] /
    /// [`KvLayerReader::fused_value_accumulate`]) compute each position's per-head dot
    /// products and value accumulation straight from their packed storage, block by block
    /// in registers, so the full `f32` row is never materialized; backends without them
    /// fall back to the materializing row reads below. Both routes — and
    /// [`TransformerModel::attention_materialized`] — are bit-identical: every per-(head,
    /// position) dot product, softmax and accumulation runs in the same order on the same
    /// values.
    fn attention_zero_copy<R: KvLayerReader>(
        &self,
        reader: &mut R,
        q: &Matrix,
        start_pos: usize,
        attn_out: &mut Matrix,
    ) {
        let cfg = &self.config;
        let head_dim = cfg.head_dim();
        let group = cfg.heads / cfg.kv_heads;
        let geom = AttnGeometry { heads: cfg.heads, head_dim, group };
        let scale = 1.0 / (head_dim as f32).sqrt();
        let max_visible = start_pos + q.rows();
        let mut q_buf = vec![0.0_f32; cfg.heads * head_dim];
        let mut dots = vec![0.0_f32; cfg.heads];
        let mut probs_t = vec![0.0_f32; cfg.heads];
        let mut scores = Vec::with_capacity(cfg.heads * max_visible);
        let mut probs = Vec::with_capacity(cfg.heads * max_visible);
        for r in 0..q.rows() {
            let visible = start_pos + r + 1;
            // Quantize the query row operand (it feeds a dot product against cached keys).
            self.quant.linear.activations.quantize_dequantize_into(q.row(r), &mut q_buf);
            scores.resize(cfg.heads * visible, 0.0);
            for t in 0..visible {
                if reader.fused_key_dots(t, &q_buf, geom, &mut dots) {
                    for (head, &dot) in dots.iter().enumerate() {
                        scores[head * visible + t] = dot * scale;
                    }
                    continue;
                }
                let key_row = reader.key_row(t);
                for head in 0..cfg.heads {
                    let qs = head * head_dim;
                    let ks = (head / group) * head_dim;
                    let dot: f32 =
                        q_buf[qs..qs + head_dim].iter().zip(&key_row[ks..ks + head_dim]).map(|(a, b)| a * b).sum();
                    scores[head * visible + t] = dot * scale;
                }
            }
            // The probability operand of the probs x V matmul is also a dot-product
            // operand; quantize it with the activation scheme.
            probs.resize(cfg.heads * visible, 0.0);
            for head in 0..cfg.heads {
                let s = &mut scores[head * visible..(head + 1) * visible];
                kernels::softmax_inplace(s);
                self.quant
                    .attention_probs
                    .quantize_dequantize_into(s, &mut probs[head * visible..(head + 1) * visible]);
            }
            let out_row = attn_out.row_mut(r);
            for t in 0..visible {
                for (head, p) in probs_t.iter_mut().enumerate() {
                    *p = probs[head * visible + t];
                }
                if reader.fused_value_accumulate(t, &probs_t, geom, out_row) {
                    continue;
                }
                let value_row = reader.value_row(t);
                for head in 0..cfg.heads {
                    let p = probs[head * visible + t];
                    if p == 0.0 {
                        continue;
                    }
                    let qs = head * head_dim;
                    let ks = (head / group) * head_dim;
                    for (o, &vv) in out_row[qs..qs + head_dim].iter_mut().zip(&value_row[ks..ks + head_dim]) {
                        *o += p * vv;
                    }
                }
            }
        }
    }

    /// The seed's clone-based attention: materializes the whole cache into owned
    /// matrices once per call and allocates per-head score/probability vectors.
    /// Kept (and benchmarked) as the regression baseline for the zero-copy path.
    fn attention_materialized(&self, lcache: &LayerKvCache, q: &Matrix, start_pos: usize, attn_out: &mut Matrix) {
        let cfg = &self.config;
        let head_dim = cfg.head_dim();
        let group = cfg.heads / cfg.kv_heads;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let keys = lcache.keys();
        let values = lcache.values();
        for r in 0..q.rows() {
            let visible = start_pos + r + 1;
            let q_row = self.quant.linear.activations.quantize_dequantize(q.row(r));
            for head in 0..cfg.heads {
                let qs = head * head_dim;
                let ks = (head / group) * head_dim;
                let mut scores = Vec::with_capacity(visible);
                for t in 0..visible {
                    let key_row = keys.row(t);
                    let dot: f32 =
                        q_row[qs..qs + head_dim].iter().zip(&key_row[ks..ks + head_dim]).map(|(a, b)| a * b).sum();
                    scores.push(dot * scale);
                }
                kernels::softmax_inplace(&mut scores);
                let probs = self.quant.attention_probs.quantize_dequantize(&scores);
                let out_slice = &mut attn_out.row_mut(r)[qs..qs + head_dim];
                for (t, &p) in probs.iter().enumerate() {
                    if p == 0.0 {
                        continue;
                    }
                    let value_row = values.row(t);
                    for (o, &vv) in out_slice.iter_mut().zip(&value_row[ks..ks + head_dim]) {
                        *o += p * vv;
                    }
                }
            }
        }
    }

    fn apply_norm(&self, x: &Matrix, gain: &[f32], bias: &[f32]) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let normed = match self.config.norm {
                NormKind::Rms => kernels::rmsnorm(x.row(r), gain, 1e-6),
                NormKind::Layer => kernels::layernorm(x.row(r), gain, bias, 1e-6),
            };
            out.row_mut(r).copy_from_slice(&normed);
        }
        out
    }

    /// Applies rotary embeddings to the query/key rows in place (vector op, baseline
    /// precision).
    fn apply_rotary(&self, q: &mut Matrix, k: &mut Matrix, start_pos: usize) {
        let cfg = &self.config;
        if cfg.rope_theta <= 0.0 {
            return;
        }
        let head_dim = cfg.head_dim();
        for r in 0..q.rows() {
            let pos = start_pos + r;
            for head in 0..cfg.heads {
                let s = head * head_dim;
                kernels::apply_rope(&mut q.row_mut(r)[s..s + head_dim], pos, cfg.rope_theta);
            }
            for kv_head in 0..cfg.kv_heads {
                let s = kv_head * head_dim;
                kernels::apply_rope(&mut k.row_mut(r)[s..s + head_dim], pos, cfg.rope_theta);
            }
        }
    }

    /// One transformer layer on the zero-copy path, generic over the cache backend:
    /// the shared activation operand is quantized once per projection group and
    /// multiplied against the pre-cast weights; cache reads go through the backend's
    /// per-layer row reader.
    fn layer_forward_backend<B: KvBackend>(
        &self,
        layer: usize,
        x: &Matrix,
        start_pos: usize,
        cache: &mut B,
        scratch: &mut B::Scratch,
    ) -> Matrix {
        let lw = &self.weights.layers[layer];
        let cast = &self.cast.layers[layer];
        let cfg = &self.config;
        let seq = x.rows();

        // --- Attention ---
        let normed = self.apply_norm(x, &lw.attn_norm_gain, &lw.attn_norm_bias);
        let (mut q, mut k, v) = {
            // Quantize the shared activation operand once for all three projections
            // and multiply against the pre-cast weights.
            let a = normed.quantize_rows(self.quant.linear.activations);
            (a.matmul(&cast.wq), a.matmul(&cast.wk), a.matmul(&cast.wv))
        };
        self.apply_rotary(&mut q, &mut k, start_pos);

        // Append the new keys/values to the cache (stored quantized).
        for r in 0..seq {
            cache.append(layer, k.row(r), v.row(r), self.quant.kv_cache);
        }

        // Attention per query position and head, causal over the cache.
        let mut attn_out = Matrix::zeros(seq, cfg.heads * cfg.head_dim());
        let mut reader = cache.layer_reader(layer, scratch);
        self.attention_zero_copy(&mut reader, &q, start_pos, &mut attn_out);
        drop(reader);

        let attn_proj = attn_out.quantize_rows(self.quant.linear.activations).matmul(&cast.wo);
        let x = x.add(&attn_proj);

        // --- MLP ---
        let normed = self.apply_norm(&x, &lw.mlp_norm_gain, &lw.mlp_norm_bias);
        let project = |cast_w: &Matrix, activations: &Matrix| {
            activations.quantize_rows(self.quant.linear.activations).matmul(cast_w)
        };
        let mlp_out = match cfg.mlp {
            MlpKind::GatedSilu => {
                let (gate, up) = {
                    let a = normed.quantize_rows(self.quant.linear.activations);
                    (a.matmul(&cast.w_gate), a.matmul(&cast.w_up))
                };
                project(&cast.w_down, &self.gated_silu_hidden(&gate, &up))
            }
            MlpKind::Gelu => {
                let fc1 = project(&cast.w_gate, &normed);
                project(&cast.w_down, &self.gelu_hidden(&fc1))
            }
        };
        x.add(&mlp_out)
    }

    /// One transformer layer on the seed's clone-based path: weight operands re-quantized
    /// per projection, whole-cache materialization per attention call.
    fn layer_forward_seed(&self, layer: usize, x: &Matrix, start_pos: usize, cache: &mut KvCache) -> Matrix {
        let lw = &self.weights.layers[layer];
        let cfg = &self.config;
        let seq = x.rows();

        // --- Attention ---
        let normed = self.apply_norm(x, &lw.attn_norm_gain, &lw.attn_norm_bias);
        let mut q = normed.matmul_quantized(&lw.wq, self.quant.linear);
        let mut k = normed.matmul_quantized(&lw.wk, self.quant.linear);
        let v = normed.matmul_quantized(&lw.wv, self.quant.linear);
        self.apply_rotary(&mut q, &mut k, start_pos);

        for r in 0..seq {
            cache.layer_mut(layer).append(k.row(r), v.row(r), self.quant.kv_cache);
        }

        let mut attn_out = Matrix::zeros(seq, cfg.heads * cfg.head_dim());
        self.attention_materialized(cache.layer(layer), &q, start_pos, &mut attn_out);

        let attn_proj = attn_out.matmul_quantized(&lw.wo, self.quant.linear);
        let x = x.add(&attn_proj);

        // --- MLP ---
        let normed = self.apply_norm(&x, &lw.mlp_norm_gain, &lw.mlp_norm_bias);
        let project = |raw: &Matrix, activations: &Matrix| activations.matmul_quantized(raw, self.quant.linear);
        let mlp_out = match cfg.mlp {
            MlpKind::GatedSilu => {
                let gate = normed.matmul_quantized(&lw.w_gate, self.quant.linear);
                let up = normed.matmul_quantized(&lw.w_up, self.quant.linear);
                project(&lw.w_down, &self.gated_silu_hidden(&gate, &up))
            }
            MlpKind::Gelu => {
                let fc1 = project(&lw.w_gate, &normed);
                project(&lw.w_down, &self.gelu_hidden(&fc1))
            }
        };
        x.add(&mlp_out)
    }

    /// Element-wise `silu(gate) * up` of the gated MLP.
    fn gated_silu_hidden(&self, gate: &Matrix, up: &Matrix) -> Matrix {
        let mut hidden = Matrix::zeros(gate.rows(), self.config.intermediate);
        for r in 0..gate.rows() {
            for c in 0..self.config.intermediate {
                hidden.set(r, c, kernels::silu(gate.get(r, c)) * up.get(r, c));
            }
        }
        hidden
    }

    /// Element-wise GELU of the first MLP projection.
    fn gelu_hidden(&self, fc1: &Matrix) -> Matrix {
        let mut hidden = Matrix::zeros(fc1.rows(), self.config.intermediate);
        for r in 0..fc1.rows() {
            for c in 0..self.config.intermediate {
                hidden.set(r, c, kernels::gelu(fc1.get(r, c)));
            }
        }
        hidden
    }
}

/// Index of the maximum element (first occurrence on ties).
#[must_use]
pub fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_formats::QuantScheme;

    fn tiny_model(quant: ModelQuantConfig) -> TransformerModel {
        TransformerModel::new(ModelConfig::tiny_test(7), quant)
    }

    #[test]
    fn forward_shapes() {
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let (logits, cache) = model.prefill(&[1, 2, 3, 4, 5]);
        assert_eq!(logits.shape(), (5, model.config().vocab));
        assert_eq!(cache.seq_len(), 5);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn decode_extends_cache() {
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let (_, mut cache) = model.prefill(&[1, 2, 3]);
        let logits = model.decode_step(4, &mut cache);
        assert_eq!(logits.len(), model.config().vocab);
        assert_eq!(cache.seq_len(), 4);
    }

    #[test]
    fn prefill_then_decode_matches_full_prefill() {
        // Causality check: running [a, b, c] at once must give the same last-position
        // logits as prefilling [a, b] and decoding c.
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let (full, _) = model.prefill(&[5, 9, 13]);
        let (_, mut cache) = model.prefill(&[5, 9]);
        let step = model.decode_step(13, &mut cache);
        let last = full.row(2);
        for (a, b) in last.iter().zip(&step) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn earlier_logits_unaffected_by_later_tokens() {
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let (l1, _) = model.prefill(&[3, 7, 11, 2]);
        let (l2, _) = model.prefill(&[3, 7, 99, 100]);
        for (a, b) in l1.row(1).iter().zip(l2.row(1)) {
            assert!((a - b).abs() < 1e-5, "causality violated");
        }
    }

    #[test]
    fn deterministic_given_seed_and_quant() {
        let m1 = tiny_model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let m2 = tiny_model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let (a, _) = m1.prefill(&[1, 2, 3, 4]);
        let (b, _) = m2.prefill(&[1, 2, 3, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn quantization_perturbs_but_does_not_break_logits() {
        let base = tiny_model(ModelQuantConfig::BASELINE);
        let quant = tiny_model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let tokens = [1, 2, 3, 4, 5, 6, 7, 8];
        let (lb, _) = base.prefill(&tokens);
        let (lq, _) = quant.prefill(&tokens);
        assert!(lq.data().iter().all(|v| v.is_finite()));
        assert!(lb.mse(&lq) > 0.0);
    }

    #[test]
    fn mxfp4_plus_is_closer_to_baseline_than_mxfp4() {
        // Use a configuration with pronounced activation outliers (as in the full model
        // presets) so the block-max effect dominates the logit perturbation.
        let mut cfg = ModelConfig::tiny_test(7);
        cfg.outliers = mx_tensor::OutlierSpec { channel_fraction: 0.02, magnitude: 60.0, fire_probability: 0.97 };
        let base = TransformerModel::new(cfg.clone(), ModelQuantConfig::BASELINE);
        let fp4 = TransformerModel::new(cfg.clone(), ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let fp4p = TransformerModel::new(cfg, ModelQuantConfig::uniform(QuantScheme::mxfp4_plus()));
        let tokens: Vec<usize> = (0..24).map(|i| (i * 7) % 128).collect();
        let (lb, _) = base.prefill(&tokens);
        let (l4, _) = fp4.prefill(&tokens);
        let (l4p, _) = fp4p.prefill(&tokens);
        assert!(lb.mse(&l4p) < lb.mse(&l4), "MX+ logits must be closer to the baseline");
    }

    #[test]
    fn view_and_materialize_modes_are_bit_identical() {
        // The zero-copy attention path must reproduce the clone-based seed path exactly,
        // not approximately — same dot products, same softmax inputs, same accumulation
        // order.
        for quant in [
            ModelQuantConfig::BASELINE,
            ModelQuantConfig::uniform(QuantScheme::mxfp4()),
            ModelQuantConfig::a_mxfp4_plus(),
        ] {
            let model = tiny_model(quant);
            let prompt = [3, 1, 4, 1, 5, 9, 2, 6];
            let mut cache_v = model.new_cache();
            let mut cache_m = model.new_cache();
            let lv = model.forward_with_path(&prompt, &mut cache_v, DecodePath::ZeroCopy);
            let lm = model.forward_with_path(&prompt, &mut cache_m, DecodePath::SeedClone);
            assert_eq!(lv, lm, "prefill logits diverge under {}", quant.name());
            let mut next = argmax(lv.row(lv.rows() - 1));
            for step in 0..8 {
                let sv = model.decode_step_with_path(next, &mut cache_v, DecodePath::ZeroCopy);
                let sm = model.decode_step_with_path(next, &mut cache_m, DecodePath::SeedClone);
                assert_eq!(sv, sm, "decode step {step} logits diverge under {}", quant.name());
                next = argmax(&sv);
            }
            for l in 0..cache_v.num_layers() {
                assert_eq!(cache_v.layer(l), cache_m.layer(l), "cache contents diverge");
            }
        }
    }

    #[test]
    fn paged_backend_is_bit_identical_to_f32_zero_copy() {
        // The packed-page backend must reproduce the f32 backend exactly — same logits at
        // every step — because the row codec round-trips the scheme's quantization bit
        // for bit. Checked under an MX scheme (bit-packed pages) and the baseline
        // (fallback f32 pages).
        use crate::paging::{PagePool, PagedKvCache};
        use mx_formats::RowCodec;
        for quant in [ModelQuantConfig::uniform(QuantScheme::mxfp4()), ModelQuantConfig::BASELINE] {
            let model = tiny_model(quant);
            let cfg = model.config().clone();
            let kv_dim = cfg.head_dim() * cfg.kv_heads;
            let scheme = quant.kv_cache;
            let pool = PagePool::for_kv_rows(16, 8, RowCodec::for_scheme(scheme), kv_dim).shared();
            let mut paged = PagedKvCache::new(&pool, cfg.layers, kv_dim, scheme, 30).unwrap();
            let mut flat = model.new_cache();
            let prompt = [3, 1, 4, 1, 5];
            let lp = model.forward_backend(&prompt, &mut paged);
            let lf = model.forward(&prompt, &mut flat);
            assert_eq!(lp, lf, "prefill logits diverge under {}", quant.name());
            let mut next = argmax(lp.row(lp.rows() - 1));
            for step in 0..24 {
                let sp = model.decode_step_backend(next, &mut paged);
                let sf = model.decode_step(next, &mut flat);
                assert_eq!(sp, sf, "decode step {step} diverges under {}", quant.name());
                next = argmax(&sp);
            }
            assert_eq!(paged.seq_len(), flat.seq_len());
            assert_eq!(crate::kvcache::KvBackend::materializations(&paged), 0);
        }
    }

    #[test]
    fn default_decode_path_never_materializes_the_cache() {
        let model = tiny_model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let (logits, mut cache) = model.prefill(&[1, 2, 3]);
        let mut next = argmax(logits.row(logits.rows() - 1));
        for _ in 0..16 {
            next = argmax(&model.decode_step(next, &mut cache));
        }
        assert_eq!(cache.seq_len(), 19);
        assert_eq!(cache.materializations(), 0, "hot path must read the cache through views only");
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let a = model.generate_greedy(&[1, 2, 3], 6);
        let b = model.generate_greedy(&[1, 2, 3], 6);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&t| t < model.config().vocab));
    }

    #[test]
    fn argmax_ties_resolve_to_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn gelu_layernorm_model_variant_runs() {
        // OPT-style: LayerNorm + GELU MLP + no RoPE.
        let mut cfg = ModelConfig::tiny_test(9);
        cfg.norm = crate::config::NormKind::Layer;
        cfg.mlp = crate::config::MlpKind::Gelu;
        cfg.rope_theta = 0.0;
        let model = TransformerModel::new(cfg, ModelQuantConfig::uniform(QuantScheme::mxfp6()));
        let (logits, _) = model.prefill(&[1, 2, 3, 4]);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_out_of_vocab_tokens() {
        let model = tiny_model(ModelQuantConfig::BASELINE);
        let _ = model.prefill(&[9999]);
    }
}
