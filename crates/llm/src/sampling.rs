//! Token-sampling policies for the serving engine: greedy, top-k and top-p (nucleus).
//!
//! Every sequence owns its sampling configuration **and its RNG state**
//! ([`SeqRng`], a SplitMix64 stream seeded from the run seed and the sequence id), so
//! sampling is deterministic given `(seed, sequence id, logits)` and — because the
//! quantized decode paths produce bit-identical logits on every backend and thread
//! count — the sampled token streams are reproducible across the f32 / paged backends
//! and across any `num_threads`. Thread safety falls out of ownership: no sampler state
//! is shared between sequences, so there is nothing to lock.
//!
//! Greedy sampling ([`SamplingPolicy::Greedy`]) is exactly [`crate::model::argmax`] —
//! ties resolve to the lowest token id — and [`Sampling::GREEDY`] is the default of
//! every `submit` call, preserving the engine's original behaviour. Top-k keeps the `k`
//! highest-probability tokens; top-p keeps the smallest prefix of the
//! probability-sorted vocabulary whose cumulative mass reaches `p` (always at least one
//! token). Both renormalize and draw from the kept set; ranking ties break toward the
//! lower token id so the kept set is deterministic.

use crate::model::argmax;

/// How the next token is chosen from a decode step's logits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingPolicy {
    /// Always the highest-probability token (ties to the lowest id). Deterministic; the
    /// RNG is never consulted.
    Greedy,
    /// Sample from the `k` highest-probability tokens after temperature scaling.
    TopK {
        /// Number of tokens kept (clamped to the vocabulary size; must be ≥ 1).
        k: usize,
    },
    /// Nucleus sampling: sample from the smallest probability-sorted prefix whose
    /// cumulative mass is ≥ `p`.
    TopP {
        /// Cumulative probability mass kept, in `(0, 1]`.
        p: f32,
    },
}

/// A full sampling configuration: policy, softmax temperature and RNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampling {
    /// The token-selection policy.
    pub policy: SamplingPolicy,
    /// Softmax temperature applied to the logits before top-k / top-p (must be > 0;
    /// ignored by greedy).
    pub temperature: f32,
    /// Base seed of the per-sequence RNG streams (each sequence derives its own stream
    /// from this and its id).
    pub seed: u64,
}

impl Sampling {
    /// Greedy decoding — the engine's default, identical to the pre-sampling behaviour.
    pub const GREEDY: Sampling = Sampling { policy: SamplingPolicy::Greedy, temperature: 1.0, seed: 0 };

    /// Top-k sampling at `temperature` with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or `temperature` is not positive.
    #[must_use]
    pub fn top_k(k: usize, temperature: f32, seed: u64) -> Self {
        assert!(k >= 1, "top-k needs k >= 1");
        assert!(temperature > 0.0, "temperature must be positive");
        Sampling { policy: SamplingPolicy::TopK { k }, temperature, seed }
    }

    /// Top-p (nucleus) sampling at `temperature` with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]` or `temperature` is not positive.
    #[must_use]
    pub fn top_p(p: f32, temperature: f32, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "top-p needs p in (0, 1]");
        assert!(temperature > 0.0, "temperature must be positive");
        Sampling { policy: SamplingPolicy::TopP { p }, temperature, seed }
    }
}

/// A per-sequence SplitMix64 stream: 8 bytes of owned state, `Send + Sync`, and cheap
/// enough to embed in every [`Sequence`](crate::serving::Sequence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqRng {
    state: u64,
}

impl SeqRng {
    /// A stream deterministically derived from `seed` and a stream id (the sequence id),
    /// decorrelated by one warm-up step so neighbouring ids do not produce neighbouring
    /// first draws.
    #[must_use]
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = SeqRng { state: seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F) };
        let _ = rng.next_u64();
        rng
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 24 bits of mantissa.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Draws the next token from `logits` under `sampling`, advancing `rng` (greedy never
/// consults it).
///
/// # Panics
///
/// Panics if `logits` is empty.
#[must_use]
pub fn sample_token(logits: &[f32], sampling: &Sampling, rng: &mut SeqRng) -> usize {
    assert!(!logits.is_empty(), "cannot sample from empty logits");
    let (keep_k, keep_p) = match sampling.policy {
        SamplingPolicy::Greedy => return argmax(logits),
        SamplingPolicy::TopK { k } => (k.min(logits.len()), None),
        SamplingPolicy::TopP { p } => (logits.len(), Some(p)),
    };
    // Temperature-scaled, max-subtracted softmax numerators (the common normalizer
    // cancels in the renormalized draw below).
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &l| m.max(l));
    let weights: Vec<f32> = logits.iter().map(|&l| ((l - max) / sampling.temperature).exp()).collect();
    // Rank token ids by probability; ties break toward the lower id so the kept set (and
    // therefore the draw) is deterministic. Top-k needs only the k best: partial-select
    // first so the O(V log V) full sort is paid only by top-p (which must walk the
    // sorted tail to find its nucleus).
    let mut ranked: Vec<usize> = (0..weights.len()).collect();
    let by_weight_desc = |&a: &usize, &b: &usize| weights[b].total_cmp(&weights[a]).then(a.cmp(&b));
    if keep_p.is_none() && keep_k < ranked.len() {
        ranked.select_nth_unstable_by(keep_k - 1, by_weight_desc);
        ranked.truncate(keep_k);
    }
    // Unstable is fine: the comparator is a total order (the id tiebreak), so the
    // ranking is unique regardless of sort stability.
    ranked.sort_unstable_by(by_weight_desc);
    let kept = match keep_p {
        None => keep_k,
        Some(p) => {
            let total: f32 = weights.iter().sum();
            let mut cumulative = 0.0;
            let mut kept = 0;
            for &t in &ranked {
                cumulative += weights[t] / total;
                kept += 1;
                if cumulative >= p {
                    break;
                }
            }
            kept.max(1)
        }
    };
    ranked.truncate(kept);
    let total: f32 = ranked.iter().map(|&t| weights[t]).sum();
    let mut u = rng.next_f32() * total;
    for &t in &ranked {
        u -= weights[t];
        if u <= 0.0 {
            return t;
        }
    }
    // Floating-point slack can leave a sliver of u; it belongs to the last kept token.
    // `kept.max(1)` and the non-empty-logits assert above keep the set non-empty, so
    // the greedy fallback is unreachable in practice.
    ranked.last().copied().unwrap_or_else(|| argmax(logits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Vec<f32> {
        vec![0.1, 2.5, -1.0, 2.5, 0.7, -3.2, 1.9, 0.0]
    }

    #[test]
    fn greedy_is_argmax_with_lowest_id_ties() {
        let mut rng = SeqRng::new(1, 0);
        assert_eq!(sample_token(&logits(), &Sampling::GREEDY, &mut rng), 1);
        // The RNG is untouched by greedy.
        assert_eq!(rng, SeqRng::new(1, 0));
    }

    #[test]
    fn top_k_of_one_is_greedy_for_any_seed() {
        for seed in 0..32u64 {
            let mut rng = SeqRng::new(seed, 3);
            assert_eq!(sample_token(&logits(), &Sampling::top_k(1, 0.8, seed), &mut rng), 1);
        }
    }

    #[test]
    fn tiny_top_p_keeps_only_the_mode() {
        // p small enough that the single highest-probability token already covers it.
        for seed in 0..32u64 {
            let mut rng = SeqRng::new(seed, 9);
            assert_eq!(sample_token(&logits(), &Sampling::top_p(1e-6, 1.0, seed), &mut rng), 1);
        }
    }

    #[test]
    fn top_k_only_emits_the_k_most_probable_tokens() {
        let sampling = Sampling::top_k(3, 1.0, 42);
        let mut rng = SeqRng::new(sampling.seed, 0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(sample_token(&logits(), &sampling, &mut rng));
        }
        // Top-3 by probability (ties toward lower id): tokens 1, 3, 6.
        assert!(seen.iter().all(|t| [1usize, 3, 6].contains(t)), "out-of-set token in {seen:?}");
        assert!(seen.len() > 1, "500 draws at temperature 1.0 must not collapse to one token");
    }

    #[test]
    fn full_top_p_covers_the_distribution_deterministically() {
        let sampling = Sampling::top_p(1.0, 1.0, 7);
        let a: Vec<usize> = {
            let mut rng = SeqRng::new(sampling.seed, 5);
            (0..64).map(|_| sample_token(&logits(), &sampling, &mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = SeqRng::new(sampling.seed, 5);
            (0..64).map(|_| sample_token(&logits(), &sampling, &mut rng)).collect()
        };
        assert_eq!(a, b, "same seed and stream must reproduce the same draws");
        let c: Vec<usize> = {
            let mut rng = SeqRng::new(sampling.seed, 6);
            (0..64).map(|_| sample_token(&logits(), &sampling, &mut rng)).collect()
        };
        assert_ne!(a, c, "different streams must decorrelate");
    }

    #[test]
    fn temperature_sharpens_toward_greedy() {
        // At a very low temperature even top-k=vocab collapses onto the argmax
        // (tie-free logits: the tied pair in `logits()` would legitimately split draws).
        let sharp = vec![0.1, 2.5, -1.0, 2.2, 0.7, -3.2, 1.9, 0.0];
        let sampling = Sampling::top_k(8, 1e-3, 11);
        let mut rng = SeqRng::new(sampling.seed, 2);
        for _ in 0..100 {
            assert_eq!(sample_token(&sharp, &sampling, &mut rng), 1);
        }
    }

    #[test]
    fn rng_stream_is_stable() {
        // Golden values pin the SplitMix64 implementation (and therefore every seeded
        // sampling run) against accidental drift.
        let mut rng = SeqRng::new(0, 0);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        let f = rng.next_f32();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn top_k_rejects_zero() {
        let _ = Sampling::top_k(0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "p in (0, 1]")]
    fn top_p_rejects_out_of_range() {
        let _ = Sampling::top_p(1.5, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn temperature_must_be_positive() {
        let _ = Sampling::top_k(4, 0.0, 0);
    }
}
