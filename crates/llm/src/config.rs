//! Model configurations mirroring the LLMs evaluated in the paper.
//!
//! The presets keep each model family's distinguishing characteristics — normalization
//! type, activation function, grouped-query attention, and crucially the *severity of
//! activation outliers* (OPT-style models exhibit far harsher outliers than Llama-3 or
//! Phi-4, which is why MXFP4 collapses completely on OPT-66B in Table 3) — while scaling
//! the dimensions down so the reproduction runs on a laptop.

use serde::{Deserialize, Serialize};

use mx_tensor::OutlierSpec;

/// Normalization layer used by a model family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NormKind {
    /// RMSNorm (Llama, Mistral, Qwen, Phi).
    Rms,
    /// LayerNorm with bias (OPT, DeiT).
    Layer,
}

/// Feed-forward activation used by a model family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MlpKind {
    /// Gated SiLU MLP (Llama/Mistral/Qwen style): `down(silu(gate(x)) * up(x))`.
    GatedSilu,
    /// Plain two-layer GELU MLP (OPT/Phi/DeiT style): `fc2(gelu(fc1(x)))`.
    Gelu,
}

/// A transformer model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name, matching the paper's tables (e.g. "Llama-3.1-8B").
    pub name: String,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Number of key/value heads (grouped-query attention when < `heads`).
    pub kv_heads: usize,
    /// MLP intermediate dimension.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Normalization kind.
    pub norm: NormKind,
    /// MLP kind.
    pub mlp: MlpKind,
    /// Rotary embedding base (0.0 disables RoPE; OPT uses learned positions which we model
    /// as no rotation).
    pub rope_theta: f32,
    /// Outlier structure of this family's activations.
    pub outliers: OutlierSpec,
    /// Calibrated BF16 perplexity on the WikiText-2-like stream at sequence length 2048
    /// (the paper's Table 3 baseline), used as the anchor of the perplexity proxy.
    pub base_ppl_wiki2: f64,
    /// Calibrated BF16 perplexity on the C4-like stream at sequence length 2048.
    pub base_ppl_c4: f64,
    /// Deterministic weight seed.
    pub seed: u64,
}

impl ModelConfig {
    /// Head dimension (`hidden / heads`).
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        assert!(self.hidden.is_multiple_of(self.heads), "hidden must be divisible by heads");
        self.hidden / self.heads
    }

    /// Total parameter count of the scaled-down reproduction model (not the original).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        let attn = self.hidden * self.hidden * 2 + 2 * self.hidden * (self.hidden / self.heads * self.kv_heads);
        let mlp = match self.mlp {
            MlpKind::GatedSilu => 3 * self.hidden * self.intermediate,
            MlpKind::Gelu => 2 * self.hidden * self.intermediate,
        };
        self.layers * (attn + mlp) + 2 * self.vocab * self.hidden
    }

    /// A tiny configuration for unit tests (fast even in debug builds).
    #[must_use]
    pub fn tiny_test(seed: u64) -> Self {
        ModelConfig {
            name: "tiny-test".into(),
            hidden: 64,
            layers: 2,
            heads: 4,
            kv_heads: 4,
            intermediate: 128,
            vocab: 128,
            norm: NormKind::Rms,
            mlp: MlpKind::GatedSilu,
            rope_theta: 10_000.0,
            outliers: OutlierSpec::LLM_DEFAULT,
            base_ppl_wiki2: 6.0,
            base_ppl_c4: 8.0,
            seed,
        }
    }

    /// OPT-66B analogue: LayerNorm + GELU, the harshest activation outliers of the
    /// evaluated models (MXFP4 collapses to triple-digit perplexity in Table 3).
    #[must_use]
    pub fn opt_66b() -> Self {
        ModelConfig {
            name: "OPT-66B".into(),
            hidden: 256,
            layers: 4,
            heads: 8,
            kv_heads: 8,
            intermediate: 1024,
            vocab: 512,
            norm: NormKind::Layer,
            mlp: MlpKind::Gelu,
            rope_theta: 0.0,
            outliers: OutlierSpec { channel_fraction: 0.025, magnitude: 60.0, fire_probability: 0.98 },
            base_ppl_wiki2: 9.35,
            base_ppl_c4: 10.15,
            seed: 0x0066,
        }
    }

    /// Llama-3.1-8B analogue: RMSNorm + gated SiLU, GQA, moderate outliers.
    #[must_use]
    pub fn llama31_8b() -> Self {
        ModelConfig {
            name: "Llama-3.1-8B".into(),
            hidden: 256,
            layers: 4,
            heads: 8,
            kv_heads: 2,
            intermediate: 896,
            vocab: 512,
            norm: NormKind::Rms,
            mlp: MlpKind::GatedSilu,
            rope_theta: 500_000.0,
            outliers: OutlierSpec { channel_fraction: 0.012, magnitude: 28.0, fire_probability: 0.95 },
            base_ppl_wiki2: 6.27,
            base_ppl_c4: 8.62,
            seed: 0x3181,
        }
    }

    /// Llama-3.1-70B analogue: like 8B but wider, with slightly milder outliers.
    #[must_use]
    pub fn llama31_70b() -> Self {
        ModelConfig {
            name: "Llama-3.1-70B".into(),
            hidden: 384,
            layers: 4,
            heads: 12,
            kv_heads: 3,
            intermediate: 1344,
            vocab: 512,
            norm: NormKind::Rms,
            mlp: MlpKind::GatedSilu,
            rope_theta: 500_000.0,
            outliers: OutlierSpec { channel_fraction: 0.01, magnitude: 22.0, fire_probability: 0.93 },
            base_ppl_wiki2: 2.81,
            base_ppl_c4: 6.44,
            seed: 0x3170,
        }
    }

    /// Mistral-7B-v0.3 analogue.
    #[must_use]
    pub fn mistral_7b() -> Self {
        ModelConfig {
            name: "Mistral-7B".into(),
            hidden: 256,
            layers: 4,
            heads: 8,
            kv_heads: 2,
            intermediate: 896,
            vocab: 512,
            norm: NormKind::Rms,
            mlp: MlpKind::GatedSilu,
            rope_theta: 1_000_000.0,
            outliers: OutlierSpec { channel_fraction: 0.008, magnitude: 16.0, fire_probability: 0.9 },
            base_ppl_wiki2: 5.32,
            base_ppl_c4: 7.81,
            seed: 0x0703,
        }
    }

    /// Phi-4-14B analogue: the mildest outliers of the evaluated models (MXFP4 degrades
    /// the least in Table 3).
    #[must_use]
    pub fn phi4_14b() -> Self {
        ModelConfig {
            name: "Phi-4-14B".into(),
            hidden: 320,
            layers: 4,
            heads: 10,
            kv_heads: 10,
            intermediate: 1120,
            vocab: 512,
            norm: NormKind::Rms,
            mlp: MlpKind::Gelu,
            rope_theta: 250_000.0,
            outliers: OutlierSpec { channel_fraction: 0.006, magnitude: 10.0, fire_probability: 0.85 },
            base_ppl_wiki2: 6.67,
            base_ppl_c4: 13.45,
            seed: 0x0414,
        }
    }

    /// Qwen-2.5-14B-Instruct analogue.
    #[must_use]
    pub fn qwen25_14b() -> Self {
        ModelConfig {
            name: "Qwen-2.5-14B".into(),
            hidden: 320,
            layers: 4,
            heads: 10,
            kv_heads: 2,
            intermediate: 1120,
            vocab: 512,
            norm: NormKind::Rms,
            mlp: MlpKind::GatedSilu,
            rope_theta: 1_000_000.0,
            outliers: OutlierSpec { channel_fraction: 0.015, magnitude: 26.0, fire_probability: 0.95 },
            base_ppl_wiki2: 5.70,
            base_ppl_c4: 9.55,
            seed: 0x2514,
        }
    }

    /// Llama-2-7B analogue (used by the performance experiments and Table 7).
    #[must_use]
    pub fn llama2_7b() -> Self {
        ModelConfig {
            name: "Llama-2-7B".into(),
            hidden: 256,
            layers: 4,
            heads: 8,
            kv_heads: 8,
            intermediate: 704,
            vocab: 512,
            norm: NormKind::Rms,
            mlp: MlpKind::GatedSilu,
            rope_theta: 10_000.0,
            outliers: OutlierSpec { channel_fraction: 0.012, magnitude: 20.0, fire_probability: 0.92 },
            base_ppl_wiki2: 5.47,
            base_ppl_c4: 7.26,
            seed: 0x0207,
        }
    }

    /// Llama-2-13B analogue (used by the performance experiments, Figures 11 and 13).
    #[must_use]
    pub fn llama2_13b() -> Self {
        ModelConfig {
            name: "Llama-2-13B".into(),
            hidden: 320,
            layers: 4,
            heads: 10,
            kv_heads: 10,
            intermediate: 864,
            vocab: 512,
            norm: NormKind::Rms,
            mlp: MlpKind::GatedSilu,
            rope_theta: 10_000.0,
            outliers: OutlierSpec { channel_fraction: 0.012, magnitude: 20.0, fire_probability: 0.92 },
            base_ppl_wiki2: 4.89,
            base_ppl_c4: 6.73,
            seed: 0x0213,
        }
    }

    /// Llama-2-70B analogue (Table 7).
    #[must_use]
    pub fn llama2_70b() -> Self {
        ModelConfig {
            name: "Llama-2-70B".into(),
            hidden: 384,
            layers: 4,
            heads: 12,
            kv_heads: 12,
            intermediate: 1024,
            vocab: 512,
            norm: NormKind::Rms,
            mlp: MlpKind::GatedSilu,
            rope_theta: 10_000.0,
            outliers: OutlierSpec { channel_fraction: 0.01, magnitude: 18.0, fire_probability: 0.92 },
            base_ppl_wiki2: 3.32,
            base_ppl_c4: 5.52,
            seed: 0x0270,
        }
    }

    /// The six models of Tables 2 and 3, in the paper's order.
    #[must_use]
    pub fn table2_models() -> Vec<ModelConfig> {
        vec![
            ModelConfig::opt_66b(),
            ModelConfig::llama31_8b(),
            ModelConfig::llama31_70b(),
            ModelConfig::mistral_7b(),
            ModelConfig::phi4_14b(),
            ModelConfig::qwen25_14b(),
        ]
    }

    /// The four models of Figure 2.
    #[must_use]
    pub fn figure2_models() -> Vec<ModelConfig> {
        vec![ModelConfig::opt_66b(), ModelConfig::llama31_8b(), ModelConfig::llama31_70b(), ModelConfig::mistral_7b()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_dims_divide_evenly() {
        for cfg in ModelConfig::table2_models() {
            assert_eq!(cfg.hidden % cfg.heads, 0, "{}", cfg.name);
            assert_eq!(cfg.heads % cfg.kv_heads, 0, "{}", cfg.name);
            assert!(cfg.head_dim() % 2 == 0, "{}: RoPE needs an even head dim", cfg.name);
            assert_eq!(cfg.hidden % mx_formats::BLOCK_SIZE, 0, "{}: hidden must be block aligned", cfg.name);
        }
    }

    #[test]
    fn outlier_severity_ordering_matches_paper_narrative() {
        // OPT-66B has the harshest outliers, Phi-4 the mildest (Table 3's MXFP4 column:
        // OPT explodes to 209, Phi-4 only reaches 8.45).
        let opt = ModelConfig::opt_66b().outliers;
        let phi = ModelConfig::phi4_14b().outliers;
        let llama = ModelConfig::llama31_8b().outliers;
        assert!(opt.magnitude > llama.magnitude);
        assert!(llama.magnitude > phi.magnitude);
    }

    #[test]
    fn base_perplexities_match_paper_table_3() {
        assert_eq!(ModelConfig::llama31_8b().base_ppl_wiki2, 6.27);
        assert_eq!(ModelConfig::opt_66b().base_ppl_wiki2, 9.35);
        assert_eq!(ModelConfig::mistral_7b().base_ppl_wiki2, 5.32);
        assert_eq!(ModelConfig::llama31_70b().base_ppl_wiki2, 2.81);
    }

    #[test]
    fn parameter_count_is_positive_and_scales_with_width() {
        let small = ModelConfig::llama31_8b().parameter_count();
        let big = ModelConfig::llama31_70b().parameter_count();
        assert!(small > 0);
        assert!(big > small);
    }

    #[test]
    fn model_lists() {
        assert_eq!(ModelConfig::table2_models().len(), 6);
        assert_eq!(ModelConfig::figure2_models().len(), 4);
    }
}
