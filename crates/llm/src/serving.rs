//! A continuous-batching serving engine on top of the zero-copy decode path, driven by a
//! pool of decode worker threads.
//!
//! The engine owns a queue of sequences and decodes them round-robin — one token per
//! active sequence per scheduler step. Two cache backends are supported:
//!
//! * **f32-contiguous** ([`ServingEngine::new`]): every submitted sequence is admitted
//!   up front with its own pre-reserved [`KvCache`] of dequantized rows — the accuracy /
//!   bit-exactness baseline.
//! * **paged-packed** ([`ServingEngine::paged`]): sequences share a fixed-budget
//!   [`PagePool`] whose pages hold **genuinely bit-packed** rows
//!   ([`PagedKvCache`]). Admission is a page *reservation* for the sequence's worst case
//!   (prompt + generation budget), so the scheduler practices true **continuous
//!   batching**: submissions that do not fit wait in the queue and are admitted mid-run
//!   as finishing sequences return their pages; submissions whose worst case exceeds the
//!   whole pool are reported as [`FinishReason::Evicted`].
//!
//! ## Threading model
//!
//! Within a scheduler step, per-sequence work (prefill on first touch, then one decode
//! step per pass) is embarrassingly parallel: every sequence exclusively owns its cache
//! pages and its sampler state, and the model weights are read-only. [`ServingEngine::run`]
//! therefore fans each step's active sequences out across `num_threads` scoped worker
//! threads ([`ServingEngine::with_threads`]; default = available parallelism), each
//! carrying one reusable [`PagedScratch`]. The **coordinator** thread keeps everything
//! that mutates shared scheduling state: admission (page reservation, FCFS order),
//! eviction, occupancy sampling, and retirement — returning a finished sequence's pages
//! to the pool between passes, which is what funds mid-run admissions. Because sequences
//! are independent, the generated streams are **token-identical for every
//! `num_threads`**, and `num_threads = 1` runs the exact sequential submission-order
//! loop of the single-threaded engine.
//!
//! Sequences finish on their length budget or on a per-sequence stop token
//! ([`ServingEngine::submit_with_stop`]), each recorded as a [`FinishReason`]; next-token
//! selection is greedy by default or seeded top-k / top-p per sequence
//! ([`ServingEngine::submit_with_sampling`]). All cache reads go through the borrowed-view
//! / packed-row-decode hot path, so a whole batched run performs zero full-cache copies;
//! the [`ServingReport`] pins that invariant, distinguishes the cache's **theoretical**
//! scheme bytes from the **measured resident** bytes actually allocated, and reports
//! wall-clock throughput ([`ServingReport::tokens_per_sec_parallel`]) next to the
//! summed-across-workers decode rate.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mx_formats::{QuantScheme, RowCodec};

use crate::kvcache::{KvCache, LayerKvCache};
use crate::model::{DecodePath, TransformerModel};
use crate::paging::{PagePool, PagedKvCache, PagedScratch, DEFAULT_PAGE_POSITIONS};
use crate::sampling::{sample_token, Sampling, SeqRng};

/// Why a sequence stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The generation budget (`max_new_tokens`) was reached.
    Length,
    /// The sequence produced its stop token (the stop token itself is not emitted).
    Stop,
    /// The sequence could never be admitted: its worst-case page footprint exceeds the
    /// entire pool budget.
    Evicted,
}

/// Cache state of one sequence across its lifecycle.
#[derive(Debug)]
enum SeqCache {
    /// Submitted, not yet admitted (no storage held).
    Waiting,
    /// Active or finished on the f32-contiguous backend (storage retained for inspection).
    F32(KvCache),
    /// Active on the paged-packed backend.
    Paged(PagedKvCache),
    /// Finished on the paged backend: pages returned to the pool, only the final
    /// position count is kept for accounting.
    Retired { positions: usize },
}

/// One sequence being served.
#[derive(Debug)]
pub struct Sequence {
    /// Caller-visible id (submission order).
    pub id: usize,
    /// The prompt the sequence was submitted with.
    pub prompt: Vec<usize>,
    /// Tokens generated so far.
    pub generated: Vec<usize>,
    /// Generation budget for this sequence.
    pub max_new_tokens: usize,
    /// Token id that terminates the sequence early (never emitted).
    pub stop_token: Option<usize>,
    /// How this sequence picks its next token (greedy unless submitted with sampling).
    pub sampling: Sampling,
    /// This sequence's own RNG stream — owned, so sampling needs no cross-thread state.
    rng: SeqRng,
    finish: Option<FinishReason>,
    cache: SeqCache,
    next: usize,
    prefilled: bool,
}

impl Sequence {
    /// Whether the sequence has finished (see [`Sequence::finish_reason`]).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finish.is_some()
    }

    /// Why the sequence finished, or `None` while it is waiting/active.
    #[must_use]
    pub fn finish_reason(&self) -> Option<FinishReason> {
        self.finish
    }

    /// This sequence's f32 KV cache, if it runs on the f32-contiguous backend
    /// (paged caches release their pages at retirement and are not inspectable here).
    #[must_use]
    pub fn cache(&self) -> Option<&KvCache> {
        match &self.cache {
            SeqCache::F32(c) => Some(c),
            _ => None,
        }
    }

    /// Positions this sequence holds (or held, once retired) in its KV cache.
    #[must_use]
    pub fn cached_positions(&self) -> usize {
        match &self.cache {
            SeqCache::Waiting => 0,
            SeqCache::F32(c) => c.seq_len(),
            SeqCache::Paged(c) => c.seq_len(),
            SeqCache::Retired { positions } => *positions,
        }
    }

    /// Marks the sequence finished. Pages are *not* reclaimed here — that is the
    /// coordinator's job ([`Sequence::retire`]), so workers never touch the pool's
    /// accounting mid-pass.
    fn finish(&mut self, reason: FinishReason) {
        self.finish = Some(reason);
    }

    /// Returns a finished paged sequence's pages to the pool (coordinator-only; see the
    /// [module docs](crate::serving)). Dropping the paged cache frees its pages — this
    /// is what funds the admission of queued sequences.
    fn retire(&mut self) {
        if self.finish.is_some() {
            if let SeqCache::Paged(cache) = &self.cache {
                let positions = cache.seq_len();
                self.cache = SeqCache::Retired { positions };
            }
        }
    }

    /// Draws this sequence's next token from `logits` with its own sampler state.
    fn sample(&mut self, logits: &[f32]) -> usize {
        sample_token(logits, &self.sampling, &mut self.rng)
    }

    /// One scheduler step of this sequence, run by a decode worker: prefill on first
    /// touch, then stop/budget bookkeeping and one decode step. Returns the number of
    /// tokens this step generated (0 or 1) and accrues the worker's prefill/decode time.
    fn step(
        &mut self,
        model: &TransformerModel,
        mode: DecodePath,
        scratch: &mut PagedScratch,
        prefill_time: &mut Duration,
        decode_time: &mut Duration,
    ) -> usize {
        if !self.prefilled {
            let t0 = Instant::now();
            let logits = match &mut self.cache {
                SeqCache::F32(cache) => model.forward_with_path(&self.prompt, cache, mode),
                SeqCache::Paged(cache) => model.forward_backend_with_scratch(&self.prompt, cache, scratch),
                _ => unreachable!("stepped sequence without a cache"),
            };
            self.next = self.sample(logits.row(logits.rows() - 1));
            self.prefilled = true;
            *prefill_time += t0.elapsed();
            return 0;
        }
        if self.stop_token == Some(self.next) {
            self.finish(FinishReason::Stop);
            return 0;
        }
        if self.generated.len() >= self.max_new_tokens {
            // Zero-budget sequences finish without emitting anything.
            self.finish(FinishReason::Length);
            return 0;
        }
        self.generated.push(self.next);
        if self.generated.len() == self.max_new_tokens {
            // The budgeted last token needs no forward pass of its own: decoding it
            // would only produce logits (and a cache row) that are thrown away.
            self.finish(FinishReason::Length);
            return 1;
        }
        let t0 = Instant::now();
        let logits = match &mut self.cache {
            SeqCache::F32(cache) => model.decode_step_with_path(self.next, cache, mode),
            SeqCache::Paged(cache) => model.decode_step_backend_with_scratch(self.next, cache, scratch),
            _ => unreachable!("active sequence without a cache"),
        };
        self.next = self.sample(&logits);
        *decode_time += t0.elapsed();
        1
    }
}

/// Throughput and memory report for one [`ServingEngine::run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Display name of the KV-cache quantization scheme.
    pub scheme: String,
    /// Cache backend the run used: `"paged-packed"` or `"f32-contiguous"`.
    pub backend: &'static str,
    /// Number of sequences submitted to the engine.
    pub sequences: usize,
    /// Sequences that finished by exhausting their generation budget.
    pub finished_length: usize,
    /// Sequences that finished on their stop token.
    pub finished_stop: usize,
    /// Sequences evicted because they can never fit the page budget.
    pub evicted: usize,
    /// Total prompt tokens prefilled.
    pub prompt_tokens: usize,
    /// Total tokens generated by the decode loop.
    pub generated_tokens: usize,
    /// Time spent in prefill, summed across worker threads.
    pub prefill_time: Duration,
    /// Time spent in the decode loop, summed across worker threads (per-thread work, not
    /// wall clock — see [`ServingReport::wall_seconds`] for the elapsed time).
    pub decode_time: Duration,
    /// Generated tokens per second of summed decode time: the *per-worker* decode rate,
    /// directly comparable across `num_threads` (parallelism holds it roughly constant
    /// while the wall-clock rate scales).
    pub decode_tokens_per_sec: f64,
    /// Wall-clock seconds of the whole [`ServingEngine::run`] call (admission, prefill,
    /// decode and retirement across all passes).
    pub wall_seconds: f64,
    /// Generated tokens per *wall-clock* second of the run — the end-to-end serving
    /// throughput the thread-scaling benches sweep.
    pub tokens_per_sec_parallel: f64,
    /// Worker threads the run was configured with (see [`ServingEngine::with_threads`]).
    pub num_threads: usize,
    /// Cache bytes by scheme math: every position ever cached, at the scheme's average
    /// width (rows byte-ceiled). What the hardware *would* hold with a perfect layout.
    pub theoretical_bytes: usize,
    /// The same positions held in FP32 — the compression baseline.
    pub theoretical_bytes_fp32: usize,
    /// **Measured** peak cache storage during the run: page-pool occupancy on the paged
    /// backend, f32 row storage on the baseline backend. This is the number that exposed
    /// the old accounting gap (f32-resident storage labelled with scheme bytes).
    pub resident_bytes: usize,
    /// Full-cache materializations observed across all caches (0 on the hot paths).
    pub cache_materializations: usize,
}

impl ServingReport {
    /// Compression of the scheme's theoretical bytes over FP32 storage.
    #[must_use]
    pub fn theoretical_compression(&self) -> f64 {
        ratio(self.theoretical_bytes_fp32, self.theoretical_bytes)
    }

    /// Compression of the *measured* resident bytes over theoretical FP32 storage —
    /// ~1x for the f32 backend (it really stores f32), near the scheme ratio for the
    /// paged backend (minus page-granularity slack).
    #[must_use]
    pub fn resident_compression(&self) -> f64 {
        ratio(self.theoretical_bytes_fp32, self.resident_bytes)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Decodes a batch of sequences against one model with continuous batching and a decode
/// worker pool (see the [module docs](crate::serving)).
///
/// ```
/// use mx_llm::{ModelConfig, ModelQuantConfig, ServingEngine, TransformerModel};
///
/// let model = TransformerModel::new(ModelConfig::tiny_test(3), ModelQuantConfig::BASELINE);
/// let mut engine = ServingEngine::new(&model);
/// engine.submit(&[1, 2, 3], 4);
/// engine.submit(&[9, 8], 4);
/// let report = engine.run();
/// assert_eq!(report.sequences, 2);
/// assert_eq!(report.generated_tokens, 8);
/// assert_eq!(report.finished_length, 2);
/// assert_eq!(report.cache_materializations, 0);
/// ```
#[derive(Debug)]
pub struct ServingEngine<'m> {
    model: &'m TransformerModel,
    sequences: Vec<Sequence>,
    mode: DecodePath,
    pool: Option<Arc<PagePool>>,
    num_threads: usize,
}

impl<'m> ServingEngine<'m> {
    /// Creates an engine serving `model` on the f32-contiguous backend through the
    /// zero-copy cache path (every submission is admitted immediately).
    #[must_use]
    pub fn new(model: &'m TransformerModel) -> Self {
        ServingEngine {
            model,
            sequences: Vec::new(),
            mode: DecodePath::ZeroCopy,
            pool: None,
            num_threads: default_threads(),
        }
    }

    /// Creates an f32-backend engine with an explicit [`DecodePath`] (`SeedClone` is only
    /// useful for benchmarking the pre-refactor decode path).
    #[must_use]
    pub fn with_path(model: &'m TransformerModel, mode: DecodePath) -> Self {
        ServingEngine { model, sequences: Vec::new(), mode, pool: None, num_threads: default_threads() }
    }

    /// Creates an engine on the paged-packed backend with a pool of `total_pages` pages
    /// of [`DEFAULT_PAGE_POSITIONS`] positions each, stored bit-packed under the model's
    /// KV-cache scheme.
    #[must_use]
    pub fn paged(model: &'m TransformerModel, total_pages: usize) -> Self {
        ServingEngine::paged_with(model, total_pages, DEFAULT_PAGE_POSITIONS)
    }

    /// [`ServingEngine::paged`] with an explicit page size in positions.
    #[must_use]
    pub fn paged_with(model: &'m TransformerModel, total_pages: usize, page_positions: usize) -> Self {
        let scheme = model.quant().kv_cache;
        let kv_dim = Self::kv_dim(model);
        let pool = PagePool::for_kv_rows(total_pages, page_positions, RowCodec::for_scheme(scheme), kv_dim).shared();
        ServingEngine {
            model,
            sequences: Vec::new(),
            mode: DecodePath::ZeroCopy,
            pool: Some(pool),
            num_threads: default_threads(),
        }
    }

    /// Sets the number of decode worker threads (builder-style). `1` reproduces the
    /// sequential engine exactly, step for step; any value produces token-identical
    /// output, because sequences share nothing but the page pool's allocator.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is 0.
    #[must_use]
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        assert!(num_threads >= 1, "the engine needs at least one decode thread");
        self.num_threads = num_threads;
        self
    }

    /// The configured number of decode worker threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The shared page pool, when running on the paged backend.
    #[must_use]
    pub fn pool(&self) -> Option<&Arc<PagePool>> {
        self.pool.as_ref()
    }

    fn kv_dim(model: &TransformerModel) -> usize {
        model.config().head_dim() * model.config().kv_heads
    }

    /// Queues a sequence. Returns the sequence id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    pub fn submit(&mut self, prompt: &[usize], max_new_tokens: usize) -> usize {
        self.submit_with_stop(prompt, max_new_tokens, None)
    }

    /// Queues a sequence that additionally finishes (without emitting it) when it
    /// generates `stop_token`. Returns the sequence id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    pub fn submit_with_stop(&mut self, prompt: &[usize], max_new_tokens: usize, stop_token: Option<usize>) -> usize {
        self.submit_with_sampling(prompt, max_new_tokens, stop_token, Sampling::GREEDY)
    }

    /// Queues a sequence with an explicit [`Sampling`] configuration (greedy, top-k or
    /// top-p; see [`crate::sampling`]). The sequence's RNG stream is derived from the
    /// sampling seed and the sequence id, so runs are reproducible at any thread count.
    /// Returns the sequence id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    pub fn submit_with_sampling(
        &mut self,
        prompt: &[usize],
        max_new_tokens: usize,
        stop_token: Option<usize>,
        sampling: Sampling,
    ) -> usize {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        let id = self.sequences.len();
        self.sequences.push(Sequence {
            id,
            prompt: prompt.to_vec(),
            generated: Vec::with_capacity(max_new_tokens),
            max_new_tokens,
            stop_token,
            sampling,
            rng: SeqRng::new(sampling.seed, id as u64),
            finish: None,
            cache: SeqCache::Waiting,
            next: 0,
            prefilled: false,
        });
        id
    }

    /// The sequences in submission order.
    #[must_use]
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Runs the scheduler until every submitted sequence has finished (or been evicted).
    ///
    /// Each pass of the coordinator loop: admit waiting sequences whenever their worst
    /// case fits the page budget (FCFS), fan the active sequences out across the decode
    /// worker pool — each worker prefills newly admitted sequences on first touch and
    /// then decodes one token per sequence per pass — sample peak occupancy, and retire
    /// finished sequences so their pages fund queued admissions.
    pub fn run(&mut self) -> ServingReport {
        let run_start = Instant::now();
        let mut prefill_time = Duration::ZERO;
        let mut decode_time = Duration::ZERO;
        let mut prompt_tokens = 0usize;
        let mut generated = 0usize;
        let mut peak_resident = self.resident_bytes();
        let model = self.model;
        let mode = self.mode;
        // The coordinator doubles as the (only) worker when num_threads == 1, carrying
        // one scratch across the whole run exactly like a pool worker would.
        let mut coordinator_scratch = PagedScratch::default();

        loop {
            self.admit_waiting(&mut prompt_tokens);
            peak_resident = peak_resident.max(self.resident_bytes());

            let mut active: Vec<&mut Sequence> = self
                .sequences
                .iter_mut()
                .filter(|s| s.finish.is_none() && !matches!(s.cache, SeqCache::Waiting))
                .collect();
            let progressed = !active.is_empty();
            let workers = self.num_threads.min(active.len());
            if workers <= 1 {
                for seq in active {
                    generated += seq.step(model, mode, &mut coordinator_scratch, &mut prefill_time, &mut decode_time);
                }
            } else {
                // Contiguous chunks preserve submission order within each worker; the
                // scoped threads borrow disjoint &mut sequences, so no step takes a lock
                // outside page-boundary allocations.
                let per_worker = active.len().div_ceil(workers);
                let results: Vec<(usize, Duration, Duration)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = active
                        .chunks_mut(per_worker)
                        .map(|chunk| {
                            scope.spawn(move || {
                                let mut scratch = PagedScratch::default();
                                let mut tokens = 0usize;
                                let (mut prefill, mut decode) = (Duration::ZERO, Duration::ZERO);
                                for seq in chunk.iter_mut() {
                                    tokens += seq.step(model, mode, &mut scratch, &mut prefill, &mut decode);
                                }
                                (tokens, prefill, decode)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("decode worker panicked")).collect()
                });
                for (tokens, prefill, decode) in results {
                    generated += tokens;
                    prefill_time += prefill;
                    decode_time += decode;
                }
            }

            // Pool occupancy only grows during a pass (retirement is below), so sampling
            // here captures the exact peak before the coordinator reclaims pages.
            peak_resident = peak_resident.max(self.resident_bytes());
            for seq in &mut self.sequences {
                seq.retire();
            }

            if !progressed && !self.sequences.iter().any(|s| s.finish.is_none() && !s.prefilled) {
                break;
            }
        }

        let wall_seconds = run_start.elapsed().as_secs_f64();
        let scheme = self.model.quant().kv_cache;
        let kv_dim = Self::kv_dim(self.model);
        let layers = self.model.config().layers;
        let theoretical = |s: QuantScheme| {
            let per_row = LayerKvCache::row_storage_bytes(kv_dim, s);
            self.sequences.iter().map(|q| 2 * layers * q.cached_positions() * per_row).sum()
        };
        let count = |r: FinishReason| self.sequences.iter().filter(|s| s.finish == Some(r)).count();
        ServingReport {
            scheme: scheme.name(),
            backend: if self.pool.is_some() { "paged-packed" } else { "f32-contiguous" },
            sequences: self.sequences.len(),
            finished_length: count(FinishReason::Length),
            finished_stop: count(FinishReason::Stop),
            evicted: count(FinishReason::Evicted),
            prompt_tokens,
            generated_tokens: generated,
            prefill_time,
            decode_time,
            decode_tokens_per_sec: if decode_time.is_zero() {
                f64::INFINITY
            } else {
                generated as f64 / decode_time.as_secs_f64()
            },
            wall_seconds,
            tokens_per_sec_parallel: if wall_seconds == 0.0 { f64::INFINITY } else { generated as f64 / wall_seconds },
            num_threads: self.num_threads,
            theoretical_bytes: theoretical(scheme),
            theoretical_bytes_fp32: theoretical(QuantScheme::Fp32),
            resident_bytes: peak_resident,
            cache_materializations: self
                .sequences
                .iter()
                .map(|s| match &s.cache {
                    SeqCache::F32(c) => c.materializations(),
                    _ => 0,
                })
                .sum(),
        }
    }

    /// Admits waiting sequences in submission order (FCFS): on the f32 backend every
    /// sequence is admitted; on the paged backend admission reserves the sequence's
    /// worst-case page count, stalling the queue (not skipping ahead) when the head does
    /// not fit yet, and evicting sequences that exceed the entire pool budget. Prefill
    /// itself is *not* done here — the worker that first steps an admitted sequence
    /// prefills it, keeping the coordinator to pure bookkeeping.
    fn admit_waiting(&mut self, prompt_tokens: &mut usize) {
        let cfg = self.model.config();
        let kv_dim = Self::kv_dim(self.model);
        let scheme = self.model.quant().kv_cache;
        for seq in &mut self.sequences {
            if seq.finish.is_some() || !matches!(seq.cache, SeqCache::Waiting) {
                continue;
            }
            let capacity = seq.prompt.len() + seq.max_new_tokens;
            match &self.pool {
                None => {
                    seq.cache = SeqCache::F32(KvCache::with_capacity(cfg.layers, kv_dim, capacity));
                }
                Some(pool) => {
                    let needed = PagedKvCache::pages_needed(pool, cfg.layers, capacity);
                    if needed > pool.total_pages() {
                        // Larger than the whole budget: no amount of retirement can ever
                        // admit it.
                        seq.finish(FinishReason::Evicted);
                        continue;
                    }
                    match PagedKvCache::new(pool, cfg.layers, kv_dim, scheme, capacity) {
                        Ok(cache) => seq.cache = SeqCache::Paged(cache),
                        // Head-of-line waits for pages; preserve submission order.
                        Err(_) => break,
                    }
                }
            }
            *prompt_tokens += seq.prompt.len();
        }
    }

    /// Current measured cache storage across the engine (see
    /// [`ServingReport::resident_bytes`]).
    fn resident_bytes(&self) -> usize {
        match &self.pool {
            Some(pool) => pool.resident_bytes(),
            None => self
                .sequences
                .iter()
                .map(|s| match &s.cache {
                    SeqCache::F32(c) => c.resident_bytes(),
                    _ => 0,
                })
                .sum(),
        }
    }
}

/// Default worker count: the machine's available parallelism (1 if unknown).
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::quant_config::ModelQuantConfig;

    fn model(quant: ModelQuantConfig) -> TransformerModel {
        TransformerModel::new(ModelConfig::tiny_test(5), quant)
    }

    #[test]
    fn batched_decode_matches_sequential_greedy_generation() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let prompts: [&[usize]; 3] = [&[1, 2, 3], &[7, 7], &[10, 20, 30, 40]];
        let mut engine = ServingEngine::new(&model);
        for p in prompts {
            engine.submit(p, 6);
        }
        let report = engine.run();
        assert_eq!(report.generated_tokens, 18);
        for (seq, p) in engine.sequences().iter().zip(prompts) {
            // Interleaving sequences must not change any sequence's output: each cache is
            // independent, so batched round-robin equals one-at-a-time generation.
            assert_eq!(seq.generated, model.generate_greedy(p, 6), "sequence {}", seq.id);
            // prompt rows from prefill plus one appended row per decode; the budgeted
            // last token is sampled from the previous step's logits, not decoded itself.
            assert_eq!(seq.cached_positions(), p.len() + 5);
            assert_eq!(seq.finish_reason(), Some(FinishReason::Length));
        }
    }

    #[test]
    fn report_accounts_tokens_and_cache_bytes() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let mut engine = ServingEngine::new(&model);
        engine.submit(&[1, 2, 3, 4], 5);
        engine.submit(&[5, 6], 5);
        let report = engine.run();
        assert_eq!(report.sequences, 2);
        assert_eq!(report.prompt_tokens, 6);
        assert_eq!(report.generated_tokens, 10);
        assert_eq!(report.scheme, "MXFP4");
        assert_eq!(report.backend, "f32-contiguous");
        assert_eq!(report.finished_length, 2);
        // tiny_test: 2 layers, kv_dim 64. One cached row per prompt token plus one per
        // decode step; the final budgeted token is sampled without its own forward pass.
        let expected_rows = (4 + 4) + (2 + 4);
        let per_row = LayerKvCache::row_storage_bytes(64, QuantScheme::mxfp4());
        assert_eq!(report.theoretical_bytes, 2 * 2 * expected_rows * per_row);
        assert!(report.theoretical_compression() > 7.0, "4.25-bit cache must compress FP32 by ~7.5x");
        // The satellite fix this field exists for: the f32 backend's *measured* storage
        // is full f32 — here the admission-time capacity reservations of 9 and 7
        // positions (prompt + budget) across 2 layers, K and V, 64 floats per row —
        // not the scheme's width.
        assert_eq!(report.resident_bytes, 2 * 2 * (9 + 7) * 64 * 4);
        assert!(report.resident_bytes >= report.theoretical_bytes_fp32);
        assert!(report.resident_compression() <= 1.0 + 1e-9);
        assert!(report.decode_tokens_per_sec > 0.0);
        // The new timing fields are populated and self-consistent.
        assert!(report.wall_seconds > 0.0);
        assert!(report.tokens_per_sec_parallel > 0.0);
        assert!(report.num_threads >= 1);
        assert!(report.wall_seconds >= report.decode_time.as_secs_f64() / report.num_threads as f64);
    }

    #[test]
    fn zero_copy_invariant_holds_for_whole_batch() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        for p in 0..4 {
            engine.submit(&[p + 1, p + 2], 8);
        }
        let report = engine.run();
        assert_eq!(report.cache_materializations, 0);
        // The clone-based mode, by contrast, materializes twice per layer per forward.
        let mut legacy = ServingEngine::with_path(&model, DecodePath::SeedClone);
        legacy.submit(&[1, 2], 2);
        let legacy_report = legacy.run();
        assert!(legacy_report.cache_materializations > 0);
        assert_eq!(legacy.sequences()[0].generated, engine.sequences()[0].generated[..2]);
    }

    #[test]
    fn run_is_idempotent_once_finished() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        engine.submit(&[2, 4, 6], 3);
        let first = engine.run();
        assert_eq!(first.generated_tokens, 3);
        let second = engine.run();
        assert_eq!(second.generated_tokens, 0);
        assert_eq!(second.prompt_tokens, 0);
        assert_eq!(engine.sequences()[0].generated.len(), 3);
    }

    #[test]
    fn stop_token_finishes_early_without_emitting_it() {
        let model = model(ModelQuantConfig::BASELINE);
        // Find what the model would greedily generate, then use one of those tokens as
        // the stop token of a second, stop-aware run.
        let free = model.generate_greedy(&[3, 1, 4], 8);
        let stop = free[3];
        let mut engine = ServingEngine::new(&model);
        engine.submit_with_stop(&[3, 1, 4], 8, Some(stop));
        let report = engine.run();
        let seq = &engine.sequences()[0];
        assert_eq!(seq.finish_reason(), Some(FinishReason::Stop));
        assert_eq!(seq.generated, free[..3], "generation must match the free run up to the stop");
        assert!(!seq.generated.contains(&stop), "the stop token is not emitted");
        assert_eq!(report.finished_stop, 1);
        assert_eq!(report.finished_length, 0);
        assert_eq!(report.generated_tokens, 3);
    }

    #[test]
    fn stop_token_never_generated_falls_back_to_length() {
        let model = model(ModelQuantConfig::BASELINE);
        let free = model.generate_greedy(&[2, 2], 4);
        let never = (0..model.config().vocab).find(|t| !free.contains(t)).unwrap();
        let mut engine = ServingEngine::new(&model);
        engine.submit_with_stop(&[2, 2], 4, Some(never));
        engine.run();
        let seq = &engine.sequences()[0];
        assert_eq!(seq.finish_reason(), Some(FinishReason::Length));
        assert_eq!(seq.generated, free);
    }

    #[test]
    fn zero_budget_sequences_finish_without_tokens() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        engine.submit(&[1, 2, 3], 0);
        let report = engine.run();
        assert_eq!(report.generated_tokens, 0);
        assert_eq!(report.prompt_tokens, 3);
        assert_eq!(engine.sequences()[0].finish_reason(), Some(FinishReason::Length));
    }

    #[test]
    fn paged_backend_generates_token_identical_output() {
        let quant = ModelQuantConfig::uniform(QuantScheme::mxfp4());
        let model = model(quant);
        let prompts: [&[usize]; 3] = [&[1, 2, 3], &[9, 8], &[5, 5, 5, 5]];
        let mut flat = ServingEngine::new(&model);
        let mut paged = ServingEngine::paged(&model, 64);
        for p in prompts {
            flat.submit(p, 6);
            paged.submit(p, 6);
        }
        let flat_report = flat.run();
        let paged_report = paged.run();
        assert_eq!(paged_report.backend, "paged-packed");
        assert_eq!(paged_report.generated_tokens, flat_report.generated_tokens);
        for (a, b) in flat.sequences().iter().zip(paged.sequences()) {
            assert_eq!(a.generated, b.generated, "sequence {} diverges across backends", a.id);
        }
        assert_eq!(paged_report.cache_materializations, 0);
        // The paged backend's measured bytes sit near the scheme width, well below f32
        // even with these short sequences half-filling their 16-position pages (the
        // integration tests pin the >=4x criterion at realistic lengths).
        assert!(paged_report.resident_bytes < paged_report.theoretical_bytes_fp32 / 3);
        // All pages returned after the run.
        let pool = paged.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.reserved_pages(), 0);
    }

    #[test]
    fn oversubscribed_pool_admits_late_sequences_as_pages_free_up() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        // Each sequence needs 2 layers * ceil((2 + 14)/16) = 2 pages; a 5-page pool
        // holds at most two at a time, so 6 submissions must queue.
        let mut engine = ServingEngine::paged(&model, 5);
        for s in 0..6usize {
            engine.submit(&[s + 1, s + 2], 14);
        }
        let report = engine.run();
        assert_eq!(report.sequences, 6);
        assert_eq!(report.finished_length, 6);
        assert_eq!(report.evicted, 0);
        assert_eq!(report.generated_tokens, 6 * 14);
        // Every sequence's output still matches its solo greedy generation.
        for seq in engine.sequences() {
            assert_eq!(seq.generated, model.generate_greedy(&seq.prompt, 14), "sequence {}", seq.id);
        }
        // The final accounting covers every sequence and the pool drained fully.
        let pool = engine.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.free_pages(), pool.total_pages());
        // Peak occupancy respects the budget: never more than 5 pages' worth resident.
        assert!(report.resident_bytes <= 5 * pool.page_bytes());
    }

    #[test]
    fn sequences_larger_than_the_pool_are_evicted_not_deadlocked() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let mut engine = ServingEngine::paged(&model, 4);
        engine.submit(&[1, 2], 6); // fits: 2 pages
        engine.submit(&[3, 4], 200); // needs 2 * ceil(202/16) = 26 pages > 4: evicted
        engine.submit(&[5, 6], 6); // fits after the big one is evicted
        let report = engine.run();
        assert_eq!(report.finished_length, 2);
        assert_eq!(report.evicted, 1);
        assert_eq!(engine.sequences()[1].finish_reason(), Some(FinishReason::Evicted));
        assert!(engine.sequences()[1].generated.is_empty());
        assert_eq!(report.finished_length + report.finished_stop + report.evicted, report.sequences);
    }

    #[test]
    fn explicit_thread_counts_agree_with_the_default_engine() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let prompts: [&[usize]; 5] = [&[1, 2, 3], &[7, 7], &[10, 20, 30, 40], &[2], &[8, 6, 4]];
        let mut reference: Option<Vec<Vec<usize>>> = None;
        for threads in [1usize, 2, 3, 8] {
            let mut engine = ServingEngine::new(&model).with_threads(threads);
            for p in prompts {
                engine.submit(p, 7);
            }
            let report = engine.run();
            assert_eq!(report.num_threads, threads);
            assert_eq!(report.generated_tokens, 5 * 7);
            let outputs: Vec<Vec<usize>> = engine.sequences().iter().map(|s| s.generated.clone()).collect();
            match &reference {
                None => reference = Some(outputs),
                Some(r) => assert_eq!(r, &outputs, "outputs diverge at {threads} threads"),
            }
        }
    }

    #[test]
    fn top_k_sampling_is_seeded_and_reproducible() {
        let model = model(ModelQuantConfig::BASELINE);
        let sampling = Sampling::top_k(4, 0.9, 1234);
        let run = |threads: usize| {
            let mut engine = ServingEngine::new(&model).with_threads(threads);
            engine.submit_with_sampling(&[3, 1, 4], 12, None, sampling);
            engine.submit_with_sampling(&[2, 7], 12, None, sampling);
            engine.run();
            engine.sequences().iter().map(|s| s.generated.clone()).collect::<Vec<_>>()
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a, b, "same seed must reproduce the same sampled stream");
        let c = run(4);
        assert_eq!(a, c, "sampled streams must not depend on the thread count");
        // Distinct per-sequence RNG streams: two sequences with the same prompt would
        // still decorrelate; here different prompts plus different streams.
        assert!(a[0].iter().all(|&t| t < model.config().vocab));
        // A different seed almost surely takes a different path within 12 tokens of
        // k=4 sampling; pin it so the seed is demonstrably load-bearing.
        let mut other = ServingEngine::new(&model);
        other.submit_with_sampling(&[3, 1, 4], 12, None, Sampling::top_k(4, 0.9, 77));
        other.run();
        assert_ne!(a[0], other.sequences()[0].generated, "different seeds must decorrelate");
    }

    #[test]
    fn greedy_sampling_field_defaults_preserve_old_submissions() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        engine.submit(&[5, 9], 4);
        assert_eq!(engine.sequences()[0].sampling, Sampling::GREEDY);
        engine.run();
        assert_eq!(engine.sequences()[0].generated, model.generate_greedy(&[5, 9], 4));
    }

    #[test]
    fn sampled_sequences_respect_stop_tokens() {
        let model = model(ModelQuantConfig::BASELINE);
        // Sample freely once to learn the stream, then stop on its third token.
        let sampling = Sampling::top_p(0.8, 1.0, 99);
        let mut free = ServingEngine::new(&model);
        free.submit_with_sampling(&[6, 2, 8], 10, None, sampling);
        free.run();
        let stream = free.sequences()[0].generated.clone();
        assert_eq!(stream.len(), 10);
        let stop = stream[3];
        // Only meaningful if the stop token does not appear earlier in the stream.
        if stream[..3].contains(&stop) {
            return;
        }
        let mut engine = ServingEngine::new(&model);
        engine.submit_with_sampling(&[6, 2, 8], 10, Some(stop), sampling);
        engine.run();
        let seq = &engine.sequences()[0];
        assert_eq!(seq.finish_reason(), Some(FinishReason::Stop));
        assert_eq!(seq.generated, stream[..3]);
    }

    #[test]
    #[should_panic(expected = "prompt must be non-empty")]
    fn submit_rejects_empty_prompts() {
        let model = model(ModelQuantConfig::BASELINE);
        ServingEngine::new(&model).submit(&[], 4);
    }

    #[test]
    #[should_panic(expected = "at least one decode thread")]
    fn zero_threads_is_rejected() {
        let model = model(ModelQuantConfig::BASELINE);
        let _ = ServingEngine::new(&model).with_threads(0);
    }
}
