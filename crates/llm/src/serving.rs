//! A continuous-batching serving engine on top of the zero-copy decode path, driven by a
//! pool of decode worker threads.
//!
//! The engine owns a queue of sequences and decodes them round-robin — one token per
//! active sequence per scheduler step. Two cache backends are supported:
//!
//! * **f32-contiguous** ([`ServingEngine::new`]): every submitted sequence is admitted
//!   up front with its own pre-reserved [`KvCache`] of dequantized rows — the accuracy /
//!   bit-exactness baseline.
//! * **paged-packed** ([`ServingEngine::paged`]): sequences share a fixed-budget
//!   [`PagePool`] whose pages hold **genuinely bit-packed** rows
//!   ([`PagedKvCache`]). Admission is a page *reservation* for the sequence's worst case
//!   (prompt + generation budget), so the scheduler practices true **continuous
//!   batching**: submissions that do not fit wait in the queue and are admitted mid-run
//!   as finishing sequences return their pages; submissions whose worst case exceeds the
//!   whole pool are reported as [`FinishReason::Evicted`] — the *only* thing that
//!   reason is for, now that preemption handles mere pressure.
//!
//! ## Prefix sharing and preemption
//!
//! On the paged backend the scheduler exploits the refcounted shared-page ownership
//! model of [`crate::paging`]:
//!
//! * **Prefix sharing** — every submitted prompt's full-page chunks are hash-consed
//!   into a prefix index; when a later submission's prompt starts with a chunk chain a
//!   resident sequence has already prefilled, admission seals the donor's pages and maps
//!   them straight into the new sequence's table ([`PagedKvCache::share_prefix`] /
//!   [`PagedKvCache::with_shared_prefix`]). The shared positions are never re-prefilled
//!   and cost **zero** new pages — N sequences sharing a long prompt keep one copy of it
//!   resident. Writes into a shared boundary page copy-on-write, so outputs stay
//!   bit-identical to unshared decoding ([`ServingReport::shared_pages`],
//!   [`ServingReport::prefill_tokens_saved`] quantify the win).
//! * **Preemption** — when a higher-priority submission ([`SubmitOptions::priority`])
//!   cannot reserve its worst case, the scheduler spills strictly lower-priority running
//!   sequences to host memory ([`PagedKvCache::spill`]) instead of refusing admission;
//!   the victims re-enter the queue and are later restored bit-identically
//!   ([`ServingReport::preemptions`] counts the swaps).
//!
//! ## Threading model
//!
//! Within a scheduler step, per-sequence work (prefill on first touch, then one decode
//! step per pass) is embarrassingly parallel: every sequence exclusively owns its cache
//! pages (shared prefix pages are immutable behind their refcount) and its sampler
//! state, and the model weights are read-only. [`ServingEngine::run`] therefore spawns a
//! **persistent pool** of `num_threads` decode workers once per run
//! ([`ServingEngine::with_threads`]; default = available parallelism), each carrying one
//! reusable [`PagedScratch`] for its whole lifetime, and moves each pass's active
//! sequences to them over channels (no per-pass thread spawns). The **coordinator**
//! thread keeps everything that mutates shared scheduling state: admission (page
//! reservation, priority-then-FCFS order, prefix-share planning), preemption, eviction,
//! occupancy sampling, and retirement — returning a finished sequence's pages to the
//! pool between passes, which is what funds mid-run admissions. Because sequences are
//! independent, the generated streams are **token-identical for every `num_threads`**,
//! and `num_threads = 1` runs the exact sequential submission-order loop of the
//! single-threaded engine.
//!
//! Sequences finish on their length budget or on a per-sequence stop token, each
//! recorded as a [`FinishReason`]; next-token selection is greedy by default or seeded
//! top-k / top-p per sequence. All of it is configured through one [`SubmitOptions`]
//! builder ([`ServingEngine::submit_with`]). All cache reads go through the borrowed-view
//! / packed-row-decode hot path, so a whole batched run performs zero full-cache copies;
//! the [`ServingReport`] pins that invariant, distinguishes the cache's **theoretical**
//! scheme bytes from the **measured resident** bytes actually allocated, and reports
//! wall-clock throughput ([`ServingReport::tokens_per_sec_parallel`]) next to the
//! summed-across-workers decode rate.
//!
//! ## Observability
//!
//! Every run measures per-request latency: [`ServingReport::latency`] carries TTFT,
//! TPOT, scheduler-pass and queue-wait quantiles built from always-on
//! [`mx_telemetry::Histogram`]s, and [`ServingReport::worker_decode_steps`] exposes the
//! scheduler's per-worker step skew. *Event tracing* is opt-in
//! ([`ServingEngine::with_telemetry`]): when enabled, the coordinator and every decode
//! worker record lifecycle instants (submitted → admitted → first_token → preempted /
//! restored / evicted → retired), pass spans, prefill/decode-step spans and occupancy
//! gauges into per-thread shards, and [`ServingEngine::take_trace`] returns the merged
//! [`mx_telemetry::Trace`] for Chrome trace-event export. Recording never takes a lock
//! on the step path, and a disabled hub reduces every event site to one branch —
//! generated tokens are identical with telemetry on or off.
//!
//! ## Fault tolerance
//!
//! Failure is a first-class, deterministically testable input ([`crate::fault`]):
//!
//! * **Containment** — every worker step runs under `catch_unwind`, so a panicking
//!   step (a seeded [`FaultPlan`] injection via [`ServingEngine::with_faults`], or a
//!   genuine bug) costs at most that one sequence's in-flight pass, never the run. The
//!   coordinator respawns the panicked worker at the pass boundary
//!   ([`ServingReport::worker_restarts`]) and rolls the lost sequence back to its last
//!   periodic checkpoint ([`PagedKvCache::checkpoint`], every
//!   [`RecoveryPolicy::checkpoint_every`] passes), retrying with bounded attempts and
//!   backoff-in-passes; replay from a bit-exact checkpoint keeps retried sequences —
//!   and trivially every untouched one — token-identical to a fault-free run. A
//!   sequence that exhausts its attempts finishes as [`FinishReason::Failed`].
//! * **Deadlines** — [`SubmitOptions::deadline_pass`] / [`SubmitOptions::ttft_deadline`]
//!   finish overdue sequences as [`FinishReason::DeadlineExceeded`] instead of letting
//!   them occupy pages past their usefulness.
//! * **Load shedding** — with [`ServingEngine::with_shed_watermark`], queued
//!   never-admitted submissions whose worst-case demand would push the pool past the
//!   watermark are refused as [`FinishReason::Shed`], lowest priority first — explicit
//!   refusal instead of silent starvation.
//! * **Drain/shutdown** — [`ServingEngine::run_for`] bounds a run by passes,
//!   [`ServingEngine::drain`] finishes live sequences with admissions frozen, and
//!   [`ServingEngine::shutdown`] spills them to host buffers immediately; both leave
//!   the pool drained and report the leftover population as a [`DrainReport`].

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use mx_formats::{QuantScheme, RowCodec};
use mx_telemetry::{Category, Histogram, LatencySummary, QuantileSummary, Recorder, Telemetry, TelemetryConfig, Trace};

use crate::fault::{FaultPlan, FaultState, InjectedFault, RecoveryPolicy};
use crate::kvcache::{KvCache, LayerKvCache};
use crate::model::{DecodePath, TransformerModel};
use crate::paging::{PagePool, PagedKvCache, PagedScratch, SpilledKv, DEFAULT_PAGE_POSITIONS};
use crate::sampling::{sample_token, Sampling, SeqRng};

/// Why a sequence stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The generation budget (`max_new_tokens`) was reached.
    Length,
    /// The sequence produced its stop token (the stop token itself is not emitted).
    Stop,
    /// The sequence could never be admitted: its worst-case page footprint exceeds the
    /// entire pool budget.
    Evicted,
    /// The sequence was lost to worker panics more times than the
    /// [`RecoveryPolicy::max_attempts`] retry budget allows; `attempts` is the total
    /// number of times it was attempted.
    Failed {
        /// Times the sequence was attempted before giving up.
        attempts: usize,
    },
    /// The sequence missed its [`SubmitOptions::deadline_pass`] or
    /// [`SubmitOptions::ttft_deadline`] and was finished by the deadline sweep.
    DeadlineExceeded,
    /// The sequence was refused by priority-ordered load shedding before ever being
    /// admitted (see [`ServingEngine::with_shed_watermark`]).
    Shed,
}

/// Cache state of one sequence across its lifecycle.
#[derive(Debug)]
enum SeqCache {
    /// Submitted, not yet admitted (no storage held).
    Waiting,
    /// Active or finished on the f32-contiguous backend (storage retained for inspection).
    F32(KvCache),
    /// Active on the paged-packed backend.
    Paged(PagedKvCache),
    /// Preempted: pages swapped out to a host-side spill buffer, waiting to be
    /// re-admitted and restored bit-identically.
    Spilled { spilled: SpilledKv },
    /// Finished on the paged backend: pages returned to the pool, only the final
    /// position count is kept for accounting.
    Retired { positions: usize },
}

/// A retryable sequence's recovery snapshot, taken at a pass boundary: the bit-exact
/// page bytes ([`PagedKvCache::checkpoint`]) plus the sampler and bookkeeping state
/// needed to replay from that point. Restoring it after a worker panic reproduces the
/// fault-free token stream exactly, because replay is deterministic.
#[derive(Debug)]
struct Checkpoint {
    spilled: SpilledKv,
    generated: Vec<usize>,
    next: usize,
    rng: SeqRng,
    shared_positions: usize,
}

/// One sequence being served.
#[derive(Debug)]
pub struct Sequence {
    /// Caller-visible id (submission order).
    pub id: usize,
    /// The prompt the sequence was submitted with.
    pub prompt: Vec<usize>,
    /// Tokens generated so far.
    pub generated: Vec<usize>,
    /// Generation budget for this sequence.
    pub max_new_tokens: usize,
    /// Token id that terminates the sequence early (never emitted).
    pub stop_token: Option<usize>,
    /// How this sequence picks its next token (greedy unless submitted with sampling).
    pub sampling: Sampling,
    /// Scheduling priority (see [`SubmitOptions::priority`]): higher admits first and
    /// may preempt strictly lower under pool pressure.
    pub priority: i32,
    /// Scheduler pass at which this submission becomes visible to admission
    /// (see [`SubmitOptions::arrival_pass`]).
    pub arrival_pass: usize,
    /// Whether this sequence may map a matching prompt prefix onto shared pages.
    share_prefix: bool,
    /// Chain hashes of the prompt's full pages, computed once at submit time
    /// (`prefix_hashes[k-1]` covers `prompt[..k * page_positions]`); empty on the f32
    /// backend. Reused by every admission pass instead of re-hashing the prompt.
    prefix_hashes: Vec<u64>,
    /// Prompt positions mapped from a donor's shared pages at admission (0 when nothing
    /// was shared); prefill skips exactly these positions.
    shared_positions: usize,
    /// This sequence's own RNG stream — owned, so sampling needs no cross-thread state.
    rng: SeqRng,
    finish: Option<FinishReason>,
    cache: SeqCache,
    next: usize,
    prefilled: bool,
    /// Hub-clock reading when the submission first became visible to the scheduler.
    submitted_ns: Option<u64>,
    /// Hub-clock reading at first admission (page reservation granted); re-admissions
    /// after preemption do not overwrite it.
    admitted_ns: Option<u64>,
    /// Hub-clock reading when the first generated token became caller-visible.
    first_token_ns: Option<u64>,
    /// Whether the coordinator has emitted this sequence's `retired` lifecycle event.
    finish_logged: bool,
    /// Pass by which the sequence must have finished, else the deadline sweep ends it.
    deadline_pass: Option<usize>,
    /// Passes after arrival by which the first token must exist, else the sweep ends it.
    ttft_deadline: Option<usize>,
    /// Times this sequence has been attempted (incremented per worker-panic loss).
    attempts: usize,
    /// Earliest pass at which a rolled-back sequence becomes admissible again (retry
    /// backoff; 0 = immediately).
    retry_at_pass: usize,
    /// Last recovery snapshot, refreshed every `checkpoint_every` passes while the
    /// engine runs with faults or an explicit recovery policy; dropped at retirement.
    checkpoint: Option<Box<Checkpoint>>,
}

impl Sequence {
    /// Whether the sequence has finished (see [`Sequence::finish_reason`]).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finish.is_some()
    }

    /// Why the sequence finished, or `None` while it is waiting/active.
    #[must_use]
    pub fn finish_reason(&self) -> Option<FinishReason> {
        self.finish
    }

    /// This sequence's f32 KV cache, if it runs on the f32-contiguous backend
    /// (paged caches release their pages at retirement and are not inspectable here).
    #[must_use]
    pub fn cache(&self) -> Option<&KvCache> {
        match &self.cache {
            SeqCache::F32(c) => Some(c),
            _ => None,
        }
    }

    /// Positions this sequence holds (or held, once retired) in its KV cache. A
    /// preempted sequence reports the positions parked in its spill buffer.
    #[must_use]
    pub fn cached_positions(&self) -> usize {
        match &self.cache {
            SeqCache::Waiting => 0,
            SeqCache::F32(c) => c.seq_len(),
            SeqCache::Paged(c) => c.seq_len(),
            SeqCache::Spilled { spilled } => spilled.positions(),
            SeqCache::Retired { positions } => *positions,
        }
    }

    /// Prompt positions this sequence mapped from another sequence's shared pages at
    /// admission instead of re-prefilling (0 when nothing was shared).
    #[must_use]
    pub fn shared_positions(&self) -> usize {
        self.shared_positions
    }

    /// A throwaway placeholder parked in the sequence table while the real sequence is
    /// travelling through a worker's channel; never admitted, stepped or observed.
    fn parked() -> Sequence {
        Sequence {
            id: usize::MAX,
            prompt: Vec::new(),
            generated: Vec::new(),
            max_new_tokens: 0,
            stop_token: None,
            sampling: Sampling::GREEDY,
            priority: 0,
            arrival_pass: usize::MAX,
            share_prefix: false,
            prefix_hashes: Vec::new(),
            shared_positions: 0,
            rng: SeqRng::new(0, 0),
            finish: None,
            cache: SeqCache::Waiting,
            next: 0,
            prefilled: false,
            submitted_ns: None,
            admitted_ns: None,
            first_token_ns: None,
            finish_logged: false,
            deadline_pass: None,
            ttft_deadline: None,
            attempts: 0,
            retry_at_pass: 0,
            checkpoint: None,
        }
    }

    /// Times this sequence has been attempted so far: 0 while it has never lost a step
    /// to a worker panic, `n` after `n` rollback/retry rounds. A sequence finished as
    /// [`FinishReason::Failed`] carries its final count in the reason as well.
    #[must_use]
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Marks the sequence finished. Pages are *not* reclaimed here — that is the
    /// coordinator's job ([`Sequence::retire`]), so workers never touch the pool's
    /// accounting mid-pass.
    fn finish(&mut self, reason: FinishReason) {
        self.finish = Some(reason);
    }

    /// Returns a finished paged sequence's pages to the pool (coordinator-only; see the
    /// [module docs](crate::serving)). Dropping the paged cache frees its pages — this
    /// is what funds the admission of queued sequences. A finished sequence parked in a
    /// spill buffer (deadline-exceeded while preempted, say) drops the host bytes the
    /// same way, and any recovery checkpoint goes with it.
    fn retire(&mut self) {
        if self.finish.is_some() {
            match &self.cache {
                SeqCache::Paged(cache) => {
                    let positions = cache.seq_len();
                    self.cache = SeqCache::Retired { positions };
                }
                SeqCache::Spilled { spilled } => {
                    let positions = spilled.positions();
                    self.cache = SeqCache::Retired { positions };
                }
                _ => {}
            }
            self.checkpoint = None;
        }
    }

    /// Draws this sequence's next token from `logits` with its own sampler state.
    fn sample(&mut self, logits: &[f32]) -> usize {
        sample_token(logits, &self.sampling, &mut self.rng)
    }

    /// One scheduler step of this sequence, run by a decode worker: prefill on first
    /// touch, then stop/budget bookkeeping and one decode step. Returns the tokens this
    /// step generated (0 or 1) and the prefill/decode forward time it spent, recording
    /// the worker-side spans and the first-token lifecycle instant into `rec`.
    fn step(
        &mut self,
        model: &TransformerModel,
        mode: DecodePath,
        scratch: &mut PagedScratch,
        rec: &mut Recorder,
    ) -> StepResult {
        if !self.prefilled {
            let span = rec.span(Category::Worker, "prefill", "seq", self.id as u64);
            let t0 = Instant::now();
            // Prefix sharing: positions already resident in shared pages are skipped —
            // the suffix forward starts at `cache.seq_len() == shared_positions`, so the
            // logits (and every later token) are bit-identical to a full prefill.
            let logits = match &mut self.cache {
                SeqCache::F32(cache) => model.forward_with_path(&self.prompt, cache, mode),
                SeqCache::Paged(cache) => {
                    model.forward_backend_with_scratch(&self.prompt[self.shared_positions..], cache, scratch)
                }
                _ => unreachable!("stepped sequence without a cache"),
            };
            self.next = self.sample(logits.row(logits.rows() - 1));
            self.prefilled = true;
            let prefill = t0.elapsed();
            drop(span);
            return StepResult { tokens: 0, prefill, decode: Duration::ZERO };
        }
        if self.stop_token == Some(self.next) {
            self.finish(FinishReason::Stop);
            return StepResult::default();
        }
        if self.generated.len() >= self.max_new_tokens {
            // Zero-budget sequences finish without emitting anything.
            self.finish(FinishReason::Length);
            return StepResult::default();
        }
        self.generated.push(self.next);
        if self.generated.len() == 1 {
            // TTFT anchor: the first token just became caller-visible.
            self.first_token_ns = Some(rec.now_nanos());
            rec.instant(Category::Lifecycle, "first_token", "seq", self.id as u64);
        }
        if self.generated.len() == self.max_new_tokens {
            // The budgeted last token needs no forward pass of its own: decoding it
            // would only produce logits (and a cache row) that are thrown away.
            self.finish(FinishReason::Length);
            return StepResult { tokens: 1, prefill: Duration::ZERO, decode: Duration::ZERO };
        }
        let span = rec.span(Category::Worker, "decode_step", "seq", self.id as u64);
        let t0 = Instant::now();
        let logits = match &mut self.cache {
            SeqCache::F32(cache) => model.decode_step_with_path(self.next, cache, mode),
            SeqCache::Paged(cache) => model.decode_step_backend_with_scratch(self.next, cache, scratch),
            _ => unreachable!("active sequence without a cache"),
        };
        self.next = self.sample(&logits);
        let decode = t0.elapsed();
        drop(span);
        StepResult { tokens: 1, prefill: Duration::ZERO, decode }
    }
}

/// Throughput and memory report for one [`ServingEngine::run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Display name of the KV-cache quantization scheme.
    pub scheme: String,
    /// Cache backend the run used: `"paged-packed"` or `"f32-contiguous"`.
    pub backend: &'static str,
    /// Number of sequences submitted to the engine.
    pub sequences: usize,
    /// Sequences that finished by exhausting their generation budget.
    pub finished_length: usize,
    /// Sequences that finished on their stop token.
    pub finished_stop: usize,
    /// Sequences evicted because they can never fit the page budget.
    pub evicted: usize,
    /// Sequences that exhausted their retry budget after repeated worker-panic losses
    /// ([`FinishReason::Failed`]).
    pub failed: usize,
    /// Sequences finished by the deadline sweep ([`FinishReason::DeadlineExceeded`]).
    pub deadline_misses: usize,
    /// Sequences refused by priority-ordered load shedding ([`FinishReason::Shed`]).
    pub shed: usize,
    /// Decode workers respawned after a (real or injected) panic — every one a
    /// contained crash that did not take the run down.
    pub worker_restarts: usize,
    /// Checkpoint-rollback retries scheduled after losing a sequence's in-flight step
    /// to a worker panic (see [`RecoveryPolicy`]).
    pub retries: usize,
    /// Scheduler passes the run executed.
    pub passes: usize,
    /// Total prompt tokens prefilled.
    pub prompt_tokens: usize,
    /// Total tokens generated by the decode loop.
    pub generated_tokens: usize,
    /// Time spent in prefill, summed across worker threads.
    pub prefill_time: Duration,
    /// Time spent in the decode loop, summed across worker threads (per-thread work, not
    /// wall clock — see [`ServingReport::wall_seconds`] for the elapsed time).
    pub decode_time: Duration,
    /// Generated tokens per second of summed decode time: the *per-worker* decode rate,
    /// directly comparable across `num_threads` (parallelism holds it roughly constant
    /// while the wall-clock rate scales).
    pub decode_tokens_per_sec: f64,
    /// Wall-clock seconds of the whole [`ServingEngine::run`] call (admission, prefill,
    /// decode and retirement across all passes).
    pub wall_seconds: f64,
    /// Generated tokens per *wall-clock* second of the run — the end-to-end serving
    /// throughput the thread-scaling benches sweep.
    pub tokens_per_sec_parallel: f64,
    /// Worker threads the run was configured with (see [`ServingEngine::with_threads`]).
    pub num_threads: usize,
    /// Page-table entries newly admitted sequences mapped from refcounted shared pages
    /// instead of allocating and re-prefilling them (summed over the run's admissions).
    pub shared_pages: usize,
    /// Prompt positions whose prefill compute was skipped because their KV rows were
    /// already resident in shared pages.
    pub prefill_tokens_saved: usize,
    /// Times the scheduler preempted a running sequence — spilling its pages to a
    /// host-side buffer and restoring them bit-identically later — to fund a
    /// higher-priority admission. [`FinishReason::Evicted`] stays reserved for requests
    /// that exceed the entire pool budget.
    pub preemptions: usize,
    /// Cache bytes by scheme math: every position ever cached, at the scheme's average
    /// width (rows byte-ceiled). What the hardware *would* hold with a perfect layout.
    pub theoretical_bytes: usize,
    /// The same positions held in FP32 — the compression baseline.
    pub theoretical_bytes_fp32: usize,
    /// **Measured** peak cache storage during the run: page-pool occupancy on the paged
    /// backend, f32 row storage on the baseline backend. This is the number that exposed
    /// the old accounting gap (f32-resident storage labelled with scheme bytes).
    pub resident_bytes: usize,
    /// Full-cache materializations observed across all caches (0 on the hot paths).
    pub cache_materializations: usize,
    /// Per-request latency quantiles (TTFT, TPOT, scheduler-pass wall time and admission
    /// queue-wait), built from always-on histograms — populated whether or not event
    /// tracing ([`ServingEngine::with_telemetry`]) is enabled.
    pub latency: LatencySummary,
    /// Scheduler step invocations each decode worker executed (prefill touches, decode
    /// steps and finish bookkeeping); index `w` is worker lane `w + 1`, or the
    /// coordinator itself on a single-threaded run. Exposes the pool's load skew.
    pub worker_decode_steps: Vec<usize>,
}

impl ServingReport {
    /// Compression of the scheme's theoretical bytes over FP32 storage.
    #[must_use]
    pub fn theoretical_compression(&self) -> f64 {
        ratio(self.theoretical_bytes_fp32, self.theoretical_bytes)
    }

    /// Compression of the *measured* resident bytes over theoretical FP32 storage —
    /// ~1x for the f32 backend (it really stores f32), near the scheme ratio for the
    /// paged backend (minus page-granularity slack).
    #[must_use]
    pub fn resident_compression(&self) -> f64 {
        ratio(self.theoretical_bytes_fp32, self.resident_bytes)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Leftover sequence population after a [`ServingEngine::drain`] or
/// [`ServingEngine::shutdown`] — the graceful-stop contract's receipt. In both cases no
/// live sequence holds pool pages on return: drain finishes every resident sequence,
/// shutdown spills them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Sequences finished for any [`FinishReason`].
    pub finished: usize,
    /// Live sequences parked in host-side spill buffers (bit-exact, restorable by a
    /// later [`ServingEngine::run`]).
    pub spilled: usize,
    /// Live sequences still queued, never admitted or rolled back to scratch.
    pub waiting: usize,
    /// Scheduler passes the stop path executed (always 0 for shutdown).
    pub passes: usize,
}

impl DrainReport {
    /// Live (unfinished) sequences left in the engine: `spilled + waiting`.
    #[must_use]
    pub fn live(&self) -> usize {
        self.spilled + self.waiting
    }
}

/// Everything one [`ServingEngine`] submission can configure, built fluently:
///
/// ```
/// use mx_llm::{Sampling, SubmitOptions};
///
/// let opts = SubmitOptions::new(64).stop_token(7).sampling(Sampling::top_k(4, 0.9, 1)).priority(2);
/// assert_eq!(opts.max_new_tokens, 64);
/// assert_eq!(opts.stop_token, Some(7));
/// assert!(opts.share_prefix);
/// ```
///
/// This is the one submission surface of the engine — the historical
/// `submit` / `submit_with_stop` / `submit_with_sampling` trio survives as thin
/// deprecated wrappers, so prefix-sharing, priority and arrival options never need a
/// fourth variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitOptions {
    /// Generation budget for the sequence.
    pub max_new_tokens: usize,
    /// Token id that terminates the sequence early (never emitted).
    pub stop_token: Option<usize>,
    /// Next-token selection policy (greedy by default; see [`crate::sampling`]).
    pub sampling: Sampling,
    /// Scheduling priority: higher-priority submissions are admitted first, and under
    /// pool pressure may preempt strictly lower-priority running sequences (spilling
    /// their pages, restoring them bit-identically later). Default 0.
    pub priority: i32,
    /// Scheduler pass at which the submission becomes visible to admission — the
    /// deterministic analogue of an online arrival time. Default 0 (present from the
    /// start); a later pass lets tests and benches model a high-priority request
    /// arriving while lower-priority work occupies the pool.
    pub arrival_pass: usize,
    /// Whether this sequence may map a matching prompt prefix onto another sequence's
    /// sealed shared pages instead of re-prefilling it. Default `true` — sharing is
    /// bit-identical, so there is no accuracy reason to opt out; disable it to measure
    /// the unshared baseline.
    pub share_prefix: bool,
    /// Absolute scheduler pass by which the sequence must have finished; past it, the
    /// deadline sweep ends the sequence as [`FinishReason::DeadlineExceeded`]. Default
    /// `None` (no deadline).
    pub deadline_pass: Option<usize>,
    /// Passes after [`SubmitOptions::arrival_pass`] within which the first token must
    /// have been generated — the pass-domain analogue of a TTFT SLO. Default `None`.
    pub ttft_deadline: Option<usize>,
}

impl SubmitOptions {
    /// Options for a plain greedy submission with `max_new_tokens` budget.
    #[must_use]
    pub fn new(max_new_tokens: usize) -> Self {
        SubmitOptions {
            max_new_tokens,
            stop_token: None,
            sampling: Sampling::GREEDY,
            priority: 0,
            arrival_pass: 0,
            share_prefix: true,
            deadline_pass: None,
            ttft_deadline: None,
        }
    }

    /// Finishes the sequence early (without emitting it) when `token` is generated.
    /// Accepts a bare token id or an `Option` (so call sites holding one need no
    /// field-mutation dance); `None` leaves the sequence stop-free.
    #[must_use]
    pub fn stop_token(mut self, token: impl Into<Option<usize>>) -> Self {
        self.stop_token = token.into();
        self
    }

    /// Selects next tokens with `sampling` instead of greedy argmax.
    #[must_use]
    pub fn sampling(mut self, sampling: Sampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// Sets the scheduling priority (see [`SubmitOptions::priority`]).
    #[must_use]
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Delays the submission's visibility to admission until scheduler pass `pass`.
    #[must_use]
    pub fn arrival_pass(mut self, pass: usize) -> Self {
        self.arrival_pass = pass;
        self
    }

    /// Opts this sequence out of prefix sharing (used to measure the unshared baseline).
    #[must_use]
    pub fn without_prefix_sharing(mut self) -> Self {
        self.share_prefix = false;
        self
    }

    /// Requires the sequence to finish by scheduler pass `pass` (see
    /// [`SubmitOptions::deadline_pass`]).
    #[must_use]
    pub fn deadline_pass(mut self, pass: usize) -> Self {
        self.deadline_pass = Some(pass);
        self
    }

    /// Requires the first token within `passes` passes of arrival (see
    /// [`SubmitOptions::ttft_deadline`]).
    #[must_use]
    pub fn ttft_deadline(mut self, passes: usize) -> Self {
        self.ttft_deadline = Some(passes);
        self
    }
}

/// Decodes a batch of sequences against one model with continuous batching and a decode
/// worker pool (see the [module docs](crate::serving)).
///
/// ```
/// use mx_llm::{ModelConfig, ModelQuantConfig, ServingEngine, SubmitOptions, TransformerModel};
///
/// let model = TransformerModel::new(ModelConfig::tiny_test(3), ModelQuantConfig::BASELINE);
/// let mut engine = ServingEngine::new(&model);
/// engine.submit_with(&[1, 2, 3], SubmitOptions::new(4));
/// engine.submit_with(&[9, 8], SubmitOptions::new(4));
/// let report = engine.run();
/// assert_eq!(report.sequences, 2);
/// assert_eq!(report.generated_tokens, 8);
/// assert_eq!(report.finished_length, 2);
/// assert_eq!(report.cache_materializations, 0);
/// ```
#[derive(Debug)]
pub struct ServingEngine<'m> {
    model: &'m TransformerModel,
    sequences: Vec<Sequence>,
    mode: DecodePath,
    pool: Option<Arc<PagePool>>,
    num_threads: usize,
    /// Hash-consed prompt prefixes: chain hash of each full page of prompt positions →
    /// the sequence ids whose prompts contain that page chunk, in submission order.
    prefix_index: HashMap<u64, Vec<usize>>,
    /// Telemetry hub the run's recorders shard into (a disabled hub unless
    /// [`ServingEngine::with_telemetry`] configured one).
    telemetry: Arc<Telemetry>,
    /// Event trace drained after the last run, when telemetry was enabled.
    last_trace: Option<Trace>,
    /// Remaining scheduled faults of an installed [`FaultPlan`], consumed as the
    /// scheduler's counters reach their coordinates (`None` = fault-free: the whole
    /// injection machinery is this one `Option` check).
    faults: Option<FaultState>,
    /// Explicit checkpoint/retry policy; `None` uses the default policy and enables
    /// periodic checkpointing only while faults are installed.
    recovery: Option<RecoveryPolicy>,
    /// Load-shedding watermark as a fraction of the pool's total pages; `None`
    /// (default) never sheds.
    shed_watermark: Option<f64>,
}

impl<'m> ServingEngine<'m> {
    /// Creates an engine serving `model` on the f32-contiguous backend through the
    /// zero-copy cache path (every submission is admitted immediately).
    #[must_use]
    pub fn new(model: &'m TransformerModel) -> Self {
        ServingEngine::with_path(model, DecodePath::ZeroCopy)
    }

    /// Creates an f32-backend engine with an explicit [`DecodePath`] (`SeedClone` is only
    /// useful for benchmarking the pre-refactor decode path).
    #[must_use]
    pub fn with_path(model: &'m TransformerModel, mode: DecodePath) -> Self {
        ServingEngine {
            model,
            sequences: Vec::new(),
            mode,
            pool: None,
            num_threads: default_threads(),
            prefix_index: HashMap::new(),
            telemetry: Telemetry::disabled(),
            last_trace: None,
            faults: None,
            recovery: None,
            shed_watermark: None,
        }
    }

    /// Creates an engine on the paged-packed backend with a pool of `total_pages` pages
    /// of [`DEFAULT_PAGE_POSITIONS`] positions each, stored bit-packed under the model's
    /// KV-cache scheme.
    #[must_use]
    pub fn paged(model: &'m TransformerModel, total_pages: usize) -> Self {
        ServingEngine::paged_with(model, total_pages, DEFAULT_PAGE_POSITIONS)
    }

    /// [`ServingEngine::paged`] with an explicit page size in positions.
    #[must_use]
    pub fn paged_with(model: &'m TransformerModel, total_pages: usize, page_positions: usize) -> Self {
        let scheme = model.quant().kv_cache;
        let kv_dim = Self::kv_dim(model);
        let pool = PagePool::for_kv_rows(total_pages, page_positions, RowCodec::for_scheme(scheme), kv_dim).shared();
        ServingEngine {
            model,
            sequences: Vec::new(),
            mode: DecodePath::ZeroCopy,
            pool: Some(pool),
            num_threads: default_threads(),
            prefix_index: HashMap::new(),
            telemetry: Telemetry::disabled(),
            last_trace: None,
            faults: None,
            recovery: None,
            shed_watermark: None,
        }
    }

    /// Sets the number of decode worker threads (builder-style). `1` reproduces the
    /// sequential engine exactly, step for step; any value produces token-identical
    /// output, because sequences share nothing but the page pool's allocator.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is 0.
    #[must_use]
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        assert!(num_threads >= 1, "the engine needs at least one decode thread");
        self.num_threads = num_threads;
        self
    }

    /// The configured number of decode worker threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Configures event tracing for subsequent runs (builder-style). The report's
    /// [`ServingReport::latency`] summaries are always on; this gates only the event
    /// recording behind [`ServingEngine::take_trace`]. A disabled hub (the default)
    /// reduces every event site to one branch, and generated tokens are identical with
    /// telemetry on or off.
    #[must_use]
    pub fn with_telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Telemetry::new(&config);
        self
    }

    /// Whether event tracing is enabled (see [`ServingEngine::with_telemetry`]).
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_enabled()
    }

    /// Installs a deterministic [`FaultPlan`] for subsequent runs (builder-style; see
    /// [`crate::fault`]). Each scheduled fault fires at most once, across however many
    /// runs it takes for the scheduler's counters to reach it. Installing a plan also
    /// turns on periodic recovery checkpointing under the active [`RecoveryPolicy`].
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(FaultState::new(&plan));
        self
    }

    /// Sets the checkpoint/retry policy for worker-panic recovery (builder-style) and
    /// enables periodic checkpointing even without an installed fault plan — which is
    /// what lets *real* (non-injected) worker panics retry from a recent snapshot
    /// instead of replaying from scratch.
    #[must_use]
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Enables priority-ordered load shedding (builder-style): on each pass, if the
    /// pool pages already committed (in use or reserved) plus the worst-case demand of
    /// every arrived, never-admitted submission exceed `watermark × total_pages`,
    /// the excess queued submissions are refused as [`FinishReason::Shed`] — lowest
    /// priority first, youngest first within a class — instead of starving silently.
    /// Sequences that already ran (preempted or retrying) are never shed.
    ///
    /// # Panics
    ///
    /// Panics if `watermark` is not positive.
    #[must_use]
    pub fn with_shed_watermark(mut self, watermark: f64) -> Self {
        assert!(watermark > 0.0, "shed watermark must be positive");
        self.shed_watermark = Some(watermark);
        self
    }

    /// Takes the event trace recorded by the most recent [`ServingEngine::run`] call
    /// (`None` when telemetry is off or no traced run has completed since the last take).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.last_trace.take()
    }

    /// The shared page pool, when running on the paged backend.
    #[must_use]
    pub fn pool(&self) -> Option<&Arc<PagePool>> {
        self.pool.as_ref()
    }

    fn kv_dim(model: &TransformerModel) -> usize {
        model.config().head_dim() * model.config().kv_heads
    }

    /// Queues a sequence with the given [`SubmitOptions`] and returns the sequence id.
    /// The sequence's RNG stream is derived from the sampling seed and the sequence id,
    /// so runs are reproducible at any thread count. On the paged backend the prompt's
    /// full-page chunks are hash-consed into the prefix index, making the sequence a
    /// potential prefix-sharing donor for later submissions (and a recipient, unless
    /// [`SubmitOptions::without_prefix_sharing`] was set).
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    pub fn submit_with(&mut self, prompt: &[usize], options: SubmitOptions) -> usize {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        let id = self.sequences.len();
        let mut prefix_hashes = Vec::new();
        if let Some(pool) = &self.pool {
            let pp = pool.page_positions();
            prefix_hashes = prefix_page_hashes(prompt, pp, prompt.len() / pp);
            for &hash in &prefix_hashes {
                self.prefix_index.entry(hash).or_default().push(id);
            }
        }
        self.sequences.push(Sequence {
            id,
            prompt: prompt.to_vec(),
            generated: Vec::with_capacity(options.max_new_tokens),
            max_new_tokens: options.max_new_tokens,
            stop_token: options.stop_token,
            sampling: options.sampling,
            priority: options.priority,
            arrival_pass: options.arrival_pass,
            share_prefix: options.share_prefix,
            prefix_hashes,
            shared_positions: 0,
            rng: SeqRng::new(options.sampling.seed, id as u64),
            finish: None,
            cache: SeqCache::Waiting,
            next: 0,
            prefilled: false,
            submitted_ns: None,
            admitted_ns: None,
            first_token_ns: None,
            finish_logged: false,
            deadline_pass: options.deadline_pass,
            ttft_deadline: options.ttft_deadline,
            attempts: 0,
            retry_at_pass: 0,
            checkpoint: None,
        });
        id
    }

    /// Queues a sequence. Returns the sequence id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    #[deprecated(since = "0.1.0", note = "use `submit_with` with a `SubmitOptions` builder")]
    pub fn submit(&mut self, prompt: &[usize], max_new_tokens: usize) -> usize {
        self.submit_with(prompt, SubmitOptions::new(max_new_tokens))
    }

    /// Queues a sequence that additionally finishes (without emitting it) when it
    /// generates `stop_token`. Returns the sequence id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    #[deprecated(since = "0.1.0", note = "use `submit_with` with a `SubmitOptions` builder")]
    pub fn submit_with_stop(&mut self, prompt: &[usize], max_new_tokens: usize, stop_token: Option<usize>) -> usize {
        self.submit_with(prompt, SubmitOptions::new(max_new_tokens).stop_token(stop_token))
    }

    /// Queues a sequence with an explicit [`Sampling`] configuration. Returns the
    /// sequence id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    #[deprecated(since = "0.1.0", note = "use `submit_with` with a `SubmitOptions` builder")]
    pub fn submit_with_sampling(
        &mut self,
        prompt: &[usize],
        max_new_tokens: usize,
        stop_token: Option<usize>,
        sampling: Sampling,
    ) -> usize {
        self.submit_with(prompt, SubmitOptions::new(max_new_tokens).stop_token(stop_token).sampling(sampling))
    }

    /// The sequences in submission order.
    #[must_use]
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Runs the scheduler until every submitted sequence has finished (or been evicted).
    ///
    /// Each pass of the coordinator loop: admit arrived waiting (or preempted) sequences
    /// whenever their worst case fits the page budget — mapping any matching prompt
    /// prefix onto shared pages and preempting strictly lower-priority running sequences
    /// under pressure — fan the active sequences out across the persistent decode worker
    /// pool (each worker prefills newly admitted sequences on first touch and then
    /// decodes one token per sequence per pass), sample peak occupancy, and retire
    /// finished sequences so their pages fund queued admissions.
    pub fn run(&mut self) -> ServingReport {
        self.execute(true, usize::MAX)
    }

    /// [`ServingEngine::run`], bounded to at most `max_passes` scheduler passes. The
    /// engine keeps all of its state when the bound strikes mid-flight — active
    /// sequences stay resident, queued ones stay queued — so a later [`run`],
    /// [`drain`] or [`shutdown`] call continues exactly where this one stopped.
    ///
    /// [`run`]: ServingEngine::run
    /// [`drain`]: ServingEngine::drain
    /// [`shutdown`]: ServingEngine::shutdown
    pub fn run_for(&mut self, max_passes: usize) -> ServingReport {
        self.execute(true, max_passes)
    }

    /// Gracefully drains the engine: admissions are frozen (queued and preempted
    /// sequences stay parked) while every *resident* sequence runs to completion, then
    /// the worker pool joins cleanly. Returns the leftover population; on return no
    /// sequence holds pool pages, so `drain` is the clean-stop half of the
    /// [`ServingEngine::shutdown`] contract.
    pub fn drain(&mut self) -> DrainReport {
        let report = self.execute(false, usize::MAX);
        self.population(report.passes)
    }

    /// Stops immediately: every live paged sequence is spilled to a host-side buffer
    /// ([`PagedKvCache::spill`], bit-exact) without running another pass, returning all
    /// of its pages and reservations to the pool. A later [`ServingEngine::run`]
    /// restores and finishes them with token streams identical to an uninterrupted
    /// run. f32-backend sequences keep their host-memory caches as-is.
    pub fn shutdown(&mut self) -> DrainReport {
        for seq in &mut self.sequences {
            if seq.finish.is_none() {
                if let SeqCache::Paged(cache) = &mut seq.cache {
                    let spilled = cache.spill();
                    seq.cache = SeqCache::Spilled { spilled };
                }
            }
        }
        self.audit_pool();
        self.population(0)
    }

    /// The engine's sequence population by state (the [`DrainReport`] both stop paths
    /// return).
    fn population(&self, passes: usize) -> DrainReport {
        let count = |f: fn(&Sequence) -> bool| self.sequences.iter().filter(|s| f(s)).count();
        DrainReport {
            finished: count(|s| s.finish.is_some()),
            spilled: count(|s| s.finish.is_none() && matches!(s.cache, SeqCache::Spilled { .. })),
            waiting: count(|s| s.finish.is_none() && matches!(s.cache, SeqCache::Waiting)),
            passes,
        }
    }

    /// One scheduler execution: the shared engine of [`run`], [`run_for`] and
    /// [`drain`], parameterized over whether admission is open and how many passes may
    /// run.
    ///
    /// [`run`]: ServingEngine::run
    /// [`run_for`]: ServingEngine::run_for
    /// [`drain`]: ServingEngine::drain
    fn execute(&mut self, admit: bool, max_passes: usize) -> ServingReport {
        let run_start = Instant::now();
        let mut stats = RunStats { worker_steps: vec![0; self.num_threads], ..RunStats::default() };
        if self.num_threads == 1 {
            self.drive(None, &mut stats, admit, max_passes);
        } else {
            let model = self.model;
            let mode = self.mode;
            let num_threads = self.num_threads;
            let telemetry = Arc::clone(&self.telemetry);
            std::thread::scope(|scope| {
                let mut workers = WorkerPool::spawn(scope, model, mode, num_threads, &telemetry);
                self.drive(Some(&mut workers), &mut stats, admit, max_passes);
                // Dropping the pool's job senders here ends every worker's receive
                // loop (including any replaced, already-disconnected incarnations);
                // the scope then joins them all.
            });
        }
        if self.telemetry.is_enabled() {
            // Every recorder has dropped (drive's on return, the workers' at scope
            // join), so the drain sees the complete run.
            self.last_trace = Some(self.telemetry.drain_trace());
        }
        self.report(run_start, &stats)
    }

    /// The coordinator loop (see [`ServingEngine::run`]). With `workers == None` the
    /// coordinator doubles as the only worker, carrying one scratch across the whole run
    /// exactly like a pool worker would — the exact sequential engine, including the
    /// same `catch_unwind` fault containment (minus the respawn: there is no worker
    /// thread to replace).
    fn drive(
        &mut self,
        mut workers: Option<&mut WorkerPool<'_, '_>>,
        stats: &mut RunStats,
        admit: bool,
        max_passes: usize,
    ) {
        let model = self.model;
        let mode = self.mode;
        let policy = self.recovery.unwrap_or_default();
        // Checkpointing costs page-buffer copies, so it only runs when failure is in
        // play: an installed fault plan or an explicitly requested recovery policy.
        let checkpoint_every =
            if self.recovery.is_some() || self.faults.is_some() { policy.checkpoint_every } else { 0 };
        let num_workers = workers.as_ref().map_or(1, |p| p.jobs.len());
        // Per-worker lifetime job counters for this run — the coordinates fault
        // triggers are addressed by.
        let mut job_counts = vec![0u64; num_workers];
        let mut rec = self.telemetry.recorder(0);
        let mut coordinator_scratch = PagedScratch::default();
        stats.peak_resident = stats.peak_resident.max(self.resident_bytes());
        let mut pass = 0usize;

        loop {
            let pass_start = rec.now_nanos();
            rec.begin(Category::Pass, "pass", "pass", pass as u64);
            self.enforce_deadlines(pass, &mut rec);
            if admit {
                self.shed_overloaded(pass, &mut rec);
                self.admit_waiting(pass, stats, &mut rec);
            }
            stats.peak_resident = stats.peak_resident.max(self.resident_bytes());

            let active: Vec<usize> = self
                .sequences
                .iter()
                .enumerate()
                .filter(|(_, s)| s.finish.is_none() && matches!(s.cache, SeqCache::F32(_) | SeqCache::Paged(_)))
                .map(|(i, _)| i)
                .collect();
            let progressed = !active.is_empty();
            match &mut workers {
                None => {
                    for &idx in &active {
                        job_counts[0] += 1;
                        let fault = match &mut self.faults {
                            Some(f) => f.take_step_fault(0, job_counts[0], 1),
                            None => None,
                        };
                        let mut seq = std::mem::replace(&mut self.sequences[idx], Sequence::parked());
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            act_injected_fault(fault);
                            seq.step(model, mode, &mut coordinator_scratch, &mut rec)
                        }));
                        self.sequences[idx] = seq;
                        match caught {
                            Ok(out) => stats.absorb(0, &out),
                            Err(_) => {
                                // Contained exactly like a pool worker's panic; the
                                // suspect cache is discarded by the recovery path.
                                rec.instant(Category::Fault, "worker_panic", "worker", 0);
                                self.recover_sequence(idx, pass, &policy, stats, &mut rec);
                            }
                        }
                    }
                }
                Some(pool) => {
                    // Contiguous chunks preserve submission order within each worker.
                    // Sequences physically move through the channels (a parked
                    // placeholder holds their table slot), so workers own what they
                    // step — no borrows cross threads.
                    let used = pool.jobs.len().min(active.len());
                    let per_worker = active.len().div_ceil(used.max(1));
                    let mut sent: Vec<Vec<usize>> = vec![Vec::new(); pool.jobs.len()];
                    let mut dead = vec![false; pool.jobs.len()];
                    for (worker, chunk) in active.chunks(per_worker.max(1)).enumerate() {
                        for &idx in chunk {
                            job_counts[worker] += 1;
                            let fault = match &mut self.faults {
                                Some(f) => f.take_step_fault(worker, job_counts[worker], num_workers),
                                None => None,
                            };
                            let seq = std::mem::replace(&mut self.sequences[idx], Sequence::parked());
                            match pool.jobs[worker].send(Job { index: idx, seq, fault }) {
                                Ok(()) => sent[worker].push(idx),
                                Err(mpsc::SendError(job)) => {
                                    // The worker died between passes (it should have
                                    // been respawned at the last boundary): the
                                    // sequence is unharmed — put it back and let the
                                    // respawned worker step it next pass.
                                    self.sequences[idx] = job.seq;
                                    dead[worker] = true;
                                }
                            }
                        }
                    }
                    for (worker, indices) in sent.iter().enumerate() {
                        let mut replies = 0usize;
                        while replies < indices.len() {
                            match pool.results[worker].recv() {
                                Ok(WorkerReply::Done(out)) => {
                                    self.sequences[out.index] = out.seq;
                                    stats.absorb(worker, &out.result);
                                    replies += 1;
                                }
                                Ok(WorkerReply::Panicked { index, seq }) => {
                                    // The step panicked inside the worker's
                                    // catch_unwind: bookkeeping rode back intact, the
                                    // cache is suspect and recovery discards it.
                                    self.sequences[index] = seq;
                                    dead[worker] = true;
                                    rec.instant(Category::Fault, "worker_panic", "worker", worker as u64 + 1);
                                    self.recover_sequence(index, pass, &policy, stats, &mut rec);
                                    replies += 1;
                                }
                                Err(_) => {
                                    // Hard death: the worker vanished without even a
                                    // panic reply, taking its queued sequences down
                                    // with it (their Drop impls returned every page).
                                    // Tombstone the parked table slots so the run
                                    // degrades to Failed instead of hanging.
                                    dead[worker] = true;
                                    rec.instant(Category::Fault, "worker_panic", "worker", worker as u64 + 1);
                                    for &idx in &indices[replies..] {
                                        let seq = &mut self.sequences[idx];
                                        seq.id = idx;
                                        seq.attempts += 1;
                                        let attempts = seq.attempts;
                                        seq.finish(FinishReason::Failed { attempts });
                                        rec.instant(Category::Fault, "failed", "seq", idx as u64);
                                    }
                                    replies = indices.len();
                                }
                            }
                        }
                    }
                    // All replies are in — every surviving sequence is back in the
                    // table — so flagged workers can be replaced wholesale: fresh
                    // thread, fresh scratch, same lane.
                    for (worker, is_dead) in dead.iter().enumerate() {
                        if *is_dead {
                            pool.respawn(worker);
                            stats.worker_restarts += 1;
                            rec.instant(Category::Fault, "worker_restart", "worker", worker as u64 + 1);
                        }
                    }
                }
            }

            // Pool occupancy only grows during a pass (retirement is below), so sampling
            // here captures the exact peak before the coordinator reclaims pages.
            stats.peak_resident = stats.peak_resident.max(self.resident_bytes());
            if rec.is_enabled() {
                if let Some(pool) = &self.pool {
                    rec.counter(Category::Occupancy, "in_use_pages", pool.in_use_pages() as u64);
                    rec.counter(Category::Occupancy, "reserved_pages", pool.reserved_pages() as u64);
                }
                rec.counter(Category::Occupancy, "resident_bytes", self.resident_bytes() as u64);
            }
            for seq in &mut self.sequences {
                if seq.finish.is_some() && !seq.finish_logged {
                    seq.finish_logged = true;
                    rec.instant(Category::Lifecycle, "retired", "seq", seq.id as u64);
                }
                seq.retire();
            }
            // Pass boundary: every sequence is back in the table and the workers are
            // idle, so the pool must reconcile exactly against the live caches (the
            // audit is a debug-build no-op in release).
            self.audit_pool();
            if checkpoint_every > 0 && (pass + 1).is_multiple_of(checkpoint_every) {
                self.take_checkpoints(&mut rec);
            }

            rec.end(Category::Pass, "pass", "pass", pass as u64);
            stats.pass_latency.record(rec.now_nanos().saturating_sub(pass_start));
            pass += 1;
            stats.passes = pass;
            if pass >= max_passes {
                break;
            }
            let pending = admit
                && self
                    .sequences
                    .iter()
                    .any(|s| s.finish.is_none() && matches!(s.cache, SeqCache::Waiting | SeqCache::Spilled { .. }));
            if !progressed && !pending {
                break;
            }
        }
    }

    /// Finishes overdue sequences as [`FinishReason::DeadlineExceeded`]: past an
    /// absolute [`SubmitOptions::deadline_pass`], or still token-less past the
    /// [`SubmitOptions::ttft_deadline`] passes after arrival. Runs at the start of
    /// every pass, before admission, so an overdue queued sequence never wastes a
    /// reservation; the retire sweep then frees whatever storage the sequence held.
    fn enforce_deadlines(&mut self, pass: usize, rec: &mut Recorder) {
        for seq in &mut self.sequences {
            if seq.finish.is_some() || seq.arrival_pass > pass {
                continue;
            }
            let ttft_overdue = seq.generated.is_empty()
                && seq.ttft_deadline.is_some_and(|d| pass > seq.arrival_pass.saturating_add(d));
            if ttft_overdue || seq.deadline_pass.is_some_and(|d| pass > d) {
                seq.finish(FinishReason::DeadlineExceeded);
                rec.instant(Category::Fault, "deadline_exceeded", "seq", seq.id as u64);
            }
        }
    }

    /// Priority-ordered load shedding (see [`ServingEngine::with_shed_watermark`]):
    /// refuses arrived, never-admitted submissions as [`FinishReason::Shed`] while the
    /// committed pages plus the queue's worst-case demand exceed the watermark.
    fn shed_overloaded(&mut self, pass: usize, rec: &mut Recorder) {
        let Some(watermark) = self.shed_watermark else { return };
        let Some(pool) = self.pool.clone() else { return };
        let layers = self.model.config().layers;
        let mut queued: Vec<(usize, usize)> = self
            .sequences
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                // Only submissions that never held cache state are sheddable: a
                // preempted or retrying sequence already ran, and refusing it now
                // would throw away work instead of refusing load.
                s.finish.is_none()
                    && s.arrival_pass <= pass
                    && s.admitted_ns.is_none()
                    && matches!(s.cache, SeqCache::Waiting)
            })
            .map(|(i, s)| (i, PagedKvCache::pages_needed(&pool, layers, s.prompt.len() + s.max_new_tokens)))
            .collect();
        let committed = pool.total_pages() - pool.free_pages() + pool.reserved_pages();
        let budget = (watermark * pool.total_pages() as f64).ceil() as usize;
        let mut demand: usize = committed + queued.iter().map(|&(_, needed)| needed).sum::<usize>();
        if demand <= budget {
            return;
        }
        // Shed lowest priority first, youngest (highest id) first within a class.
        queued.sort_by_key(|&(i, _)| (self.sequences[i].priority, std::cmp::Reverse(i)));
        for (idx, needed) in queued {
            if demand <= budget {
                break;
            }
            let seq = &mut self.sequences[idx];
            seq.finish(FinishReason::Shed);
            rec.instant(Category::Fault, "shed", "seq", seq.id as u64);
            demand -= needed;
        }
    }

    /// Recovery after sequence `idx` lost its in-flight step to a worker panic:
    /// discard the suspect cache (its Drop returns every page), roll the bookkeeping
    /// back to the last [`Checkpoint`] (or to scratch when none was taken) and
    /// schedule a backed-off retry — or finish as [`FinishReason::Failed`] once the
    /// [`RecoveryPolicy::max_attempts`] budget is spent. Replay from a bit-exact
    /// snapshot is deterministic, so a retried sequence's final token stream is
    /// identical to an undisturbed run's.
    fn recover_sequence(
        &mut self,
        idx: usize,
        pass: usize,
        policy: &RecoveryPolicy,
        stats: &mut RunStats,
        rec: &mut Recorder,
    ) {
        let seq = &mut self.sequences[idx];
        seq.attempts += 1;
        if seq.attempts > policy.max_attempts {
            seq.cache = SeqCache::Waiting;
            seq.checkpoint = None;
            let attempts = seq.attempts;
            seq.finish(FinishReason::Failed { attempts });
            rec.instant(Category::Fault, "failed", "seq", seq.id as u64);
            return;
        }
        seq.retry_at_pass = pass + 1 + policy.backoff_passes * seq.attempts;
        match seq.checkpoint.as_deref() {
            Some(cp) => {
                // Resume from the snapshot: the spilled bytes re-enter through the
                // same restore path preemption uses, bit-exactly.
                seq.generated = cp.generated.clone();
                seq.next = cp.next;
                seq.rng = cp.rng.clone();
                seq.shared_positions = cp.shared_positions;
                seq.prefilled = true;
                seq.cache = SeqCache::Spilled { spilled: cp.spilled.clone() };
            }
            None => {
                // No snapshot yet: replay from scratch. Deterministic prefill plus a
                // reset RNG stream reproduce the exact same tokens.
                seq.generated.clear();
                seq.next = 0;
                seq.prefilled = false;
                seq.shared_positions = 0;
                seq.rng = SeqRng::new(seq.sampling.seed, seq.id as u64);
                seq.cache = SeqCache::Waiting;
            }
        }
        stats.retries += 1;
        rec.instant(Category::Fault, "retry", "seq", seq.id as u64);
    }

    /// Snapshots every prefilled, unfinished paged sequence for recovery (see
    /// [`Checkpoint`]); runs at the pass boundary, where workers are idle and the pool
    /// reconciles, so every snapshot is a consistent cut.
    fn take_checkpoints(&mut self, rec: &mut Recorder) {
        for seq in &mut self.sequences {
            if seq.finish.is_none() && seq.prefilled {
                if let SeqCache::Paged(cache) = &seq.cache {
                    seq.checkpoint = Some(Box::new(Checkpoint {
                        spilled: cache.checkpoint(),
                        generated: seq.generated.clone(),
                        next: seq.next,
                        rng: seq.rng.clone(),
                        shared_positions: seq.shared_positions,
                    }));
                    rec.instant(Category::Fault, "checkpoint", "seq", seq.id as u64);
                }
            }
        }
    }

    /// Debug-build pass-boundary sanitizer: reconciles the page pool against every
    /// live paged cache (see [`crate::paging::audit_caches`]). No-op in release
    /// builds and on the f32 backend.
    fn audit_pool(&self) {
        if let Some(pool) = &self.pool {
            crate::paging::audit_caches(
                pool,
                self.sequences.iter().filter_map(|s| match &s.cache {
                    SeqCache::Paged(cache) => Some(cache),
                    _ => None,
                }),
            );
        }
    }

    /// Assembles the [`ServingReport`] of a finished run.
    fn report(&self, run_start: Instant, stats: &RunStats) -> ServingReport {
        let wall_seconds = run_start.elapsed().as_secs_f64();
        let scheme = self.model.quant().kv_cache;
        let kv_dim = Self::kv_dim(self.model);
        let layers = self.model.config().layers;
        let theoretical = |s: QuantScheme| {
            let per_row = LayerKvCache::row_storage_bytes(kv_dim, s);
            self.sequences.iter().map(|q| 2 * layers * q.cached_positions() * per_row).sum()
        };
        let count = |r: FinishReason| self.sequences.iter().filter(|s| s.finish == Some(r)).count();
        // TTFT and queue-wait come from per-sequence hub-clock anchors; TPOT and pass
        // latency accumulated into histograms as the run stepped.
        let mut ttft = Histogram::new();
        let mut queue_wait = Histogram::new();
        for s in &self.sequences {
            if let (Some(sub), Some(adm)) = (s.submitted_ns, s.admitted_ns) {
                queue_wait.record(adm.saturating_sub(sub));
            }
            if let (Some(sub), Some(first)) = (s.submitted_ns, s.first_token_ns) {
                ttft.record(first.saturating_sub(sub));
            }
        }
        ServingReport {
            scheme: scheme.name(),
            backend: if self.pool.is_some() { "paged-packed" } else { "f32-contiguous" },
            sequences: self.sequences.len(),
            finished_length: count(FinishReason::Length),
            finished_stop: count(FinishReason::Stop),
            evicted: count(FinishReason::Evicted),
            failed: self.sequences.iter().filter(|s| matches!(s.finish, Some(FinishReason::Failed { .. }))).count(),
            deadline_misses: count(FinishReason::DeadlineExceeded),
            shed: count(FinishReason::Shed),
            worker_restarts: stats.worker_restarts,
            retries: stats.retries,
            passes: stats.passes,
            prompt_tokens: stats.prompt_tokens,
            generated_tokens: stats.generated,
            prefill_time: stats.prefill_time,
            decode_time: stats.decode_time,
            decode_tokens_per_sec: if stats.decode_time.is_zero() {
                f64::INFINITY
            } else {
                stats.generated as f64 / stats.decode_time.as_secs_f64()
            },
            wall_seconds,
            tokens_per_sec_parallel: if wall_seconds == 0.0 {
                f64::INFINITY
            } else {
                stats.generated as f64 / wall_seconds
            },
            num_threads: self.num_threads,
            shared_pages: stats.shared_pages,
            prefill_tokens_saved: stats.prefill_tokens_saved,
            preemptions: stats.preemptions,
            theoretical_bytes: theoretical(scheme),
            theoretical_bytes_fp32: theoretical(QuantScheme::Fp32),
            resident_bytes: stats.peak_resident,
            cache_materializations: self
                .sequences
                .iter()
                .map(|s| match &s.cache {
                    SeqCache::F32(c) => c.materializations(),
                    _ => 0,
                })
                .sum(),
            latency: LatencySummary {
                ttft: QuantileSummary::from_histogram(&ttft),
                tpot: QuantileSummary::from_histogram(&stats.tpot),
                pass_latency: QuantileSummary::from_histogram(&stats.pass_latency),
                queue_wait: QuantileSummary::from_histogram(&queue_wait),
            },
            worker_decode_steps: stats.worker_steps.clone(),
        }
    }

    /// Admits arrived waiting and preempted sequences: highest priority first, FCFS
    /// (submission id) within a priority class — the default priority 0 everywhere
    /// reproduces the old pure-FCFS order exactly. On the f32 backend every sequence is
    /// admitted; on the paged backend admission reserves the sequence's worst-case page
    /// count (reduced by any shared prompt prefix), preempting strictly lower-priority
    /// running sequences when the reservation does not fit, and stalling the queue (not
    /// skipping ahead) when the head still cannot be funded. Prefill itself is *not*
    /// done here — the worker that first steps an admitted sequence prefills it, keeping
    /// the coordinator to pure bookkeeping.
    fn admit_waiting(&mut self, pass: usize, stats: &mut RunStats, rec: &mut Recorder) {
        let mut waiting: Vec<usize> = (0..self.sequences.len())
            .filter(|&i| {
                let s = &self.sequences[i];
                s.finish.is_none()
                    && s.arrival_pass <= pass
                    && s.retry_at_pass <= pass
                    && matches!(s.cache, SeqCache::Waiting | SeqCache::Spilled { .. })
            })
            .collect();
        for &i in &waiting {
            let seq = &mut self.sequences[i];
            if seq.submitted_ns.is_none() {
                // The submission just became visible to admission — the anchor TTFT and
                // queue-wait measure from.
                seq.submitted_ns = Some(rec.now_nanos());
                rec.instant(Category::Lifecycle, "submitted", "seq", seq.id as u64);
            }
        }
        waiting.sort_by_key(|&i| (std::cmp::Reverse(self.sequences[i].priority), i));
        for idx in waiting {
            if !self.try_admit(idx, stats, rec) {
                // Head-of-line blocking: the queue stalls rather than skipping ahead.
                break;
            }
        }
    }

    /// Tries to admit sequence `idx`; returns whether admission should keep going.
    fn try_admit(&mut self, idx: usize, stats: &mut RunStats, rec: &mut Recorder) -> bool {
        let layers = self.model.config().layers;
        let kv_dim = Self::kv_dim(self.model);
        let scheme = self.model.quant().kv_cache;
        let capacity = self.sequences[idx].prompt.len() + self.sequences[idx].max_new_tokens;
        let Some(pool) = self.pool.clone() else {
            let seq = &mut self.sequences[idx];
            seq.cache = SeqCache::F32(KvCache::with_capacity(layers, kv_dim, capacity));
            stats.prompt_tokens += seq.prompt.len();
            if seq.admitted_ns.is_none() {
                seq.admitted_ns = Some(rec.now_nanos());
            }
            rec.instant(Category::Lifecycle, "admitted", "seq", seq.id as u64);
            return true;
        };
        // Every paged admission attempt advances the counter injected reservation
        // denials are addressed by; a denial stalls the head of the queue for one pass,
        // exactly like a real transient pool exhaustion.
        let attempt = stats.admission_attempts;
        stats.admission_attempts += 1;
        if let Some(faults) = &mut self.faults {
            if faults.take_denial(attempt) {
                rec.instant(Category::Fault, "reservation_denied", "seq", self.sequences[idx].id as u64);
                return false;
            }
        }
        if matches!(self.sequences[idx].cache, SeqCache::Spilled { .. }) {
            // Re-admitting a preempted sequence: the full worst-case reservation again
            // (its prompt was already counted at first admission), then restore the
            // spilled page bytes verbatim.
            let needed = PagedKvCache::pages_needed(&pool, layers, capacity);
            self.preempt_until(idx, needed, None, stats, rec);
            let restored = match &self.sequences[idx].cache {
                SeqCache::Spilled { spilled } => {
                    PagedKvCache::restore(&pool, layers, kv_dim, scheme, capacity, spilled)
                }
                _ => unreachable!("checked Spilled above"),
            };
            return match restored {
                Ok(cache) => {
                    self.sequences[idx].cache = SeqCache::Paged(cache);
                    rec.instant(Category::Lifecycle, "restored", "seq", self.sequences[idx].id as u64);
                    true
                }
                Err(_) => false,
            };
        }
        let needed_plain = PagedKvCache::pages_needed(&pool, layers, capacity);
        if needed_plain > pool.total_pages() {
            // Larger than the whole budget: no amount of retirement or preemption can
            // ever admit it — the one true capacity failure Evicted is reserved for.
            self.sequences[idx].finish(FinishReason::Evicted);
            rec.instant(Category::Lifecycle, "evicted", "seq", self.sequences[idx].id as u64);
            return true;
        }
        let plan = match self.plan_prefix_share(idx) {
            // A matching donor is admitted but not prefilled yet (prefill happens on a
            // worker's first touch): defer this admission one pass — trading a pass of
            // latency for the donor's entire shared prefill — without blocking the queue.
            Some(SharePlan::Pending) => return true,
            Some(SharePlan::Ready { donor, positions }) => Some((donor, positions)),
            None => None,
        };
        let needed = match plan {
            Some((_, positions)) => {
                // Count the donor's worst-case copy-on-write headroom for a non-aligned
                // boundary page alongside the recipient's reservation: share_prefix
                // books it first, so preemption must free enough for both or victims
                // would be spilled for an admission that stalls anyway.
                let headroom = if positions.is_multiple_of(pool.page_positions()) { 0 } else { layers };
                PagedKvCache::pages_needed_with_prefix(&pool, layers, capacity, positions) + headroom
            }
            None => needed_plain,
        };
        // Never spill the planned donor to fund its own recipient: the victim filter
        // protects it (spilling it would both destroy the pages about to be shared and
        // leave the plan pointing at a non-paged cache).
        self.preempt_until(idx, needed, plan.map(|(donor, _)| donor), stats, rec);
        let cache = match plan {
            Some((donor, positions)) => {
                let prefix = match &mut self.sequences[donor].cache {
                    SeqCache::Paged(cache) => cache.share_prefix(positions),
                    _ => unreachable!("planned donor must hold a paged cache"),
                };
                // share_prefix may truncate a partial boundary page under pressure;
                // account what was actually taken.
                let (shared_positions, shared_pages) = (prefix.positions(), prefix.total_pages());
                match PagedKvCache::with_shared_prefix(&pool, layers, kv_dim, scheme, capacity, prefix) {
                    Ok(cache) => {
                        stats.shared_pages += shared_pages;
                        stats.prefill_tokens_saved += shared_positions;
                        self.sequences[idx].shared_positions = shared_positions;
                        Some(cache)
                    }
                    Err(_) => None,
                }
            }
            None => PagedKvCache::new(&pool, layers, kv_dim, scheme, capacity).ok(),
        };
        match cache {
            Some(cache) => {
                let seq = &mut self.sequences[idx];
                seq.cache = SeqCache::Paged(cache);
                stats.prompt_tokens += seq.prompt.len();
                if seq.admitted_ns.is_none() {
                    // A retrying sequence keeps its first-admission anchor: queue-wait
                    // measures the original wait, not the recovery backoff.
                    seq.admitted_ns = Some(rec.now_nanos());
                }
                rec.instant(Category::Lifecycle, "admitted", "seq", seq.id as u64);
                true
            }
            None => false,
        }
    }

    /// Preempts strictly lower-priority running sequences — spilling their pages to
    /// host memory via [`PagedKvCache::spill`] — until `needed` pages are available for
    /// sequence `idx` or no eligible victim remains. Victims are chosen lowest priority
    /// first, youngest (highest id) first within a class; `protected` (the planned
    /// prefix-share donor, when there is one) is never spilled. Preempted sequences
    /// re-enter admission as [`SeqCache::Spilled`] and resume bit-identically once
    /// restored.
    fn preempt_until(
        &mut self,
        idx: usize,
        needed: usize,
        protected: Option<usize>,
        stats: &mut RunStats,
        rec: &mut Recorder,
    ) {
        let Some(pool) = self.pool.clone() else { return };
        let eligible = |i: usize, s: &Sequence, priority: i32| {
            i != idx
                && Some(i) != protected
                && s.finish.is_none()
                && s.prefilled
                && s.priority < priority
                && matches!(s.cache, SeqCache::Paged(_))
        };
        // Spilling is wasted work if even every eligible victim together cannot fund the
        // admission: check the guaranteed-reclaimable total (exclusively owned pages plus
        // unused reservations; shared pages may stay resident with other holders) first
        // and bail without demoting anyone when it cannot reach `needed`.
        let priority = self.sequences[idx].priority;
        let reclaimable: usize = self
            .sequences
            .iter()
            .enumerate()
            .filter(|(i, s)| eligible(*i, s, priority))
            .map(|(_, s)| match &s.cache {
                SeqCache::Paged(cache) => cache.reclaimable_pages(),
                _ => 0,
            })
            .sum();
        if pool.available_pages() + reclaimable < needed {
            return;
        }
        while pool.available_pages() < needed {
            let victim = self
                .sequences
                .iter()
                .enumerate()
                .filter(|(i, s)| eligible(*i, s, priority))
                .min_by_key(|(i, s)| (s.priority, std::cmp::Reverse(*i)))
                .map(|(i, _)| i);
            let Some(victim) = victim else { return };
            let seq = &mut self.sequences[victim];
            let spilled = match &mut seq.cache {
                SeqCache::Paged(cache) => cache.spill(),
                _ => unreachable!("victim must hold a paged cache"),
            };
            seq.cache = SeqCache::Spilled { spilled };
            rec.instant(Category::Lifecycle, "preempted", "seq", seq.id as u64);
            stats.preemptions += 1;
        }
    }

    /// Longest shareable prompt prefix for waiting sequence `idx`: looks up the
    /// hash-consed per-page chain hashes of its prompt in the prefix index (longest
    /// first), verifies the candidate donor's actual tokens and cached length (guarding
    /// against hash collisions), then extends token-by-token into the donor's partially
    /// filled boundary page. Capped at `prompt_len - 1`: the last prompt position must
    /// be re-run to produce the logits the first generated token is sampled from.
    ///
    /// A donor whose prompt matches but whose prefill has not run yet (it was admitted
    /// this pass) yields [`SharePlan::Pending`], telling admission to check again next
    /// pass instead of prefill-ing the same prefix twice.
    fn plan_prefix_share(&self, idx: usize) -> Option<SharePlan> {
        let pool = self.pool.as_ref()?;
        let seq = &self.sequences[idx];
        if !seq.share_prefix {
            return None;
        }
        let pp = pool.page_positions();
        let prompt = &seq.prompt;
        let max_shared = prompt.len() - 1;
        let max_pages = max_shared / pp;
        if max_pages == 0 {
            return None;
        }
        // The chain hashes were computed once at submit time; max_pages never exceeds
        // the stored count (it is capped at (prompt_len - 1) / pp).
        let hashes = &seq.prefix_hashes;
        let mut pending = false;
        for pages in (1..=max_pages).rev() {
            for &donor_idx in self.prefix_index.get(&hashes[pages - 1]).into_iter().flatten() {
                if donor_idx == idx {
                    continue;
                }
                let donor = &self.sequences[donor_idx];
                let SeqCache::Paged(cache) = &donor.cache else { continue };
                if donor.finish.is_some() || donor.prompt.len() < pages * pp {
                    continue;
                }
                if donor.prompt[..pages * pp] != prompt[..pages * pp] {
                    continue;
                }
                if cache.seq_len() < pages * pp {
                    pending = true;
                    continue;
                }
                let limit = max_shared.min(donor.prompt.len()).min(cache.seq_len());
                let mut shared = pages * pp;
                while shared < limit && prompt[shared] == donor.prompt[shared] {
                    shared += 1;
                }
                return Some(SharePlan::Ready { donor: donor_idx, positions: shared });
            }
        }
        pending.then_some(SharePlan::Pending)
    }

    /// Current measured cache storage across the engine (see
    /// [`ServingReport::resident_bytes`]).
    fn resident_bytes(&self) -> usize {
        match &self.pool {
            Some(pool) => pool.resident_bytes(),
            None => self
                .sequences
                .iter()
                .map(|s| match &s.cache {
                    SeqCache::F32(c) => c.resident_bytes(),
                    _ => 0,
                })
                .sum(),
        }
    }
}

/// Admission's prefix-sharing decision for one waiting sequence.
enum SharePlan {
    /// Map `positions` prompt positions from `donor`'s sealed pages.
    Ready {
        /// Index of the donor sequence.
        donor: usize,
        /// Prompt positions to share.
        positions: usize,
    },
    /// A matching donor exists but has not prefilled yet — defer one pass.
    Pending,
}

/// Per-run accumulators the coordinator threads through admission and stepping.
#[derive(Debug, Default)]
struct RunStats {
    prompt_tokens: usize,
    generated: usize,
    prefill_time: Duration,
    decode_time: Duration,
    peak_resident: usize,
    shared_pages: usize,
    prefill_tokens_saved: usize,
    preemptions: usize,
    worker_restarts: usize,
    retries: usize,
    passes: usize,
    /// Lifetime paged-admission attempt counter — the coordinate injected reservation
    /// denials are addressed by.
    admission_attempts: u64,
    /// Decode-step forward latency samples, one per generated token that ran a forward.
    tpot: Histogram,
    /// Coordinator scheduler-pass wall-time samples, one per pass.
    pass_latency: Histogram,
    /// Scheduler step invocations per worker (index = 0-based worker).
    worker_steps: Vec<usize>,
}

impl RunStats {
    /// Folds one step's outcome into the accumulators, crediting 0-based `worker`.
    fn absorb(&mut self, worker: usize, out: &StepResult) {
        self.generated += out.tokens;
        self.prefill_time += out.prefill;
        self.decode_time += out.decode;
        if !out.decode.is_zero() {
            // The u64 cast holds any realistic single-step latency (< 584 years).
            self.tpot.record(out.decode.as_nanos() as u64);
        }
        if let Some(steps) = self.worker_steps.get_mut(worker) {
            *steps += 1;
        }
    }
}

/// What one [`Sequence::step`] call produced: tokens emitted (0 or 1) and the forward
/// time it spent in prefill and decode.
#[derive(Debug, Clone, Copy, Default)]
struct StepResult {
    tokens: usize,
    prefill: Duration,
    decode: Duration,
}

/// One step's result travelling back from a decode worker to the coordinator.
struct StepOutcome {
    index: usize,
    seq: Sequence,
    result: StepResult,
}

/// One dispatched unit of work: the sequence (moved by value), its table slot, and the
/// injected fault (if any) the worker must act out before stepping.
struct Job {
    index: usize,
    seq: Sequence,
    fault: Option<InjectedFault>,
}

/// A worker's reply to one [`Job`].
enum WorkerReply {
    /// The step ran to completion.
    Done(StepOutcome),
    /// The step panicked inside the worker's `catch_unwind`. The sequence — bookkeeping
    /// intact, cache suspect — rides back so the coordinator can roll it back to its
    /// last checkpoint and retry; the worker itself keeps serving its queue.
    Panicked {
        /// The sequence's table slot.
        index: usize,
        /// The surviving sequence (its cache must be treated as corrupted).
        seq: Sequence,
    },
}

/// Acts out an injected fault on the executing thread, inside the step's
/// `catch_unwind`.
fn act_injected_fault(fault: Option<InjectedFault>) {
    match fault {
        None => {}
        Some(InjectedFault::Slow(millis)) => std::thread::sleep(Duration::from_millis(millis)),
        // mx-analyze: allow(no-panics) reason: deterministic fault injection emulating a worker crash; only ever run under catch_unwind
        Some(InjectedFault::Panic) => panic!("injected worker fault"),
    }
}

/// Long-lived decode workers fed over channels: spawned **once per run** (not once per
/// scheduler pass, as the earlier `std::thread::scope`-per-pass design did), each
/// carrying one reusable [`PagedScratch`] for its whole lifetime. The coordinator moves
/// sequences to workers by value through per-worker job channels and collects them back
/// over per-worker result channels, so workers own what they step and nothing is
/// borrowed across threads.
///
/// Every step runs under `catch_unwind`: a panicking step sends
/// [`WorkerReply::Panicked`] (carrying the sequence back for rollback) instead of
/// killing the thread, and the coordinator may [`WorkerPool::respawn`] any slot at a
/// pass boundary — dropping that slot's job sender disconnects the old incarnation,
/// which exits its loop and joins when the scope ends.
struct WorkerPool<'scope, 'env> {
    scope: &'scope std::thread::Scope<'scope, 'env>,
    model: &'env TransformerModel,
    mode: DecodePath,
    telemetry: Arc<Telemetry>,
    jobs: Vec<mpsc::Sender<Job>>,
    /// One result channel per worker: if a worker dies without replying, the
    /// coordinator's `recv` sees a disconnect instead of blocking forever on a shared
    /// channel held open by the surviving workers.
    results: Vec<mpsc::Receiver<WorkerReply>>,
}

impl<'scope, 'env> WorkerPool<'scope, 'env> {
    fn spawn(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        model: &'env TransformerModel,
        mode: DecodePath,
        num_threads: usize,
        telemetry: &Arc<Telemetry>,
    ) -> WorkerPool<'scope, 'env> {
        let mut pool = WorkerPool {
            scope,
            model,
            mode,
            telemetry: Arc::clone(telemetry),
            jobs: Vec::with_capacity(num_threads),
            results: Vec::with_capacity(num_threads),
        };
        for worker in 0..num_threads {
            pool.respawn(worker);
        }
        pool
    }

    /// (Re)spawns worker slot `worker` with fresh channels and a fresh scratch. On a
    /// respawn the replaced job sender drops, disconnecting the old incarnation (it
    /// exits its loop and joins at scope end); the old result receiver is replaced
    /// only after every in-flight reply has been collected, which the coordinator
    /// guarantees by respawning at pass boundaries.
    fn respawn(&mut self, worker: usize) {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (result_tx, result_rx) = mpsc::channel();
        let hub = Arc::clone(&self.telemetry);
        let model = self.model;
        let mode = self.mode;
        self.scope.spawn(move || {
            let mut scratch = PagedScratch::default();
            // Worker lanes are 1-based; lane 0 is the coordinator. The shard merges
            // back into the hub when the recorder drops at loop exit.
            let mut rec = hub.recorder(worker as u32 + 1);
            while let Ok(Job { index, mut seq, fault }) = job_rx.recv() {
                // The closure borrows the sequence, so a caught panic leaves it owned
                // and intact out here — only the step's partial cache mutation is lost,
                // and the coordinator discards that cache anyway.
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    act_injected_fault(fault);
                    seq.step(model, mode, &mut scratch, &mut rec)
                }));
                let reply = match caught {
                    Ok(result) => WorkerReply::Done(StepOutcome { index, seq, result }),
                    Err(_) => WorkerReply::Panicked { index, seq },
                };
                if result_tx.send(reply).is_err() {
                    break;
                }
            }
        });
        if worker < self.jobs.len() {
            self.jobs[worker] = job_tx;
            self.results[worker] = result_rx;
        } else {
            self.jobs.push(job_tx);
            self.results.push(result_rx);
        }
    }
}

/// One mixing step of the chained prompt-prefix hash (FNV/SplitMix-style, deterministic
/// across platforms).
fn prefix_hash_step(hash: u64, token: usize) -> u64 {
    (hash ^ (token as u64).wrapping_add(0x9e37_79b9_7f4a_7c15)).wrapping_mul(0x0100_0000_01b3).rotate_left(23)
}

/// Chained token hashes of `prompt`, recorded at every full-page boundary up to `pages`
/// pages — the hash-consing keys of the engine's prefix index. `hashes[k-1]` covers
/// `prompt[..k * page_positions]`.
fn prefix_page_hashes(prompt: &[usize], page_positions: usize, pages: usize) -> Vec<u64> {
    let mut hashes = Vec::with_capacity(pages);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, &token) in prompt.iter().take(pages * page_positions).enumerate() {
        hash = prefix_hash_step(hash, token);
        if (i + 1).is_multiple_of(page_positions) {
            hashes.push(hash);
        }
    }
    hashes
}

/// Default worker count: the machine's available parallelism (1 if unknown).
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::quant_config::ModelQuantConfig;

    fn model(quant: ModelQuantConfig) -> TransformerModel {
        TransformerModel::new(ModelConfig::tiny_test(5), quant)
    }

    #[test]
    fn batched_decode_matches_sequential_greedy_generation() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let prompts: [&[usize]; 3] = [&[1, 2, 3], &[7, 7], &[10, 20, 30, 40]];
        let mut engine = ServingEngine::new(&model);
        for p in prompts {
            engine.submit_with(p, SubmitOptions::new(6));
        }
        let report = engine.run();
        assert_eq!(report.generated_tokens, 18);
        for (seq, p) in engine.sequences().iter().zip(prompts) {
            // Interleaving sequences must not change any sequence's output: each cache is
            // independent, so batched round-robin equals one-at-a-time generation.
            assert_eq!(seq.generated, model.generate_greedy(p, 6), "sequence {}", seq.id);
            // prompt rows from prefill plus one appended row per decode; the budgeted
            // last token is sampled from the previous step's logits, not decoded itself.
            assert_eq!(seq.cached_positions(), p.len() + 5);
            assert_eq!(seq.finish_reason(), Some(FinishReason::Length));
        }
    }

    #[test]
    fn report_accounts_tokens_and_cache_bytes() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let mut engine = ServingEngine::new(&model);
        engine.submit_with(&[1, 2, 3, 4], SubmitOptions::new(5));
        engine.submit_with(&[5, 6], SubmitOptions::new(5));
        let report = engine.run();
        assert_eq!(report.sequences, 2);
        assert_eq!(report.prompt_tokens, 6);
        assert_eq!(report.generated_tokens, 10);
        assert_eq!(report.scheme, "MXFP4");
        assert_eq!(report.backend, "f32-contiguous");
        assert_eq!(report.finished_length, 2);
        // tiny_test: 2 layers, kv_dim 64. One cached row per prompt token plus one per
        // decode step; the final budgeted token is sampled without its own forward pass.
        let expected_rows = (4 + 4) + (2 + 4);
        let per_row = LayerKvCache::row_storage_bytes(64, QuantScheme::mxfp4());
        assert_eq!(report.theoretical_bytes, 2 * 2 * expected_rows * per_row);
        assert!(report.theoretical_compression() > 7.0, "4.25-bit cache must compress FP32 by ~7.5x");
        // The satellite fix this field exists for: the f32 backend's *measured* storage
        // is full f32 — here the admission-time capacity reservations of 9 and 7
        // positions (prompt + budget) across 2 layers, K and V, 64 floats per row —
        // not the scheme's width.
        assert_eq!(report.resident_bytes, 2 * 2 * (9 + 7) * 64 * 4);
        assert!(report.resident_bytes >= report.theoretical_bytes_fp32);
        assert!(report.resident_compression() <= 1.0 + 1e-9);
        assert!(report.decode_tokens_per_sec > 0.0);
        // The new timing fields are populated and self-consistent.
        assert!(report.wall_seconds > 0.0);
        assert!(report.tokens_per_sec_parallel > 0.0);
        assert!(report.num_threads >= 1);
        assert!(report.wall_seconds >= report.decode_time.as_secs_f64() / report.num_threads as f64);
    }

    #[test]
    fn zero_copy_invariant_holds_for_whole_batch() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        for p in 0..4 {
            engine.submit_with(&[p + 1, p + 2], SubmitOptions::new(8));
        }
        let report = engine.run();
        assert_eq!(report.cache_materializations, 0);
        // The clone-based mode, by contrast, materializes twice per layer per forward.
        let mut legacy = ServingEngine::with_path(&model, DecodePath::SeedClone);
        legacy.submit_with(&[1, 2], SubmitOptions::new(2));
        let legacy_report = legacy.run();
        assert!(legacy_report.cache_materializations > 0);
        assert_eq!(legacy.sequences()[0].generated, engine.sequences()[0].generated[..2]);
    }

    #[test]
    fn run_is_idempotent_once_finished() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        engine.submit_with(&[2, 4, 6], SubmitOptions::new(3));
        let first = engine.run();
        assert_eq!(first.generated_tokens, 3);
        let second = engine.run();
        assert_eq!(second.generated_tokens, 0);
        assert_eq!(second.prompt_tokens, 0);
        assert_eq!(engine.sequences()[0].generated.len(), 3);
    }

    #[test]
    fn stop_token_finishes_early_without_emitting_it() {
        let model = model(ModelQuantConfig::BASELINE);
        // Find what the model would greedily generate, then use one of those tokens as
        // the stop token of a second, stop-aware run.
        let free = model.generate_greedy(&[3, 1, 4], 8);
        let stop = free[3];
        let mut engine = ServingEngine::new(&model);
        engine.submit_with(&[3, 1, 4], SubmitOptions::new(8).stop_token(stop));
        let report = engine.run();
        let seq = &engine.sequences()[0];
        assert_eq!(seq.finish_reason(), Some(FinishReason::Stop));
        assert_eq!(seq.generated, free[..3], "generation must match the free run up to the stop");
        assert!(!seq.generated.contains(&stop), "the stop token is not emitted");
        assert_eq!(report.finished_stop, 1);
        assert_eq!(report.finished_length, 0);
        assert_eq!(report.generated_tokens, 3);
    }

    #[test]
    fn stop_token_never_generated_falls_back_to_length() {
        let model = model(ModelQuantConfig::BASELINE);
        let free = model.generate_greedy(&[2, 2], 4);
        let never = (0..model.config().vocab).find(|t| !free.contains(t)).unwrap();
        let mut engine = ServingEngine::new(&model);
        engine.submit_with(&[2, 2], SubmitOptions::new(4).stop_token(never));
        engine.run();
        let seq = &engine.sequences()[0];
        assert_eq!(seq.finish_reason(), Some(FinishReason::Length));
        assert_eq!(seq.generated, free);
    }

    #[test]
    fn zero_budget_sequences_finish_without_tokens() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        engine.submit_with(&[1, 2, 3], SubmitOptions::new(0));
        let report = engine.run();
        assert_eq!(report.generated_tokens, 0);
        assert_eq!(report.prompt_tokens, 3);
        assert_eq!(engine.sequences()[0].finish_reason(), Some(FinishReason::Length));
    }

    #[test]
    fn paged_backend_generates_token_identical_output() {
        let quant = ModelQuantConfig::uniform(QuantScheme::mxfp4());
        let model = model(quant);
        let prompts: [&[usize]; 3] = [&[1, 2, 3], &[9, 8], &[5, 5, 5, 5]];
        let mut flat = ServingEngine::new(&model);
        let mut paged = ServingEngine::paged(&model, 64);
        for p in prompts {
            flat.submit_with(p, SubmitOptions::new(6));
            paged.submit_with(p, SubmitOptions::new(6));
        }
        let flat_report = flat.run();
        let paged_report = paged.run();
        assert_eq!(paged_report.backend, "paged-packed");
        assert_eq!(paged_report.generated_tokens, flat_report.generated_tokens);
        for (a, b) in flat.sequences().iter().zip(paged.sequences()) {
            assert_eq!(a.generated, b.generated, "sequence {} diverges across backends", a.id);
        }
        assert_eq!(paged_report.cache_materializations, 0);
        // The paged backend's measured bytes sit near the scheme width, well below f32
        // even with these short sequences half-filling their 16-position pages (the
        // integration tests pin the >=4x criterion at realistic lengths).
        assert!(paged_report.resident_bytes < paged_report.theoretical_bytes_fp32 / 3);
        // All pages returned after the run.
        let pool = paged.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.reserved_pages(), 0);
    }

    #[test]
    fn oversubscribed_pool_admits_late_sequences_as_pages_free_up() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        // Each sequence needs 2 layers * ceil((2 + 14)/16) = 2 pages; a 5-page pool
        // holds at most two at a time, so 6 submissions must queue.
        let mut engine = ServingEngine::paged(&model, 5);
        for s in 0..6usize {
            engine.submit_with(&[s + 1, s + 2], SubmitOptions::new(14));
        }
        let report = engine.run();
        assert_eq!(report.sequences, 6);
        assert_eq!(report.finished_length, 6);
        assert_eq!(report.evicted, 0);
        assert_eq!(report.generated_tokens, 6 * 14);
        // Every sequence's output still matches its solo greedy generation.
        for seq in engine.sequences() {
            assert_eq!(seq.generated, model.generate_greedy(&seq.prompt, 14), "sequence {}", seq.id);
        }
        // The final accounting covers every sequence and the pool drained fully.
        let pool = engine.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.free_pages(), pool.total_pages());
        // Peak occupancy respects the budget: never more than 5 pages' worth resident.
        assert!(report.resident_bytes <= 5 * pool.page_bytes());
    }

    #[test]
    fn sequences_larger_than_the_pool_are_evicted_not_deadlocked() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let mut engine = ServingEngine::paged(&model, 4);
        engine.submit_with(&[1, 2], SubmitOptions::new(6)); // fits: 2 pages
        engine.submit_with(&[3, 4], SubmitOptions::new(200)); // needs 2 * ceil(202/16) = 26 pages > 4: evicted
        engine.submit_with(&[5, 6], SubmitOptions::new(6)); // fits after the big one is evicted
        let report = engine.run();
        assert_eq!(report.finished_length, 2);
        assert_eq!(report.evicted, 1);
        assert_eq!(engine.sequences()[1].finish_reason(), Some(FinishReason::Evicted));
        assert!(engine.sequences()[1].generated.is_empty());
        assert_eq!(report.finished_length + report.finished_stop + report.evicted, report.sequences);
    }

    #[test]
    fn explicit_thread_counts_agree_with_the_default_engine() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let prompts: [&[usize]; 5] = [&[1, 2, 3], &[7, 7], &[10, 20, 30, 40], &[2], &[8, 6, 4]];
        let mut reference: Option<Vec<Vec<usize>>> = None;
        for threads in [1usize, 2, 3, 8] {
            let mut engine = ServingEngine::new(&model).with_threads(threads);
            for p in prompts {
                engine.submit_with(p, SubmitOptions::new(7));
            }
            let report = engine.run();
            assert_eq!(report.num_threads, threads);
            assert_eq!(report.generated_tokens, 5 * 7);
            let outputs: Vec<Vec<usize>> = engine.sequences().iter().map(|s| s.generated.clone()).collect();
            match &reference {
                None => reference = Some(outputs),
                Some(r) => assert_eq!(r, &outputs, "outputs diverge at {threads} threads"),
            }
        }
    }

    #[test]
    fn top_k_sampling_is_seeded_and_reproducible() {
        let model = model(ModelQuantConfig::BASELINE);
        let sampling = Sampling::top_k(4, 0.9, 1234);
        let run = |threads: usize| {
            let mut engine = ServingEngine::new(&model).with_threads(threads);
            engine.submit_with(&[3, 1, 4], SubmitOptions::new(12).sampling(sampling));
            engine.submit_with(&[2, 7], SubmitOptions::new(12).sampling(sampling));
            engine.run();
            engine.sequences().iter().map(|s| s.generated.clone()).collect::<Vec<_>>()
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a, b, "same seed must reproduce the same sampled stream");
        let c = run(4);
        assert_eq!(a, c, "sampled streams must not depend on the thread count");
        // Distinct per-sequence RNG streams: two sequences with the same prompt would
        // still decorrelate; here different prompts plus different streams.
        assert!(a[0].iter().all(|&t| t < model.config().vocab));
        // A different seed almost surely takes a different path within 12 tokens of
        // k=4 sampling; pin it so the seed is demonstrably load-bearing.
        let mut other = ServingEngine::new(&model);
        other.submit_with(&[3, 1, 4], SubmitOptions::new(12).sampling(Sampling::top_k(4, 0.9, 77)));
        other.run();
        assert_ne!(a[0], other.sequences()[0].generated, "different seeds must decorrelate");
    }

    #[test]
    fn greedy_sampling_field_defaults_preserve_old_submissions() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        engine.submit_with(&[5, 9], SubmitOptions::new(4));
        assert_eq!(engine.sequences()[0].sampling, Sampling::GREEDY);
        engine.run();
        assert_eq!(engine.sequences()[0].generated, model.generate_greedy(&[5, 9], 4));
    }

    #[test]
    fn sampled_sequences_respect_stop_tokens() {
        let model = model(ModelQuantConfig::BASELINE);
        // Sample freely once to learn the stream, then stop on its third token.
        let sampling = Sampling::top_p(0.8, 1.0, 99);
        let mut free = ServingEngine::new(&model);
        free.submit_with(&[6, 2, 8], SubmitOptions::new(10).sampling(sampling));
        free.run();
        let stream = free.sequences()[0].generated.clone();
        assert_eq!(stream.len(), 10);
        let stop = stream[3];
        // Only meaningful if the stop token does not appear earlier in the stream.
        if stream[..3].contains(&stop) {
            return;
        }
        let mut engine = ServingEngine::new(&model);
        engine.submit_with(&[6, 2, 8], SubmitOptions::new(10).stop_token(stop).sampling(sampling));
        engine.run();
        let seq = &engine.sequences()[0];
        assert_eq!(seq.finish_reason(), Some(FinishReason::Stop));
        assert_eq!(seq.generated, stream[..3]);
    }

    #[test]
    fn submit_options_builder_defaults_and_setters() {
        let opts = SubmitOptions::new(9);
        assert_eq!(opts.max_new_tokens, 9);
        assert_eq!(opts.stop_token, None);
        assert_eq!(opts.sampling, Sampling::GREEDY);
        assert_eq!(opts.priority, 0);
        assert_eq!(opts.arrival_pass, 0);
        assert!(opts.share_prefix);
        let opts = opts.stop_token(3).sampling(Sampling::top_p(0.5, 1.0, 7)).priority(2).arrival_pass(5);
        assert_eq!(opts.stop_token, Some(3));
        assert_eq!(opts.sampling, Sampling::top_p(0.5, 1.0, 7));
        assert_eq!(opts.priority, 2);
        assert_eq!(opts.arrival_pass, 5);
        assert!(!opts.without_prefix_sharing().share_prefix);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_submit_wrappers_match_submit_with() {
        let model = model(ModelQuantConfig::BASELINE);
        let sampling = Sampling::top_k(3, 0.8, 11);
        let mut old = ServingEngine::new(&model);
        old.submit(&[1, 2, 3], 5);
        old.submit_with_stop(&[4, 5], 5, Some(9));
        old.submit_with_sampling(&[6, 7], 5, None, sampling);
        old.run();
        let mut new = ServingEngine::new(&model);
        new.submit_with(&[1, 2, 3], SubmitOptions::new(5));
        new.submit_with(&[4, 5], SubmitOptions::new(5).stop_token(9));
        new.submit_with(&[6, 7], SubmitOptions::new(5).sampling(sampling));
        new.run();
        for (a, b) in old.sequences().iter().zip(new.sequences()) {
            assert_eq!(a.generated, b.generated, "wrapper diverges from submit_with for sequence {}", a.id);
            assert_eq!(a.finish_reason(), b.finish_reason());
        }
    }

    #[test]
    fn prefix_sharing_skips_prefill_and_stays_token_identical() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        // 4-position pages: a 10-token common prefix spans 2 full shared pages plus a
        // partial boundary page (copy-on-write exercised on both donor and recipient).
        let prefix: Vec<usize> = (0..10).map(|i| (i * 13 + 3) % 128).collect();
        let prompts: Vec<Vec<usize>> = (0..4)
            .map(|s| {
                let mut p = prefix.clone();
                p.push(90 + s); // diverge after the common prefix
                p
            })
            .collect();
        let run = |share: bool| {
            let mut engine = ServingEngine::paged_with(&model, 64, 4).with_threads(1);
            for p in &prompts {
                let opts = SubmitOptions::new(8);
                engine.submit_with(p, if share { opts } else { opts.without_prefix_sharing() });
            }
            let report = engine.run();
            let pool = engine.pool().unwrap();
            assert_eq!(pool.in_use_pages(), 0, "pages leaked (share={share})");
            assert_eq!(pool.reserved_pages(), 0, "reservations leaked (share={share})");
            let streams: Vec<Vec<usize>> = engine.sequences().iter().map(|s| s.generated.clone()).collect();
            let shared_positions: Vec<usize> = engine.sequences().iter().map(Sequence::shared_positions).collect();
            (report, streams, shared_positions)
        };
        let (shared_report, shared_streams, shared_positions) = run(true);
        let (plain_report, plain_streams, plain_positions) = run(false);
        // The tentpole invariant: sharing changes memory and prefill work, not tokens.
        assert_eq!(shared_streams, plain_streams, "prefix sharing must be token-identical");
        for (stream, p) in shared_streams.iter().zip(&prompts) {
            assert_eq!(stream, &model.generate_greedy(p, 8), "shared stream diverges from solo generation");
        }
        // Sequences 1..4 each mapped the 10-position prefix from sequence 0's pages.
        assert_eq!(shared_positions, vec![0, 10, 10, 10]);
        assert_eq!(plain_positions, vec![0; 4]);
        // 3 recipients x 2 layers x 3 pages (2 full + 1 boundary) mapped, 30 positions saved.
        assert_eq!(shared_report.shared_pages, 3 * 2 * 3);
        assert_eq!(shared_report.prefill_tokens_saved, 30);
        assert_eq!(plain_report.shared_pages, 0);
        assert_eq!(plain_report.prefill_tokens_saved, 0);
        assert!(
            shared_report.resident_bytes < plain_report.resident_bytes,
            "sharing must shrink peak residency: {} vs {}",
            shared_report.resident_bytes,
            plain_report.resident_bytes
        );
    }

    #[test]
    fn identical_prompts_still_rerun_the_last_position() {
        // A fully identical prompt can share everything except the last position, whose
        // logits seed the first sampled token.
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let prompt: Vec<usize> = (0..12).map(|i| (i * 7 + 1) % 128).collect();
        let mut engine = ServingEngine::paged_with(&model, 64, 4).with_threads(1);
        for _ in 0..2 {
            engine.submit_with(&prompt, SubmitOptions::new(6));
        }
        engine.run();
        assert_eq!(engine.sequences()[1].shared_positions(), 11);
        let solo = model.generate_greedy(&prompt, 6);
        for seq in engine.sequences() {
            assert_eq!(seq.generated, solo, "sequence {}", seq.id);
        }
    }

    #[test]
    fn high_priority_arrival_preempts_and_victim_resumes_bit_identically() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        // 4-page pool (16-position pages). The low-priority victim needs 2 pages and is
        // admitted alone; at pass 3 the high-priority arrival needs all 4 pages, so the
        // scheduler must spill the victim rather than stall behind it.
        let mut engine = ServingEngine::paged(&model, 4).with_threads(1);
        let victim = engine.submit_with(&[5, 6], SubmitOptions::new(12));
        let urgent = engine.submit_with(&[8, 9], SubmitOptions::new(28).priority(1).arrival_pass(3));
        let report = engine.run();
        assert_eq!(report.preemptions, 1, "the low-priority sequence must be swapped out");
        assert_eq!(report.evicted, 0, "preemption is not eviction");
        assert_eq!(report.finished_length, 2);
        // Both sequences finish with their solo-greedy streams: the victim's restored
        // pages are bit-identical to the spilled ones.
        assert_eq!(engine.sequences()[victim].generated, model.generate_greedy(&[5, 6], 12));
        assert_eq!(engine.sequences()[urgent].generated, model.generate_greedy(&[8, 9], 28));
        let pool = engine.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.reserved_pages(), 0);
    }

    #[test]
    fn planned_share_donor_is_never_preempted_for_its_own_recipient() {
        // Regression: a high-priority arrival planning to share a *lower-priority*
        // donor's prefix must not pick that donor as a preemption victim — spilling it
        // would destroy the pages about to be shared (and used to panic the
        // coordinator). 8-page pool: the donor (32-token prompt, 3 pages/layer) leaves
        // 2 pages free; the sharer needs 4 beyond the shared prefix, so pressure is
        // real and the donor is the only lower-priority sequence.
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let common: Vec<usize> = (0..32).map(|i| (i * 11 + 2) % 128).collect();
        let mut sharer_prompt = common.clone();
        sharer_prompt.push(99);
        let mut engine = ServingEngine::paged(&model, 8).with_threads(1);
        engine.submit_with(&common, SubmitOptions::new(7));
        engine.submit_with(&sharer_prompt, SubmitOptions::new(25).priority(1).arrival_pass(2));
        let report = engine.run();
        assert_eq!(report.preemptions, 0, "the only candidate victim is the planned donor: protected");
        assert_eq!(report.evicted, 0);
        assert_eq!(report.finished_length, 2);
        assert_eq!(engine.sequences()[0].generated, model.generate_greedy(&common, 7));
        assert_eq!(engine.sequences()[1].generated, model.generate_greedy(&sharer_prompt, 25));
        let pool = engine.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.reserved_pages(), 0);
    }

    #[test]
    fn preemption_spills_no_one_when_victims_cannot_fund_the_admission() {
        // 8-page pool: a small priority-0 victim (2 pages) plus a priority-1 holder
        // (4 pages). The priority-1 arrival needs 6 pages, but spilling the only
        // eligible victim guarantees just 2 + 2 = 4 — the precheck must leave the
        // victim running (no wasted spill/restore) and the arrival waits its turn.
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let mut engine = ServingEngine::paged(&model, 8).with_threads(1);
        engine.submit_with(&[5, 6], SubmitOptions::new(12)); // priority 0: 2 pages
        engine.submit_with(&[7, 8], SubmitOptions::new(25).priority(1)); // 4 pages
        engine.submit_with(&[9, 9], SubmitOptions::new(40).priority(1).arrival_pass(3)); // needs 6
        let report = engine.run();
        assert_eq!(report.preemptions, 0, "spilling the victim could never fund the admission");
        assert_eq!(report.evicted, 0);
        assert_eq!(report.finished_length, 3);
        for (seq, (prompt, budget)) in
            engine.sequences().iter().zip([(vec![5, 6], 12), (vec![7, 8], 25), (vec![9, 9], 40)])
        {
            assert_eq!(seq.generated, model.generate_greedy(&prompt, budget), "sequence {}", seq.id);
        }
    }

    #[test]
    fn equal_priorities_never_preempt() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let mut engine = ServingEngine::paged(&model, 4).with_threads(1);
        engine.submit_with(&[5, 6], SubmitOptions::new(12));
        // Same priority: the late arrival waits for pages like plain continuous batching.
        engine.submit_with(&[8, 9], SubmitOptions::new(28).arrival_pass(3));
        let report = engine.run();
        assert_eq!(report.preemptions, 0);
        assert_eq!(report.finished_length, 2);
        assert_eq!(engine.sequences()[0].generated, model.generate_greedy(&[5, 6], 12));
        assert_eq!(engine.sequences()[1].generated, model.generate_greedy(&[8, 9], 28));
    }

    #[test]
    #[should_panic(expected = "prompt must be non-empty")]
    fn submit_rejects_empty_prompts() {
        let model = model(ModelQuantConfig::BASELINE);
        ServingEngine::new(&model).submit_with(&[], SubmitOptions::new(4));
    }

    #[test]
    #[should_panic(expected = "at least one decode thread")]
    fn zero_threads_is_rejected() {
        let model = model(ModelQuantConfig::BASELINE);
        let _ = ServingEngine::new(&model).with_threads(0);
    }
}
