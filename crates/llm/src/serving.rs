//! A continuous-batching serving engine on top of the zero-copy decode path.
//!
//! The engine owns a queue of sequences and decodes them round-robin — one token per
//! active sequence per pass. Two cache backends are supported:
//!
//! * **f32-contiguous** ([`ServingEngine::new`]): every submitted sequence is admitted
//!   up front with its own pre-reserved [`KvCache`] of dequantized rows — the accuracy /
//!   bit-exactness baseline.
//! * **paged-packed** ([`ServingEngine::paged`]): sequences share a fixed-budget
//!   [`PagePool`] whose pages hold **genuinely bit-packed** rows
//!   ([`PagedKvCache`]). Admission is a page *reservation* for the sequence's worst case
//!   (prompt + generation budget), so the scheduler practices true **continuous
//!   batching**: submissions that do not fit wait in the queue and are admitted mid-run
//!   as finishing sequences return their pages; submissions whose worst case exceeds the
//!   whole pool are reported as [`FinishReason::Evicted`].
//!
//! Sequences finish on their length budget or on a per-sequence stop token
//! ([`ServingEngine::submit_with_stop`]), each recorded as a [`FinishReason`]. All cache
//! reads go through the borrowed-view / packed-row-decode hot path, so a whole batched
//! run performs zero full-cache copies; the [`ServingReport`] pins that invariant and
//! distinguishes the cache's **theoretical** scheme bytes from the **measured resident**
//! bytes actually allocated (pool occupancy for the paged backend, f32 row storage for
//! the baseline).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

use mx_formats::{QuantScheme, RowCodec};

use crate::kvcache::{KvCache, LayerKvCache};
use crate::model::{argmax, DecodePath, TransformerModel};
use crate::paging::{PagePool, PagedKvCache, DEFAULT_PAGE_POSITIONS};

/// Why a sequence stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The generation budget (`max_new_tokens`) was reached.
    Length,
    /// The sequence produced its stop token (the stop token itself is not emitted).
    Stop,
    /// The sequence could never be admitted: its worst-case page footprint exceeds the
    /// entire pool budget.
    Evicted,
}

/// Cache state of one sequence across its lifecycle.
#[derive(Debug)]
enum SeqCache {
    /// Submitted, not yet admitted (no storage held).
    Waiting,
    /// Active or finished on the f32-contiguous backend (storage retained for inspection).
    F32(KvCache),
    /// Active on the paged-packed backend.
    Paged(PagedKvCache),
    /// Finished on the paged backend: pages returned to the pool, only the final
    /// position count is kept for accounting.
    Retired { positions: usize },
}

/// One sequence being served.
#[derive(Debug)]
pub struct Sequence {
    /// Caller-visible id (submission order).
    pub id: usize,
    /// The prompt the sequence was submitted with.
    pub prompt: Vec<usize>,
    /// Tokens generated so far.
    pub generated: Vec<usize>,
    /// Generation budget for this sequence.
    pub max_new_tokens: usize,
    /// Token id that terminates the sequence early (never emitted).
    pub stop_token: Option<usize>,
    finish: Option<FinishReason>,
    cache: SeqCache,
    next: usize,
    prefilled: bool,
}

impl Sequence {
    /// Whether the sequence has finished (see [`Sequence::finish_reason`]).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finish.is_some()
    }

    /// Why the sequence finished, or `None` while it is waiting/active.
    #[must_use]
    pub fn finish_reason(&self) -> Option<FinishReason> {
        self.finish
    }

    /// This sequence's f32 KV cache, if it runs on the f32-contiguous backend
    /// (paged caches release their pages at retirement and are not inspectable here).
    #[must_use]
    pub fn cache(&self) -> Option<&KvCache> {
        match &self.cache {
            SeqCache::F32(c) => Some(c),
            _ => None,
        }
    }

    /// Positions this sequence holds (or held, once retired) in its KV cache.
    #[must_use]
    pub fn cached_positions(&self) -> usize {
        match &self.cache {
            SeqCache::Waiting => 0,
            SeqCache::F32(c) => c.seq_len(),
            SeqCache::Paged(c) => c.seq_len(),
            SeqCache::Retired { positions } => *positions,
        }
    }

    /// Marks the sequence finished, returning a paged cache's pages to the pool.
    fn finish(&mut self, reason: FinishReason) {
        self.finish = Some(reason);
        if let SeqCache::Paged(cache) = &self.cache {
            let positions = cache.seq_len();
            // Dropping the paged cache frees its pages — this is what funds the
            // admission of queued sequences.
            self.cache = SeqCache::Retired { positions };
        }
    }
}

/// Throughput and memory report for one [`ServingEngine::run`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Display name of the KV-cache quantization scheme.
    pub scheme: String,
    /// Cache backend the run used: `"paged-packed"` or `"f32-contiguous"`.
    pub backend: &'static str,
    /// Number of sequences submitted to the engine.
    pub sequences: usize,
    /// Sequences that finished by exhausting their generation budget.
    pub finished_length: usize,
    /// Sequences that finished on their stop token.
    pub finished_stop: usize,
    /// Sequences evicted because they can never fit the page budget.
    pub evicted: usize,
    /// Total prompt tokens prefilled.
    pub prompt_tokens: usize,
    /// Total tokens generated by the decode loop.
    pub generated_tokens: usize,
    /// Wall-clock time spent in prefill.
    pub prefill_time: Duration,
    /// Wall-clock time spent in the decode loop.
    pub decode_time: Duration,
    /// Generated tokens per second of decode time (all sequences combined).
    pub decode_tokens_per_sec: f64,
    /// Cache bytes by scheme math: every position ever cached, at the scheme's average
    /// width (rows byte-ceiled). What the hardware *would* hold with a perfect layout.
    pub theoretical_bytes: usize,
    /// The same positions held in FP32 — the compression baseline.
    pub theoretical_bytes_fp32: usize,
    /// **Measured** peak cache storage during the run: page-pool occupancy on the paged
    /// backend, f32 row storage on the baseline backend. This is the number that exposed
    /// the old accounting gap (f32-resident storage labelled with scheme bytes).
    pub resident_bytes: usize,
    /// Full-cache materializations observed across all caches (0 on the hot paths).
    pub cache_materializations: usize,
}

impl ServingReport {
    /// Compression of the scheme's theoretical bytes over FP32 storage.
    #[must_use]
    pub fn theoretical_compression(&self) -> f64 {
        ratio(self.theoretical_bytes_fp32, self.theoretical_bytes)
    }

    /// Compression of the *measured* resident bytes over theoretical FP32 storage —
    /// ~1x for the f32 backend (it really stores f32), near the scheme ratio for the
    /// paged backend (minus page-granularity slack).
    #[must_use]
    pub fn resident_compression(&self) -> f64 {
        ratio(self.theoretical_bytes_fp32, self.resident_bytes)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Decodes a batch of sequences against one model with continuous batching
/// (see the [module docs](crate::serving)).
///
/// ```
/// use mx_llm::{ModelConfig, ModelQuantConfig, ServingEngine, TransformerModel};
///
/// let model = TransformerModel::new(ModelConfig::tiny_test(3), ModelQuantConfig::BASELINE);
/// let mut engine = ServingEngine::new(&model);
/// engine.submit(&[1, 2, 3], 4);
/// engine.submit(&[9, 8], 4);
/// let report = engine.run();
/// assert_eq!(report.sequences, 2);
/// assert_eq!(report.generated_tokens, 8);
/// assert_eq!(report.finished_length, 2);
/// assert_eq!(report.cache_materializations, 0);
/// ```
#[derive(Debug)]
pub struct ServingEngine<'m> {
    model: &'m TransformerModel,
    sequences: Vec<Sequence>,
    mode: DecodePath,
    pool: Option<Rc<RefCell<PagePool>>>,
}

impl<'m> ServingEngine<'m> {
    /// Creates an engine serving `model` on the f32-contiguous backend through the
    /// zero-copy cache path (every submission is admitted immediately).
    #[must_use]
    pub fn new(model: &'m TransformerModel) -> Self {
        ServingEngine { model, sequences: Vec::new(), mode: DecodePath::ZeroCopy, pool: None }
    }

    /// Creates an f32-backend engine with an explicit [`DecodePath`] (`SeedClone` is only
    /// useful for benchmarking the pre-refactor decode path).
    #[must_use]
    pub fn with_path(model: &'m TransformerModel, mode: DecodePath) -> Self {
        ServingEngine { model, sequences: Vec::new(), mode, pool: None }
    }

    /// Creates an engine on the paged-packed backend with a pool of `total_pages` pages
    /// of [`DEFAULT_PAGE_POSITIONS`] positions each, stored bit-packed under the model's
    /// KV-cache scheme.
    #[must_use]
    pub fn paged(model: &'m TransformerModel, total_pages: usize) -> Self {
        ServingEngine::paged_with(model, total_pages, DEFAULT_PAGE_POSITIONS)
    }

    /// [`ServingEngine::paged`] with an explicit page size in positions.
    #[must_use]
    pub fn paged_with(model: &'m TransformerModel, total_pages: usize, page_positions: usize) -> Self {
        let scheme = model.quant().kv_cache;
        let kv_dim = Self::kv_dim(model);
        let pool = PagePool::for_kv_rows(total_pages, page_positions, RowCodec::for_scheme(scheme), kv_dim).shared();
        ServingEngine { model, sequences: Vec::new(), mode: DecodePath::ZeroCopy, pool: Some(pool) }
    }

    /// The shared page pool, when running on the paged backend.
    #[must_use]
    pub fn pool(&self) -> Option<&Rc<RefCell<PagePool>>> {
        self.pool.as_ref()
    }

    fn kv_dim(model: &TransformerModel) -> usize {
        model.config().head_dim() * model.config().kv_heads
    }

    /// Queues a sequence. Returns the sequence id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    pub fn submit(&mut self, prompt: &[usize], max_new_tokens: usize) -> usize {
        self.submit_with_stop(prompt, max_new_tokens, None)
    }

    /// Queues a sequence that additionally finishes (without emitting it) when it
    /// generates `stop_token`. Returns the sequence id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty.
    pub fn submit_with_stop(&mut self, prompt: &[usize], max_new_tokens: usize, stop_token: Option<usize>) -> usize {
        assert!(!prompt.is_empty(), "prompt must be non-empty");
        let id = self.sequences.len();
        self.sequences.push(Sequence {
            id,
            prompt: prompt.to_vec(),
            generated: Vec::with_capacity(max_new_tokens),
            max_new_tokens,
            stop_token,
            finish: None,
            cache: SeqCache::Waiting,
            next: 0,
            prefilled: false,
        });
        id
    }

    /// The sequences in submission order.
    #[must_use]
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Runs the scheduler until every submitted sequence has finished (or been evicted):
    /// admit waiting sequences whenever their worst case fits the page budget, prefill
    /// on admission, decode round-robin (one token per active sequence per pass, greedy
    /// sampling), and return retiring sequences' pages to the pool so queued sequences
    /// can enter mid-run.
    pub fn run(&mut self) -> ServingReport {
        let mut prefill_time = Duration::ZERO;
        let mut decode_time = Duration::ZERO;
        let mut prompt_tokens = 0usize;
        let mut generated = 0usize;
        let mut peak_resident = self.resident_bytes();

        loop {
            self.admit_waiting(&mut prefill_time, &mut prompt_tokens);
            peak_resident = peak_resident.max(self.resident_bytes());

            let decode_start = Instant::now();
            let mut progressed = false;
            for i in 0..self.sequences.len() {
                let seq = &mut self.sequences[i];
                if seq.finish.is_some() || !seq.prefilled {
                    continue;
                }
                progressed = true;
                if seq.stop_token == Some(seq.next) {
                    seq.finish(FinishReason::Stop);
                } else if seq.generated.len() >= seq.max_new_tokens {
                    // Zero-budget sequences finish without emitting anything.
                    seq.finish(FinishReason::Length);
                } else {
                    seq.generated.push(seq.next);
                    generated += 1;
                    if seq.generated.len() == seq.max_new_tokens {
                        // The budgeted last token needs no forward pass of its own:
                        // decoding it would only produce logits (and a cache row) that
                        // are thrown away.
                        seq.finish(FinishReason::Length);
                    } else {
                        let logits = match &mut seq.cache {
                            SeqCache::F32(cache) => self.model.decode_step_with_path(seq.next, cache, self.mode),
                            SeqCache::Paged(cache) => self.model.decode_step_backend(seq.next, cache),
                            _ => unreachable!("active sequence without a cache"),
                        };
                        seq.next = argmax(&logits);
                    }
                }
                // Sample pool occupancy after every step: one sequence can allocate a
                // page and another retire later in the same pass, so sampling only at
                // pass boundaries would miss the transient peak. (The f32 backend only
                // grows, so its end-of-pass sample below is already exact.)
                if let Some(pool) = &self.pool {
                    peak_resident = peak_resident.max(pool.borrow().resident_bytes());
                }
            }
            decode_time += decode_start.elapsed();
            peak_resident = peak_resident.max(self.resident_bytes());

            if !progressed && !self.sequences.iter().any(|s| s.finish.is_none() && !s.prefilled) {
                break;
            }
        }

        let scheme = self.model.quant().kv_cache;
        let kv_dim = Self::kv_dim(self.model);
        let layers = self.model.config().layers;
        let theoretical = |s: QuantScheme| {
            let per_row = LayerKvCache::row_storage_bytes(kv_dim, s);
            self.sequences.iter().map(|q| 2 * layers * q.cached_positions() * per_row).sum()
        };
        let count = |r: FinishReason| self.sequences.iter().filter(|s| s.finish == Some(r)).count();
        ServingReport {
            scheme: scheme.name(),
            backend: if self.pool.is_some() { "paged-packed" } else { "f32-contiguous" },
            sequences: self.sequences.len(),
            finished_length: count(FinishReason::Length),
            finished_stop: count(FinishReason::Stop),
            evicted: count(FinishReason::Evicted),
            prompt_tokens,
            generated_tokens: generated,
            prefill_time,
            decode_time,
            decode_tokens_per_sec: if decode_time.is_zero() {
                f64::INFINITY
            } else {
                generated as f64 / decode_time.as_secs_f64()
            },
            theoretical_bytes: theoretical(scheme),
            theoretical_bytes_fp32: theoretical(QuantScheme::Fp32),
            resident_bytes: peak_resident,
            cache_materializations: self
                .sequences
                .iter()
                .map(|s| match &s.cache {
                    SeqCache::F32(c) => c.materializations(),
                    _ => 0,
                })
                .sum(),
        }
    }

    /// Admits waiting sequences in submission order (FCFS): on the f32 backend every
    /// sequence is admitted; on the paged backend admission reserves the sequence's
    /// worst-case page count, stalling the queue (not skipping ahead) when the head does
    /// not fit yet, and evicting sequences that exceed the entire pool budget.
    fn admit_waiting(&mut self, prefill_time: &mut Duration, prompt_tokens: &mut usize) {
        let cfg = self.model.config();
        let kv_dim = Self::kv_dim(self.model);
        let scheme = self.model.quant().kv_cache;
        for seq in &mut self.sequences {
            if seq.finish.is_some() || !matches!(seq.cache, SeqCache::Waiting) {
                continue;
            }
            let capacity = seq.prompt.len() + seq.max_new_tokens;
            match &self.pool {
                None => {
                    seq.cache = SeqCache::F32(KvCache::with_capacity(cfg.layers, kv_dim, capacity));
                }
                Some(pool) => {
                    let needed = PagedKvCache::pages_needed(&pool.borrow(), cfg.layers, capacity);
                    if needed > pool.borrow().total_pages() {
                        // Larger than the whole budget: no amount of retirement can ever
                        // admit it.
                        seq.finish(FinishReason::Evicted);
                        continue;
                    }
                    match PagedKvCache::new(pool, cfg.layers, kv_dim, scheme, capacity) {
                        Ok(cache) => seq.cache = SeqCache::Paged(cache),
                        // Head-of-line waits for pages; preserve submission order.
                        Err(_) => break,
                    }
                }
            }
            let t0 = Instant::now();
            let logits = match &mut seq.cache {
                SeqCache::F32(cache) => self.model.forward_with_path(&seq.prompt, cache, self.mode),
                SeqCache::Paged(cache) => self.model.forward_backend(&seq.prompt, cache),
                _ => unreachable!("sequence admitted without a cache"),
            };
            seq.next = argmax(logits.row(logits.rows() - 1));
            seq.prefilled = true;
            *prefill_time += t0.elapsed();
            *prompt_tokens += seq.prompt.len();
        }
    }

    /// Current measured cache storage across the engine (see
    /// [`ServingReport::resident_bytes`]).
    fn resident_bytes(&self) -> usize {
        match &self.pool {
            Some(pool) => pool.borrow().resident_bytes(),
            None => self
                .sequences
                .iter()
                .map(|s| match &s.cache {
                    SeqCache::F32(c) => c.resident_bytes(),
                    _ => 0,
                })
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::quant_config::ModelQuantConfig;

    fn model(quant: ModelQuantConfig) -> TransformerModel {
        TransformerModel::new(ModelConfig::tiny_test(5), quant)
    }

    #[test]
    fn batched_decode_matches_sequential_greedy_generation() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let prompts: [&[usize]; 3] = [&[1, 2, 3], &[7, 7], &[10, 20, 30, 40]];
        let mut engine = ServingEngine::new(&model);
        for p in prompts {
            engine.submit(p, 6);
        }
        let report = engine.run();
        assert_eq!(report.generated_tokens, 18);
        for (seq, p) in engine.sequences().iter().zip(prompts) {
            // Interleaving sequences must not change any sequence's output: each cache is
            // independent, so batched round-robin equals one-at-a-time generation.
            assert_eq!(seq.generated, model.generate_greedy(p, 6), "sequence {}", seq.id);
            // prompt rows from prefill plus one appended row per decode; the budgeted
            // last token is sampled from the previous step's logits, not decoded itself.
            assert_eq!(seq.cached_positions(), p.len() + 5);
            assert_eq!(seq.finish_reason(), Some(FinishReason::Length));
        }
    }

    #[test]
    fn report_accounts_tokens_and_cache_bytes() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let mut engine = ServingEngine::new(&model);
        engine.submit(&[1, 2, 3, 4], 5);
        engine.submit(&[5, 6], 5);
        let report = engine.run();
        assert_eq!(report.sequences, 2);
        assert_eq!(report.prompt_tokens, 6);
        assert_eq!(report.generated_tokens, 10);
        assert_eq!(report.scheme, "MXFP4");
        assert_eq!(report.backend, "f32-contiguous");
        assert_eq!(report.finished_length, 2);
        // tiny_test: 2 layers, kv_dim 64. One cached row per prompt token plus one per
        // decode step; the final budgeted token is sampled without its own forward pass.
        let expected_rows = (4 + 4) + (2 + 4);
        let per_row = LayerKvCache::row_storage_bytes(64, QuantScheme::mxfp4());
        assert_eq!(report.theoretical_bytes, 2 * 2 * expected_rows * per_row);
        assert!(report.theoretical_compression() > 7.0, "4.25-bit cache must compress FP32 by ~7.5x");
        // The satellite fix this field exists for: the f32 backend's *measured* storage
        // is full f32 — here the admission-time capacity reservations of 9 and 7
        // positions (prompt + budget) across 2 layers, K and V, 64 floats per row —
        // not the scheme's width.
        assert_eq!(report.resident_bytes, 2 * 2 * (9 + 7) * 64 * 4);
        assert!(report.resident_bytes >= report.theoretical_bytes_fp32);
        assert!(report.resident_compression() <= 1.0 + 1e-9);
        assert!(report.decode_tokens_per_sec > 0.0);
    }

    #[test]
    fn zero_copy_invariant_holds_for_whole_batch() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        for p in 0..4 {
            engine.submit(&[p + 1, p + 2], 8);
        }
        let report = engine.run();
        assert_eq!(report.cache_materializations, 0);
        // The clone-based mode, by contrast, materializes twice per layer per forward.
        let mut legacy = ServingEngine::with_path(&model, DecodePath::SeedClone);
        legacy.submit(&[1, 2], 2);
        let legacy_report = legacy.run();
        assert!(legacy_report.cache_materializations > 0);
        assert_eq!(legacy.sequences()[0].generated, engine.sequences()[0].generated[..2]);
    }

    #[test]
    fn run_is_idempotent_once_finished() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        engine.submit(&[2, 4, 6], 3);
        let first = engine.run();
        assert_eq!(first.generated_tokens, 3);
        let second = engine.run();
        assert_eq!(second.generated_tokens, 0);
        assert_eq!(second.prompt_tokens, 0);
        assert_eq!(engine.sequences()[0].generated.len(), 3);
    }

    #[test]
    fn stop_token_finishes_early_without_emitting_it() {
        let model = model(ModelQuantConfig::BASELINE);
        // Find what the model would greedily generate, then use one of those tokens as
        // the stop token of a second, stop-aware run.
        let free = model.generate_greedy(&[3, 1, 4], 8);
        let stop = free[3];
        let mut engine = ServingEngine::new(&model);
        engine.submit_with_stop(&[3, 1, 4], 8, Some(stop));
        let report = engine.run();
        let seq = &engine.sequences()[0];
        assert_eq!(seq.finish_reason(), Some(FinishReason::Stop));
        assert_eq!(seq.generated, free[..3], "generation must match the free run up to the stop");
        assert!(!seq.generated.contains(&stop), "the stop token is not emitted");
        assert_eq!(report.finished_stop, 1);
        assert_eq!(report.finished_length, 0);
        assert_eq!(report.generated_tokens, 3);
    }

    #[test]
    fn stop_token_never_generated_falls_back_to_length() {
        let model = model(ModelQuantConfig::BASELINE);
        let free = model.generate_greedy(&[2, 2], 4);
        let never = (0..model.config().vocab).find(|t| !free.contains(t)).unwrap();
        let mut engine = ServingEngine::new(&model);
        engine.submit_with_stop(&[2, 2], 4, Some(never));
        engine.run();
        let seq = &engine.sequences()[0];
        assert_eq!(seq.finish_reason(), Some(FinishReason::Length));
        assert_eq!(seq.generated, free);
    }

    #[test]
    fn zero_budget_sequences_finish_without_tokens() {
        let model = model(ModelQuantConfig::BASELINE);
        let mut engine = ServingEngine::new(&model);
        engine.submit(&[1, 2, 3], 0);
        let report = engine.run();
        assert_eq!(report.generated_tokens, 0);
        assert_eq!(report.prompt_tokens, 3);
        assert_eq!(engine.sequences()[0].finish_reason(), Some(FinishReason::Length));
    }

    #[test]
    fn paged_backend_generates_token_identical_output() {
        let quant = ModelQuantConfig::uniform(QuantScheme::mxfp4());
        let model = model(quant);
        let prompts: [&[usize]; 3] = [&[1, 2, 3], &[9, 8], &[5, 5, 5, 5]];
        let mut flat = ServingEngine::new(&model);
        let mut paged = ServingEngine::paged(&model, 64);
        for p in prompts {
            flat.submit(p, 6);
            paged.submit(p, 6);
        }
        let flat_report = flat.run();
        let paged_report = paged.run();
        assert_eq!(paged_report.backend, "paged-packed");
        assert_eq!(paged_report.generated_tokens, flat_report.generated_tokens);
        for (a, b) in flat.sequences().iter().zip(paged.sequences()) {
            assert_eq!(a.generated, b.generated, "sequence {} diverges across backends", a.id);
        }
        assert_eq!(paged_report.cache_materializations, 0);
        // The paged backend's measured bytes sit near the scheme width, well below f32
        // even with these short sequences half-filling their 16-position pages (the
        // integration tests pin the >=4x criterion at realistic lengths).
        assert!(paged_report.resident_bytes < paged_report.theoretical_bytes_fp32 / 3);
        // All pages returned after the run.
        let pool = paged.pool().unwrap().borrow();
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.reserved_pages(), 0);
    }

    #[test]
    fn oversubscribed_pool_admits_late_sequences_as_pages_free_up() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        // Each sequence needs 2 layers * ceil((2 + 14)/16) = 2 pages; a 5-page pool
        // holds at most two at a time, so 6 submissions must queue.
        let mut engine = ServingEngine::paged(&model, 5);
        for s in 0..6usize {
            engine.submit(&[s + 1, s + 2], 14);
        }
        let report = engine.run();
        assert_eq!(report.sequences, 6);
        assert_eq!(report.finished_length, 6);
        assert_eq!(report.evicted, 0);
        assert_eq!(report.generated_tokens, 6 * 14);
        // Every sequence's output still matches its solo greedy generation.
        for seq in engine.sequences() {
            assert_eq!(seq.generated, model.generate_greedy(&seq.prompt, 14), "sequence {}", seq.id);
        }
        // The final accounting covers every sequence and the pool drained fully.
        let pool = engine.pool().unwrap().borrow();
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.free_pages(), pool.total_pages());
        // Peak occupancy respects the budget: never more than 5 pages' worth resident.
        assert!(report.resident_bytes <= 5 * pool.page_bytes());
    }

    #[test]
    fn sequences_larger_than_the_pool_are_evicted_not_deadlocked() {
        let model = model(ModelQuantConfig::uniform(QuantScheme::mxfp4()));
        let mut engine = ServingEngine::paged(&model, 4);
        engine.submit(&[1, 2], 6); // fits: 2 pages
        engine.submit(&[3, 4], 200); // needs 2 * ceil(202/16) = 26 pages > 4: evicted
        engine.submit(&[5, 6], 6); // fits after the big one is evicted
        let report = engine.run();
        assert_eq!(report.finished_length, 2);
        assert_eq!(report.evicted, 1);
        assert_eq!(engine.sequences()[1].finish_reason(), Some(FinishReason::Evicted));
        assert!(engine.sequences()[1].generated.is_empty());
        assert_eq!(report.finished_length + report.finished_stop + report.evicted, report.sequences);
    }

    #[test]
    #[should_panic(expected = "prompt must be non-empty")]
    fn submit_rejects_empty_prompts() {
        let model = model(ModelQuantConfig::BASELINE);
        ServingEngine::new(&model).submit(&[], 4);
    }
}
