//! Deterministic synthetic weight generation for the transformer substrate.
//!
//! Weights are drawn with Xavier scaling from the model's seed. To mirror the
//! channel-concentrated activation outliers of real LLMs (Figure 4a), the input
//! projections of every layer carry a few *amplified input columns* aligned with the
//! model's outlier channels: activations flowing through those channels are consistently
//! magnified, which reproduces the persistent per-channel outlier structure that breaks
//! low-bit block quantization.

use mx_tensor::{synth, Matrix};
use serde::{Deserialize, Serialize};

use crate::config::{MlpKind, ModelConfig};

/// Weights of one transformer layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerWeights {
    /// Query projection `(hidden, heads * head_dim)`.
    pub wq: Matrix,
    /// Key projection `(hidden, kv_heads * head_dim)`.
    pub wk: Matrix,
    /// Value projection `(hidden, kv_heads * head_dim)`.
    pub wv: Matrix,
    /// Output projection `(hidden, hidden)`.
    pub wo: Matrix,
    /// Gate projection for gated MLPs, or the first FC layer for GELU MLPs
    /// `(hidden, intermediate)`.
    pub w_gate: Matrix,
    /// Up projection `(hidden, intermediate)`; unused (empty) for GELU MLPs.
    pub w_up: Matrix,
    /// Down projection `(intermediate, hidden)`.
    pub w_down: Matrix,
    /// Pre-attention norm gain `(hidden)`.
    pub attn_norm_gain: Vec<f32>,
    /// Pre-attention norm bias (LayerNorm models only).
    pub attn_norm_bias: Vec<f32>,
    /// Pre-MLP norm gain.
    pub mlp_norm_gain: Vec<f32>,
    /// Pre-MLP norm bias.
    pub mlp_norm_bias: Vec<f32>,
}

/// All weights of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWeights {
    /// Token embedding table `(vocab, hidden)`.
    pub embedding: Matrix,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final norm gain.
    pub final_norm_gain: Vec<f32>,
    /// Final norm bias.
    pub final_norm_bias: Vec<f32>,
    /// Language-model head `(hidden, vocab)`.
    pub lm_head: Matrix,
}

impl ModelWeights {
    /// Generates the weights for a configuration, deterministically from its seed.
    #[must_use]
    pub fn generate(cfg: &ModelConfig) -> Self {
        let h = cfg.hidden;
        let kv_dim = cfg.head_dim() * cfg.kv_heads;
        let seed = cfg.seed;
        // Outlier channel positions: the pre-projection norm gains amplify these channels,
        // so the activations reaching every quantized projection carry the
        // Figure-4-style persistent per-channel outliers.
        let profile = mx_tensor::ActivationProfile::new(h, 1.0, cfg.outliers, seed);
        let outlier_channels: Vec<usize> = profile.outlier_channels().to_vec();

        let mut layers = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let ls = seed.wrapping_add(1000 + l as u64 * 17);
            let gelu_mlp = matches!(cfg.mlp, MlpKind::Gelu);
            layers.push(LayerWeights {
                wq: synth::xavier_weights(h, h, 1.0, ls ^ 0x01),
                wk: synth::xavier_weights(h, kv_dim, 1.0, ls ^ 0x02),
                wv: synth::xavier_weights(h, kv_dim, 1.0, ls ^ 0x03),
                wo: synth::xavier_weights(h, h, 1.0, ls ^ 0x04),
                w_gate: synth::xavier_weights(h, cfg.intermediate, 1.0, ls ^ 0x05),
                w_up: if gelu_mlp {
                    Matrix::zeros(0, 0)
                } else {
                    synth::xavier_weights(h, cfg.intermediate, 1.0, ls ^ 0x06)
                },
                w_down: synth::xavier_weights(cfg.intermediate, h, 1.0, ls ^ 0x07),
                attn_norm_gain: outlier_gain(h, &outlier_channels, cfg.outliers.magnitude),
                attn_norm_bias: vec![0.0; h],
                mlp_norm_gain: outlier_gain(h, &outlier_channels, cfg.outliers.magnitude),
                mlp_norm_bias: vec![0.0; h],
            });
        }

        ModelWeights {
            embedding: synth::xavier_weights(cfg.vocab, h, 1.0, seed ^ 0xe0),
            layers,
            final_norm_gain: vec![1.0; h],
            final_norm_bias: vec![0.0; h],
            lm_head: synth::xavier_weights(h, cfg.vocab, 1.5, seed ^ 0xe1),
        }
    }

    /// Total number of weight parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        let count = |m: &Matrix| m.rows() * m.cols();
        let mut total = count(&self.embedding) + count(&self.lm_head);
        for l in &self.layers {
            total += count(&l.wq) + count(&l.wk) + count(&l.wv) + count(&l.wo);
            total += count(&l.w_gate) + count(&l.w_up) + count(&l.w_down);
        }
        total
    }
}

/// Norm gain vector that amplifies the outlier channels: this is how the persistent
/// per-channel activation outliers enter the (quantized) projection inputs.
fn outlier_gain(hidden: usize, outlier_channels: &[usize], magnitude: f32) -> Vec<f32> {
    let mut gain = vec![1.0_f32; hidden];
    for (i, &c) in outlier_channels.iter().enumerate() {
        // Alternate sign and vary the magnitude slightly per channel.
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        gain[c] = sign * magnitude * (0.8 + 0.4 * ((i * 37 % 10) as f32 / 10.0));
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ModelConfig::tiny_test(3);
        let a = ModelWeights::generate(&cfg);
        let b = ModelWeights::generate(&cfg);
        assert_eq!(a, b);
        let c = ModelWeights::generate(&ModelConfig::tiny_test(4));
        assert_ne!(a.embedding, c.embedding);
    }

    #[test]
    fn shapes_follow_config() {
        let cfg = ModelConfig::llama31_8b();
        let w = ModelWeights::generate(&cfg);
        assert_eq!(w.layers.len(), cfg.layers);
        let kv_dim = cfg.head_dim() * cfg.kv_heads;
        assert_eq!(w.layers[0].wq.shape(), (cfg.hidden, cfg.hidden));
        assert_eq!(w.layers[0].wk.shape(), (cfg.hidden, kv_dim));
        assert_eq!(w.layers[0].wv.shape(), (cfg.hidden, kv_dim));
        assert_eq!(w.layers[0].w_gate.shape(), (cfg.hidden, cfg.intermediate));
        assert_eq!(w.layers[0].w_down.shape(), (cfg.intermediate, cfg.hidden));
        assert_eq!(w.embedding.shape(), (cfg.vocab, cfg.hidden));
        assert_eq!(w.lm_head.shape(), (cfg.hidden, cfg.vocab));
    }

    #[test]
    fn gelu_models_have_no_up_projection() {
        let w = ModelWeights::generate(&ModelConfig::opt_66b());
        assert_eq!(w.layers[0].w_up.shape(), (0, 0));
        let w2 = ModelWeights::generate(&ModelConfig::llama31_8b());
        assert_ne!(w2.layers[0].w_up.shape(), (0, 0));
    }

    #[test]
    fn norm_gains_encode_outlier_channels() {
        let cfg = ModelConfig::llama31_8b();
        let w = ModelWeights::generate(&cfg);
        let big = w.layers[0].attn_norm_gain.iter().filter(|g| g.abs() > 5.0).count();
        assert!(big >= 1, "expected amplified outlier channels in the norm gain");
        assert!(big < cfg.hidden / 8, "outlier channels must be sparse");
    }

    #[test]
    fn parameter_count_matches_manual_sum() {
        let cfg = ModelConfig::tiny_test(1);
        let w = ModelWeights::generate(&cfg);
        assert!(w.parameter_count() > cfg.vocab * cfg.hidden);
    }
}
