//! # mx-llm
//!
//! A from-scratch transformer inference substrate with pluggable quantized matrix
//! multiplication, used to reproduce the model-quality experiments of the MX+ paper
//! (Figures 2-3, 14 and Tables 2-3, 7-8, 10-12).
//!
//! ## What is real and what is synthetic
//!
//! The transformer itself — embeddings, rotary attention with a KV cache, gated MLPs,
//! RMS/LayerNorm, the language-model head, prefill and decode — is fully implemented and
//! every dot-product operand can be quantized with any [`mx_formats::QuantScheme`],
//! following the paper's computation flow (vector ops stay in BF16/FP32).
//!
//! What we cannot ship are the pre-trained weights of OPT/Llama/Mistral/Phi/Qwen and the
//! WikiText-2/C4 corpora. Instead, each paper model is represented by a
//! [`config::ModelConfig`] preset whose weights are drawn deterministically and whose
//! activation statistics (channel-concentrated outliers) are calibrated to the paper's
//! observations via [`mx_tensor::ActivationProfile`]. Model quality is reported through a
//! *perplexity proxy*: the calibrated BF16 perplexity of the model (taken from the paper's
//! baseline column) inflated by the measured KL divergence between the quantized and
//! reference model's next-token distributions over a synthetic token stream. Task accuracy
//! (Table 2) is likewise a *margin-based proxy*. DESIGN.md discusses why this preserves
//! the result shape the reproduction targets.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod eval;
pub mod fault;
pub mod kvcache;
pub mod model;
pub mod paging;
pub mod quant_config;
pub mod sampling;
pub mod serving;
pub mod tasks;
pub mod weights;

pub use config::ModelConfig;
pub use eval::{evaluate_perplexity, PerplexityReport};
pub use fault::{FaultKind, FaultPlan, RecoveryPolicy};
pub use kvcache::{KvBackend, KvCache, KvLayerReader, LayerKvCache};
pub use model::{DecodePath, TransformerModel};
pub use paging::{
    audit_caches, PagePool, PagedKvCache, PagedLayerReader, PagedScratch, PagingError, SharedPrefix, SpilledKv,
};
pub use quant_config::ModelQuantConfig;
pub use sampling::{Sampling, SamplingPolicy, SeqRng};
pub use serving::{DrainReport, FinishReason, Sequence, ServingEngine, ServingReport, SubmitOptions};
// Telemetry types that appear in the serving API surface (reports, tracing config),
// re-exported so engine users need no direct mx-telemetry dependency.
pub use mx_telemetry::{
    Category, Clock, Event, EventKind, Histogram, LatencySummary, MonotonicClock, QuantileSummary, Telemetry,
    TelemetryConfig, TestClock, Trace,
};
