//! Perplexity-proxy evaluation (Figures 2-3, Tables 3, 7, 8, 10).
//!
//! ## The proxy
//!
//! We cannot evaluate true WikiText-2/C4 perplexity without the pre-trained weights, so
//! the reproduction anchors each model at its paper-reported BF16 perplexity and measures
//! the *degradation* caused by a quantization scheme as the mean KL divergence between the
//! quantized model's and the reference (BF16) model's next-token distributions over a
//! synthetic token stream:
//!
//! ```text
//! ln ppl(scheme) = ln ppl(BF16, from the paper) + mean_t KL( p_ref(. | t) || p_quant(. | t) )
//! ```
//!
//! This is exact when the reference model's cross entropy on the true distribution equals
//! its entropy, and is a faithful first-order model of the degradation otherwise. The KL
//! term is *measured*, not synthesized: it comes from running the full transformer forward
//! pass twice (reference and quantized) on the same tokens, so everything that matters for
//! the paper's comparisons — which formats break on which models, and by how much — flows
//! through the real quantization code.

use serde::{Deserialize, Serialize};

use mx_tensor::{kernels, synth};

use crate::config::ModelConfig;
use crate::model::TransformerModel;
use crate::quant_config::ModelQuantConfig;

/// Which synthetic corpus to emulate (they differ in base perplexity anchor and stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// WikiText-2-like stream.
    Wiki2,
    /// C4-like stream.
    C4,
}

impl Dataset {
    /// Stream seed for this dataset.
    #[must_use]
    pub fn seed(self) -> u64 {
        match self {
            Dataset::Wiki2 => 0x1111_2222,
            Dataset::C4 => 0x3333_4444,
        }
    }

    /// The paper's BF16 perplexity anchor for a model on this dataset (sequence 2048).
    #[must_use]
    pub fn base_perplexity(self, cfg: &ModelConfig) -> f64 {
        match self {
            Dataset::Wiki2 => cfg.base_ppl_wiki2,
            Dataset::C4 => cfg.base_ppl_c4,
        }
    }
}

/// Evaluation settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalSettings {
    /// Dataset to emulate.
    pub dataset: Dataset,
    /// Chunk (sequence) length per prefill; the paper uses 1024/2048, the reproduction
    /// defaults to something small enough for the scaled-down models.
    pub seq_len: usize,
    /// Total number of evaluated positions.
    pub total_tokens: usize,
    /// A multiplier applied to the measured KL before exponentiation. The paper's
    /// degradation magnitudes arise from 32-80-layer models; the reproduction's 4-layer
    /// models accumulate proportionally less divergence, so the default scales by a
    /// layer-ratio factor. Set to 1.0 for the raw measured value.
    pub kl_gain: f64,
}

impl EvalSettings {
    /// Fast settings used in unit tests.
    #[must_use]
    pub fn fast(dataset: Dataset) -> Self {
        EvalSettings { dataset, seq_len: 16, total_tokens: 32, kl_gain: 1.0 }
    }

    /// Default settings used by the benchmark harnesses.
    #[must_use]
    pub fn standard(dataset: Dataset) -> Self {
        EvalSettings { dataset, seq_len: 64, total_tokens: 256, kl_gain: 1.0 }
    }
}

/// The outcome of a perplexity evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerplexityReport {
    /// Model name.
    pub model: String,
    /// Quantization configuration name.
    pub scheme: String,
    /// Dataset evaluated.
    pub dataset: Dataset,
    /// Mean KL divergence between reference and quantized next-token distributions.
    pub mean_kl: f64,
    /// BF16 anchor perplexity (from the paper's baseline column).
    pub base_perplexity: f64,
    /// Proxy perplexity of the quantized model.
    pub perplexity: f64,
}

/// Evaluates one quantization configuration against the BF16 reference of the same model.
#[must_use]
pub fn evaluate_perplexity(cfg: &ModelConfig, quant: ModelQuantConfig, settings: EvalSettings) -> PerplexityReport {
    let evaluator = PerplexityEvaluator::new(cfg.clone(), settings);
    evaluator.evaluate(quant)
}

/// Caches the reference model and its logits so that sweeping many schemes over one model
/// only pays the reference forward pass once.
#[derive(Debug)]
pub struct PerplexityEvaluator {
    cfg: ModelConfig,
    settings: EvalSettings,
    tokens: Vec<usize>,
    reference_logits: Vec<Vec<f32>>,
}

impl PerplexityEvaluator {
    /// Builds the evaluator: generates the token stream and runs the reference model.
    #[must_use]
    pub fn new(cfg: ModelConfig, settings: EvalSettings) -> Self {
        let tokens = synth::synthetic_token_stream(cfg.vocab, settings.total_tokens, settings.dataset.seed());
        let reference = TransformerModel::new(cfg.clone(), ModelQuantConfig::BASELINE);
        let reference_logits = run_chunks(&reference, &tokens, settings.seq_len);
        PerplexityEvaluator { cfg, settings, tokens, reference_logits }
    }

    /// The model configuration under evaluation.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Evaluates one quantization configuration.
    #[must_use]
    pub fn evaluate(&self, quant: ModelQuantConfig) -> PerplexityReport {
        let mean_kl = if quant == ModelQuantConfig::BASELINE {
            0.0
        } else {
            let model = TransformerModel::new(self.cfg.clone(), quant);
            let logits = run_chunks(&model, &self.tokens, self.settings.seq_len);
            mean_kl(&self.reference_logits, &logits)
        };
        let base = self.settings.dataset.base_perplexity(&self.cfg);
        let perplexity = base * (self.settings.kl_gain * mean_kl).exp();
        PerplexityReport {
            model: self.cfg.name.clone(),
            scheme: quant.name(),
            dataset: self.settings.dataset,
            mean_kl,
            base_perplexity: base,
            perplexity,
        }
    }
}

/// Runs a model over a token stream in independent chunks of `seq_len`, returning the
/// next-token logits for every position (except the final position of each chunk, which
/// has no target).
fn run_chunks(model: &TransformerModel, tokens: &[usize], seq_len: usize) -> Vec<Vec<f32>> {
    let mut out = Vec::new();
    for chunk in tokens.chunks(seq_len) {
        if chunk.len() < 2 {
            continue;
        }
        let (logits, _) = model.prefill(chunk);
        for r in 0..logits.rows() - 1 {
            out.push(logits.row(r).to_vec());
        }
    }
    out
}

/// Mean KL divergence between two aligned logit sequences.
fn mean_kl(reference: &[Vec<f32>], other: &[Vec<f32>]) -> f64 {
    assert_eq!(reference.len(), other.len(), "logit sequence length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    reference.iter().zip(other).map(|(r, o)| kernels::kl_divergence_logits(r, o)).sum::<f64>() / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_formats::QuantScheme;

    fn tiny() -> ModelConfig {
        ModelConfig::tiny_test(5)
    }

    #[test]
    fn baseline_has_zero_kl_and_anchor_perplexity() {
        let report = evaluate_perplexity(&tiny(), ModelQuantConfig::BASELINE, EvalSettings::fast(Dataset::Wiki2));
        assert_eq!(report.mean_kl, 0.0);
        assert_eq!(report.perplexity, report.base_perplexity);
    }

    #[test]
    fn format_ordering_matches_figure_2_and_table_3() {
        let evaluator = PerplexityEvaluator::new(tiny(), EvalSettings::fast(Dataset::Wiki2));
        let ppl = |s: QuantScheme| evaluator.evaluate(ModelQuantConfig::uniform(s)).perplexity;
        let p4 = ppl(QuantScheme::mxfp4());
        let p4p = ppl(QuantScheme::mxfp4_plus());
        let p6 = ppl(QuantScheme::mxfp6());
        let p8 = ppl(QuantScheme::mxfp8());
        let base = evaluator.evaluate(ModelQuantConfig::BASELINE).perplexity;
        assert!(p4 > p4p, "MXFP4 {p4} must be worse than MXFP4+ {p4p}");
        assert!(p4p > p6, "MXFP4+ {p4p} must be worse than MXFP6 {p6}");
        assert!(p6 >= p8 * 0.98, "MXFP6 {p6} should not beat MXFP8 {p8} meaningfully");
        assert!(p8 >= base);
    }

    #[test]
    fn activation_quantization_hurts_more_than_weight_quantization_figure_3() {
        let evaluator = PerplexityEvaluator::new(tiny(), EvalSettings::fast(Dataset::Wiki2));
        let w_only = evaluator.evaluate(ModelQuantConfig::weights_only_mxfp4()).perplexity;
        let a_only = evaluator.evaluate(ModelQuantConfig::activations_only_mxfp4()).perplexity;
        let both = evaluator.evaluate(ModelQuantConfig::uniform(QuantScheme::mxfp4())).perplexity;
        assert!(a_only > w_only, "activation-only {a_only} must exceed weight-only {w_only}");
        assert!(both >= a_only * 0.95);
    }

    #[test]
    fn wiki2_and_c4_use_different_anchors() {
        let cfg = tiny();
        let w = evaluate_perplexity(&cfg, ModelQuantConfig::BASELINE, EvalSettings::fast(Dataset::Wiki2));
        let c = evaluate_perplexity(&cfg, ModelQuantConfig::BASELINE, EvalSettings::fast(Dataset::C4));
        assert_eq!(w.base_perplexity, cfg.base_ppl_wiki2);
        assert_eq!(c.base_perplexity, cfg.base_ppl_c4);
    }

    #[test]
    fn kl_gain_scales_degradation_monotonically() {
        let cfg = tiny();
        let mut fast = EvalSettings::fast(Dataset::Wiki2);
        let quant = ModelQuantConfig::uniform(QuantScheme::mxfp4());
        fast.kl_gain = 1.0;
        let p1 = evaluate_perplexity(&cfg, quant, fast).perplexity;
        fast.kl_gain = 4.0;
        let p4 = evaluate_perplexity(&cfg, quant, fast).perplexity;
        assert!(p4 > p1);
    }

    #[test]
    fn reports_are_deterministic() {
        let cfg = tiny();
        let quant = ModelQuantConfig::uniform(QuantScheme::mxfp4_plus());
        let a = evaluate_perplexity(&cfg, quant, EvalSettings::fast(Dataset::Wiki2));
        let b = evaluate_perplexity(&cfg, quant, EvalSettings::fast(Dataset::Wiki2));
        assert_eq!(a, b);
    }
}
