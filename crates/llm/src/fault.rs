//! Deterministic fault injection and recovery policy for the serving engine.
//!
//! A [`FaultPlan`] is a *seeded, reproducible schedule* of failures — worker panics,
//! transient page-reservation denials, slow passes — installed with
//! [`ServingEngine::with_faults`]. Faults are addressed in scheduler coordinates
//! (worker slot × per-worker job counter, or paged-admission attempt counter), so the
//! same plan against the same workload produces the same failure sequence on every run
//! and at every thread count: failure becomes a first-class, testable input instead of
//! an un-reproducible accident. When no plan is installed the entire machinery is one
//! `Option` check on the scheduler path.
//!
//! [`RecoveryPolicy`] is the companion knob set: how often the coordinator snapshots
//! retryable sequences ([`PagedKvCache::checkpoint`]), how many retry attempts a
//! sequence gets before it finishes as `FinishReason::Failed`, and how many passes of
//! backoff each retry waits.
//!
//! [`ServingEngine::with_faults`]: crate::serving::ServingEngine::with_faults
//! [`PagedKvCache::checkpoint`]: crate::paging::PagedKvCache::checkpoint

use crate::sampling::SeqRng;

/// One scheduled fault in a [`FaultPlan`], addressed in scheduler coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic worker slot `worker` (modulo the run's thread count) while it executes its
    /// `job`-th step of the run (1-based lifetime counter per worker slot).
    WorkerPanic {
        /// Targeted worker slot; reduced modulo the engine's thread count at run time.
        worker: usize,
        /// 1-based per-worker lifetime job counter at which the panic fires.
        job: u64,
    },
    /// Deny the `attempt`-th paged admission reservation of the run (0-based counter
    /// over every paged admission attempt), as if the pool were transiently exhausted.
    /// The sequence stays queued and retries on a later pass.
    ReservationDenied {
        /// 0-based paged-admission attempt counter at which the denial fires.
        attempt: u64,
    },
    /// Delay worker slot `worker`'s `job`-th step by `millis` milliseconds before it
    /// runs — a deterministic straggler for deadline and latency testing.
    SlowStep {
        /// Targeted worker slot; reduced modulo the engine's thread count at run time.
        worker: usize,
        /// 1-based per-worker lifetime job counter at which the delay fires.
        job: u64,
        /// Delay in milliseconds.
        millis: u64,
    },
}

/// A seeded, deterministic schedule of injected faults (see the [module
/// docs](crate::fault)).
///
/// Built fluently: the drawing combinators ([`FaultPlan::kill_workers`],
/// [`FaultPlan::deny_reservations`], [`FaultPlan::slow_steps`]) derive trigger
/// coordinates from the plan's SplitMix64 stream (the same generator the sampling
/// module uses), while [`FaultPlan::inject`] places one fault at exact coordinates.
/// Every fault fires at most once.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SeqRng,
    events: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty plan whose drawing combinators derive coordinates from `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { rng: SeqRng::new(seed, 0xFA17), events: Vec::new() }
    }

    /// Adds one fault at exact scheduler coordinates.
    #[must_use]
    pub fn inject(mut self, fault: FaultKind) -> Self {
        self.events.push(fault);
        self
    }

    /// Schedules `count` worker panics: the `i`-th targets worker slot `i` (so
    /// `count = num_threads` kills each worker at least once) at a drawn job counter
    /// in `1..=jobs_within`.
    #[must_use]
    pub fn kill_workers(mut self, count: usize, jobs_within: u64) -> Self {
        let span = jobs_within.max(1);
        for worker in 0..count {
            let job = 1 + self.rng.next_u64() % span;
            self.events.push(FaultKind::WorkerPanic { worker, job });
        }
        self
    }

    /// Schedules `count` transient reservation denials at drawn paged-admission
    /// attempt counters in `0..attempts_within`.
    #[must_use]
    pub fn deny_reservations(mut self, count: usize, attempts_within: u64) -> Self {
        let span = attempts_within.max(1);
        for _ in 0..count {
            let attempt = self.rng.next_u64() % span;
            self.events.push(FaultKind::ReservationDenied { attempt });
        }
        self
    }

    /// Schedules `count` slow steps of `millis` milliseconds each, at drawn worker
    /// slots in `0..workers_within` and job counters in `1..=jobs_within`.
    #[must_use]
    pub fn slow_steps(mut self, count: usize, millis: u64, workers_within: usize, jobs_within: u64) -> Self {
        let worker_span = workers_within.max(1) as u64;
        let job_span = jobs_within.max(1);
        for _ in 0..count {
            let worker = (self.rng.next_u64() % worker_span) as usize;
            let job = 1 + self.rng.next_u64() % job_span;
            self.events.push(FaultKind::SlowStep { worker, job, millis });
        }
        self
    }

    /// The scheduled faults, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultKind] {
        &self.events
    }

    /// Whether the plan schedules no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Checkpoint/retry policy for worker-panic recovery (see the [module
/// docs](crate::fault)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Snapshot every retryable paged sequence each time this many passes elapse
    /// ([`crate::paging::PagedKvCache::checkpoint`]); `0` disables checkpointing, so
    /// every retry replays the sequence from scratch (still token-identical — replay
    /// is deterministic — just more recompute).
    pub checkpoint_every: usize,
    /// Retry attempts a sequence gets after losing its worker before it finishes as
    /// `FinishReason::Failed`.
    pub max_attempts: usize,
    /// Scheduler passes a failed sequence waits before its `n`-th retry becomes
    /// admissible again (linear: `n * backoff_passes`).
    pub backoff_passes: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { checkpoint_every: 4, max_attempts: 3, backoff_passes: 1 }
    }
}

/// A fault the coordinator attaches to one dispatched job. Crate-internal: workers
/// only ever see the fault they must act out, never the plan.
#[derive(Debug, Clone, Copy)]
pub(crate) enum InjectedFault {
    /// Panic before running the step.
    Panic,
    /// Sleep this many milliseconds before running the step.
    Slow(u64),
}

/// Run-time state of an installed plan: each scheduled fault is consumed (fires once)
/// as scheduler counters reach its coordinates.
#[derive(Debug)]
pub(crate) struct FaultState {
    pending: Vec<FaultKind>,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        FaultState { pending: plan.events.clone() }
    }

    /// The fault (if any) scheduled for worker slot `worker`'s `job`-th step under a
    /// pool of `num_threads` workers. A panic trumps a slow step at the same
    /// coordinates. Consumes what it returns.
    pub(crate) fn take_step_fault(&mut self, worker: usize, job: u64, num_threads: usize) -> Option<InjectedFault> {
        let threads = num_threads.max(1);
        let matches_slot = |slot: usize| slot % threads == worker;
        let hit = self.pending.iter().position(|f| match f {
            FaultKind::WorkerPanic { worker: w, job: j } => matches_slot(*w) && *j == job,
            FaultKind::SlowStep { worker: w, job: j, .. } => matches_slot(*w) && *j == job,
            FaultKind::ReservationDenied { .. } => false,
        })?;
        match self.pending.swap_remove(hit) {
            FaultKind::WorkerPanic { .. } => Some(InjectedFault::Panic),
            FaultKind::SlowStep { millis, .. } => Some(InjectedFault::Slow(millis)),
            FaultKind::ReservationDenied { .. } => None,
        }
    }

    /// Whether the `attempt`-th paged admission reservation is scheduled to fail.
    /// Consumes the denial it returns `true` for.
    pub(crate) fn take_denial(&mut self, attempt: u64) -> bool {
        let hit =
            self.pending.iter().position(|f| matches!(f, FaultKind::ReservationDenied { attempt: a } if *a == attempt));
        match hit {
            Some(i) => {
                self.pending.swap_remove(i);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(7).kill_workers(3, 8).deny_reservations(2, 6).slow_steps(1, 5, 4, 8);
        let b = FaultPlan::seeded(7).kill_workers(3, 8).deny_reservations(2, 6).slow_steps(1, 5, 4, 8);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 6);
        let c = FaultPlan::seeded(8).kill_workers(3, 8);
        assert_ne!(a.events()[..3], c.events()[..]);
    }

    #[test]
    fn kill_workers_targets_each_slot_once() {
        let plan = FaultPlan::seeded(1).kill_workers(4, 16);
        let slots: Vec<usize> = plan
            .events()
            .iter()
            .map(|f| match f {
                FaultKind::WorkerPanic { worker, job } => {
                    assert!((1..=16).contains(job));
                    *worker
                }
                other => panic!("unexpected fault {other:?}"),
            })
            .collect();
        assert_eq!(slots, vec![0, 1, 2, 3]);
    }

    #[test]
    fn faults_fire_once_and_respect_slot_folding() {
        let plan = FaultPlan::seeded(0)
            .inject(FaultKind::WorkerPanic { worker: 5, job: 3 })
            .inject(FaultKind::ReservationDenied { attempt: 2 });
        let mut state = FaultState::new(&plan);
        // Slot 5 folds onto worker 1 of a 4-thread pool.
        assert!(state.take_step_fault(0, 3, 4).is_none());
        assert!(matches!(state.take_step_fault(1, 3, 4), Some(InjectedFault::Panic)));
        assert!(state.take_step_fault(1, 3, 4).is_none(), "a fault must fire at most once");
        assert!(!state.take_denial(1));
        assert!(state.take_denial(2));
        assert!(!state.take_denial(2), "a denial must fire at most once");
    }
}
