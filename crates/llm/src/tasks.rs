//! Task-accuracy proxy for the lm-evaluation-harness tasks of Table 2.
//!
//! The paper reports zero-shot accuracy on six tasks (ARC-easy, ARC-challenge, Lambada,
//! and three MMLU subsets). Without the real datasets and pre-trained weights, the
//! reproduction models each task item as a *logit margin* between the correct choice and
//! the strongest distractor: the BF16 model's margin distribution is anchored so that its
//! accuracy matches the paper's BF16 column, and the quantized model's accuracy follows
//! from the *measured* relative logit perturbation of the quantized forward pass.
//!
//! Accuracy is computed in closed form: if the reference margin is `N(mu, 1)` and
//! quantization adds independent noise of relative standard deviation `sigma`, the share
//! of items whose margin stays positive is `Phi(mu / sqrt(1 + sigma^2))`, mapped back to
//! the `[chance, 1]` accuracy range. This preserves exactly what the reproduction needs:
//! the monotone relation between logit perturbation and task accuracy, per model and
//! format.

use serde::{Deserialize, Serialize};

use mx_tensor::synth;

use crate::config::ModelConfig;
use crate::model::TransformerModel;
use crate::quant_config::ModelQuantConfig;

/// One of the evaluation tasks of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// ARC-easy (4 choices).
    ArcEasy,
    /// ARC-challenge (4 choices).
    ArcChallenge,
    /// Lambada word prediction (open vocabulary; chance is effectively 0).
    Lambada,
    /// MMLU college computer science (4 choices).
    CollegeCs,
    /// MMLU international law (4 choices).
    IntlLaw,
    /// MMLU jurisprudence (4 choices).
    Jurisprudence,
}

impl Task {
    /// All six tasks in the paper's column order.
    pub const ALL: [Task; 6] =
        [Task::ArcEasy, Task::ArcChallenge, Task::Lambada, Task::CollegeCs, Task::IntlLaw, Task::Jurisprudence];

    /// Chance-level accuracy of the task.
    #[must_use]
    pub fn chance(self) -> f64 {
        match self {
            Task::Lambada => 0.0,
            _ => 0.25,
        }
    }

    /// Column label used in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Task::ArcEasy => "ARC easy",
            Task::ArcChallenge => "ARC challenge",
            Task::Lambada => "Lambada",
            Task::CollegeCs => "College CS",
            Task::IntlLaw => "Int. law",
            Task::Jurisprudence => "Jurisprudence",
        }
    }

    /// How sensitive the task is to logit noise (Lambada's open-vocabulary target is much
    /// more fragile than 4-way multiple choice, which is why it collapses to 2.97% for
    /// OPT-66B under MXFP4 in Table 2).
    #[must_use]
    pub fn noise_sensitivity(self) -> f64 {
        match self {
            Task::Lambada => 2.5,
            Task::ArcChallenge => 1.2,
            _ => 1.0,
        }
    }

    /// The paper's BF16 accuracy (fraction, not percent) for a given model, used as the
    /// anchor of the proxy. Models not listed in Table 2 use Llama-2-style defaults.
    #[must_use]
    pub fn bf16_accuracy(self, model_name: &str) -> f64 {
        let row: [f64; 6] = match model_name {
            "OPT-66B" => [0.6726, 0.3976, 0.7363, 0.39, 0.2975, 0.25],
            "Llama-3.1-8B" => [0.8119, 0.5333, 0.7539, 0.54, 0.8264, 0.7315],
            "Llama-3.1-70B" => [0.8649, 0.6485, 0.7891, 0.64, 0.8926, 0.8519],
            "Mistral-7B" => [0.7832, 0.5222, 0.7526, 0.53, 0.7603, 0.7037],
            "Phi-4-14B" => [0.7290, 0.5597, 0.7250, 0.65, 0.9091, 0.8333],
            "Qwen-2.5-14B" => [0.8152, 0.6246, 0.7287, 0.71, 0.8760, 0.8704],
            _ => [0.75, 0.48, 0.72, 0.48, 0.70, 0.65],
        };
        // Every Task variant is listed in Task::ALL by construction.
        let idx = Task::ALL.iter().position(|t| *t == self).unwrap_or_default();
        debug_assert!(Task::ALL.contains(&self), "task missing from Task::ALL");
        row[idx]
    }
}

/// Accuracy of one task under one quantization configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskResult {
    /// The task.
    pub task: Task,
    /// Accuracy as a percentage (0-100), matching the paper's tables.
    pub accuracy_percent: f64,
}

/// Accuracy of all six tasks for one (model, scheme) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSuiteResult {
    /// Model name.
    pub model: String,
    /// Quantization configuration name.
    pub scheme: String,
    /// The measured relative logit perturbation that drove the proxy.
    pub relative_logit_error: f64,
    /// Per-task accuracies.
    pub tasks: Vec<TaskResult>,
}

impl TaskSuiteResult {
    /// Mean accuracy over the six tasks (the y-axis of Figure 13).
    #[must_use]
    pub fn average_accuracy(&self) -> f64 {
        self.tasks.iter().map(|t| t.accuracy_percent).sum::<f64>() / self.tasks.len() as f64
    }
}

/// Measures the relative logit perturbation of a quantized model versus the BF16 reference
/// on a short synthetic stream: `rms(logits_q - logits_ref) / std(logits_ref)`.
#[must_use]
pub fn relative_logit_error(cfg: &ModelConfig, quant: ModelQuantConfig, positions: usize) -> f64 {
    if quant == ModelQuantConfig::BASELINE {
        return 0.0;
    }
    let tokens = synth::synthetic_token_stream(cfg.vocab, positions.max(4), 0x7a5c_0001);
    let reference = TransformerModel::new(cfg.clone(), ModelQuantConfig::BASELINE);
    let quantized = TransformerModel::new(cfg.clone(), quant);
    let (lr, _) = reference.prefill(&tokens);
    let (lq, _) = quantized.prefill(&tokens);
    let diff_ms = lr.mse(&lq);
    let mean: f64 = lr.data().iter().map(|&v| f64::from(v)).sum::<f64>() / lr.data().len() as f64;
    let var: f64 = lr.data().iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / lr.data().len() as f64;
    if var == 0.0 {
        return 0.0;
    }
    (diff_ms / var).sqrt()
}

/// Evaluates the six-task suite for one model and quantization configuration.
#[must_use]
pub fn evaluate_task_suite(cfg: &ModelConfig, quant: ModelQuantConfig, positions: usize) -> TaskSuiteResult {
    let sigma = relative_logit_error(cfg, quant, positions);
    let tasks = Task::ALL
        .iter()
        .map(|&task| {
            let chance = task.chance();
            let bf16 = task.bf16_accuracy(&cfg.name);
            // Anchor: the above-chance share of items the BF16 model gets right. mu >= 0,
            // so extra noise always pushes accuracy down towards chance, never above BF16.
            let above_chance = ((bf16 - chance) / (1.0 - chance)).clamp(1e-4, 1.0 - 1e-4);
            let mu = probit(0.5 + 0.5 * above_chance);
            let eff_sigma = sigma * task.noise_sensitivity();
            let shifted = 2.0 * normal_cdf(mu / (1.0 + eff_sigma * eff_sigma).sqrt()) - 1.0;
            let acc = chance + (1.0 - chance) * shifted;
            TaskResult { task, accuracy_percent: 100.0 * acc }
        })
        .collect();
    TaskSuiteResult { model: cfg.name.clone(), scheme: quant.name(), relative_logit_error: sigma, tasks }
}

/// Standard normal cumulative distribution function.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (probit), computed by bisection on [`normal_cdf`].
#[must_use]
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit requires p in (0, 1)");
    let (mut lo, mut hi) = (-10.0_f64, 10.0_f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Error function (Abramowitz & Stegun 7.1.26 approximation, |error| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use mx_formats::QuantScheme;

    fn tiny() -> ModelConfig {
        ModelConfig::tiny_test(5)
    }

    #[test]
    fn normal_cdf_and_probit_are_inverse() {
        for &p in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = probit(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!(normal_cdf(3.0) > 0.99);
        assert!(normal_cdf(-3.0) < 0.01);
    }

    #[test]
    fn baseline_reproduces_paper_bf16_accuracies() {
        let cfg = ModelConfig::llama31_8b();
        // Do not run the forward pass for the baseline (sigma is 0 by definition).
        let result = evaluate_task_suite(&cfg, ModelQuantConfig::BASELINE, 4);
        for t in &result.tasks {
            let expected = 100.0 * t.task.bf16_accuracy("Llama-3.1-8B");
            assert!((t.accuracy_percent - expected).abs() < 0.2, "{:?}", t.task);
        }
    }

    #[test]
    fn lower_precision_lowers_accuracy() {
        let cfg = tiny();
        let bf16 = evaluate_task_suite(&cfg, ModelQuantConfig::BASELINE, 8);
        let fp4p = evaluate_task_suite(&cfg, ModelQuantConfig::uniform(QuantScheme::mxfp4_plus()), 8);
        let fp4 = evaluate_task_suite(&cfg, ModelQuantConfig::uniform(QuantScheme::mxfp4()), 8);
        assert!(bf16.average_accuracy() >= fp4p.average_accuracy());
        assert!(fp4p.average_accuracy() > fp4.average_accuracy(), "MX+ must recover accuracy over MXFP4");
    }

    #[test]
    fn accuracy_never_drops_below_chance_or_exceeds_bf16() {
        let cfg = tiny();
        let result = evaluate_task_suite(&cfg, ModelQuantConfig::uniform(QuantScheme::mxfp4()), 8);
        for t in &result.tasks {
            assert!(t.accuracy_percent >= 100.0 * t.task.chance() - 1e-9);
            assert!(t.accuracy_percent <= 100.0 * t.task.bf16_accuracy(&cfg.name) + 1e-9);
        }
    }

    #[test]
    fn relative_logit_error_is_zero_for_baseline_and_positive_for_quantized() {
        let cfg = tiny();
        assert_eq!(relative_logit_error(&cfg, ModelQuantConfig::BASELINE, 8), 0.0);
        let e = relative_logit_error(&cfg, ModelQuantConfig::uniform(QuantScheme::mxfp4()), 8);
        assert!(e > 0.0);
    }

    #[test]
    fn task_metadata() {
        assert_eq!(Task::ALL.len(), 6);
        assert_eq!(Task::Lambada.chance(), 0.0);
        assert_eq!(Task::ArcEasy.chance(), 0.25);
        assert_eq!(Task::ArcEasy.name(), "ARC easy");
        assert!(Task::Lambada.noise_sensitivity() > Task::ArcEasy.noise_sensitivity());
    }
}
