//! Model-level quantization configuration.
//!
//! Following the paper's methodology (Section 7.1), the MX and MX+ formats are applied to
//! *all tensors involved in any dot product*, including the language-modeling head and the
//! KV cache, while vector operations (normalization, softmax) stay in BF16/FP32.

use mx_formats::quantize::{MatmulQuantConfig, QuantScheme};
use serde::{Deserialize, Serialize};

/// Quantization configuration for a whole model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelQuantConfig {
    /// Scheme pair for every linear projection (attention and MLP).
    pub linear: MatmulQuantConfig,
    /// Scheme pair for the language-model head.
    pub lm_head: MatmulQuantConfig,
    /// Scheme used for the cached keys and values (and the attention dot products).
    pub kv_cache: QuantScheme,
    /// Scheme applied to the attention probability operand of the `probs x V` matmul.
    pub attention_probs: QuantScheme,
}

impl ModelQuantConfig {
    /// The BF16 baseline ("B" in the paper): BF16 matmuls, FP32 softmax.
    pub const BASELINE: ModelQuantConfig = ModelQuantConfig {
        linear: MatmulQuantConfig::BASELINE,
        lm_head: MatmulQuantConfig::BASELINE,
        kv_cache: QuantScheme::Bf16,
        attention_probs: QuantScheme::Bf16,
    };

    /// Applies one scheme to every dot-product operand (the paper's direct-cast setting
    /// for MXFP4, MXFP6, MXFP8, MXFP4+, ...).
    #[must_use]
    pub const fn uniform(scheme: QuantScheme) -> Self {
        ModelQuantConfig {
            linear: MatmulQuantConfig::uniform(scheme),
            lm_head: MatmulQuantConfig::uniform(scheme),
            kv_cache: scheme,
            attention_probs: scheme,
        }
    }

    /// Mixed configuration: `activations` for activation operands (including the KV-cache
    /// query/probability side), `weights` for weight operands and the cached K/V.
    #[must_use]
    pub const fn mixed(activations: QuantScheme, weights: QuantScheme) -> Self {
        ModelQuantConfig {
            linear: MatmulQuantConfig { activations, weights },
            lm_head: MatmulQuantConfig { activations, weights },
            kv_cache: weights,
            attention_probs: activations,
        }
    }

    /// The paper's A-MXFP4+ configuration: MXFP4+ for activations, MXFP4 for weights.
    #[must_use]
    pub const fn a_mxfp4_plus() -> Self {
        ModelQuantConfig::mixed(QuantScheme::mxfp4_plus(), QuantScheme::mxfp4())
    }

    /// Figure 3's "A-BF16, W-MXFP4": only weights quantized.
    #[must_use]
    pub const fn weights_only_mxfp4() -> Self {
        ModelQuantConfig::mixed(QuantScheme::Bf16, QuantScheme::mxfp4())
    }

    /// Figure 3's "A-MXFP4, W-BF16": only activations quantized.
    #[must_use]
    pub const fn activations_only_mxfp4() -> Self {
        ModelQuantConfig::mixed(QuantScheme::mxfp4(), QuantScheme::Bf16)
    }

    /// Excludes the language-model head from quantization (the Table 7 comparison setting,
    /// which quantizes only weight-activation matmuls shared across all schemes).
    #[must_use]
    pub const fn without_lm_head(mut self) -> Self {
        self.lm_head = MatmulQuantConfig::BASELINE;
        self
    }

    /// Display name mirroring the paper's row labels.
    #[must_use]
    pub fn name(&self) -> String {
        if self.linear == MatmulQuantConfig::BASELINE {
            "BF16".to_string()
        } else {
            self.linear.name()
        }
    }
}

impl Default for ModelQuantConfig {
    fn default() -> Self {
        ModelQuantConfig::BASELINE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_config_applies_everywhere() {
        let cfg = ModelQuantConfig::uniform(QuantScheme::mxfp4());
        assert_eq!(cfg.linear.activations, QuantScheme::mxfp4());
        assert_eq!(cfg.linear.weights, QuantScheme::mxfp4());
        assert_eq!(cfg.lm_head.weights, QuantScheme::mxfp4());
        assert_eq!(cfg.kv_cache, QuantScheme::mxfp4());
        assert_eq!(cfg.attention_probs, QuantScheme::mxfp4());
    }

    #[test]
    fn mixed_config_routes_schemes() {
        let cfg = ModelQuantConfig::a_mxfp4_plus();
        assert_eq!(cfg.linear.activations, QuantScheme::mxfp4_plus());
        assert_eq!(cfg.linear.weights, QuantScheme::mxfp4());
        assert_eq!(cfg.kv_cache, QuantScheme::mxfp4());
        assert_eq!(cfg.attention_probs, QuantScheme::mxfp4_plus());
    }

    #[test]
    fn names() {
        assert_eq!(ModelQuantConfig::BASELINE.name(), "BF16");
        assert_eq!(ModelQuantConfig::uniform(QuantScheme::mxfp4()).name(), "MXFP4");
        assert_eq!(ModelQuantConfig::a_mxfp4_plus().name(), "A-MXFP4+, W-MXFP4");
    }

    #[test]
    fn lm_head_exclusion() {
        let cfg = ModelQuantConfig::uniform(QuantScheme::mxfp4()).without_lm_head();
        assert_eq!(cfg.lm_head, MatmulQuantConfig::BASELINE);
        assert_eq!(cfg.linear.weights, QuantScheme::mxfp4());
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(ModelQuantConfig::default(), ModelQuantConfig::BASELINE);
    }
}
