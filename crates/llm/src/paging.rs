//! Paged KV-cache storage with true bit-packed MX rows, shared safely across threads.
//!
//! The serving engine's original per-sequence [`KvCache`](crate::kvcache::KvCache) stores
//! the **dequantized f32** of the quantized keys/values — it reports theoretical scheme
//! bytes while actually holding 32-bit rows. This module closes that gap with two pieces:
//!
//! * [`PagePool`] — a shared, fixed-budget allocator of pages. Each page holds
//!   [`PagePool::page_positions`] position *slots*, and each slot stores one key row and
//!   one value row **genuinely bit-packed** with [`mx_formats::RowCodec`] (4/6/8-bit
//!   element codes + shared scales for the MX/MX+ families; `f32` fallback otherwise).
//!   The pool hands out pages against *reservations*, so a scheduler can admit a sequence
//!   only when its worst-case footprint fits, and occupancy
//!   ([`PagePool::resident_bytes`]) is a **measured** number, not scheme math.
//! * [`PagedKvCache`] — one sequence's cache: a per-layer page table mapping position
//!   `t → (table[t / page_positions], t % page_positions)`. Appends quantize-and-pack
//!   straight into the slot; reads decode one row at a time into a caller-provided
//!   [`PagedScratch`] and serve it to the zero-copy attention loop through
//!   [`KvLayerReader`], so no full-cache tensor is ever materialized.
//!
//! ## Ownership model: exclusive tail pages, refcounted shared pages
//!
//! A cache's page table holds page references in one of two states:
//!
//! * **Owned** — the page buffer is exclusively held by this cache (the common case and
//!   always the state of a freshly allocated tail page), so packs and unpacks are
//!   lock-free plain memory access.
//! * **Shared** — the page has been *sealed* behind an atomically refcounted handle
//!   ([`Arc`]) so that any number of caches can read it concurrently. Sealing happens
//!   when a cache donates a prompt prefix ([`PagedKvCache::share_prefix`]); a recipient
//!   built with [`PagedKvCache::with_shared_prefix`] maps the donor's sealed pages
//!   straight into its own table, paying **zero** new pages and zero re-prefill for the
//!   shared positions. When the last reference drops, the page returns itself to the
//!   pool.
//!
//! Appending into a shared page triggers **copy-on-write**
//! (an append can only ever target the partially filled boundary page of a shared
//! prefix): if the cache is the sole remaining owner the page is reclaimed in place
//! (no copy — the donor retired), otherwise a fresh page is allocated from the cache's
//! reservation and the shared bytes are copied before the write. Either way the other
//! holders of the page never observe the mutation.
//!
//! For **preemption**, a whole cache can be swapped out of the pool into a host-side
//! [`SpilledKv`] buffer ([`PagedKvCache::spill`]) and later re-admitted with
//! [`PagedKvCache::restore`], which is bit-exact: packed slot bytes are copied verbatim
//! in both directions, so a preempted sequence resumes token-identically.
//!
//! ## Threading model
//!
//! The pool is shared as an [`Arc<PagePool>`] and is `Send + Sync`: all free-list,
//! reservation and occupancy accounting sits behind one internal [`Mutex`], which is
//! touched only when pages change hands (admission, page-boundary growth, sealing,
//! copy-on-write, retirement) — never on the per-row decode hot path. Owned page *data*
//! is handed out by moving each page's pre-allocated buffer out of the pool and into the
//! owning [`PagedKvCache`] (and back on release), so a worker thread decoding its
//! sequence packs and unpacks rows with **zero locking**; shared pages are immutable
//! behind their refcount, so concurrent readers need no locking either. The per-row
//! dequant scratch lives in a [`PagedScratch`] owned by the *worker thread* rather than
//! the cache, so a thread serving many resident sequences carries exactly one pair of
//! scratch buffers.
//!
//! Because [`mx_formats::RowCodec`] round-trips bit-for-bit with
//! `QuantScheme::quantize_dequantize` — the exact values the f32 backend stores — a
//! decode over the paged backend is **token-identical** to the f32
//! [`DecodePath::ZeroCopy`](crate::model::DecodePath) path, on any number of threads.
//! Dropping a [`PagedKvCache`] returns every page (and any unused reservation) to the
//! pool, which is what lets the continuous-batching scheduler admit queued sequences as
//! earlier ones finish.

use std::sync::{Arc, Mutex, MutexGuard};

use mx_formats::{QuantScheme, RowCodec};

use crate::kvcache::{AttnGeometry, KvBackend, KvLayerReader};
use mx_tensor::kernels;

/// Default number of position slots per page (the paged-attention block size).
pub const DEFAULT_PAGE_POSITIONS: usize = 16;

/// Errors of the paging subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingError {
    /// A reservation asked for more pages than the pool can currently provide.
    OutOfPages {
        /// Pages the reservation needed.
        needed: usize,
        /// Pages available (free and not reserved by other sequences).
        available: usize,
    },
}

impl std::fmt::Display for PagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagingError::OutOfPages { needed, available } => {
                write!(f, "page pool exhausted: needed {needed} pages, {available} available")
            }
        }
    }
}

impl std::error::Error for PagingError {}

/// One page checked out of the pool: its id plus the owned backing buffer. The buffer
/// physically moves between the pool and the owning cache, which is what makes reads and
/// writes of an allocated page lock-free (exclusive ownership, no shared arena aliasing).
#[derive(Debug)]
struct PageEntry {
    id: usize,
    buf: Box<[u8]>,
}

/// A sealed, immutable page held behind an atomic refcount. Every holder reads the same
/// buffer; when the last [`Arc<SharedPage>`] drops, the page returns itself to the pool
/// (which is why it carries its pool handle). A shared page is never written — caches
/// that need to write one first go through copy-on-write.
#[derive(Debug)]
struct SharedPage {
    pool: Arc<PagePool>,
    /// `Some` until the page is reclaimed exclusively (sole-owner copy-on-write) or
    /// returned to the pool by `Drop`.
    entry: Option<PageEntry>,
}

impl SharedPage {
    fn buf(&self) -> &[u8] {
        // Invariant: a SharedPage reachable through a page table always holds its entry.
        // The entry only leaves via sole-owner copy-on-write (which consumes the last
        // Arc, so no table can still point here) or Drop.
        match &self.entry {
            Some(entry) => &entry.buf,
            None => unreachable!("shared page already reclaimed"),
        }
    }
}

impl Drop for SharedPage {
    fn drop(&mut self) {
        if let Some(entry) = self.entry.take() {
            self.pool.state().free_page(entry);
        }
    }
}

/// One entry of a cache's page table: exclusively owned and mutable (the tail page and
/// every page of a cache that shares nothing), or sealed and refcounted-shared.
#[derive(Debug)]
enum PageRef {
    /// Exclusively owned: reads and writes are lock-free plain memory access.
    Owned(PageEntry),
    /// Sealed read-only page shared with other caches through an atomic refcount.
    Shared(Arc<SharedPage>),
}

impl PageRef {
    fn buf(&self) -> &[u8] {
        match self {
            PageRef::Owned(entry) => &entry.buf,
            PageRef::Shared(page) => page.buf(),
        }
    }

    fn is_shared(&self) -> bool {
        matches!(self, PageRef::Shared(_))
    }

    /// The pool page id this table entry is mapped to (used by the debug audits).
    fn id(&self) -> usize {
        match self {
            PageRef::Owned(entry) => entry.id,
            PageRef::Shared(page) => match &page.entry {
                Some(entry) => entry.id,
                None => unreachable!("shared page already reclaimed"),
            },
        }
    }
}

/// A donor's sealed prompt-prefix pages, cloned out of its page table by
/// [`PagedKvCache::share_prefix`] and consumed by [`PagedKvCache::with_shared_prefix`].
/// Holding this keeps every page alive (refcounted) even if the donor retires before the
/// recipient is built.
#[derive(Debug)]
pub struct SharedPrefix {
    /// Per-layer clones of the donor's sealed pages (same page count in every layer).
    pages: Vec<Vec<PageRef>>,
    /// Prefix positions the pages cover (the recipient's initial sequence length).
    positions: usize,
}

impl SharedPrefix {
    /// Prefix positions covered by the shared pages.
    #[must_use]
    pub fn positions(&self) -> usize {
        self.positions
    }

    /// Shared pages mapped per layer (full pages plus a partially filled boundary page
    /// when the prefix does not end on a page boundary).
    #[must_use]
    pub fn pages_per_layer(&self) -> usize {
        self.pages.first().map_or(0, Vec::len)
    }

    /// Total shared page mappings across all layers.
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.pages.iter().map(Vec::len).sum()
    }
}

/// A preempted cache's contents, swapped out of the page pool into plain host memory:
/// per-layer packed page buffers copied verbatim plus the appended lengths. Restoring
/// with [`PagedKvCache::restore`] copies the bytes back into freshly allocated pages, so
/// a spill/restore round trip is bit-exact. `Clone` is what makes a retained
/// [`PagedKvCache::checkpoint`] reusable across several retry attempts.
#[derive(Debug, Clone)]
pub struct SpilledKv {
    scheme: QuantScheme,
    kv_dim: usize,
    lens: Vec<usize>,
    /// `pages[layer][page]` — a verbatim copy of each page buffer at spill time.
    pages: Vec<Vec<Box<[u8]>>>,
}

impl SpilledKv {
    /// Positions the spilled cache held (same for every layer).
    #[must_use]
    pub fn positions(&self) -> usize {
        self.lens.first().copied().unwrap_or(0)
    }

    /// Host-side bytes the spill buffer occupies (page-granular, like pool residency).
    #[must_use]
    pub fn spill_bytes(&self) -> usize {
        self.pages.iter().flatten().map(|buf| buf.len()).sum()
    }
}

/// The lock-protected side of the pool: which pages are home, which are checked out,
/// and how many are promised to admitted-but-not-yet-written sequences.
#[derive(Debug)]
struct PoolState {
    /// Buffer of each page while it sits in the pool; `None` while checked out.
    buffers: Vec<Option<Box<[u8]>>>,
    /// Ids of pages currently in the pool and not promised to anyone.
    free: Vec<usize>,
    /// Pages promised to admitted sequences but not yet written.
    reserved: usize,
}

impl PoolState {
    /// Converts one reserved page into a checked-out page.
    ///
    /// Panics if nothing is reserved — allocation is only legal against a reservation,
    /// which is what makes admission decisions binding.
    fn alloc_reserved(&mut self) -> PageEntry {
        assert!(self.reserved > 0, "allocating without a reservation");
        // Invariant: `reserved <= free.len()` (reservations only come from the free
        // headroom) and every free id's buffer is home — `PagePool::audit` checks both.
        let Some(id) = self.free.pop() else { unreachable!("reserved pages must be free") };
        self.reserved -= 1;
        let Some(buf) = self.buffers[id].take() else { unreachable!("free page {id} lost its buffer") };
        PageEntry { id, buf }
    }

    /// Returns a checked-out page to the pool.
    ///
    /// Panics if the page's home slot is already occupied (double free).
    fn free_page(&mut self, entry: PageEntry) {
        assert!(self.buffers[entry.id].is_none(), "double free of page {}", entry.id);
        self.buffers[entry.id] = Some(entry.buf);
        self.free.push(entry.id);
    }
}

/// A fixed-budget allocator of KV-cache pages, shared by every sequence of a serving run.
///
/// The backing storage of every page is allocated once at construction
/// (`pages × page_bytes`), mirroring how a real serving system pre-carves an
/// accelerator's KV-cache arena. Pages move between three states: *free*, *reserved*
/// (promised to an admitted sequence but not yet written) and *in use* (checked out to a
/// cache, holding packed rows). [`PagePool::resident_bytes`] reports the in-use
/// footprint — the measured occupancy a [`ServingReport`] exposes alongside the
/// theoretical scheme bytes.
///
/// The pool is `Send + Sync` (see the [module docs](crate::paging) for the threading
/// model); every accounting method takes `&self` and locks internally.
///
/// [`ServingReport`]: crate::serving::ServingReport
#[derive(Debug)]
pub struct PagePool {
    page_positions: usize,
    slot_bytes: usize,
    pages: usize,
    state: Mutex<PoolState>,
}

impl PagePool {
    /// Creates a pool of `pages` pages, each holding `page_positions` slots of
    /// `slot_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(pages: usize, page_positions: usize, slot_bytes: usize) -> Self {
        assert!(pages > 0, "page pool must hold at least one page");
        assert!(page_positions > 0, "pages must hold at least one position");
        assert!(slot_bytes > 0, "slots must hold at least one byte");
        let page_bytes = page_positions * slot_bytes;
        PagePool {
            page_positions,
            slot_bytes,
            pages,
            state: Mutex::new(PoolState {
                buffers: (0..pages).map(|_| Some(vec![0u8; page_bytes].into_boxed_slice())).collect(),
                free: (0..pages).rev().collect(),
                reserved: 0,
            }),
        }
    }

    /// Creates a pool whose slots each hold one packed key row plus one packed value row
    /// of width `kv_dim` under `codec`.
    #[must_use]
    pub fn for_kv_rows(pages: usize, page_positions: usize, codec: RowCodec, kv_dim: usize) -> Self {
        PagePool::new(pages, page_positions, 2 * codec.packed_bytes(kv_dim))
    }

    /// Wraps the pool for sharing between the scheduler, its sequences' caches and any
    /// number of decode worker threads.
    #[must_use]
    pub fn shared(self) -> Arc<PagePool> {
        Arc::new(self)
    }

    fn state(&self) -> MutexGuard<'_, PoolState> {
        // Recover from poisoning instead of panicking: a worker that panicked mid-step
        // already propagates through the thread scope, and the Drop paths (caches,
        // shared pages) must still be able to return pages during that unwinding —
        // a second panic here would turn a diagnosable failure into an abort.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of position slots per page.
    #[must_use]
    pub fn page_positions(&self) -> usize {
        self.page_positions
    }

    /// Bytes per position slot (packed key row + packed value row).
    #[must_use]
    pub fn slot_bytes(&self) -> usize {
        self.slot_bytes
    }

    /// Bytes per page.
    #[must_use]
    pub fn page_bytes(&self) -> usize {
        self.page_positions * self.slot_bytes
    }

    /// Total pages in the pool (the global budget).
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.pages
    }

    /// Pages not currently holding data (free or merely reserved).
    #[must_use]
    pub fn free_pages(&self) -> usize {
        self.state().free.len()
    }

    /// Pages checked out to caches (holding packed rows) right now.
    #[must_use]
    pub fn in_use_pages(&self) -> usize {
        self.pages - self.state().free.len()
    }

    /// Pages promised to admitted sequences but not yet written.
    #[must_use]
    pub fn reserved_pages(&self) -> usize {
        self.state().reserved
    }

    /// Pages a new reservation could still claim.
    #[must_use]
    pub fn available_pages(&self) -> usize {
        let state = self.state();
        state.free.len() - state.reserved
    }

    /// Measured pool occupancy in bytes: in-use pages times the page size.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.in_use_pages() * self.page_bytes()
    }

    /// Fraction of the pool's pages currently holding data (`0.0 ..= 1.0`) — the ratio
    /// behind the serving engine's pass-boundary occupancy gauge.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.in_use_pages() as f64 / self.pages as f64
        }
    }

    /// Debug-build sanitizer: reconciles the pool's internal accounting — every page
    /// is either home (free) or checked out (`free + in-use == capacity`), free ids
    /// are unique and in range with their buffers home, and reservations never exceed
    /// the free headroom. Compiles to a no-op in release builds, so callers (the
    /// serving engine at pass boundaries, the churn proptests at every step) invoke it
    /// unconditionally.
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if any invariant is violated.
    pub fn audit(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        let state = self.state();
        let mut seen = vec![false; self.pages];
        for &id in &state.free {
            assert!(id < self.pages, "free list holds out-of-range page id {id}");
            assert!(!seen[id], "page {id} appears twice in the free list");
            seen[id] = true;
            assert!(state.buffers[id].is_some(), "free page {id} lost its buffer");
        }
        let home = state.buffers.iter().filter(|buf| buf.is_some()).count();
        assert_eq!(home, state.free.len(), "pages home in the pool must be exactly the free pages");
        assert!(state.reserved <= state.free.len(), "more pages reserved than free");
    }

    /// Reserves `pages` pages for a sequence being admitted. Returns `false` (reserving
    /// nothing) if fewer than `pages` are available.
    pub fn try_reserve(&self, pages: usize) -> bool {
        self.try_reserve_or_available(pages).is_ok()
    }

    /// [`PagePool::try_reserve`], reporting the available-page count observed under the
    /// same lock acquisition on failure — so an admission error can never quote a count
    /// that contradicts the denial (pages may have been freed by the time a second read
    /// would run).
    fn try_reserve_or_available(&self, pages: usize) -> Result<(), usize> {
        let mut state = self.state();
        let available = state.free.len() - state.reserved;
        if available < pages {
            return Err(available);
        }
        state.reserved += pages;
        Ok(())
    }

    /// Returns an unused reservation of `pages` pages to the available set.
    ///
    /// # Panics
    ///
    /// Panics if more pages are returned than are currently reserved.
    pub fn unreserve(&self, pages: usize) {
        let mut state = self.state();
        assert!(pages <= state.reserved, "unreserving more pages than reserved");
        state.reserved -= pages;
    }

    /// Converts one reserved page into a checked-out page (see [`PoolState::alloc_reserved`]).
    fn alloc_reserved(&self) -> PageEntry {
        self.state().alloc_reserved()
    }
}

/// Per-worker dequant scratch the paged backend's layer readers decode rows into.
///
/// Splitting the scratch out of [`PagedKvCache`] (where it used to live) is what lets a
/// decode worker thread carry **one** pair of buffers across however many resident
/// sequences it steps, instead of every cache owning its own; it is plain owned data, so
/// each worker simply constructs its own (`PagedScratch::default()`).
#[derive(Debug, Default)]
pub struct PagedScratch {
    /// Reusable dequant scratch the layer readers decode key rows into.
    key: Vec<f32>,
    /// Reusable dequant scratch the layer readers decode value rows into.
    value: Vec<f32>,
    /// Rows served through the fused packed-row fast path (decoded block-by-block in
    /// registers, never landing in `key`/`value`).
    fused_rows: usize,
    /// Rows decoded into the `key`/`value` buffers (the materializing fallback path).
    scratch_rows: usize,
}

impl PagedScratch {
    /// Rows served through the fused packed-row fast path since construction.
    #[must_use]
    pub fn fused_rows(&self) -> usize {
        self.fused_rows
    }

    /// Rows decoded into the f32 scratch buffers (the materializing path) since
    /// construction. Zero when every read went through the fused kernels.
    #[must_use]
    pub fn scratch_rows(&self) -> usize {
        self.scratch_rows
    }
}

/// One sequence's KV cache stored bit-packed in pool pages (see the [module
/// docs](crate::paging)).
///
/// Construction reserves the sequence's worst-case page count
/// (`layers × ⌈capacity_positions / page_positions⌉`) so that appends within the stated
/// capacity can never fail mid-decode; pages are physically allocated lazily as positions
/// are written and returned to the pool when the cache is dropped. The cache is
/// `Send + Sync`: it exclusively owns the buffers of its allocated pages, so decode
/// workers read and write them without touching the pool lock.
#[derive(Debug)]
pub struct PagedKvCache {
    pool: Arc<PagePool>,
    scheme: QuantScheme,
    codec: RowCodec,
    kv_dim: usize,
    row_bytes: usize,
    /// Pages still reserved for each layer but not yet allocated. Tracked per layer so
    /// one layer growing past its own share can never consume a page reserved for —
    /// and still guaranteed to — another layer's in-capacity appends.
    layer_reserved: Vec<usize>,
    /// Per-layer page tables: position `t` lives in `tables[layer][t / page_positions]`.
    tables: Vec<Vec<PageRef>>,
    /// Per-layer appended lengths (layers fill in lock-step during a forward pass).
    lens: Vec<usize>,
    /// Copy-on-write page copies performed (sole-owner in-place reclaims not counted).
    cow_copies: usize,
}

impl PagedKvCache {
    /// Pages a cache of `layers` layers and `positions` positions needs from `pool`.
    #[must_use]
    pub fn pages_needed(pool: &PagePool, layers: usize, positions: usize) -> usize {
        layers * positions.div_ceil(pool.page_positions())
    }

    /// Creates a cache for `layers` layers of width `kv_dim`, reserving pages for up to
    /// `capacity_positions` positions.
    ///
    /// # Errors
    ///
    /// Returns [`PagingError::OutOfPages`] (reserving nothing) if the pool cannot cover
    /// the worst case — the admission-control signal of the continuous-batching
    /// scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the pool's slot size does not match `kv_dim` under the scheme's codec.
    pub fn new(
        pool: &Arc<PagePool>,
        layers: usize,
        kv_dim: usize,
        scheme: QuantScheme,
        capacity_positions: usize,
    ) -> Result<Self, PagingError> {
        let codec = RowCodec::for_scheme(scheme);
        let row_bytes = codec.packed_bytes(kv_dim);
        assert_eq!(2 * row_bytes, pool.slot_bytes(), "pool slot size does not match kv_dim under this scheme");
        // Reserve exactly what `pages_needed` promises the scheduler, so the admission
        // decision and the reservation can never diverge.
        let needed = Self::pages_needed(pool, layers, capacity_positions);
        if let Err(available) = pool.try_reserve_or_available(needed) {
            return Err(PagingError::OutOfPages { needed, available });
        }
        let per_layer = capacity_positions.div_ceil(pool.page_positions());
        Ok(PagedKvCache {
            pool: Arc::clone(pool),
            scheme,
            codec,
            kv_dim,
            row_bytes,
            layer_reserved: vec![per_layer; layers],
            tables: (0..layers).map(|_| Vec::new()).collect(),
            lens: vec![0; layers],
            cow_copies: 0,
        })
    }

    /// Pages a cache of `layers` layers and `positions` positions needs when
    /// `shared_positions` of them are mapped from a donor's sealed pages: only the pages
    /// *past* the fully shared ones must be funded (the partially filled boundary page of
    /// a non-aligned prefix still counts — it is the copy-on-write target of the first
    /// divergent append).
    #[must_use]
    pub fn pages_needed_with_prefix(
        pool: &PagePool,
        layers: usize,
        positions: usize,
        shared_positions: usize,
    ) -> usize {
        let full_shared = shared_positions / pool.page_positions();
        layers * (positions.div_ceil(pool.page_positions()) - full_shared)
    }

    /// Creates a cache whose first [`SharedPrefix::positions`] positions are served from
    /// a donor's sealed pages — no re-prefill, no new pages for the fully shared part.
    /// Reserves pages only for the remainder of `capacity_positions` (including one
    /// copy-on-write page per layer for a non-aligned boundary page), so admission under
    /// prefix sharing is strictly cheaper than a cold admission.
    ///
    /// # Errors
    ///
    /// Returns [`PagingError::OutOfPages`] (reserving nothing, dropping the prefix
    /// handles) if the pool cannot cover the non-shared remainder.
    ///
    /// # Panics
    ///
    /// Panics if the prefix's layer count does not match `layers`, if the pool's slot
    /// size does not match `kv_dim` under the scheme's codec, or if the prefix does not
    /// leave room for at least one new position within `capacity_positions`.
    pub fn with_shared_prefix(
        pool: &Arc<PagePool>,
        layers: usize,
        kv_dim: usize,
        scheme: QuantScheme,
        capacity_positions: usize,
        prefix: SharedPrefix,
    ) -> Result<Self, PagingError> {
        let codec = RowCodec::for_scheme(scheme);
        let row_bytes = codec.packed_bytes(kv_dim);
        assert_eq!(2 * row_bytes, pool.slot_bytes(), "pool slot size does not match kv_dim under this scheme");
        assert_eq!(prefix.pages.len(), layers, "shared prefix layer count mismatch");
        assert!(prefix.positions < capacity_positions, "shared prefix must leave room for new positions");
        let needed = Self::pages_needed_with_prefix(pool, layers, capacity_positions, prefix.positions);
        if let Err(available) = pool.try_reserve_or_available(needed) {
            return Err(PagingError::OutOfPages { needed, available });
        }
        let per_layer = needed / layers;
        Ok(PagedKvCache {
            pool: Arc::clone(pool),
            scheme,
            codec,
            kv_dim,
            row_bytes,
            layer_reserved: vec![per_layer; layers],
            tables: prefix.pages,
            lens: vec![prefix.positions; layers],
            cow_copies: 0,
        })
    }

    /// The quantization scheme rows are packed with.
    #[must_use]
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Key/value width.
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.tables.len()
    }

    /// Sequence length currently cached (same for every layer).
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.lens.first().copied().unwrap_or(0)
    }

    /// Pages this cache has physically allocated.
    #[must_use]
    pub fn allocated_pages(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// Measured resident footprint: allocated pages times the page size (page-granular,
    /// so it includes the slack of partially filled trailing pages).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.allocated_pages() * self.pool.page_bytes()
    }

    /// Exact packed bytes of the rows written so far (no page slack).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.lens.iter().map(|len| 2 * len * self.row_bytes).sum()
    }

    /// Page-table entries currently mapped to sealed shared pages.
    #[must_use]
    pub fn shared_pages(&self) -> usize {
        self.tables.iter().flatten().filter(|p| p.is_shared()).count()
    }

    /// Page-table entries exclusively owned (allocated or reclaimed/copied by this cache).
    #[must_use]
    pub fn owned_pages(&self) -> usize {
        self.allocated_pages() - self.shared_pages()
    }

    /// Copy-on-write page *copies* this cache has performed (sole-owner in-place
    /// reclaims, which copy nothing, are not counted).
    #[must_use]
    pub fn cow_copies(&self) -> usize {
        self.cow_copies
    }

    /// Pages guaranteed to become available if this cache is released right now:
    /// exclusively owned pages plus unused reservations. Shared pages are excluded —
    /// they only return to the pool if this cache holds the last reference — so the
    /// number is a lower bound the preemption planner can rely on.
    #[must_use]
    pub fn reclaimable_pages(&self) -> usize {
        self.owned_pages() + self.layer_reserved.iter().sum::<usize>()
    }

    /// Allocates one page, funding it from this layer's reservation or — past the
    /// construction capacity — from the pool's free headroom.
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted beyond this cache's reservation (allocations
    /// within the construction capacity never hit this).
    fn alloc_page(&mut self, layer: usize) -> PageEntry {
        // A layer growing past its own reserved share must fund the page from the
        // pool's free headroom — never from another layer's reservation, so appends
        // within the construction capacity stay infallible in any layer order.
        if self.layer_reserved[layer] == 0 {
            assert!(self.pool.try_reserve(1), "page pool exhausted: cache grew past its reservation");
            self.layer_reserved[layer] += 1;
        }
        let entry = self.pool.alloc_reserved();
        self.layer_reserved[layer] -= 1;
        entry
    }

    /// Removes the page at `page_idx` from `layer`'s table in O(1), leaving the other
    /// entries displaced until the matching [`PagedKvCache::put_page`].
    fn take_page(&mut self, layer: usize, page_idx: usize) -> PageRef {
        // `swap` has already bounds-checked `page_idx`, so the table cannot be empty.
        let last = self.tables[layer].len() - 1;
        self.tables[layer].swap(page_idx, last);
        let Some(page) = self.tables[layer].pop() else { unreachable!("page index out of range") };
        page
    }

    /// Reinserts a page taken with [`PagedKvCache::take_page`] at its original index.
    fn put_page(&mut self, layer: usize, page_idx: usize, page: PageRef) {
        let last = self.tables[layer].len();
        self.tables[layer].push(page);
        self.tables[layer].swap(page_idx, last);
    }

    /// Seals `layer`'s page at `page_idx` into the refcounted shared state (idempotent)
    /// and returns a handle to it.
    fn seal_page(&mut self, layer: usize, page_idx: usize) -> Arc<SharedPage> {
        if let PageRef::Shared(arc) = &self.tables[layer][page_idx] {
            return Arc::clone(arc);
        }
        let PageRef::Owned(entry) = self.take_page(layer, page_idx) else { unreachable!("checked Owned above") };
        let arc = Arc::new(SharedPage { pool: Arc::clone(&self.pool), entry: Some(entry) });
        self.put_page(layer, page_idx, PageRef::Shared(Arc::clone(&arc)));
        arc
    }

    /// Copy-on-write: guarantees `layer`'s page at `page_idx` is exclusively owned
    /// before a write. If this cache holds the last reference the page is reclaimed in
    /// place (the donor retired — no copy); otherwise a fresh page is allocated and the
    /// shared bytes are copied, leaving every other holder's view untouched.
    fn ensure_writable(&mut self, layer: usize, page_idx: usize) {
        if !self.tables[layer][page_idx].is_shared() {
            return;
        }
        let PageRef::Shared(arc) = self.take_page(layer, page_idx) else { unreachable!("checked Shared above") };
        let entry = match Arc::try_unwrap(arc) {
            // Sole owner: take the page back exclusively; the pool accounting is
            // untouched (the page stays checked out, now to this cache alone). The
            // entry is present for the same invariant `SharedPage::buf` relies on.
            Ok(mut sole) => match sole.entry.take() {
                Some(entry) => entry,
                None => unreachable!("shared page already reclaimed"),
            },
            Err(arc) => {
                let mut entry = self.alloc_page(layer);
                entry.buf.copy_from_slice(arc.buf());
                self.cow_copies += 1;
                entry
            }
        };
        self.put_page(layer, page_idx, PageRef::Owned(entry));
    }

    /// Seals the pages covering this cache's first `positions` positions and returns
    /// refcounted handles to them, so a new sequence with the same prompt prefix can map
    /// them instead of re-prefilling. Full pages are sealed for free; a partially filled
    /// boundary page is sealed only if the pool can also fund this cache's own future
    /// copy-on-write of it (one page per still-appending layer) — otherwise the prefix
    /// is truncated to whole pages, keeping in-capacity appends infallible.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is 0 or exceeds the cached sequence length.
    pub fn share_prefix(&mut self, positions: usize) -> SharedPrefix {
        assert!(positions > 0, "cannot share an empty prefix");
        assert!(positions <= self.seq_len(), "cannot share positions that are not cached yet");
        let pp = self.pool.page_positions();
        let full = positions / pp;
        let mut positions = positions;
        let mut take = full;
        if !positions.is_multiple_of(pp) {
            // Sealing the partially filled boundary page makes this cache's own next
            // append into it a copy-on-write; reserve that headroom now (per layer that
            // will still write the page) so the write can never fail mid-decode.
            let headroom = (0..self.tables.len())
                .filter(|&l| self.lens[l] < (full + 1) * pp && !self.tables[l][full].is_shared())
                .count();
            if self.pool.try_reserve(headroom) {
                for l in 0..self.tables.len() {
                    if self.lens[l] < (full + 1) * pp && !self.tables[l][full].is_shared() {
                        self.layer_reserved[l] += 1;
                    }
                }
                take = full + 1;
            } else {
                positions = full * pp;
            }
        }
        let pages = (0..self.tables.len())
            .map(|layer| (0..take).map(|idx| PageRef::Shared(self.seal_page(layer, idx))).collect())
            .collect();
        SharedPrefix { pages, positions }
    }

    /// Copies every page's packed bytes into a host-side [`SpilledKv`] buffer *without*
    /// releasing anything — the cache keeps running exactly as before. This is the
    /// fault-tolerance checkpoint primitive: the coordinator snapshots retryable
    /// sequences every K passes, and a sequence lost to a worker panic is rebuilt
    /// bit-identically from its last snapshot with [`PagedKvCache::restore`].
    #[must_use]
    pub fn checkpoint(&self) -> SpilledKv {
        SpilledKv {
            scheme: self.scheme,
            kv_dim: self.kv_dim,
            lens: self.lens.clone(),
            pages: self
                .tables
                .iter()
                .map(|table| table.iter().map(|page| page.buf().to_vec().into_boxed_slice()).collect())
                .collect(),
        }
    }

    /// Swaps this cache out of the pool: copies every page's packed bytes into a
    /// host-side [`SpilledKv`] buffer and releases all pages and reservations — the
    /// preemption primitive. The sequence's cache can later be rebuilt bit-identically
    /// with [`PagedKvCache::restore`].
    pub fn spill(&mut self) -> SpilledKv {
        let spilled = self.checkpoint();
        self.release();
        spilled
    }

    /// Re-admits a spilled cache: reserves the full `capacity_positions` worst case
    /// (exactly like a cold admission), copies the spilled page bytes back into freshly
    /// allocated pages and restores the appended lengths. The restored cache is
    /// bit-identical to the spilled one.
    ///
    /// # Errors
    ///
    /// Returns [`PagingError::OutOfPages`] (reserving nothing) if the pool cannot cover
    /// the worst case — the re-admission waits like any other.
    ///
    /// # Panics
    ///
    /// Panics if the spill's layer count, width or scheme disagree with the arguments,
    /// or if the spilled positions exceed `capacity_positions`.
    pub fn restore(
        pool: &Arc<PagePool>,
        layers: usize,
        kv_dim: usize,
        scheme: QuantScheme,
        capacity_positions: usize,
        spilled: &SpilledKv,
    ) -> Result<Self, PagingError> {
        assert_eq!(spilled.pages.len(), layers, "spilled layer count mismatch");
        assert_eq!(spilled.kv_dim, kv_dim, "spilled width mismatch");
        assert_eq!(spilled.scheme, scheme, "spilled scheme mismatch");
        assert!(spilled.positions() <= capacity_positions, "spilled positions exceed the restore capacity");
        let mut cache = Self::new(pool, layers, kv_dim, scheme, capacity_positions)?;
        for (layer, bufs) in spilled.pages.iter().enumerate() {
            for buf in bufs {
                let mut entry = cache.alloc_page(layer);
                entry.buf.copy_from_slice(buf);
                cache.tables[layer].push(PageRef::Owned(entry));
            }
        }
        cache.lens.copy_from_slice(&spilled.lens);
        Ok(cache)
    }

    /// Appends one position's key and value rows to `layer`, quantized with the cache's
    /// scheme and packed straight into the slot. Only a page-boundary crossing (or a
    /// copy-on-write of a shared boundary page) touches the pool lock; the pack itself
    /// writes a buffer this cache exclusively owns.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not have width `kv_dim`, or if a new page is needed and the
    /// pool is exhausted beyond this cache's reservation (appends within the construction
    /// capacity never hit this).
    pub fn append(&mut self, layer: usize, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.kv_dim, "key width mismatch");
        assert_eq!(value.len(), self.kv_dim, "value width mismatch");
        let t = self.lens[layer];
        let pp = self.pool.page_positions();
        let page_idx = t / pp;
        if page_idx == self.tables[layer].len() {
            let entry = self.alloc_page(layer);
            self.tables[layer].push(PageRef::Owned(entry));
        } else {
            // Writing into a shared boundary page (a mapped prefix that ends mid-page):
            // copy-on-write first, so the donor and every other holder keep their view.
            self.ensure_writable(layer, page_idx);
        }
        let slot_bytes = 2 * self.row_bytes;
        let PageRef::Owned(entry) = &mut self.tables[layer][page_idx] else {
            unreachable!("append target page must be exclusively owned after ensure_writable")
        };
        let slot = &mut entry.buf[(t % pp) * slot_bytes..(t % pp + 1) * slot_bytes];
        let (key_slot, value_slot) = slot.split_at_mut(self.row_bytes);
        self.codec.pack_row_into(key, key_slot);
        self.codec.pack_row_into(value, value_slot);
        self.lens[layer] = t + 1;
    }

    /// Returns every owned page, every shared-page reference and any unused reservation
    /// to the pool, emptying the cache. Also invoked by `Drop`, which is how a retiring
    /// sequence funds the admission of queued ones. Owned pages and reservations are
    /// returned under one pool-lock acquisition; shared pages only return to the pool if
    /// this cache held the last reference (each such final drop re-locks briefly).
    pub fn release(&mut self) {
        let mut shared: Vec<Arc<SharedPage>> = Vec::new();
        {
            let mut state = self.pool.state();
            for table in &mut self.tables {
                for page in table.drain(..) {
                    match page {
                        PageRef::Owned(entry) => state.free_page(entry),
                        // Defer: SharedPage::drop takes the pool lock itself.
                        PageRef::Shared(arc) => shared.push(arc),
                    }
                }
            }
            let leftover: usize = self.layer_reserved.iter().sum();
            assert!(leftover <= state.reserved, "unreserving more pages than reserved");
            state.reserved -= leftover;
        }
        drop(shared);
        self.layer_reserved.fill(0);
        self.lens.fill(0);
    }
}

impl Drop for PagedKvCache {
    fn drop(&mut self) {
        self.release();
    }
}

/// Debug-build sanitizer over the pool *and* every live cache. Beyond
/// [`PagePool::audit`], reconciles the caches' page tables against the pool's
/// accounting: each table is sized exactly for its appended rows, no page is
/// exclusively owned by two tables (or mapped both exclusively and shared), every
/// shared mapping still holds its buffer, and the distinct pages reachable from the
/// caches account for **every** checked-out page — no leak, no double free.
///
/// `caches` must enumerate every holder of the pool's pages, and the pool must be
/// quiescent for the duration of the call (the serving engine audits between scheduler
/// passes, the churn proptest after every operation). Compiles to a no-op in release.
///
/// # Panics
///
/// Panics (debug builds only) if any invariant is violated.
pub fn audit_caches<'a, I>(pool: &PagePool, caches: I)
where
    I: IntoIterator<Item = &'a PagedKvCache>,
{
    if !cfg!(debug_assertions) {
        return;
    }
    pool.audit();
    let mut owned = std::collections::HashSet::new();
    let mut shared = std::collections::HashSet::new();
    for cache in caches {
        let pp = pool.page_positions();
        for (layer, table) in cache.tables.iter().enumerate() {
            assert_eq!(
                table.len(),
                cache.lens[layer].div_ceil(pp),
                "layer {layer} page table size disagrees with its appended length"
            );
            for page in table {
                match page {
                    PageRef::Owned(entry) => {
                        assert!(owned.insert(entry.id), "page {} exclusively owned by two tables", entry.id);
                    }
                    PageRef::Shared(_) => {
                        shared.insert(page.id());
                    }
                }
            }
        }
    }
    for id in &shared {
        assert!(!owned.contains(id), "page {id} is mapped both exclusively and shared");
    }
    assert_eq!(
        owned.len() + shared.len(),
        pool.in_use_pages(),
        "checked-out pages not accounted for by any live cache (leak or double free)"
    );
}

/// Per-layer row reader of a [`PagedKvCache`]: resolves positions through the page table
/// and decodes the packed slot into the worker's [`PagedScratch`] buffers. Never touches
/// the pool lock — the pages it reads are exclusively owned by the cache it borrows.
#[derive(Debug)]
pub struct PagedLayerReader<'a> {
    table: &'a [PageRef],
    codec: RowCodec,
    kv_dim: usize,
    row_bytes: usize,
    page_positions: usize,
    len: usize,
    scratch: &'a mut PagedScratch,
}

/// The packed bytes of position `t`'s slot within its page table (free function so the
/// reader can borrow its scratch buffers mutably alongside the table). Works identically
/// on owned and shared pages — reads never care who else holds the page.
fn packed_slot(table: &[PageRef], page_positions: usize, row_bytes: usize, len: usize, t: usize) -> &[u8] {
    assert!(t < len, "position out of bounds");
    let slot_bytes = 2 * row_bytes;
    let start = (t % page_positions) * slot_bytes;
    &table[t / page_positions].buf()[start..start + slot_bytes]
}

impl KvLayerReader for PagedLayerReader<'_> {
    fn key_row(&mut self, t: usize) -> &[f32] {
        // Decode through the scratch buffer: one row lives at a time, nothing larger than
        // kv_dim is ever materialized.
        let slot = packed_slot(self.table, self.page_positions, self.row_bytes, self.len, t);
        self.codec.unpack_row_into(&slot[..self.row_bytes], &mut self.scratch.key);
        self.scratch.scratch_rows += 1;
        &self.scratch.key
    }

    fn value_row(&mut self, t: usize) -> &[f32] {
        let slot = packed_slot(self.table, self.page_positions, self.row_bytes, self.len, t);
        self.codec.unpack_row_into(&slot[self.row_bytes..], &mut self.scratch.value);
        self.scratch.scratch_rows += 1;
        &self.scratch.value
    }

    fn fused_key_dots(&mut self, t: usize, q: &[f32], geom: AttnGeometry, dots: &mut [f32]) -> bool {
        let slot = packed_slot(self.table, self.page_positions, self.row_bytes, self.len, t);
        dots.fill(0.0);
        let fused = self.codec.walk_row_blocks(&slot[..self.row_bytes], self.kv_dim, |start, vals| {
            scatter_key_dots(q, geom, start, vals, dots);
        });
        if fused {
            self.scratch.fused_rows += 1;
        }
        fused
    }

    fn fused_value_accumulate(&mut self, t: usize, probs: &[f32], geom: AttnGeometry, out: &mut [f32]) -> bool {
        let slot = packed_slot(self.table, self.page_positions, self.row_bytes, self.len, t);
        let fused = self.codec.walk_row_blocks(&slot[self.row_bytes..], self.kv_dim, |start, vals| {
            scatter_value_accumulate(probs, geom, start, vals, out);
        });
        if fused {
            self.scratch.fused_rows += 1;
        }
        fused
    }
}

/// Folds one dequantized key-row block into the per-head dot accumulators.
///
/// Bit-exactness contract: blocks arrive in ascending element order and each run covers
/// ascending `d` within its head, so every `dots[h]` sees exactly the term sequence the
/// materializing loop's `zip(...).map(...).sum()` produces — same products, same order.
fn scatter_key_dots(q: &[f32], geom: AttnGeometry, start: usize, vals: &[f32], dots: &mut [f32]) {
    let mut j = 0usize;
    while j < vals.len() {
        let i = start + j;
        let kv_head = i / geom.head_dim;
        let d0 = i % geom.head_dim;
        let run = (geom.head_dim - d0).min(vals.len() - j);
        let block = &vals[j..j + run];
        for g in 0..geom.group {
            let h = kv_head * geom.group + g;
            if h >= dots.len() {
                break;
            }
            let qs = h * geom.head_dim + d0;
            kernels::dot_acc_seq(&mut dots[h], &q[qs..qs + run], block);
        }
        j += run;
    }
}

/// Adds one dequantized value-row block, weighted by the per-head probabilities, into the
/// output row. Heads with probability exactly `0.0` are skipped, mirroring the
/// materializing loop's sparse-softmax skip; element updates are independent, so only
/// the per-position ordering (which the caller preserves) affects the bits.
fn scatter_value_accumulate(probs: &[f32], geom: AttnGeometry, start: usize, vals: &[f32], out: &mut [f32]) {
    let mut j = 0usize;
    while j < vals.len() {
        let i = start + j;
        let kv_head = i / geom.head_dim;
        let d0 = i % geom.head_dim;
        let run = (geom.head_dim - d0).min(vals.len() - j);
        let block = &vals[j..j + run];
        for g in 0..geom.group {
            let h = kv_head * geom.group + g;
            if h >= probs.len() {
                break;
            }
            let p = probs[h];
            if p == 0.0 {
                continue;
            }
            let os = h * geom.head_dim + d0;
            kernels::axpy_seq(&mut out[os..os + run], p, block);
        }
        j += run;
    }
}

impl KvBackend for PagedKvCache {
    type Layer<'a> = PagedLayerReader<'a>;
    type Scratch = PagedScratch;

    fn num_layers(&self) -> usize {
        PagedKvCache::num_layers(self)
    }

    fn seq_len(&self) -> usize {
        PagedKvCache::seq_len(self)
    }

    fn append(&mut self, layer: usize, key: &[f32], value: &[f32], scheme: QuantScheme) {
        assert_eq!(scheme, self.scheme, "append scheme does not match the packed storage scheme");
        PagedKvCache::append(self, layer, key, value);
    }

    fn layer_reader<'a>(&'a mut self, layer: usize, scratch: &'a mut PagedScratch) -> PagedLayerReader<'a> {
        scratch.key.resize(self.kv_dim, 0.0);
        scratch.value.resize(self.kv_dim, 0.0);
        PagedLayerReader {
            table: &self.tables[layer],
            codec: self.codec,
            kv_dim: self.kv_dim,
            row_bytes: self.row_bytes,
            page_positions: self.pool.page_positions(),
            len: self.lens[layer],
            scratch,
        }
    }

    fn materializations(&self) -> usize {
        // No full-cache accessor exists on this backend; reads are per-row by design.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvcache::LayerKvCache;

    fn sample_row(kv_dim: usize, salt: usize) -> Vec<f32> {
        (0..kv_dim)
            .map(|i| {
                let u = (((i + salt) * 2_654_435_761) % 2001) as f32 / 1000.0 - 1.0;
                if (i + salt) % 37 == 5 {
                    u * 30.0
                } else {
                    u
                }
            })
            .collect()
    }

    fn pool_64(scheme: QuantScheme) -> Arc<PagePool> {
        PagePool::for_kv_rows(16, 4, RowCodec::for_scheme(scheme), 64).shared()
    }

    fn read_layer(cache: &mut PagedKvCache, layer: usize, t: usize) -> (Vec<f32>, Vec<f32>) {
        let mut scratch = PagedScratch::default();
        let mut reader = cache.layer_reader(layer, &mut scratch);
        (reader.key_row(t).to_vec(), reader.value_row(t).to_vec())
    }

    /// The sanitizers must hold through a full share → copy-on-write → spill → restore
    /// lifecycle (they run after every churn-proptest step too; this pins the happy
    /// path deterministically).
    #[test]
    fn audit_passes_through_share_cow_spill_lifecycle() {
        let scheme = QuantScheme::mxfp4();
        let pool = pool_64(scheme);
        audit_caches(&pool, std::iter::empty());
        let mut donor = PagedKvCache::new(&pool, 2, 64, scheme, 8).unwrap();
        for t in 0..6 {
            for layer in 0..2 {
                donor.append(layer, &sample_row(64, t), &sample_row(64, t + 100));
            }
        }
        audit_caches(&pool, [&donor]);
        let prefix = donor.share_prefix(6);
        let mut recipient = PagedKvCache::with_shared_prefix(&pool, 2, 64, scheme, 8, prefix).unwrap();
        audit_caches(&pool, [&donor, &recipient]);
        // Diverge: the recipient's append into the shared boundary page copy-on-writes.
        for layer in 0..2 {
            recipient.append(layer, &sample_row(64, 42), &sample_row(64, 142));
        }
        audit_caches(&pool, [&donor, &recipient]);
        let spilled = donor.spill();
        audit_caches(&pool, [&donor, &recipient]);
        let restored = PagedKvCache::restore(&pool, 2, 64, scheme, 8, &spilled).unwrap();
        audit_caches(&pool, [&donor, &restored, &recipient]);
        drop(restored);
        drop(recipient);
        audit_caches(&pool, [&donor]);
        pool.audit();
    }

    /// A page checked out but reachable from no cache is a leak; the cache-level
    /// sanitizer must catch it. (Debug builds only: the audit is a release no-op.)
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "not accounted for by any live cache")]
    fn audit_catches_leaked_pages() {
        let pool = pool_64(QuantScheme::mxfp4());
        assert!(pool.try_reserve(1));
        let entry = pool.alloc_reserved();
        audit_caches(&pool, std::iter::empty());
        drop(entry);
    }

    #[test]
    fn pool_accounting_starts_empty() {
        let pool = PagePool::for_kv_rows(8, 16, RowCodec::for_scheme(QuantScheme::mxfp4()), 64);
        assert_eq!(pool.total_pages(), 8);
        assert_eq!(pool.free_pages(), 8);
        assert_eq!(pool.available_pages(), 8);
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.resident_bytes(), 0);
        // MXFP4 row of 64 elements packs to 34 bytes; a slot holds K + V.
        assert_eq!(pool.slot_bytes(), 68);
        assert_eq!(pool.page_bytes(), 16 * 68);
    }

    #[test]
    fn reservation_gates_admission() {
        let pool = pool_64(QuantScheme::mxfp4());
        // 16 pages of 4 positions, 2 layers: a 20-position cache needs 2 * 5 = 10 pages.
        let a = PagedKvCache::new(&pool, 2, 64, QuantScheme::mxfp4(), 20).unwrap();
        assert_eq!(pool.reserved_pages(), 10);
        assert_eq!(pool.available_pages(), 6);
        // A second identical cache cannot be admitted...
        let denied = PagedKvCache::new(&pool, 2, 64, QuantScheme::mxfp4(), 20);
        assert_eq!(denied.err(), Some(PagingError::OutOfPages { needed: 10, available: 6 }));
        // ...and the failed attempt reserved nothing.
        assert_eq!(pool.reserved_pages(), 10);
        drop(a);
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.available_pages(), 16);
    }

    #[test]
    fn appends_allocate_lazily_and_reads_round_trip() {
        let scheme = QuantScheme::mxfp4_plus();
        let pool = pool_64(scheme);
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 8).unwrap();
        assert_eq!(cache.allocated_pages(), 0);
        for t in 0..8 {
            for layer in 0..2 {
                cache.append(layer, &sample_row(64, t), &sample_row(64, t + 100));
            }
        }
        assert_eq!(cache.seq_len(), 8);
        // 8 positions at 4 per page: 2 pages per layer, all of the reservation used.
        assert_eq!(cache.allocated_pages(), 4);
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.resident_bytes(), cache.resident_bytes());
        // Reads decode to exactly the scheme's fake quantization (what the f32 cache
        // would have stored).
        for t in 0..8 {
            let (k, v) = read_layer(&mut cache, 1, t);
            assert_eq!(k, scheme.quantize_dequantize(&sample_row(64, t)));
            assert_eq!(v, scheme.quantize_dequantize(&sample_row(64, t + 100)));
        }
    }

    #[test]
    fn paged_rows_match_the_f32_backend_bit_for_bit() {
        let scheme = QuantScheme::mxfp4();
        let pool = pool_64(scheme);
        let mut paged = PagedKvCache::new(&pool, 1, 64, scheme, 6).unwrap();
        let mut f32cache = LayerKvCache::new(64);
        for t in 0..6 {
            let (k, v) = (sample_row(64, t * 3), sample_row(64, t * 7 + 1));
            paged.append(0, &k, &v);
            f32cache.append(&k, &v, scheme);
        }
        for t in 0..6 {
            let (k, v) = read_layer(&mut paged, 0, t);
            assert_eq!(k, f32cache.key_row(t), "key row {t}");
            assert_eq!(v, f32cache.value_row(t), "value row {t}");
        }
    }

    #[test]
    fn packed_resident_bytes_undercut_f32_by_the_scheme_ratio() {
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(64, 16, RowCodec::for_scheme(scheme), 64).shared();
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 64).unwrap();
        for t in 0..64 {
            for layer in 0..2 {
                cache.append(layer, &sample_row(64, t), &sample_row(64, t + 9));
            }
        }
        // f32 storage of the same rows: 2 layers * 64 positions * 2 rows * 64 * 4 bytes.
        let f32_bytes = 2 * 64 * 2 * 64 * 4;
        assert!(
            cache.resident_bytes() * 4 <= f32_bytes,
            "packed pages must be >=4x below f32: {} vs {f32_bytes}",
            cache.resident_bytes()
        );
        assert_eq!(cache.packed_bytes(), 2 * 64 * 2 * 34);
    }

    #[test]
    fn release_returns_everything_and_is_idempotent() {
        let pool = pool_64(QuantScheme::mxfp4());
        let mut cache = PagedKvCache::new(&pool, 2, 64, QuantScheme::mxfp4(), 10).unwrap();
        for layer in 0..2 {
            cache.append(layer, &[0.5; 64], &[0.25; 64]);
        }
        assert!(pool.in_use_pages() > 0);
        cache.release();
        assert_eq!(cache.seq_len(), 0);
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.reserved_pages(), 0);
        cache.release(); // nothing left to free, nothing to double-free
        drop(cache); // Drop after release is also a no-op
        assert_eq!(pool.free_pages(), 16);
    }

    #[test]
    fn admit_evict_churn_never_leaks_or_double_frees() {
        // Deterministic admit/evict churn: a few live caches of pseudo-random sizes are
        // created and dropped out of order against a small pool; the page accounting must
        // balance after every step and drain to empty at the end.
        let scheme = QuantScheme::mxfp4_plus();
        let pool = PagePool::for_kv_rows(24, 4, RowCodec::for_scheme(scheme), 64).shared();
        let mut live: Vec<PagedKvCache> = Vec::new();
        let mut admitted = 0usize;
        for step in 0..200usize {
            let positions = 1 + (step * 2_654_435_761) % 12;
            match PagedKvCache::new(&pool, 2, 64, scheme, positions) {
                Ok(mut cache) => {
                    let fill = positions - (step % 2); // sometimes underfill the reservation
                    for t in 0..fill {
                        for layer in 0..2 {
                            cache.append(layer, &sample_row(64, t + step), &sample_row(64, t + step + 7));
                        }
                    }
                    live.push(cache);
                    admitted += 1;
                }
                Err(PagingError::OutOfPages { .. }) => {
                    // Evict the oldest live cache and retry once; its pages must fund us.
                    assert!(!live.is_empty(), "empty pool denied a reservation");
                    live.remove(0);
                }
            }
            if step % 7 == 3 && !live.is_empty() {
                live.remove(live.len() / 2);
            }
            let held: usize = live.iter().map(PagedKvCache::allocated_pages).sum();
            assert_eq!(pool.in_use_pages(), held, "step {step}: pages in use must equal pages held by live caches");
            assert!(pool.free_pages() + held == pool.total_pages(), "step {step}: leak detected");
        }
        assert!(admitted > 50, "churn must actually admit sequences");
        live.clear();
        assert_eq!(pool.free_pages(), pool.total_pages());
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn concurrent_churn_from_many_threads_balances_the_accounting() {
        // The same leak/double-free invariant under real contention: 4 threads hammer one
        // shared pool with admit/fill/drop churn. Ownership moves page buffers across
        // threads; the lock only guards the free list. The pool must drain to empty.
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(32, 4, RowCodec::for_scheme(scheme), 64).shared();
        std::thread::scope(|s| {
            for worker in 0..4usize {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for step in 0..100usize {
                        let positions = 1 + (step * 7 + worker * 13) % 8;
                        if let Ok(mut cache) = PagedKvCache::new(&pool, 2, 64, scheme, positions) {
                            for t in 0..positions {
                                for layer in 0..2 {
                                    cache.append(layer, &sample_row(64, t + step), &sample_row(64, t + worker));
                                }
                            }
                            // Reads see exactly this cache's rows despite neighbours churning.
                            let (k, _) = {
                                let mut scratch = PagedScratch::default();
                                let mut reader = cache.layer_reader(1, &mut scratch);
                                (reader.key_row(positions - 1).to_vec(), ())
                            };
                            assert_eq!(k, scheme.quantize_dequantize(&sample_row(64, positions - 1 + step)));
                        }
                    }
                });
            }
        });
        assert_eq!(pool.free_pages(), pool.total_pages());
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn pool_rejects_double_free() {
        let pool = PagePool::new(2, 4, 8);
        assert!(pool.try_reserve(1));
        let entry = pool.alloc_reserved();
        // Forge a second entry for the same page id: ownership makes an accidental double
        // free impossible from safe client code, so the accounting check is exercised
        // directly.
        let forged = PageEntry { id: entry.id, buf: vec![0u8; pool.page_bytes()].into_boxed_slice() };
        let mut state = pool.state();
        state.free_page(entry);
        state.free_page(forged);
    }

    #[test]
    #[should_panic(expected = "allocating without a reservation")]
    fn pool_rejects_unreserved_allocation() {
        let pool = PagePool::new(2, 4, 8);
        let _ = pool.alloc_reserved();
    }

    #[test]
    #[should_panic(expected = "cache grew past its reservation")]
    fn growth_cannot_steal_another_layers_reservation() {
        // 2-page pool, fully reserved as one page per layer (capacity 4 at 4 positions
        // per page). Layer 0 growing to a 5th position must fail *at the growth append*:
        // funding it from layer 1's reserved page would instead move the panic onto
        // layer 1's first in-capacity append, breaking the documented guarantee.
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(2, 4, RowCodec::for_scheme(scheme), 64).shared();
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 4).unwrap();
        for t in 0..4 {
            cache.append(0, &sample_row(64, t), &sample_row(64, t));
        }
        cache.append(0, &sample_row(64, 4), &sample_row(64, 4));
    }

    #[test]
    fn uneven_layer_append_order_within_capacity_never_panics() {
        // The in-capacity guarantee must hold in any append order: fill layer 0 to its
        // full capacity before layer 1 sees a single row, against a pool with zero
        // spare pages beyond the reservation.
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(4, 4, RowCodec::for_scheme(scheme), 64).shared();
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 8).unwrap();
        assert_eq!(pool.available_pages(), 0);
        for t in 0..8 {
            cache.append(0, &sample_row(64, t), &sample_row(64, t));
        }
        for t in 0..8 {
            cache.append(1, &sample_row(64, t), &sample_row(64, t));
        }
        assert_eq!(cache.allocated_pages(), 4);
        drop(cache);
        assert_eq!(pool.free_pages(), 4);
    }

    #[test]
    fn shared_prefix_maps_pages_without_new_allocations() {
        let scheme = QuantScheme::mxfp4();
        let pool = pool_64(scheme); // 16 pages of 4 positions
        let mut donor = PagedKvCache::new(&pool, 2, 64, scheme, 8).unwrap();
        for t in 0..8 {
            for layer in 0..2 {
                donor.append(layer, &sample_row(64, t), &sample_row(64, t + 50));
            }
        }
        assert_eq!(pool.in_use_pages(), 4);
        // Page-aligned prefix: 8 positions = 2 full pages per layer, no headroom needed.
        let prefix = donor.share_prefix(8);
        assert_eq!(prefix.positions(), 8);
        assert_eq!(prefix.pages_per_layer(), 2);
        assert_eq!(prefix.total_pages(), 4);
        assert_eq!(pool.reserved_pages(), 0, "aligned sealing reserves nothing");
        // The recipient maps the 4 shared pages and reserves only its remainder:
        // 2 layers * (ceil(12/4) - 2) = 2 pages.
        let mut recipient = PagedKvCache::with_shared_prefix(&pool, 2, 64, scheme, 12, prefix).unwrap();
        assert_eq!(pool.reserved_pages(), 2);
        assert_eq!(pool.in_use_pages(), 4, "sharing allocates no new pages");
        assert_eq!(recipient.seq_len(), 8);
        assert_eq!(recipient.shared_pages(), 4);
        assert_eq!(recipient.owned_pages(), 0);
        // Shared reads decode the donor's rows bit for bit.
        for t in 0..8 {
            let (k, v) = read_layer(&mut recipient, 1, t);
            assert_eq!(k, scheme.quantize_dequantize(&sample_row(64, t)));
            assert_eq!(v, scheme.quantize_dequantize(&sample_row(64, t + 50)));
        }
        // Divergent appends land in fresh exclusive pages past the shared prefix.
        for t in 8..12 {
            for layer in 0..2 {
                recipient.append(layer, &sample_row(64, t + 900), &sample_row(64, t + 950));
            }
        }
        assert_eq!(recipient.cow_copies(), 0, "aligned prefixes never copy-on-write");
        assert_eq!(pool.in_use_pages(), 6);
        drop(recipient);
        assert_eq!(pool.in_use_pages(), 4, "shared pages stay resident for the donor");
        drop(donor);
        assert_eq!(pool.free_pages(), 16);
        assert_eq!(pool.reserved_pages(), 0);
    }

    #[test]
    fn copy_on_write_preserves_every_holders_view() {
        let scheme = QuantScheme::mxfp4();
        let pool = pool_64(scheme);
        let mut donor = PagedKvCache::new(&pool, 1, 64, scheme, 8).unwrap();
        for t in 0..6 {
            donor.append(0, &sample_row(64, t), &sample_row(64, t + 50));
        }
        // Non-aligned prefix: 1 full page + the partial boundary page (positions 4, 5),
        // sealing which books one COW-headroom page for the still-appending donor.
        let prefix = donor.share_prefix(6);
        assert_eq!(prefix.positions(), 6);
        assert_eq!(prefix.pages_per_layer(), 2);
        assert_eq!(pool.reserved_pages(), 1, "donor books COW headroom for its sealed boundary page");
        let mut recipient = PagedKvCache::with_shared_prefix(&pool, 1, 64, scheme, 10, prefix).unwrap();
        assert_eq!(pool.in_use_pages(), 2);
        // The recipient's first divergent append writes into the shared boundary page:
        // copy-on-write (the donor still holds it).
        recipient.append(0, &sample_row(64, 700), &sample_row(64, 701));
        assert_eq!(recipient.cow_copies(), 1);
        assert_eq!(pool.in_use_pages(), 3);
        // The donor's view of positions 4..6 is untouched by the recipient's write...
        for t in 4..6 {
            let (k, _) = read_layer(&mut donor, 0, t);
            assert_eq!(k, scheme.quantize_dequantize(&sample_row(64, t)), "donor position {t} corrupted");
        }
        // ...and the donor's own next append also copy-on-writes (the recipient's copy
        // dropped the shared handle, so the donor reclaims the page in place, no copy).
        donor.append(0, &sample_row(64, 800), &sample_row(64, 801));
        assert_eq!(donor.cow_copies(), 0, "sole owner reclaims in place without copying");
        assert_eq!(pool.in_use_pages(), 3);
        // Both caches see their own divergent position 6 and the common prefix.
        let (dk, _) = read_layer(&mut donor, 0, 6);
        assert_eq!(dk, scheme.quantize_dequantize(&sample_row(64, 800)));
        let (rk, _) = read_layer(&mut recipient, 0, 6);
        assert_eq!(rk, scheme.quantize_dequantize(&sample_row(64, 700)));
        for t in 0..6 {
            assert_eq!(read_layer(&mut donor, 0, t), read_layer(&mut recipient, 0, t), "prefix position {t}");
        }
        drop(donor);
        drop(recipient);
        assert_eq!(pool.free_pages(), 16);
        assert_eq!(pool.reserved_pages(), 0);
    }

    #[test]
    fn shared_pages_outlive_a_retired_donor() {
        let scheme = QuantScheme::mxfp4_plus();
        let pool = pool_64(scheme);
        let mut donor = PagedKvCache::new(&pool, 2, 64, scheme, 4).unwrap();
        for t in 0..4 {
            for layer in 0..2 {
                donor.append(layer, &sample_row(64, t), &sample_row(64, t + 9));
            }
        }
        let prefix = donor.share_prefix(4);
        let mut recipient = PagedKvCache::with_shared_prefix(&pool, 2, 64, scheme, 8, prefix).unwrap();
        drop(donor); // retire the donor: the refcount keeps the shared pages resident
        assert_eq!(pool.in_use_pages(), 2);
        for t in 0..4 {
            let (k, _) = read_layer(&mut recipient, 0, t);
            assert_eq!(k, scheme.quantize_dequantize(&sample_row(64, t)), "shared page freed under a live reader");
        }
        drop(recipient);
        assert_eq!(pool.free_pages(), 16);
        assert_eq!(pool.reserved_pages(), 0);
    }

    #[test]
    fn share_prefix_truncates_to_full_pages_when_headroom_is_unavailable() {
        let scheme = QuantScheme::mxfp4();
        // 2-page pool, fully used by the donor: sealing the partial boundary page would
        // need COW headroom the pool cannot fund, so the prefix truncates to whole pages.
        let pool = PagePool::for_kv_rows(2, 4, RowCodec::for_scheme(scheme), 64).shared();
        let mut donor = PagedKvCache::new(&pool, 1, 64, scheme, 8).unwrap();
        for t in 0..6 {
            donor.append(0, &sample_row(64, t), &sample_row(64, t));
        }
        assert_eq!(pool.available_pages(), 0);
        let prefix = donor.share_prefix(6);
        assert_eq!(prefix.positions(), 4, "partial page must be dropped without headroom");
        assert_eq!(prefix.pages_per_layer(), 1);
        assert_eq!(pool.reserved_pages(), 0);
    }

    #[test]
    fn spill_restore_round_trips_bit_exact() {
        let scheme = QuantScheme::mxfp4();
        let pool = pool_64(scheme);
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 10).unwrap();
        for t in 0..7 {
            for layer in 0..2 {
                cache.append(layer, &sample_row(64, t), &sample_row(64, t + 31));
            }
        }
        let before: Vec<_> = (0..7).map(|t| read_layer(&mut cache, 1, t)).collect();
        let in_use_before = pool.in_use_pages();
        let spilled = cache.spill();
        assert_eq!(cache.seq_len(), 0);
        assert_eq!(pool.in_use_pages(), 0, "spilling must return every page");
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(spilled.positions(), 7);
        assert_eq!(spilled.spill_bytes(), in_use_before * pool.page_bytes());
        let mut restored = PagedKvCache::restore(&pool, 2, 64, scheme, 10, &spilled).unwrap();
        assert_eq!(restored.seq_len(), 7);
        assert_eq!(pool.in_use_pages(), in_use_before);
        for (t, expected) in before.iter().enumerate() {
            assert_eq!(&read_layer(&mut restored, 1, t), expected, "restored position {t} diverges");
        }
        // The restored cache keeps the original in-capacity append guarantee.
        for t in 7..10 {
            for layer in 0..2 {
                restored.append(layer, &sample_row(64, t), &sample_row(64, t));
            }
        }
        drop(restored);
        assert_eq!(pool.free_pages(), 16);
    }

    #[test]
    fn spilled_donor_leaves_shared_pages_with_the_recipient() {
        let scheme = QuantScheme::mxfp4();
        let pool = pool_64(scheme);
        let mut donor = PagedKvCache::new(&pool, 1, 64, scheme, 4).unwrap();
        for t in 0..4 {
            donor.append(0, &sample_row(64, t), &sample_row(64, t + 5));
        }
        let prefix = donor.share_prefix(4);
        let mut recipient = PagedKvCache::with_shared_prefix(&pool, 1, 64, scheme, 8, prefix).unwrap();
        // Preempting the donor spills a byte copy and drops its refs; the recipient's
        // refcount keeps the page resident.
        let spilled = donor.spill();
        assert_eq!(pool.in_use_pages(), 1);
        let (k, _) = read_layer(&mut recipient, 0, 2);
        assert_eq!(k, scheme.quantize_dequantize(&sample_row(64, 2)));
        // Restoring the donor yields its own exclusive copy, bit-identical.
        let mut restored = PagedKvCache::restore(&pool, 1, 64, scheme, 4, &spilled).unwrap();
        assert_eq!(read_layer(&mut restored, 0, 3), read_layer(&mut recipient, 0, 3));
        drop(restored);
        drop(recipient);
        assert_eq!(pool.free_pages(), 16);
        assert_eq!(pool.reserved_pages(), 0);
    }

    #[test]
    fn growth_past_reservation_extends_when_pool_allows() {
        let pool = pool_64(QuantScheme::mxfp4());
        let mut cache = PagedKvCache::new(&pool, 1, 64, QuantScheme::mxfp4(), 4).unwrap();
        for t in 0..12 {
            cache.append(0, &sample_row(64, t), &sample_row(64, t));
        }
        assert_eq!(cache.seq_len(), 12);
        assert_eq!(cache.allocated_pages(), 3); // 1 reserved + 2 grown
        drop(cache);
        assert_eq!(pool.free_pages(), 16);
    }
}
