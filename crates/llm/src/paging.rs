//! Paged KV-cache storage with true bit-packed MX rows.
//!
//! The serving engine's original per-sequence [`KvCache`](crate::kvcache::KvCache) stores
//! the **dequantized f32** of the quantized keys/values — it reports theoretical scheme
//! bytes while actually holding 32-bit rows. This module closes that gap with two pieces:
//!
//! * [`PagePool`] — a shared, fixed-budget allocator of pages. Each page holds
//!   [`PagePool::page_positions`] position *slots*, and each slot stores one key row and
//!   one value row **genuinely bit-packed** with [`mx_formats::RowCodec`] (4/6/8-bit
//!   element codes + shared scales for the MX/MX+ families; `f32` fallback otherwise).
//!   The pool hands out pages against *reservations*, so a scheduler can admit a sequence
//!   only when its worst-case footprint fits, and occupancy
//!   ([`PagePool::resident_bytes`]) is a **measured** number, not scheme math.
//! * [`PagedKvCache`] — one sequence's cache: a per-layer page table mapping position
//!   `t → (table[t / page_positions], t % page_positions)`. Appends quantize-and-pack
//!   straight into the slot; reads decode one row at a time into a reusable dequant
//!   scratch buffer and serve it to the zero-copy attention loop through
//!   [`KvLayerReader`], so no full-cache tensor is ever materialized.
//!
//! Because [`mx_formats::RowCodec`] round-trips bit-for-bit with
//! `QuantScheme::quantize_dequantize` — the exact values the f32 backend stores — a
//! decode over the paged backend is **token-identical** to the f32
//! [`DecodePath::ZeroCopy`](crate::model::DecodePath) path. Dropping a [`PagedKvCache`]
//! returns every page (and any unused reservation) to the pool, which is what lets the
//! continuous-batching scheduler admit queued sequences as earlier ones finish.

use std::cell::{Ref, RefCell};
use std::rc::Rc;

use mx_formats::{QuantScheme, RowCodec};

use crate::kvcache::{KvBackend, KvLayerReader};

/// Default number of position slots per page (the paged-attention block size).
pub const DEFAULT_PAGE_POSITIONS: usize = 16;

/// Errors of the paging subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingError {
    /// A reservation asked for more pages than the pool can currently provide.
    OutOfPages {
        /// Pages the reservation needed.
        needed: usize,
        /// Pages available (free and not reserved by other sequences).
        available: usize,
    },
}

impl std::fmt::Display for PagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagingError::OutOfPages { needed, available } => {
                write!(f, "page pool exhausted: needed {needed} pages, {available} available")
            }
        }
    }
}

impl std::error::Error for PagingError {}

/// A fixed-budget allocator of KV-cache pages, shared by every sequence of a serving run.
///
/// The pool's backing storage is allocated once at construction (`pages × page_bytes`),
/// mirroring how a real serving system pre-carves an accelerator's KV-cache arena. Pages
/// move between three states: *free*, *reserved* (promised to an admitted sequence but
/// not yet written) and *in use* (holding packed rows). [`PagePool::resident_bytes`]
/// reports the in-use footprint — the measured occupancy a [`ServingReport`] exposes
/// alongside the theoretical scheme bytes.
///
/// [`ServingReport`]: crate::serving::ServingReport
#[derive(Debug)]
pub struct PagePool {
    page_positions: usize,
    slot_bytes: usize,
    data: Vec<u8>,
    in_use: Vec<bool>,
    free: Vec<usize>,
    reserved: usize,
}

impl PagePool {
    /// Creates a pool of `pages` pages, each holding `page_positions` slots of
    /// `slot_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(pages: usize, page_positions: usize, slot_bytes: usize) -> Self {
        assert!(pages > 0, "page pool must hold at least one page");
        assert!(page_positions > 0, "pages must hold at least one position");
        assert!(slot_bytes > 0, "slots must hold at least one byte");
        PagePool {
            page_positions,
            slot_bytes,
            data: vec![0u8; pages * page_positions * slot_bytes],
            in_use: vec![false; pages],
            free: (0..pages).rev().collect(),
            reserved: 0,
        }
    }

    /// Creates a pool whose slots each hold one packed key row plus one packed value row
    /// of width `kv_dim` under `codec`.
    #[must_use]
    pub fn for_kv_rows(pages: usize, page_positions: usize, codec: RowCodec, kv_dim: usize) -> Self {
        PagePool::new(pages, page_positions, 2 * codec.packed_bytes(kv_dim))
    }

    /// Wraps the pool for sharing between the scheduler and its sequences' caches.
    #[must_use]
    pub fn shared(self) -> Rc<RefCell<PagePool>> {
        Rc::new(RefCell::new(self))
    }

    /// Number of position slots per page.
    #[must_use]
    pub fn page_positions(&self) -> usize {
        self.page_positions
    }

    /// Bytes per position slot (packed key row + packed value row).
    #[must_use]
    pub fn slot_bytes(&self) -> usize {
        self.slot_bytes
    }

    /// Bytes per page.
    #[must_use]
    pub fn page_bytes(&self) -> usize {
        self.page_positions * self.slot_bytes
    }

    /// Total pages in the pool (the global budget).
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.in_use.len()
    }

    /// Pages not currently holding data (free or merely reserved).
    #[must_use]
    pub fn free_pages(&self) -> usize {
        self.free.len()
    }

    /// Pages holding packed rows right now.
    #[must_use]
    pub fn in_use_pages(&self) -> usize {
        self.total_pages() - self.free_pages()
    }

    /// Pages promised to admitted sequences but not yet written.
    #[must_use]
    pub fn reserved_pages(&self) -> usize {
        self.reserved
    }

    /// Pages a new reservation could still claim.
    #[must_use]
    pub fn available_pages(&self) -> usize {
        self.free_pages() - self.reserved
    }

    /// Measured pool occupancy in bytes: in-use pages times the page size.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.in_use_pages() * self.page_bytes()
    }

    /// Reserves `pages` pages for a sequence being admitted. Returns `false` (reserving
    /// nothing) if fewer than `pages` are available.
    pub fn try_reserve(&mut self, pages: usize) -> bool {
        if self.available_pages() < pages {
            return false;
        }
        self.reserved += pages;
        true
    }

    /// Returns an unused reservation of `pages` pages to the available set.
    ///
    /// # Panics
    ///
    /// Panics if more pages are returned than are currently reserved.
    pub fn unreserve(&mut self, pages: usize) {
        assert!(pages <= self.reserved, "unreserving more pages than reserved");
        self.reserved -= pages;
    }

    /// Converts one reserved page into an allocated (in-use) page.
    ///
    /// # Panics
    ///
    /// Panics if nothing is reserved — allocation is only legal against a reservation,
    /// which is what makes admission decisions binding.
    fn alloc_reserved(&mut self) -> usize {
        assert!(self.reserved > 0, "allocating without a reservation");
        let page = self.free.pop().expect("reserved pages must be free");
        self.reserved -= 1;
        debug_assert!(!self.in_use[page]);
        self.in_use[page] = true;
        page
    }

    /// Returns an in-use page to the free set.
    ///
    /// # Panics
    ///
    /// Panics if the page is already free (double free).
    fn free_page(&mut self, page: usize) {
        assert!(self.in_use[page], "double free of page {page}");
        self.in_use[page] = false;
        self.free.push(page);
    }

    /// The packed bytes of one position slot.
    fn slot(&self, page: usize, slot: usize) -> &[u8] {
        let start = (page * self.page_positions + slot) * self.slot_bytes;
        &self.data[start..start + self.slot_bytes]
    }

    /// Mutable access to one position slot.
    fn slot_mut(&mut self, page: usize, slot: usize) -> &mut [u8] {
        let start = (page * self.page_positions + slot) * self.slot_bytes;
        &mut self.data[start..start + self.slot_bytes]
    }
}

/// One sequence's KV cache stored bit-packed in pool pages (see the [module
/// docs](crate::paging)).
///
/// Construction reserves the sequence's worst-case page count
/// (`layers × ⌈capacity_positions / page_positions⌉`) so that appends within the stated
/// capacity can never fail mid-decode; pages are physically allocated lazily as positions
/// are written and returned to the pool when the cache is dropped.
#[derive(Debug)]
pub struct PagedKvCache {
    pool: Rc<RefCell<PagePool>>,
    scheme: QuantScheme,
    codec: RowCodec,
    kv_dim: usize,
    row_bytes: usize,
    /// Pages still reserved for each layer but not yet allocated. Tracked per layer so
    /// one layer growing past its own share can never consume a page reserved for —
    /// and still guaranteed to — another layer's in-capacity appends.
    layer_reserved: Vec<usize>,
    /// Per-layer page tables: position `t` lives in `tables[layer][t / page_positions]`.
    tables: Vec<Vec<usize>>,
    /// Per-layer appended lengths (layers fill in lock-step during a forward pass).
    lens: Vec<usize>,
    /// Reusable dequant scratch the layer readers decode key rows into.
    key_scratch: Vec<f32>,
    /// Reusable dequant scratch the layer readers decode value rows into.
    value_scratch: Vec<f32>,
}

impl PagedKvCache {
    /// Pages a cache of `layers` layers and `positions` positions needs from `pool`.
    #[must_use]
    pub fn pages_needed(pool: &PagePool, layers: usize, positions: usize) -> usize {
        layers * positions.div_ceil(pool.page_positions())
    }

    /// Creates a cache for `layers` layers of width `kv_dim`, reserving pages for up to
    /// `capacity_positions` positions.
    ///
    /// # Errors
    ///
    /// Returns [`PagingError::OutOfPages`] (reserving nothing) if the pool cannot cover
    /// the worst case — the admission-control signal of the continuous-batching
    /// scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the pool's slot size does not match `kv_dim` under the scheme's codec.
    pub fn new(
        pool: &Rc<RefCell<PagePool>>,
        layers: usize,
        kv_dim: usize,
        scheme: QuantScheme,
        capacity_positions: usize,
    ) -> Result<Self, PagingError> {
        let codec = RowCodec::for_scheme(scheme);
        let row_bytes = codec.packed_bytes(kv_dim);
        let per_layer = {
            let mut p = pool.borrow_mut();
            assert_eq!(2 * row_bytes, p.slot_bytes(), "pool slot size does not match kv_dim under this scheme");
            // Reserve exactly what `pages_needed` promises the scheduler, so the
            // admission decision and the reservation can never diverge.
            let needed = Self::pages_needed(&p, layers, capacity_positions);
            if !p.try_reserve(needed) {
                return Err(PagingError::OutOfPages { needed, available: p.available_pages() });
            }
            capacity_positions.div_ceil(p.page_positions())
        };
        Ok(PagedKvCache {
            pool: Rc::clone(pool),
            scheme,
            codec,
            kv_dim,
            row_bytes,
            layer_reserved: vec![per_layer; layers],
            tables: vec![Vec::new(); layers],
            lens: vec![0; layers],
            key_scratch: vec![0.0; kv_dim],
            value_scratch: vec![0.0; kv_dim],
        })
    }

    /// The quantization scheme rows are packed with.
    #[must_use]
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Key/value width.
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.tables.len()
    }

    /// Sequence length currently cached (same for every layer).
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.lens.first().copied().unwrap_or(0)
    }

    /// Pages this cache has physically allocated.
    #[must_use]
    pub fn allocated_pages(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// Measured resident footprint: allocated pages times the page size (page-granular,
    /// so it includes the slack of partially filled trailing pages).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.allocated_pages() * self.pool.borrow().page_bytes()
    }

    /// Exact packed bytes of the rows written so far (no page slack).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.lens.iter().map(|len| 2 * len * self.row_bytes).sum()
    }

    /// Appends one position's key and value rows to `layer`, quantized with the cache's
    /// scheme and packed straight into the slot.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not have width `kv_dim`, or if a new page is needed and the
    /// pool is exhausted beyond this cache's reservation (appends within the construction
    /// capacity never hit this).
    pub fn append(&mut self, layer: usize, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.kv_dim, "key width mismatch");
        assert_eq!(value.len(), self.kv_dim, "value width mismatch");
        let t = self.lens[layer];
        let mut pool = self.pool.borrow_mut();
        let pp = pool.page_positions();
        if t == self.tables[layer].len() * pp {
            // A layer growing past its own reserved share must fund the page from the
            // pool's free headroom — never from another layer's reservation, so appends
            // within the construction capacity stay infallible in any layer order.
            if self.layer_reserved[layer] == 0 {
                assert!(pool.try_reserve(1), "page pool exhausted: cache grew past its reservation");
                self.layer_reserved[layer] += 1;
            }
            let page = pool.alloc_reserved();
            self.layer_reserved[layer] -= 1;
            self.tables[layer].push(page);
        }
        let page = self.tables[layer][t / pp];
        let slot = pool.slot_mut(page, t % pp);
        let (key_slot, value_slot) = slot.split_at_mut(self.row_bytes);
        self.codec.pack_row_into(key, key_slot);
        self.codec.pack_row_into(value, value_slot);
        self.lens[layer] = t + 1;
    }

    /// Returns every allocated page and any unused reservation to the pool, emptying the
    /// cache. Also invoked by `Drop`, which is how a retiring sequence funds the
    /// admission of queued ones.
    pub fn release(&mut self) {
        let mut pool = self.pool.borrow_mut();
        for table in &mut self.tables {
            for page in table.drain(..) {
                pool.free_page(page);
            }
        }
        pool.unreserve(self.layer_reserved.iter().sum());
        self.layer_reserved.fill(0);
        self.lens.fill(0);
    }
}

impl Drop for PagedKvCache {
    fn drop(&mut self) {
        self.release();
    }
}

/// Per-layer row reader of a [`PagedKvCache`]: resolves positions through the page table
/// and decodes the packed slot into the cache's reusable dequant scratch buffers.
#[derive(Debug)]
pub struct PagedLayerReader<'a> {
    pool: Ref<'a, PagePool>,
    table: &'a [usize],
    codec: RowCodec,
    row_bytes: usize,
    page_positions: usize,
    len: usize,
    key_scratch: &'a mut [f32],
    value_scratch: &'a mut [f32],
}

impl KvLayerReader for PagedLayerReader<'_> {
    fn key_row(&mut self, t: usize) -> &[f32] {
        assert!(t < self.len, "position out of bounds");
        let slot = self.pool.slot(self.table[t / self.page_positions], t % self.page_positions);
        // Decode through the scratch buffer: one row lives at a time, nothing larger than
        // kv_dim is ever materialized.
        self.codec.unpack_row_into(&slot[..self.row_bytes], self.key_scratch);
        self.key_scratch
    }

    fn value_row(&mut self, t: usize) -> &[f32] {
        assert!(t < self.len, "position out of bounds");
        let slot = self.pool.slot(self.table[t / self.page_positions], t % self.page_positions);
        self.codec.unpack_row_into(&slot[self.row_bytes..], self.value_scratch);
        self.value_scratch
    }
}

impl KvBackend for PagedKvCache {
    type Layer<'a> = PagedLayerReader<'a>;

    fn num_layers(&self) -> usize {
        PagedKvCache::num_layers(self)
    }

    fn seq_len(&self) -> usize {
        PagedKvCache::seq_len(self)
    }

    fn append(&mut self, layer: usize, key: &[f32], value: &[f32], scheme: QuantScheme) {
        assert_eq!(scheme, self.scheme, "append scheme does not match the packed storage scheme");
        PagedKvCache::append(self, layer, key, value);
    }

    fn layer_reader(&mut self, layer: usize) -> Self::Layer<'_> {
        PagedLayerReader {
            pool: self.pool.borrow(),
            table: &self.tables[layer],
            codec: self.codec,
            row_bytes: self.row_bytes,
            page_positions: self.pool.borrow().page_positions(),
            len: self.lens[layer],
            key_scratch: &mut self.key_scratch,
            value_scratch: &mut self.value_scratch,
        }
    }

    fn materializations(&self) -> usize {
        // No full-cache accessor exists on this backend; reads are per-row by design.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvcache::LayerKvCache;

    fn sample_row(kv_dim: usize, salt: usize) -> Vec<f32> {
        (0..kv_dim)
            .map(|i| {
                let u = (((i + salt) * 2_654_435_761) % 2001) as f32 / 1000.0 - 1.0;
                if (i + salt) % 37 == 5 {
                    u * 30.0
                } else {
                    u
                }
            })
            .collect()
    }

    fn pool_64(scheme: QuantScheme) -> Rc<RefCell<PagePool>> {
        PagePool::for_kv_rows(16, 4, RowCodec::for_scheme(scheme), 64).shared()
    }

    #[test]
    fn pool_accounting_starts_empty() {
        let pool = PagePool::for_kv_rows(8, 16, RowCodec::for_scheme(QuantScheme::mxfp4()), 64);
        assert_eq!(pool.total_pages(), 8);
        assert_eq!(pool.free_pages(), 8);
        assert_eq!(pool.available_pages(), 8);
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.resident_bytes(), 0);
        // MXFP4 row of 64 elements packs to 34 bytes; a slot holds K + V.
        assert_eq!(pool.slot_bytes(), 68);
        assert_eq!(pool.page_bytes(), 16 * 68);
    }

    #[test]
    fn reservation_gates_admission() {
        let pool = pool_64(QuantScheme::mxfp4());
        // 16 pages of 4 positions, 2 layers: a 20-position cache needs 2 * 5 = 10 pages.
        let a = PagedKvCache::new(&pool, 2, 64, QuantScheme::mxfp4(), 20).unwrap();
        assert_eq!(pool.borrow().reserved_pages(), 10);
        assert_eq!(pool.borrow().available_pages(), 6);
        // A second identical cache cannot be admitted...
        let denied = PagedKvCache::new(&pool, 2, 64, QuantScheme::mxfp4(), 20);
        assert_eq!(denied.err(), Some(PagingError::OutOfPages { needed: 10, available: 6 }));
        // ...and the failed attempt reserved nothing.
        assert_eq!(pool.borrow().reserved_pages(), 10);
        drop(a);
        assert_eq!(pool.borrow().reserved_pages(), 0);
        assert_eq!(pool.borrow().available_pages(), 16);
    }

    #[test]
    fn appends_allocate_lazily_and_reads_round_trip() {
        let scheme = QuantScheme::mxfp4_plus();
        let pool = pool_64(scheme);
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 8).unwrap();
        assert_eq!(cache.allocated_pages(), 0);
        for t in 0..8 {
            for layer in 0..2 {
                cache.append(layer, &sample_row(64, t), &sample_row(64, t + 100));
            }
        }
        assert_eq!(cache.seq_len(), 8);
        // 8 positions at 4 per page: 2 pages per layer, all of the reservation used.
        assert_eq!(cache.allocated_pages(), 4);
        assert_eq!(pool.borrow().reserved_pages(), 0);
        assert_eq!(pool.borrow().resident_bytes(), cache.resident_bytes());
        // Reads decode to exactly the scheme's fake quantization (what the f32 cache
        // would have stored).
        let mut reader = cache.layer_reader(1);
        for t in 0..8 {
            assert_eq!(reader.key_row(t), scheme.quantize_dequantize(&sample_row(64, t)));
            assert_eq!(reader.value_row(t), scheme.quantize_dequantize(&sample_row(64, t + 100)));
        }
    }

    #[test]
    fn paged_rows_match_the_f32_backend_bit_for_bit() {
        let scheme = QuantScheme::mxfp4();
        let pool = pool_64(scheme);
        let mut paged = PagedKvCache::new(&pool, 1, 64, scheme, 6).unwrap();
        let mut f32cache = LayerKvCache::new(64);
        for t in 0..6 {
            let (k, v) = (sample_row(64, t * 3), sample_row(64, t * 7 + 1));
            paged.append(0, &k, &v);
            f32cache.append(&k, &v, scheme);
        }
        let mut reader = paged.layer_reader(0);
        for t in 0..6 {
            assert_eq!(reader.key_row(t), f32cache.key_row(t), "key row {t}");
            assert_eq!(reader.value_row(t), f32cache.value_row(t), "value row {t}");
        }
    }

    #[test]
    fn packed_resident_bytes_undercut_f32_by_the_scheme_ratio() {
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(64, 16, RowCodec::for_scheme(scheme), 64).shared();
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 64).unwrap();
        for t in 0..64 {
            for layer in 0..2 {
                cache.append(layer, &sample_row(64, t), &sample_row(64, t + 9));
            }
        }
        // f32 storage of the same rows: 2 layers * 64 positions * 2 rows * 64 * 4 bytes.
        let f32_bytes = 2 * 64 * 2 * 64 * 4;
        assert!(
            cache.resident_bytes() * 4 <= f32_bytes,
            "packed pages must be >=4x below f32: {} vs {f32_bytes}",
            cache.resident_bytes()
        );
        assert_eq!(cache.packed_bytes(), 2 * 64 * 2 * 34);
    }

    #[test]
    fn release_returns_everything_and_is_idempotent() {
        let pool = pool_64(QuantScheme::mxfp4());
        let mut cache = PagedKvCache::new(&pool, 2, 64, QuantScheme::mxfp4(), 10).unwrap();
        for layer in 0..2 {
            cache.append(layer, &[0.5; 64], &[0.25; 64]);
        }
        assert!(pool.borrow().in_use_pages() > 0);
        cache.release();
        assert_eq!(cache.seq_len(), 0);
        assert_eq!(pool.borrow().in_use_pages(), 0);
        assert_eq!(pool.borrow().reserved_pages(), 0);
        cache.release(); // nothing left to free, nothing to double-free
        drop(cache); // Drop after release is also a no-op
        assert_eq!(pool.borrow().free_pages(), 16);
    }

    #[test]
    fn admit_evict_churn_never_leaks_or_double_frees() {
        // Deterministic admit/evict churn: a few live caches of pseudo-random sizes are
        // created and dropped out of order against a small pool; the page accounting must
        // balance after every step and drain to empty at the end.
        let scheme = QuantScheme::mxfp4_plus();
        let pool = PagePool::for_kv_rows(24, 4, RowCodec::for_scheme(scheme), 64).shared();
        let mut live: Vec<PagedKvCache> = Vec::new();
        let mut admitted = 0usize;
        for step in 0..200usize {
            let positions = 1 + (step * 2_654_435_761) % 12;
            match PagedKvCache::new(&pool, 2, 64, scheme, positions) {
                Ok(mut cache) => {
                    let fill = positions - (step % 2); // sometimes underfill the reservation
                    for t in 0..fill {
                        for layer in 0..2 {
                            cache.append(layer, &sample_row(64, t + step), &sample_row(64, t + step + 7));
                        }
                    }
                    live.push(cache);
                    admitted += 1;
                }
                Err(PagingError::OutOfPages { .. }) => {
                    // Evict the oldest live cache and retry once; its pages must fund us.
                    assert!(!live.is_empty(), "empty pool denied a reservation");
                    live.remove(0);
                }
            }
            if step % 7 == 3 && !live.is_empty() {
                live.remove(live.len() / 2);
            }
            let p = pool.borrow();
            let held: usize = live.iter().map(PagedKvCache::allocated_pages).sum();
            assert_eq!(p.in_use_pages(), held, "step {step}: pages in use must equal pages held by live caches");
            assert!(p.free_pages() + held == p.total_pages(), "step {step}: leak detected");
        }
        assert!(admitted > 50, "churn must actually admit sequences");
        live.clear();
        let p = pool.borrow();
        assert_eq!(p.free_pages(), p.total_pages());
        assert_eq!(p.reserved_pages(), 0);
        assert_eq!(p.resident_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn pool_rejects_double_free() {
        let mut pool = PagePool::new(2, 4, 8);
        assert!(pool.try_reserve(1));
        let page = pool.alloc_reserved();
        pool.free_page(page);
        pool.free_page(page);
    }

    #[test]
    #[should_panic(expected = "allocating without a reservation")]
    fn pool_rejects_unreserved_allocation() {
        let mut pool = PagePool::new(2, 4, 8);
        let _ = pool.alloc_reserved();
    }

    #[test]
    #[should_panic(expected = "cache grew past its reservation")]
    fn growth_cannot_steal_another_layers_reservation() {
        // 2-page pool, fully reserved as one page per layer (capacity 4 at 4 positions
        // per page). Layer 0 growing to a 5th position must fail *at the growth append*:
        // funding it from layer 1's reserved page would instead move the panic onto
        // layer 1's first in-capacity append, breaking the documented guarantee.
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(2, 4, RowCodec::for_scheme(scheme), 64).shared();
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 4).unwrap();
        for t in 0..4 {
            cache.append(0, &sample_row(64, t), &sample_row(64, t));
        }
        cache.append(0, &sample_row(64, 4), &sample_row(64, 4));
    }

    #[test]
    fn uneven_layer_append_order_within_capacity_never_panics() {
        // The in-capacity guarantee must hold in any append order: fill layer 0 to its
        // full capacity before layer 1 sees a single row, against a pool with zero
        // spare pages beyond the reservation.
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(4, 4, RowCodec::for_scheme(scheme), 64).shared();
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 8).unwrap();
        assert_eq!(pool.borrow().available_pages(), 0);
        for t in 0..8 {
            cache.append(0, &sample_row(64, t), &sample_row(64, t));
        }
        for t in 0..8 {
            cache.append(1, &sample_row(64, t), &sample_row(64, t));
        }
        assert_eq!(cache.allocated_pages(), 4);
        drop(cache);
        assert_eq!(pool.borrow().free_pages(), 4);
    }

    #[test]
    fn growth_past_reservation_extends_when_pool_allows() {
        let pool = pool_64(QuantScheme::mxfp4());
        let mut cache = PagedKvCache::new(&pool, 1, 64, QuantScheme::mxfp4(), 4).unwrap();
        for t in 0..12 {
            cache.append(0, &sample_row(64, t), &sample_row(64, t));
        }
        assert_eq!(cache.seq_len(), 12);
        assert_eq!(cache.allocated_pages(), 3); // 1 reserved + 2 grown
        drop(cache);
        assert_eq!(pool.borrow().free_pages(), 16);
    }
}
