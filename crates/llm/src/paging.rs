//! Paged KV-cache storage with true bit-packed MX rows, shared safely across threads.
//!
//! The serving engine's original per-sequence [`KvCache`](crate::kvcache::KvCache) stores
//! the **dequantized f32** of the quantized keys/values — it reports theoretical scheme
//! bytes while actually holding 32-bit rows. This module closes that gap with two pieces:
//!
//! * [`PagePool`] — a shared, fixed-budget allocator of pages. Each page holds
//!   [`PagePool::page_positions`] position *slots*, and each slot stores one key row and
//!   one value row **genuinely bit-packed** with [`mx_formats::RowCodec`] (4/6/8-bit
//!   element codes + shared scales for the MX/MX+ families; `f32` fallback otherwise).
//!   The pool hands out pages against *reservations*, so a scheduler can admit a sequence
//!   only when its worst-case footprint fits, and occupancy
//!   ([`PagePool::resident_bytes`]) is a **measured** number, not scheme math.
//! * [`PagedKvCache`] — one sequence's cache: a per-layer page table mapping position
//!   `t → (table[t / page_positions], t % page_positions)`. Appends quantize-and-pack
//!   straight into the slot; reads decode one row at a time into a caller-provided
//!   [`PagedScratch`] and serve it to the zero-copy attention loop through
//!   [`KvLayerReader`], so no full-cache tensor is ever materialized.
//!
//! ## Threading model
//!
//! The pool is shared as an [`Arc<PagePool>`] and is `Send + Sync`: all free-list,
//! reservation and occupancy accounting sits behind one internal [`Mutex`], which is
//! touched only when pages change hands (admission, page-boundary growth, retirement) —
//! never on the per-row decode hot path. Page *data* is handed out by moving each page's
//! pre-allocated buffer out of the pool and into the owning [`PagedKvCache`]
//! (and back on release), so a worker thread decoding its sequence packs and unpacks
//! rows with **zero locking**: the buffers it touches are exclusively owned by the cache
//! it holds `&mut` to. The per-row dequant scratch lives in a [`PagedScratch`] owned by
//! the *worker thread* rather than the cache, so a thread serving many resident
//! sequences carries exactly one pair of scratch buffers.
//!
//! Because [`mx_formats::RowCodec`] round-trips bit-for-bit with
//! `QuantScheme::quantize_dequantize` — the exact values the f32 backend stores — a
//! decode over the paged backend is **token-identical** to the f32
//! [`DecodePath::ZeroCopy`](crate::model::DecodePath) path, on any number of threads.
//! Dropping a [`PagedKvCache`] returns every page (and any unused reservation) to the
//! pool, which is what lets the continuous-batching scheduler admit queued sequences as
//! earlier ones finish.

use std::sync::{Arc, Mutex, MutexGuard};

use mx_formats::{QuantScheme, RowCodec};

use crate::kvcache::{KvBackend, KvLayerReader};

/// Default number of position slots per page (the paged-attention block size).
pub const DEFAULT_PAGE_POSITIONS: usize = 16;

/// Errors of the paging subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagingError {
    /// A reservation asked for more pages than the pool can currently provide.
    OutOfPages {
        /// Pages the reservation needed.
        needed: usize,
        /// Pages available (free and not reserved by other sequences).
        available: usize,
    },
}

impl std::fmt::Display for PagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagingError::OutOfPages { needed, available } => {
                write!(f, "page pool exhausted: needed {needed} pages, {available} available")
            }
        }
    }
}

impl std::error::Error for PagingError {}

/// One page checked out of the pool: its id plus the owned backing buffer. The buffer
/// physically moves between the pool and the owning cache, which is what makes reads and
/// writes of an allocated page lock-free (exclusive ownership, no shared arena aliasing).
#[derive(Debug)]
struct PageEntry {
    id: usize,
    buf: Box<[u8]>,
}

/// The lock-protected side of the pool: which pages are home, which are checked out,
/// and how many are promised to admitted-but-not-yet-written sequences.
#[derive(Debug)]
struct PoolState {
    /// Buffer of each page while it sits in the pool; `None` while checked out.
    buffers: Vec<Option<Box<[u8]>>>,
    /// Ids of pages currently in the pool and not promised to anyone.
    free: Vec<usize>,
    /// Pages promised to admitted sequences but not yet written.
    reserved: usize,
}

impl PoolState {
    /// Converts one reserved page into a checked-out page.
    ///
    /// Panics if nothing is reserved — allocation is only legal against a reservation,
    /// which is what makes admission decisions binding.
    fn alloc_reserved(&mut self) -> PageEntry {
        assert!(self.reserved > 0, "allocating without a reservation");
        let id = self.free.pop().expect("reserved pages must be free");
        self.reserved -= 1;
        let buf = self.buffers[id].take().expect("free page must hold its buffer");
        PageEntry { id, buf }
    }

    /// Returns a checked-out page to the pool.
    ///
    /// Panics if the page's home slot is already occupied (double free).
    fn free_page(&mut self, entry: PageEntry) {
        assert!(self.buffers[entry.id].is_none(), "double free of page {}", entry.id);
        self.buffers[entry.id] = Some(entry.buf);
        self.free.push(entry.id);
    }
}

/// A fixed-budget allocator of KV-cache pages, shared by every sequence of a serving run.
///
/// The backing storage of every page is allocated once at construction
/// (`pages × page_bytes`), mirroring how a real serving system pre-carves an
/// accelerator's KV-cache arena. Pages move between three states: *free*, *reserved*
/// (promised to an admitted sequence but not yet written) and *in use* (checked out to a
/// cache, holding packed rows). [`PagePool::resident_bytes`] reports the in-use
/// footprint — the measured occupancy a [`ServingReport`] exposes alongside the
/// theoretical scheme bytes.
///
/// The pool is `Send + Sync` (see the [module docs](crate::paging) for the threading
/// model); every accounting method takes `&self` and locks internally.
///
/// [`ServingReport`]: crate::serving::ServingReport
#[derive(Debug)]
pub struct PagePool {
    page_positions: usize,
    slot_bytes: usize,
    pages: usize,
    state: Mutex<PoolState>,
}

impl PagePool {
    /// Creates a pool of `pages` pages, each holding `page_positions` slots of
    /// `slot_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(pages: usize, page_positions: usize, slot_bytes: usize) -> Self {
        assert!(pages > 0, "page pool must hold at least one page");
        assert!(page_positions > 0, "pages must hold at least one position");
        assert!(slot_bytes > 0, "slots must hold at least one byte");
        let page_bytes = page_positions * slot_bytes;
        PagePool {
            page_positions,
            slot_bytes,
            pages,
            state: Mutex::new(PoolState {
                buffers: (0..pages).map(|_| Some(vec![0u8; page_bytes].into_boxed_slice())).collect(),
                free: (0..pages).rev().collect(),
                reserved: 0,
            }),
        }
    }

    /// Creates a pool whose slots each hold one packed key row plus one packed value row
    /// of width `kv_dim` under `codec`.
    #[must_use]
    pub fn for_kv_rows(pages: usize, page_positions: usize, codec: RowCodec, kv_dim: usize) -> Self {
        PagePool::new(pages, page_positions, 2 * codec.packed_bytes(kv_dim))
    }

    /// Wraps the pool for sharing between the scheduler, its sequences' caches and any
    /// number of decode worker threads.
    #[must_use]
    pub fn shared(self) -> Arc<PagePool> {
        Arc::new(self)
    }

    fn state(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().expect("page pool lock poisoned")
    }

    /// Number of position slots per page.
    #[must_use]
    pub fn page_positions(&self) -> usize {
        self.page_positions
    }

    /// Bytes per position slot (packed key row + packed value row).
    #[must_use]
    pub fn slot_bytes(&self) -> usize {
        self.slot_bytes
    }

    /// Bytes per page.
    #[must_use]
    pub fn page_bytes(&self) -> usize {
        self.page_positions * self.slot_bytes
    }

    /// Total pages in the pool (the global budget).
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.pages
    }

    /// Pages not currently holding data (free or merely reserved).
    #[must_use]
    pub fn free_pages(&self) -> usize {
        self.state().free.len()
    }

    /// Pages checked out to caches (holding packed rows) right now.
    #[must_use]
    pub fn in_use_pages(&self) -> usize {
        self.pages - self.state().free.len()
    }

    /// Pages promised to admitted sequences but not yet written.
    #[must_use]
    pub fn reserved_pages(&self) -> usize {
        self.state().reserved
    }

    /// Pages a new reservation could still claim.
    #[must_use]
    pub fn available_pages(&self) -> usize {
        let state = self.state();
        state.free.len() - state.reserved
    }

    /// Measured pool occupancy in bytes: in-use pages times the page size.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.in_use_pages() * self.page_bytes()
    }

    /// Reserves `pages` pages for a sequence being admitted. Returns `false` (reserving
    /// nothing) if fewer than `pages` are available.
    pub fn try_reserve(&self, pages: usize) -> bool {
        self.try_reserve_or_available(pages).is_ok()
    }

    /// [`PagePool::try_reserve`], reporting the available-page count observed under the
    /// same lock acquisition on failure — so an admission error can never quote a count
    /// that contradicts the denial (pages may have been freed by the time a second read
    /// would run).
    fn try_reserve_or_available(&self, pages: usize) -> Result<(), usize> {
        let mut state = self.state();
        let available = state.free.len() - state.reserved;
        if available < pages {
            return Err(available);
        }
        state.reserved += pages;
        Ok(())
    }

    /// Returns an unused reservation of `pages` pages to the available set.
    ///
    /// # Panics
    ///
    /// Panics if more pages are returned than are currently reserved.
    pub fn unreserve(&self, pages: usize) {
        let mut state = self.state();
        assert!(pages <= state.reserved, "unreserving more pages than reserved");
        state.reserved -= pages;
    }

    /// Converts one reserved page into a checked-out page (see [`PoolState::alloc_reserved`]).
    fn alloc_reserved(&self) -> PageEntry {
        self.state().alloc_reserved()
    }
}

/// Per-worker dequant scratch the paged backend's layer readers decode rows into.
///
/// Splitting the scratch out of [`PagedKvCache`] (where it used to live) is what lets a
/// decode worker thread carry **one** pair of buffers across however many resident
/// sequences it steps, instead of every cache owning its own; it is plain owned data, so
/// each worker simply constructs its own (`PagedScratch::default()`).
#[derive(Debug, Default)]
pub struct PagedScratch {
    /// Reusable dequant scratch the layer readers decode key rows into.
    key: Vec<f32>,
    /// Reusable dequant scratch the layer readers decode value rows into.
    value: Vec<f32>,
}

/// One sequence's KV cache stored bit-packed in pool pages (see the [module
/// docs](crate::paging)).
///
/// Construction reserves the sequence's worst-case page count
/// (`layers × ⌈capacity_positions / page_positions⌉`) so that appends within the stated
/// capacity can never fail mid-decode; pages are physically allocated lazily as positions
/// are written and returned to the pool when the cache is dropped. The cache is
/// `Send + Sync`: it exclusively owns the buffers of its allocated pages, so decode
/// workers read and write them without touching the pool lock.
#[derive(Debug)]
pub struct PagedKvCache {
    pool: Arc<PagePool>,
    scheme: QuantScheme,
    codec: RowCodec,
    kv_dim: usize,
    row_bytes: usize,
    /// Pages still reserved for each layer but not yet allocated. Tracked per layer so
    /// one layer growing past its own share can never consume a page reserved for —
    /// and still guaranteed to — another layer's in-capacity appends.
    layer_reserved: Vec<usize>,
    /// Per-layer page tables: position `t` lives in `tables[layer][t / page_positions]`.
    tables: Vec<Vec<PageEntry>>,
    /// Per-layer appended lengths (layers fill in lock-step during a forward pass).
    lens: Vec<usize>,
}

impl PagedKvCache {
    /// Pages a cache of `layers` layers and `positions` positions needs from `pool`.
    #[must_use]
    pub fn pages_needed(pool: &PagePool, layers: usize, positions: usize) -> usize {
        layers * positions.div_ceil(pool.page_positions())
    }

    /// Creates a cache for `layers` layers of width `kv_dim`, reserving pages for up to
    /// `capacity_positions` positions.
    ///
    /// # Errors
    ///
    /// Returns [`PagingError::OutOfPages`] (reserving nothing) if the pool cannot cover
    /// the worst case — the admission-control signal of the continuous-batching
    /// scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the pool's slot size does not match `kv_dim` under the scheme's codec.
    pub fn new(
        pool: &Arc<PagePool>,
        layers: usize,
        kv_dim: usize,
        scheme: QuantScheme,
        capacity_positions: usize,
    ) -> Result<Self, PagingError> {
        let codec = RowCodec::for_scheme(scheme);
        let row_bytes = codec.packed_bytes(kv_dim);
        assert_eq!(2 * row_bytes, pool.slot_bytes(), "pool slot size does not match kv_dim under this scheme");
        // Reserve exactly what `pages_needed` promises the scheduler, so the admission
        // decision and the reservation can never diverge.
        let needed = Self::pages_needed(pool, layers, capacity_positions);
        if let Err(available) = pool.try_reserve_or_available(needed) {
            return Err(PagingError::OutOfPages { needed, available });
        }
        let per_layer = capacity_positions.div_ceil(pool.page_positions());
        Ok(PagedKvCache {
            pool: Arc::clone(pool),
            scheme,
            codec,
            kv_dim,
            row_bytes,
            layer_reserved: vec![per_layer; layers],
            tables: (0..layers).map(|_| Vec::new()).collect(),
            lens: vec![0; layers],
        })
    }

    /// The quantization scheme rows are packed with.
    #[must_use]
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Key/value width.
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.tables.len()
    }

    /// Sequence length currently cached (same for every layer).
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.lens.first().copied().unwrap_or(0)
    }

    /// Pages this cache has physically allocated.
    #[must_use]
    pub fn allocated_pages(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }

    /// Measured resident footprint: allocated pages times the page size (page-granular,
    /// so it includes the slack of partially filled trailing pages).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.allocated_pages() * self.pool.page_bytes()
    }

    /// Exact packed bytes of the rows written so far (no page slack).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.lens.iter().map(|len| 2 * len * self.row_bytes).sum()
    }

    /// Appends one position's key and value rows to `layer`, quantized with the cache's
    /// scheme and packed straight into the slot. Only a page-boundary crossing touches
    /// the pool lock; the pack itself writes a buffer this cache exclusively owns.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not have width `kv_dim`, or if a new page is needed and the
    /// pool is exhausted beyond this cache's reservation (appends within the construction
    /// capacity never hit this).
    pub fn append(&mut self, layer: usize, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.kv_dim, "key width mismatch");
        assert_eq!(value.len(), self.kv_dim, "value width mismatch");
        let t = self.lens[layer];
        let pp = self.pool.page_positions();
        if t == self.tables[layer].len() * pp {
            // A layer growing past its own reserved share must fund the page from the
            // pool's free headroom — never from another layer's reservation, so appends
            // within the construction capacity stay infallible in any layer order.
            if self.layer_reserved[layer] == 0 {
                assert!(self.pool.try_reserve(1), "page pool exhausted: cache grew past its reservation");
                self.layer_reserved[layer] += 1;
            }
            let entry = self.pool.alloc_reserved();
            self.layer_reserved[layer] -= 1;
            self.tables[layer].push(entry);
        }
        let slot_bytes = 2 * self.row_bytes;
        let entry = &mut self.tables[layer][t / pp];
        let slot = &mut entry.buf[(t % pp) * slot_bytes..(t % pp + 1) * slot_bytes];
        let (key_slot, value_slot) = slot.split_at_mut(self.row_bytes);
        self.codec.pack_row_into(key, key_slot);
        self.codec.pack_row_into(value, value_slot);
        self.lens[layer] = t + 1;
    }

    /// Returns every allocated page and any unused reservation to the pool, emptying the
    /// cache. Also invoked by `Drop`, which is how a retiring sequence funds the
    /// admission of queued ones. Takes the pool lock once, not once per page.
    pub fn release(&mut self) {
        let mut state = self.pool.state();
        for table in &mut self.tables {
            for entry in table.drain(..) {
                state.free_page(entry);
            }
        }
        let leftover: usize = self.layer_reserved.iter().sum();
        assert!(leftover <= state.reserved, "unreserving more pages than reserved");
        state.reserved -= leftover;
        self.layer_reserved.fill(0);
        self.lens.fill(0);
    }
}

impl Drop for PagedKvCache {
    fn drop(&mut self) {
        self.release();
    }
}

/// Per-layer row reader of a [`PagedKvCache`]: resolves positions through the page table
/// and decodes the packed slot into the worker's [`PagedScratch`] buffers. Never touches
/// the pool lock — the pages it reads are exclusively owned by the cache it borrows.
#[derive(Debug)]
pub struct PagedLayerReader<'a> {
    table: &'a [PageEntry],
    codec: RowCodec,
    row_bytes: usize,
    page_positions: usize,
    len: usize,
    key_scratch: &'a mut [f32],
    value_scratch: &'a mut [f32],
}

/// The packed bytes of position `t`'s slot within its page table (free function so the
/// reader can borrow its scratch buffers mutably alongside the table).
fn packed_slot(table: &[PageEntry], page_positions: usize, row_bytes: usize, len: usize, t: usize) -> &[u8] {
    assert!(t < len, "position out of bounds");
    let slot_bytes = 2 * row_bytes;
    let start = (t % page_positions) * slot_bytes;
    &table[t / page_positions].buf[start..start + slot_bytes]
}

impl KvLayerReader for PagedLayerReader<'_> {
    fn key_row(&mut self, t: usize) -> &[f32] {
        // Decode through the scratch buffer: one row lives at a time, nothing larger than
        // kv_dim is ever materialized.
        let slot = packed_slot(self.table, self.page_positions, self.row_bytes, self.len, t);
        self.codec.unpack_row_into(&slot[..self.row_bytes], self.key_scratch);
        self.key_scratch
    }

    fn value_row(&mut self, t: usize) -> &[f32] {
        let slot = packed_slot(self.table, self.page_positions, self.row_bytes, self.len, t);
        self.codec.unpack_row_into(&slot[self.row_bytes..], self.value_scratch);
        self.value_scratch
    }
}

impl KvBackend for PagedKvCache {
    type Layer<'a> = PagedLayerReader<'a>;
    type Scratch = PagedScratch;

    fn num_layers(&self) -> usize {
        PagedKvCache::num_layers(self)
    }

    fn seq_len(&self) -> usize {
        PagedKvCache::seq_len(self)
    }

    fn append(&mut self, layer: usize, key: &[f32], value: &[f32], scheme: QuantScheme) {
        assert_eq!(scheme, self.scheme, "append scheme does not match the packed storage scheme");
        PagedKvCache::append(self, layer, key, value);
    }

    fn layer_reader<'a>(&'a mut self, layer: usize, scratch: &'a mut PagedScratch) -> PagedLayerReader<'a> {
        scratch.key.resize(self.kv_dim, 0.0);
        scratch.value.resize(self.kv_dim, 0.0);
        PagedLayerReader {
            table: &self.tables[layer],
            codec: self.codec,
            row_bytes: self.row_bytes,
            page_positions: self.pool.page_positions(),
            len: self.lens[layer],
            key_scratch: &mut scratch.key,
            value_scratch: &mut scratch.value,
        }
    }

    fn materializations(&self) -> usize {
        // No full-cache accessor exists on this backend; reads are per-row by design.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvcache::LayerKvCache;

    fn sample_row(kv_dim: usize, salt: usize) -> Vec<f32> {
        (0..kv_dim)
            .map(|i| {
                let u = (((i + salt) * 2_654_435_761) % 2001) as f32 / 1000.0 - 1.0;
                if (i + salt) % 37 == 5 {
                    u * 30.0
                } else {
                    u
                }
            })
            .collect()
    }

    fn pool_64(scheme: QuantScheme) -> Arc<PagePool> {
        PagePool::for_kv_rows(16, 4, RowCodec::for_scheme(scheme), 64).shared()
    }

    fn read_layer(cache: &mut PagedKvCache, layer: usize, t: usize) -> (Vec<f32>, Vec<f32>) {
        let mut scratch = PagedScratch::default();
        let mut reader = cache.layer_reader(layer, &mut scratch);
        (reader.key_row(t).to_vec(), reader.value_row(t).to_vec())
    }

    #[test]
    fn pool_accounting_starts_empty() {
        let pool = PagePool::for_kv_rows(8, 16, RowCodec::for_scheme(QuantScheme::mxfp4()), 64);
        assert_eq!(pool.total_pages(), 8);
        assert_eq!(pool.free_pages(), 8);
        assert_eq!(pool.available_pages(), 8);
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.resident_bytes(), 0);
        // MXFP4 row of 64 elements packs to 34 bytes; a slot holds K + V.
        assert_eq!(pool.slot_bytes(), 68);
        assert_eq!(pool.page_bytes(), 16 * 68);
    }

    #[test]
    fn reservation_gates_admission() {
        let pool = pool_64(QuantScheme::mxfp4());
        // 16 pages of 4 positions, 2 layers: a 20-position cache needs 2 * 5 = 10 pages.
        let a = PagedKvCache::new(&pool, 2, 64, QuantScheme::mxfp4(), 20).unwrap();
        assert_eq!(pool.reserved_pages(), 10);
        assert_eq!(pool.available_pages(), 6);
        // A second identical cache cannot be admitted...
        let denied = PagedKvCache::new(&pool, 2, 64, QuantScheme::mxfp4(), 20);
        assert_eq!(denied.err(), Some(PagingError::OutOfPages { needed: 10, available: 6 }));
        // ...and the failed attempt reserved nothing.
        assert_eq!(pool.reserved_pages(), 10);
        drop(a);
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.available_pages(), 16);
    }

    #[test]
    fn appends_allocate_lazily_and_reads_round_trip() {
        let scheme = QuantScheme::mxfp4_plus();
        let pool = pool_64(scheme);
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 8).unwrap();
        assert_eq!(cache.allocated_pages(), 0);
        for t in 0..8 {
            for layer in 0..2 {
                cache.append(layer, &sample_row(64, t), &sample_row(64, t + 100));
            }
        }
        assert_eq!(cache.seq_len(), 8);
        // 8 positions at 4 per page: 2 pages per layer, all of the reservation used.
        assert_eq!(cache.allocated_pages(), 4);
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.resident_bytes(), cache.resident_bytes());
        // Reads decode to exactly the scheme's fake quantization (what the f32 cache
        // would have stored).
        for t in 0..8 {
            let (k, v) = read_layer(&mut cache, 1, t);
            assert_eq!(k, scheme.quantize_dequantize(&sample_row(64, t)));
            assert_eq!(v, scheme.quantize_dequantize(&sample_row(64, t + 100)));
        }
    }

    #[test]
    fn paged_rows_match_the_f32_backend_bit_for_bit() {
        let scheme = QuantScheme::mxfp4();
        let pool = pool_64(scheme);
        let mut paged = PagedKvCache::new(&pool, 1, 64, scheme, 6).unwrap();
        let mut f32cache = LayerKvCache::new(64);
        for t in 0..6 {
            let (k, v) = (sample_row(64, t * 3), sample_row(64, t * 7 + 1));
            paged.append(0, &k, &v);
            f32cache.append(&k, &v, scheme);
        }
        for t in 0..6 {
            let (k, v) = read_layer(&mut paged, 0, t);
            assert_eq!(k, f32cache.key_row(t), "key row {t}");
            assert_eq!(v, f32cache.value_row(t), "value row {t}");
        }
    }

    #[test]
    fn packed_resident_bytes_undercut_f32_by_the_scheme_ratio() {
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(64, 16, RowCodec::for_scheme(scheme), 64).shared();
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 64).unwrap();
        for t in 0..64 {
            for layer in 0..2 {
                cache.append(layer, &sample_row(64, t), &sample_row(64, t + 9));
            }
        }
        // f32 storage of the same rows: 2 layers * 64 positions * 2 rows * 64 * 4 bytes.
        let f32_bytes = 2 * 64 * 2 * 64 * 4;
        assert!(
            cache.resident_bytes() * 4 <= f32_bytes,
            "packed pages must be >=4x below f32: {} vs {f32_bytes}",
            cache.resident_bytes()
        );
        assert_eq!(cache.packed_bytes(), 2 * 64 * 2 * 34);
    }

    #[test]
    fn release_returns_everything_and_is_idempotent() {
        let pool = pool_64(QuantScheme::mxfp4());
        let mut cache = PagedKvCache::new(&pool, 2, 64, QuantScheme::mxfp4(), 10).unwrap();
        for layer in 0..2 {
            cache.append(layer, &[0.5; 64], &[0.25; 64]);
        }
        assert!(pool.in_use_pages() > 0);
        cache.release();
        assert_eq!(cache.seq_len(), 0);
        assert_eq!(pool.in_use_pages(), 0);
        assert_eq!(pool.reserved_pages(), 0);
        cache.release(); // nothing left to free, nothing to double-free
        drop(cache); // Drop after release is also a no-op
        assert_eq!(pool.free_pages(), 16);
    }

    #[test]
    fn admit_evict_churn_never_leaks_or_double_frees() {
        // Deterministic admit/evict churn: a few live caches of pseudo-random sizes are
        // created and dropped out of order against a small pool; the page accounting must
        // balance after every step and drain to empty at the end.
        let scheme = QuantScheme::mxfp4_plus();
        let pool = PagePool::for_kv_rows(24, 4, RowCodec::for_scheme(scheme), 64).shared();
        let mut live: Vec<PagedKvCache> = Vec::new();
        let mut admitted = 0usize;
        for step in 0..200usize {
            let positions = 1 + (step * 2_654_435_761) % 12;
            match PagedKvCache::new(&pool, 2, 64, scheme, positions) {
                Ok(mut cache) => {
                    let fill = positions - (step % 2); // sometimes underfill the reservation
                    for t in 0..fill {
                        for layer in 0..2 {
                            cache.append(layer, &sample_row(64, t + step), &sample_row(64, t + step + 7));
                        }
                    }
                    live.push(cache);
                    admitted += 1;
                }
                Err(PagingError::OutOfPages { .. }) => {
                    // Evict the oldest live cache and retry once; its pages must fund us.
                    assert!(!live.is_empty(), "empty pool denied a reservation");
                    live.remove(0);
                }
            }
            if step % 7 == 3 && !live.is_empty() {
                live.remove(live.len() / 2);
            }
            let held: usize = live.iter().map(PagedKvCache::allocated_pages).sum();
            assert_eq!(pool.in_use_pages(), held, "step {step}: pages in use must equal pages held by live caches");
            assert!(pool.free_pages() + held == pool.total_pages(), "step {step}: leak detected");
        }
        assert!(admitted > 50, "churn must actually admit sequences");
        live.clear();
        assert_eq!(pool.free_pages(), pool.total_pages());
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn concurrent_churn_from_many_threads_balances_the_accounting() {
        // The same leak/double-free invariant under real contention: 4 threads hammer one
        // shared pool with admit/fill/drop churn. Ownership moves page buffers across
        // threads; the lock only guards the free list. The pool must drain to empty.
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(32, 4, RowCodec::for_scheme(scheme), 64).shared();
        std::thread::scope(|s| {
            for worker in 0..4usize {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for step in 0..100usize {
                        let positions = 1 + (step * 7 + worker * 13) % 8;
                        if let Ok(mut cache) = PagedKvCache::new(&pool, 2, 64, scheme, positions) {
                            for t in 0..positions {
                                for layer in 0..2 {
                                    cache.append(layer, &sample_row(64, t + step), &sample_row(64, t + worker));
                                }
                            }
                            // Reads see exactly this cache's rows despite neighbours churning.
                            let (k, _) = {
                                let mut scratch = PagedScratch::default();
                                let mut reader = cache.layer_reader(1, &mut scratch);
                                (reader.key_row(positions - 1).to_vec(), ())
                            };
                            assert_eq!(k, scheme.quantize_dequantize(&sample_row(64, positions - 1 + step)));
                        }
                    }
                });
            }
        });
        assert_eq!(pool.free_pages(), pool.total_pages());
        assert_eq!(pool.reserved_pages(), 0);
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn pool_rejects_double_free() {
        let pool = PagePool::new(2, 4, 8);
        assert!(pool.try_reserve(1));
        let entry = pool.alloc_reserved();
        // Forge a second entry for the same page id: ownership makes an accidental double
        // free impossible from safe client code, so the accounting check is exercised
        // directly.
        let forged = PageEntry { id: entry.id, buf: vec![0u8; pool.page_bytes()].into_boxed_slice() };
        let mut state = pool.state();
        state.free_page(entry);
        state.free_page(forged);
    }

    #[test]
    #[should_panic(expected = "allocating without a reservation")]
    fn pool_rejects_unreserved_allocation() {
        let pool = PagePool::new(2, 4, 8);
        let _ = pool.alloc_reserved();
    }

    #[test]
    #[should_panic(expected = "cache grew past its reservation")]
    fn growth_cannot_steal_another_layers_reservation() {
        // 2-page pool, fully reserved as one page per layer (capacity 4 at 4 positions
        // per page). Layer 0 growing to a 5th position must fail *at the growth append*:
        // funding it from layer 1's reserved page would instead move the panic onto
        // layer 1's first in-capacity append, breaking the documented guarantee.
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(2, 4, RowCodec::for_scheme(scheme), 64).shared();
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 4).unwrap();
        for t in 0..4 {
            cache.append(0, &sample_row(64, t), &sample_row(64, t));
        }
        cache.append(0, &sample_row(64, 4), &sample_row(64, 4));
    }

    #[test]
    fn uneven_layer_append_order_within_capacity_never_panics() {
        // The in-capacity guarantee must hold in any append order: fill layer 0 to its
        // full capacity before layer 1 sees a single row, against a pool with zero
        // spare pages beyond the reservation.
        let scheme = QuantScheme::mxfp4();
        let pool = PagePool::for_kv_rows(4, 4, RowCodec::for_scheme(scheme), 64).shared();
        let mut cache = PagedKvCache::new(&pool, 2, 64, scheme, 8).unwrap();
        assert_eq!(pool.available_pages(), 0);
        for t in 0..8 {
            cache.append(0, &sample_row(64, t), &sample_row(64, t));
        }
        for t in 0..8 {
            cache.append(1, &sample_row(64, t), &sample_row(64, t));
        }
        assert_eq!(cache.allocated_pages(), 4);
        drop(cache);
        assert_eq!(pool.free_pages(), 4);
    }

    #[test]
    fn growth_past_reservation_extends_when_pool_allows() {
        let pool = pool_64(QuantScheme::mxfp4());
        let mut cache = PagedKvCache::new(&pool, 1, 64, QuantScheme::mxfp4(), 4).unwrap();
        for t in 0..12 {
            cache.append(0, &sample_row(64, t), &sample_row(64, t));
        }
        assert_eq!(cache.seq_len(), 12);
        assert_eq!(cache.allocated_pages(), 3); // 1 reserved + 2 grown
        drop(cache);
        assert_eq!(pool.free_pages(), 16);
    }
}
