//! Key/value cache for autoregressive decoding.
//!
//! Following the paper's methodology, the cached keys and values participate in dot
//! products (attention scores and attention-weighted sums) and are therefore quantized
//! with the same scheme as other dot-product operands.
//!
//! ## Zero-copy reads
//!
//! Rows are stored append-only in one contiguous row-major buffer per tensor, and the
//! read API serves borrowed `&[f32]` rows ([`LayerKvCache::key_row`]) and
//! [`MatrixView`]s ([`LayerKvCache::keys_view`]) straight into that storage. The legacy
//! materializing accessors ([`LayerKvCache::keys`] / [`LayerKvCache::values`]) clone the
//! whole `len x kv_dim` tensor per call — O(T²) over a decoded sequence — and are kept
//! only as the regression baseline; every materialization is counted so tests can assert
//! the hot path never touches them.
//!
//! ## Backends
//!
//! The decode hot path is generic over a cache *backend* ([`KvBackend`]): this module's
//! [`KvCache`] stores dequantized `f32` rows (the accuracy / bit-exactness baseline),
//! while [`PagedKvCache`](crate::paging::PagedKvCache) stores rows genuinely bit-packed
//! in pool-allocated pages — exclusively owned, or refcounted-shared with other
//! sequences under prefix sharing (reads never care which; writes copy-on-write). Both
//! backends feed the attention loop through a per-layer [`KvLayerReader`], so the
//! zero-materialization invariant is backend-independent.

use std::sync::atomic::{AtomicUsize, Ordering};

use mx_formats::QuantScheme;
use mx_tensor::{Matrix, MatrixView};
use serde::{Deserialize, Serialize};

/// The KV cache of one attention layer: keys and values appended token by token.
#[derive(Debug, Serialize, Deserialize)]
pub struct LayerKvCache {
    kv_dim: usize,
    keys: Vec<f32>,
    values: Vec<f32>,
    len: usize,
    /// Reusable per-append quantization buffer (never observable through the read API).
    scratch: Vec<f32>,
    /// Number of full-tensor materializations served (legacy `keys()` / `values()`).
    /// Atomic (not `Cell`) so the cache stays `Sync` and sequences can move freely
    /// between decode worker threads.
    materializations: AtomicUsize,
}

impl Clone for LayerKvCache {
    fn clone(&self) -> Self {
        LayerKvCache {
            kv_dim: self.kv_dim,
            keys: self.keys.clone(),
            values: self.values.clone(),
            len: self.len,
            scratch: self.scratch.clone(),
            materializations: AtomicUsize::new(self.materializations()),
        }
    }
}

impl PartialEq for LayerKvCache {
    fn eq(&self, other: &Self) -> bool {
        // Scratch contents and read-side instrumentation are not part of the cache state.
        self.kv_dim == other.kv_dim && self.len == other.len && self.keys == other.keys && self.values == other.values
    }
}

impl LayerKvCache {
    /// Creates an empty cache for keys/values of width `kv_dim`.
    #[must_use]
    pub fn new(kv_dim: usize) -> Self {
        LayerKvCache::with_capacity(kv_dim, 0)
    }

    /// Creates an empty cache with storage pre-reserved for `positions` tokens, so a
    /// serving loop with a known budget never reallocates (or moves) the row storage.
    #[must_use]
    pub fn with_capacity(kv_dim: usize, positions: usize) -> Self {
        LayerKvCache {
            kv_dim,
            keys: Vec::with_capacity(positions * kv_dim),
            values: Vec::with_capacity(positions * kv_dim),
            len: 0,
            scratch: Vec::new(),
            materializations: AtomicUsize::new(0),
        }
    }

    /// Reserves storage for at least `additional` more positions.
    pub fn reserve(&mut self, additional: usize) {
        self.keys.reserve(additional * self.kv_dim);
        self.values.reserve(additional * self.kv_dim);
    }

    /// Number of cached positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Key/value width.
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Appends one position's key and value rows, fake-quantized with `scheme`
    /// (the cache stores the quantized representation, as a real serving system would).
    /// Quantization goes through one reusable scratch buffer: appends allocate only when
    /// the row storage itself must grow.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not have width `kv_dim`.
    pub fn append(&mut self, key: &[f32], value: &[f32], scheme: QuantScheme) {
        assert_eq!(key.len(), self.kv_dim, "key width mismatch");
        assert_eq!(value.len(), self.kv_dim, "value width mismatch");
        self.scratch.resize(self.kv_dim, 0.0);
        scheme.quantize_dequantize_into(key, &mut self.scratch);
        self.keys.extend_from_slice(&self.scratch);
        scheme.quantize_dequantize_into(value, &mut self.scratch);
        self.values.extend_from_slice(&self.scratch);
        self.len += 1;
    }

    /// One cached key row, borrowed straight from the row storage (no copy).
    ///
    /// # Panics
    ///
    /// Panics if `t >= len`.
    #[must_use]
    pub fn key_row(&self, t: usize) -> &[f32] {
        assert!(t < self.len, "position out of bounds");
        &self.keys[t * self.kv_dim..(t + 1) * self.kv_dim]
    }

    /// One cached value row, borrowed straight from the row storage (no copy).
    ///
    /// # Panics
    ///
    /// Panics if `t >= len`.
    #[must_use]
    pub fn value_row(&self, t: usize) -> &[f32] {
        assert!(t < self.len, "position out of bounds");
        &self.values[t * self.kv_dim..(t + 1) * self.kv_dim]
    }

    /// The cached keys as a borrowed `(len, kv_dim)` view (no copy).
    #[must_use]
    pub fn keys_view(&self) -> MatrixView<'_> {
        MatrixView::new(self.len, self.kv_dim, &self.keys)
    }

    /// The cached values as a borrowed `(len, kv_dim)` view (no copy).
    #[must_use]
    pub fn values_view(&self) -> MatrixView<'_> {
        MatrixView::new(self.len, self.kv_dim, &self.values)
    }

    /// The cached keys as an owned `(len, kv_dim)` matrix.
    ///
    /// This clones the entire cache — the seed's per-token decode cost — and exists only
    /// as the regression baseline and for cold-path consumers; hot paths must use
    /// [`LayerKvCache::keys_view`] / [`LayerKvCache::key_row`]. Every call is recorded in
    /// [`LayerKvCache::materializations`].
    #[must_use]
    pub fn keys(&self) -> Matrix {
        self.materializations.fetch_add(1, Ordering::Relaxed);
        self.keys_view().to_matrix()
    }

    /// The cached values as an owned `(len, kv_dim)` matrix (see [`LayerKvCache::keys`]).
    #[must_use]
    pub fn values(&self) -> Matrix {
        self.materializations.fetch_add(1, Ordering::Relaxed);
        self.values_view().to_matrix()
    }

    /// How many full-tensor materializations ([`LayerKvCache::keys`] /
    /// [`LayerKvCache::values`]) this cache has served. The zero-copy decode path keeps
    /// this at zero; tests assert on it instead of timing.
    #[must_use]
    pub fn materializations(&self) -> usize {
        self.materializations.load(Ordering::Relaxed)
    }

    /// Clears the cache (retaining storage).
    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
        self.len = 0;
    }

    /// Storage in bytes if the cache were held in `scheme`, rounding each stored row up
    /// to whole bytes (rows are the allocation unit of the append-only layout, so partial
    /// trailing blocks cost a full byte per row rather than vanishing in a flattened
    /// average).
    #[must_use]
    pub fn storage_bytes(&self, scheme: QuantScheme) -> usize {
        2 * self.len * Self::row_storage_bytes(self.kv_dim, scheme)
    }

    /// Bytes of backing storage this cache has allocated for row data: this backend
    /// stores the *dequantized* rows, so the commitment is 4 bytes per element of
    /// reserved capacity regardless of the quantization scheme. Counting capacity (not
    /// just rows written) makes the number the allocation-granular analogue of the paged
    /// backend's page occupancy (contrast [`LayerKvCache::storage_bytes`], the
    /// theoretical scheme width of the rows written).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        (self.keys.capacity() + self.values.capacity()) * std::mem::size_of::<f32>()
    }

    /// Bytes one stored row of width `kv_dim` occupies under `scheme` (ceiled per row).
    #[must_use]
    pub fn row_storage_bytes(kv_dim: usize, scheme: QuantScheme) -> usize {
        (kv_dim as f64 * scheme.average_bits_per_element() / 8.0).ceil() as usize
    }
}

/// KV caches for all layers of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCache {
    layers: Vec<LayerKvCache>,
}

impl KvCache {
    /// Creates empty caches for `layers` layers of key/value width `kv_dim`.
    #[must_use]
    pub fn new(layers: usize, kv_dim: usize) -> Self {
        KvCache::with_capacity(layers, kv_dim, 0)
    }

    /// Creates empty caches with per-layer storage pre-reserved for `positions` tokens.
    #[must_use]
    pub fn with_capacity(layers: usize, kv_dim: usize, positions: usize) -> Self {
        KvCache { layers: (0..layers).map(|_| LayerKvCache::with_capacity(kv_dim, positions)).collect() }
    }

    /// The cache of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn layer(&self, layer: usize) -> &LayerKvCache {
        &self.layers[layer]
    }

    /// Mutable access to one layer's cache.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_mut(&mut self, layer: usize) -> &mut LayerKvCache {
        &mut self.layers[layer]
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Sequence length currently cached (same for every layer).
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerKvCache::len)
    }

    /// Reserves storage for at least `additional` more positions in every layer
    /// (a cloned `Vec` keeps only `len` capacity, so clones that will keep decoding
    /// should re-reserve their headroom).
    pub fn reserve(&mut self, additional: usize) {
        for l in &mut self.layers {
            l.reserve(additional);
        }
    }

    /// Total full-tensor materializations served across all layers
    /// (see [`LayerKvCache::materializations`]).
    #[must_use]
    pub fn materializations(&self) -> usize {
        self.layers.iter().map(LayerKvCache::materializations).sum()
    }

    /// Total storage in bytes across all layers if held in `scheme`
    /// (see [`LayerKvCache::storage_bytes`]).
    #[must_use]
    pub fn storage_bytes(&self, scheme: QuantScheme) -> usize {
        self.layers.iter().map(|l| l.storage_bytes(scheme)).sum()
    }

    /// Bytes of backing storage allocated for cache rows across all layers
    /// (see [`LayerKvCache::resident_bytes`]).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.layers.iter().map(LayerKvCache::resident_bytes).sum()
    }

    /// Clears every layer.
    pub fn clear(&mut self) {
        for l in &mut self.layers {
            l.clear();
        }
    }
}

/// Row-level read access to one layer of a KV cache during attention.
///
/// The reader owns whatever per-read state the backend needs: the `f32` backend returns
/// borrowed slices straight into its contiguous row storage (zero work per read), while
/// the paged backend decodes the requested packed row into a reusable dequant scratch
/// buffer and returns that. Either way the returned slice is only guaranteed until the
/// next read, which is exactly the access pattern of the zero-copy attention loop
/// (each row is consumed before the next is requested).
pub trait KvLayerReader {
    /// The cached key row at position `t`.
    fn key_row(&mut self, t: usize) -> &[f32];
    /// The cached value row at position `t`.
    fn value_row(&mut self, t: usize) -> &[f32];

    /// Fused query·key scores against the key row at position `t`, computed straight
    /// from the backend's storage without materializing the row: for every query head
    /// `h`, folds `q[h*head_dim + d] * key[kv(h)*head_dim + d]` into `dots[h]` term by
    /// term (ascending `d`, GQA head mapping from `geom`), starting from `dots[h] = 0`.
    ///
    /// Returns `false` when the backend has no fused path (the default); the caller then
    /// reads [`KvLayerReader::key_row`] and reduces it in the materializing loop. When it
    /// returns `true`, `dots` must be **bit-identical** to that materializing reduction —
    /// same products, same accumulation order — so the two paths stay token-identical.
    fn fused_key_dots(&mut self, _t: usize, _q: &[f32], _geom: AttnGeometry, _dots: &mut [f32]) -> bool {
        false
    }

    /// Fused probs×V accumulation against the value row at position `t`: for every query
    /// head `h` with `probs[h] != 0.0`, adds `probs[h] * value[kv(h)*head_dim + d]` into
    /// `out[h*head_dim + d]` term by term (zero-prob heads are skipped exactly like the
    /// materializing loop skips them).
    ///
    /// Returns `false` when the backend has no fused path (the default). When it returns
    /// `true`, `out` must be bit-identical to the materializing accumulation.
    fn fused_value_accumulate(&mut self, _t: usize, _probs: &[f32], _geom: AttnGeometry, _out: &mut [f32]) -> bool {
        false
    }
}

/// Attention head geometry handed to the fused [`KvLayerReader`] fast paths.
///
/// `heads` query heads of `head_dim` elements each read KV rows of
/// `(heads / group) * head_dim` elements; query head `h` attends to KV head
/// `h / group` (grouped-query attention; `group == 1` is classic multi-head).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttnGeometry {
    /// Number of query heads.
    pub heads: usize,
    /// Elements per head.
    pub head_dim: usize,
    /// Query heads per KV head (GQA group size, ≥ 1).
    pub group: usize,
}

/// A KV-cache backend the transformer's zero-copy decode path can run over.
///
/// Extracted from the concrete [`KvCache`] so the model is agnostic to *how* rows are
/// stored: dequantized `f32` ([`KvCache`]) or bit-packed pages
/// ([`PagedKvCache`](crate::paging::PagedKvCache)). Appends hand the backend the raw
/// (pre-quantization) rows plus the scheme; reads go through a per-layer
/// [`KvLayerReader`]. Both backends must expose rows whose values equal
/// `scheme.quantize_dequantize(row)` bit for bit, which is what makes the backends
/// interchangeable token for token.
pub trait KvBackend {
    /// The per-layer reader type handed to the attention loop.
    type Layer<'a>: KvLayerReader
    where
        Self: 'a;

    /// Reusable per-read working memory the backend's readers decode rows into. Owned by
    /// the *caller* — in the threaded serving engine, by the worker thread — rather than
    /// the cache, so one scratch serves every sequence a worker steps and the caches
    /// themselves stay free of read-side mutable state. `()` for backends whose reads
    /// borrow storage directly (the f32 [`KvCache`]); a buffer pair for the paged backend
    /// ([`PagedScratch`](crate::paging::PagedScratch)).
    type Scratch: Default + Send + std::fmt::Debug;

    /// Number of layers.
    fn num_layers(&self) -> usize;

    /// Sequence length currently cached (same for every layer).
    fn seq_len(&self) -> usize;

    /// Appends one position's key and value rows to `layer`, quantized with `scheme`.
    fn append(&mut self, layer: usize, key: &[f32], value: &[f32], scheme: QuantScheme);

    /// A row reader over `layer`'s cached positions, decoding through `scratch`.
    fn layer_reader<'a>(&'a mut self, layer: usize, scratch: &'a mut Self::Scratch) -> Self::Layer<'a>;

    /// Full-tensor materializations served so far (0 on every hot path).
    fn materializations(&self) -> usize;
}

impl KvLayerReader for &LayerKvCache {
    fn key_row(&mut self, t: usize) -> &[f32] {
        LayerKvCache::key_row(self, t)
    }

    fn value_row(&mut self, t: usize) -> &[f32] {
        LayerKvCache::value_row(self, t)
    }
}

impl KvBackend for KvCache {
    type Layer<'a> = &'a LayerKvCache;
    type Scratch = ();

    fn num_layers(&self) -> usize {
        KvCache::num_layers(self)
    }

    fn seq_len(&self) -> usize {
        KvCache::seq_len(self)
    }

    fn append(&mut self, layer: usize, key: &[f32], value: &[f32], scheme: QuantScheme) {
        self.layer_mut(layer).append(key, value, scheme);
    }

    fn layer_reader<'a>(&'a mut self, layer: usize, (): &'a mut ()) -> Self::Layer<'a> {
        self.layer(layer)
    }

    fn materializations(&self) -> usize {
        KvCache::materializations(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut cache = LayerKvCache::new(4);
        cache.append(&[1.0, 2.0, 3.0, 4.0], &[0.5, 0.5, 0.5, 0.5], QuantScheme::Fp32);
        cache.append(&[-1.0, 0.0, 1.0, 2.0], &[0.1, 0.2, 0.3, 0.4], QuantScheme::Fp32);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.keys().shape(), (2, 4));
        assert_eq!(cache.keys().row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cache.values().row(1), &[0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn views_alias_storage_and_match_materialized_reads() {
        let mut cache = LayerKvCache::new(4);
        for t in 0..6 {
            let row = [t as f32; 4];
            cache.append(&row, &row, QuantScheme::Fp32);
        }
        let keys = cache.keys_view();
        let values = cache.values_view();
        assert_eq!(keys.shape(), (6, 4));
        // Row reads borrow the same storage (pointer-identical, not copies)...
        assert_eq!(cache.key_row(3).as_ptr(), keys.row(3).as_ptr());
        assert_eq!(keys.row(2).as_ptr(), keys.data()[2 * 4..].as_ptr());
        assert_eq!(cache.value_row(5), [5.0; 4]);
        // ...and none of the view reads counted as a materialization.
        assert_eq!(cache.materializations(), 0);
        // The legacy owned accessors return the same numbers but are counted.
        assert_eq!(cache.keys().data(), keys.data());
        assert_eq!(cache.values().data(), values.data());
        assert_eq!(cache.materializations(), 2);
    }

    #[test]
    fn with_capacity_appends_do_not_move_storage() {
        let mut cache = LayerKvCache::with_capacity(8, 64);
        cache.append(&[1.0; 8], &[2.0; 8], QuantScheme::Fp32);
        let p_keys = cache.key_row(0).as_ptr();
        for _ in 1..64 {
            cache.append(&[1.0; 8], &[2.0; 8], QuantScheme::Fp32);
        }
        // Row storage was pre-reserved: 64 appends later, row 0 has not moved.
        assert_eq!(cache.key_row(0).as_ptr(), p_keys);
        assert_eq!(cache.len(), 64);
    }

    #[test]
    fn quantized_cache_is_lossy_but_close() {
        let mut exact = LayerKvCache::new(64);
        let mut quant = LayerKvCache::new(64);
        let key: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let value: Vec<f32> = (0..64).map(|i| (i as f32 * 0.11).cos()).collect();
        exact.append(&key, &value, QuantScheme::Fp32);
        quant.append(&key, &value, QuantScheme::mxfp4());
        let err = mx_formats::metrics::mse(exact.key_row(0), quant.key_row(0));
        assert!(err > 0.0 && err < 0.05);
    }

    #[test]
    fn multi_layer_cache() {
        let mut cache = KvCache::new(3, 8);
        assert_eq!(cache.num_layers(), 3);
        assert_eq!(cache.seq_len(), 0);
        for l in 0..3 {
            cache.layer_mut(l).append(&[0.0; 8], &[0.0; 8], QuantScheme::Fp32);
        }
        assert_eq!(cache.seq_len(), 1);
        cache.clear();
        assert_eq!(cache.seq_len(), 0);
    }

    #[test]
    fn storage_accounting() {
        let mut cache = LayerKvCache::new(32);
        for _ in 0..10 {
            cache.append(&[0.1; 32], &[0.2; 32], QuantScheme::Fp32);
        }
        // 2 * 10 rows of 32 elements: MXFP4 at 4.25 bits -> 17 bytes/row, BF16 -> 64.
        assert_eq!(cache.storage_bytes(QuantScheme::mxfp4()), 340);
        assert_eq!(cache.storage_bytes(QuantScheme::Bf16), 1280);
    }

    #[test]
    fn storage_accounting_ceils_per_row() {
        // kv_dim = 40 under MXFP4: 40 * 4.25 = 170 bits = 21.25 bytes -> 22 bytes per
        // stored row. The old flattened accounting (2*3*40 elements * 4.25 bits / 8,
        // ceiled once) reported 128 bytes, undercounting the partial trailing block of
        // every row.
        assert_eq!(LayerKvCache::row_storage_bytes(40, QuantScheme::mxfp4()), 22);
        let mut cache = LayerKvCache::new(40);
        for _ in 0..3 {
            cache.append(&[0.3; 40], &[0.4; 40], QuantScheme::Fp32);
        }
        assert_eq!(cache.storage_bytes(QuantScheme::mxfp4()), 132);
        assert!(cache.storage_bytes(QuantScheme::mxfp4()) > 128);
    }

    #[test]
    fn whole_cache_storage_sums_layers() {
        let mut cache = KvCache::new(2, 32);
        for l in 0..2 {
            for _ in 0..4 {
                cache.layer_mut(l).append(&[0.1; 32], &[0.1; 32], QuantScheme::Fp32);
            }
        }
        assert_eq!(cache.storage_bytes(QuantScheme::mxfp4()), 2 * 2 * 4 * 17);
        assert_eq!(cache.materializations(), 0);
    }

    #[test]
    #[should_panic(expected = "key width mismatch")]
    fn append_validates_width() {
        let mut cache = LayerKvCache::new(4);
        cache.append(&[1.0; 3], &[1.0; 4], QuantScheme::Fp32);
    }

    #[test]
    #[should_panic(expected = "position out of bounds")]
    fn row_reads_validate_position() {
        let mut cache = LayerKvCache::new(4);
        cache.append(&[1.0; 4], &[1.0; 4], QuantScheme::Fp32);
        let _ = cache.key_row(1);
    }
}
