//! Key/value cache for autoregressive decoding.
//!
//! Following the paper's methodology, the cached keys and values participate in dot
//! products (attention scores and attention-weighted sums) and are therefore quantized
//! with the same scheme as other dot-product operands.

use mx_formats::QuantScheme;
use mx_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// The KV cache of one attention layer: keys and values appended token by token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerKvCache {
    kv_dim: usize,
    keys: Vec<f32>,
    values: Vec<f32>,
    len: usize,
}

impl LayerKvCache {
    /// Creates an empty cache for keys/values of width `kv_dim`.
    #[must_use]
    pub fn new(kv_dim: usize) -> Self {
        LayerKvCache { kv_dim, keys: Vec::new(), values: Vec::new(), len: 0 }
    }

    /// Number of cached positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Key/value width.
    #[must_use]
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Appends one position's key and value rows, fake-quantized with `scheme`
    /// (the cache stores the quantized representation, as a real serving system would).
    ///
    /// # Panics
    ///
    /// Panics if the rows do not have width `kv_dim`.
    pub fn append(&mut self, key: &[f32], value: &[f32], scheme: QuantScheme) {
        assert_eq!(key.len(), self.kv_dim, "key width mismatch");
        assert_eq!(value.len(), self.kv_dim, "value width mismatch");
        self.keys.extend(scheme.quantize_dequantize(key));
        self.values.extend(scheme.quantize_dequantize(value));
        self.len += 1;
    }

    /// The cached keys as a `(len, kv_dim)` matrix.
    #[must_use]
    pub fn keys(&self) -> Matrix {
        Matrix::from_vec(self.len, self.kv_dim, self.keys.clone())
    }

    /// The cached values as a `(len, kv_dim)` matrix.
    #[must_use]
    pub fn values(&self) -> Matrix {
        Matrix::from_vec(self.len, self.kv_dim, self.values.clone())
    }

    /// Clears the cache.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
        self.len = 0;
    }

    /// Storage in bytes if the cache were held in a format of the given average width.
    #[must_use]
    pub fn storage_bytes(&self, bits_per_element: f64) -> usize {
        ((2 * self.len * self.kv_dim) as f64 * bits_per_element / 8.0).ceil() as usize
    }
}

/// KV caches for all layers of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvCache {
    layers: Vec<LayerKvCache>,
}

impl KvCache {
    /// Creates empty caches for `layers` layers of key/value width `kv_dim`.
    #[must_use]
    pub fn new(layers: usize, kv_dim: usize) -> Self {
        KvCache { layers: (0..layers).map(|_| LayerKvCache::new(kv_dim)).collect() }
    }

    /// The cache of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn layer(&self, layer: usize) -> &LayerKvCache {
        &self.layers[layer]
    }

    /// Mutable access to one layer's cache.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_mut(&mut self, layer: usize) -> &mut LayerKvCache {
        &mut self.layers[layer]
    }

    /// Number of layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Sequence length currently cached (same for every layer).
    #[must_use]
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerKvCache::len)
    }

    /// Clears every layer.
    pub fn clear(&mut self) {
        for l in &mut self.layers {
            l.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut cache = LayerKvCache::new(4);
        cache.append(&[1.0, 2.0, 3.0, 4.0], &[0.5, 0.5, 0.5, 0.5], QuantScheme::Fp32);
        cache.append(&[-1.0, 0.0, 1.0, 2.0], &[0.1, 0.2, 0.3, 0.4], QuantScheme::Fp32);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.keys().shape(), (2, 4));
        assert_eq!(cache.keys().row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cache.values().row(1), &[0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn quantized_cache_is_lossy_but_close() {
        let mut exact = LayerKvCache::new(64);
        let mut quant = LayerKvCache::new(64);
        let key: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let value: Vec<f32> = (0..64).map(|i| (i as f32 * 0.11).cos()).collect();
        exact.append(&key, &value, QuantScheme::Fp32);
        quant.append(&key, &value, QuantScheme::mxfp4());
        let err = mx_formats::metrics::mse(exact.keys().row(0), quant.keys().row(0));
        assert!(err > 0.0 && err < 0.05);
    }

    #[test]
    fn multi_layer_cache() {
        let mut cache = KvCache::new(3, 8);
        assert_eq!(cache.num_layers(), 3);
        assert_eq!(cache.seq_len(), 0);
        for l in 0..3 {
            cache.layer_mut(l).append(&[0.0; 8], &[0.0; 8], QuantScheme::Fp32);
        }
        assert_eq!(cache.seq_len(), 1);
        cache.clear();
        assert_eq!(cache.seq_len(), 0);
    }

    #[test]
    fn storage_accounting() {
        let mut cache = LayerKvCache::new(32);
        for _ in 0..10 {
            cache.append(&[0.1; 32], &[0.2; 32], QuantScheme::Fp32);
        }
        // 2 * 10 * 32 elements at 4.25 bits.
        assert_eq!(cache.storage_bytes(4.25), 340);
        assert_eq!(cache.storage_bytes(16.0), 1280);
    }

    #[test]
    #[should_panic(expected = "key width mismatch")]
    fn append_validates_width() {
        let mut cache = LayerKvCache::new(4);
        cache.append(&[1.0; 3], &[1.0; 4], QuantScheme::Fp32);
    }
}
