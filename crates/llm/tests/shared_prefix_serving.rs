//! ISSUE-5 acceptance tests for refcounted shared pages: prefix sharing, copy-on-write
//! and preemption in the paged serving engine.
//!
//! * a shared-prefix batch decodes **bit-identically** to the same batch without
//!   sharing, on the f32 and paged backends, at 1 and 4 worker threads;
//! * resident bytes shrink as the shared-prefix sequence count grows (one copy of the
//!   prompt pages instead of N), measured through `ServingReport`;
//! * a non-aligned prefix exercises copy-on-write while the donor keeps decoding —
//!   still token-identical;
//! * a high-priority arrival preempts a low-priority running sequence (spill → restore)
//!   and both resume bit-identically at 1 and 4 threads, with `FinishReason::Evicted`
//!   reserved for true capacity failure.

use mx_llm::{FinishReason, ModelConfig, ModelQuantConfig, ServingEngine, SubmitOptions, TransformerModel};

fn model() -> TransformerModel {
    // The paper's headline serving configuration: A-MXFP4+, W-MXFP4.
    TransformerModel::new(ModelConfig::tiny_test(31), ModelQuantConfig::a_mxfp4_plus())
}

/// A batch of prompts sharing a `common`-token prefix (spanning full pages plus a
/// non-aligned boundary under 16-position pages), each diverging afterwards.
fn shared_prefix_prompts(n: usize, common: usize) -> Vec<Vec<usize>> {
    let prefix: Vec<usize> = (0..common).map(|i| (i * 19 + 5) % 128).collect();
    (0..n)
        .map(|s| {
            let mut p = prefix.clone();
            p.push((100 + s * 3) % 128);
            p.push((7 + s) % 128);
            p
        })
        .collect()
}

/// The tentpole pin: sharing changes memory and prefill work — never a token. The same
/// shared-prefix batch runs on the paged backend with and without sharing and on the f32
/// baseline, at 1 and 4 threads; all six runs must agree stream for stream.
#[test]
fn shared_prefix_batch_is_token_identical_across_backends_and_threads() {
    let model = model();
    // 35 common tokens = 2 full 16-position pages + a 3-position boundary (COW target).
    let prompts = shared_prefix_prompts(4, 35);
    let new_tokens = 16;

    let paged = |share: bool, threads: usize| {
        let mut engine = ServingEngine::paged(&model, 96).with_threads(threads);
        for p in &prompts {
            let opts = SubmitOptions::new(new_tokens);
            engine.submit_with(p, if share { opts } else { opts.without_prefix_sharing() });
        }
        let report = engine.run();
        let pool = engine.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0, "pages leaked (share={share}, threads={threads})");
        assert_eq!(pool.reserved_pages(), 0, "reservations leaked (share={share}, threads={threads})");
        let streams: Vec<Vec<usize>> = engine.sequences().iter().map(|s| s.generated.clone()).collect();
        (report, streams)
    };
    let f32_run = |threads: usize| {
        let mut engine = ServingEngine::new(&model).with_threads(threads);
        for p in &prompts {
            engine.submit_with(p, SubmitOptions::new(new_tokens));
        }
        engine.run();
        engine.sequences().iter().map(|s| s.generated.clone()).collect::<Vec<Vec<usize>>>()
    };

    let (shared_1, streams_shared_1) = paged(true, 1);
    let (_, streams_shared_4) = paged(true, 4);
    let (plain_1, streams_plain_1) = paged(false, 1);
    let (_, streams_plain_4) = paged(false, 4);
    let streams_f32_1 = f32_run(1);
    let streams_f32_4 = f32_run(4);

    assert_eq!(streams_shared_1, streams_plain_1, "sharing changed tokens (paged, 1 thread)");
    assert_eq!(streams_shared_1, streams_shared_4, "shared batch diverges between 1 and 4 threads");
    assert_eq!(streams_plain_1, streams_plain_4, "unshared batch diverges between 1 and 4 threads");
    assert_eq!(streams_shared_1, streams_f32_1, "paged-shared diverges from the f32 baseline");
    assert_eq!(streams_f32_1, streams_f32_4, "f32 batch diverges between 1 and 4 threads");
    for (stream, p) in streams_shared_1.iter().zip(&prompts) {
        assert_eq!(stream, &model.generate_greedy(p, new_tokens), "batched stream diverges from solo generation");
    }

    // The sharing actually happened and was measured: 3 recipients each mapped
    // 2 layers x 3 pages and skipped 35 prefill positions.
    assert_eq!(shared_1.shared_pages, 3 * 2 * 3);
    assert_eq!(shared_1.prefill_tokens_saved, 3 * 35);
    assert_eq!(plain_1.shared_pages, 0);
    assert!(shared_1.resident_bytes < plain_1.resident_bytes, "sharing must shrink peak residency");
}

/// The memory half of the tentpole: for N sequences sharing a long prompt, the unshared
/// peak residency grows ~linearly in N while the shared one keeps a single copy of the
/// prefix pages — the gap must widen monotonically with N.
#[test]
fn resident_bytes_shrink_as_shared_sequence_count_grows() {
    let model = model();
    let new_tokens = 4;
    let mut savings = Vec::new();
    for n in [2usize, 4, 8] {
        let prompts = shared_prefix_prompts(n, 64); // 4 full pages of shared prompt
        let run = |share: bool| {
            let mut engine = ServingEngine::paged(&model, 160).with_threads(1);
            for p in &prompts {
                let opts = SubmitOptions::new(new_tokens);
                engine.submit_with(p, if share { opts } else { opts.without_prefix_sharing() });
            }
            engine.run()
        };
        let shared = run(true);
        let plain = run(false);
        assert_eq!(shared.generated_tokens, plain.generated_tokens);
        assert!(shared.shared_pages > 0, "bench invariant: shared_pages must be reported > 0");
        assert!(
            shared.resident_bytes < plain.resident_bytes,
            "sharing must shrink residency at n={n}: {} vs {}",
            shared.resident_bytes,
            plain.resident_bytes
        );
        savings.push(plain.resident_bytes - shared.resident_bytes);
    }
    assert!(savings.windows(2).all(|w| w[0] < w[1]), "savings must grow with the sequence count: {savings:?}");
}

/// Copy-on-write under decode pressure: a non-aligned shared boundary page is written by
/// donor *and* recipients while all of them keep decoding, at 1 and 4 threads. Every
/// stream must still match solo generation (no holder ever observes another's write).
#[test]
fn copy_on_write_boundary_stays_token_identical_under_parallel_decode() {
    let model = model();
    // 21 common tokens: 1 full page + a 5-position boundary page shared by all.
    let prompts = shared_prefix_prompts(6, 21);
    let run = |threads: usize| {
        let mut engine = ServingEngine::paged(&model, 96).with_threads(threads);
        for p in &prompts {
            engine.submit_with(p, SubmitOptions::new(24));
        }
        let report = engine.run();
        assert!(report.prefill_tokens_saved > 0, "boundary sharing must engage at {threads} threads");
        let pool = engine.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0);
        engine.sequences().iter().map(|s| s.generated.clone()).collect::<Vec<_>>()
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential, parallel, "COW workload diverges between 1 and 4 threads");
    for (stream, p) in sequential.iter().zip(&prompts) {
        assert_eq!(stream, &model.generate_greedy(p, 24), "COW corrupted a stream");
    }
}

/// Preemption end to end: a high-priority request arrives (deterministically, via
/// `arrival_pass`) while low-priority sequences hold the whole pool. The scheduler must
/// spill victims, run the urgent request, restore the victims bit-identically — and
/// never label any of it `Evicted`. Pinned at 1 and 4 threads.
#[test]
fn preemption_swaps_out_and_restores_identically_at_1_and_4_threads() {
    let model = model();
    let run = |threads: usize| {
        // 8-page pool: two low-priority sequences fill it (2 layers x 2 pages each);
        // the urgent arrival needs 6 pages, forcing at least one spill.
        let mut engine = ServingEngine::paged(&model, 8).with_threads(threads);
        engine.submit_with(&[3, 1, 4], SubmitOptions::new(24));
        engine.submit_with(&[2, 7, 2], SubmitOptions::new(24));
        engine.submit_with(&[9, 9], SubmitOptions::new(40).priority(1).arrival_pass(4));
        let report = engine.run();
        assert!(report.preemptions >= 1, "pool pressure must preempt, not stall, at {threads} threads");
        assert_eq!(report.evicted, 0, "preemption must never be reported as eviction");
        assert_eq!(report.finished_length, 3);
        let pool = engine.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0, "pages leaked at {threads} threads");
        assert_eq!(pool.reserved_pages(), 0);
        let outcomes: Vec<(Vec<usize>, Option<FinishReason>)> =
            engine.sequences().iter().map(|s| (s.generated.clone(), s.finish_reason())).collect();
        (report.preemptions, outcomes)
    };
    let (preemptions_1, outcomes_1) = run(1);
    let (preemptions_4, outcomes_4) = run(4);
    assert_eq!(outcomes_1, outcomes_4, "preemption workload diverges between 1 and 4 threads");
    assert_eq!(preemptions_1, preemptions_4, "preemption decisions diverge between thread counts");
    // Every stream — including the preempted-and-restored ones — matches solo greedy.
    assert_eq!(outcomes_1[0].0, model.generate_greedy(&[3, 1, 4], 24));
    assert_eq!(outcomes_1[1].0, model.generate_greedy(&[2, 7, 2], 24));
    assert_eq!(outcomes_1[2].0, model.generate_greedy(&[9, 9], 40));
}

/// Eviction semantics are untouched: only a request larger than the entire pool is
/// evicted, even when preemption-eligible victims are running.
#[test]
fn eviction_is_reserved_for_true_capacity_failure() {
    let model = model();
    let mut engine = ServingEngine::paged(&model, 6).with_threads(1);
    engine.submit_with(&[1, 2], SubmitOptions::new(12));
    // Higher priority than the running sequence, but needs 2 * ceil(202/16) = 26 pages:
    // preempting everything still could not fit it, so it must be evicted — and the
    // running victim must NOT be spilled for a hopeless request.
    engine.submit_with(&[3, 4], SubmitOptions::new(200).priority(5).arrival_pass(2));
    let report = engine.run();
    assert_eq!(report.evicted, 1);
    assert_eq!(report.preemptions, 0, "no victim may be spilled for an unadmittable request");
    assert_eq!(report.finished_length, 1);
    assert_eq!(engine.sequences()[1].finish_reason(), Some(FinishReason::Evicted));
    assert_eq!(engine.sequences()[0].generated, model.generate_greedy(&[1, 2], 12));
}

/// Sharing composes with continuous batching: recipients can arrive in later admission
/// waves (after the donor already decoded past its prompt) and still map its prompt
/// pages — donors stay shareable for their whole residency, not just right after
/// prefill.
#[test]
fn late_arrivals_share_a_long_resident_donor() {
    let model = model();
    let prompts = shared_prefix_prompts(3, 32);
    let mut engine = ServingEngine::paged(&model, 64).with_threads(2);
    engine.submit_with(&prompts[0], SubmitOptions::new(32));
    engine.submit_with(&prompts[1], SubmitOptions::new(8).arrival_pass(6));
    engine.submit_with(&prompts[2], SubmitOptions::new(8).arrival_pass(12));
    let report = engine.run();
    // Both late arrivals shared the 2 full prompt pages per layer (the donor's boundary
    // page may or may not still be partial by then; full pages are guaranteed).
    assert!(report.prefill_tokens_saved >= 2 * 32, "late arrivals must share the resident prompt");
    assert_eq!(report.shared_pages % 2, 0);
    for (seq, p) in engine.sequences().iter().zip(&prompts) {
        assert_eq!(seq.generated, model.generate_greedy(p, seq.max_new_tokens), "sequence {}", seq.id);
    }
    let pool = engine.pool().unwrap();
    assert_eq!(pool.in_use_pages(), 0);
}
