//! ISSUE-4 acceptance tests for the thread-parallel continuous-batching decode loop:
//!
//! * parallel decode is **token-identical** to sequential, pinned at ≥ 256 decoded
//!   tokens on both the f32-contiguous and the paged-packed backends;
//! * an oversubscribed stress workload (staggered admission, stop tokens, an evicted
//!   giant, mixed sampling) produces identical per-sequence token streams, finish
//!   reasons and final pool occupancy at 1 and 4 threads — no leaked or double-freed
//!   pages under contention;
//! * the serving stack is audited `Send + Sync` at compile time, so no
//!   `Rc<RefCell<..>>`-style sharing can creep back into the public API.

use mx_llm::{
    Category, DecodePath, DrainReport, Event, EventKind, FaultKind, FaultPlan, FinishReason, Histogram, KvCache,
    LatencySummary, LayerKvCache, ModelConfig, ModelQuantConfig, MonotonicClock, PagePool, PagedKvCache,
    PagedLayerReader, PagedScratch, PagingError, QuantileSummary, RecoveryPolicy, Sampling, Sequence, ServingEngine,
    ServingReport, SharedPrefix, SpilledKv, SubmitOptions, Telemetry, TelemetryConfig, TestClock, Trace,
    TransformerModel,
};

fn model() -> TransformerModel {
    // The paper's headline serving configuration: A-MXFP4+, W-MXFP4.
    TransformerModel::new(ModelConfig::tiny_test(29), ModelQuantConfig::a_mxfp4_plus())
}

/// Compile-time audit: the whole serving stack must be shareable across threads.
#[test]
fn serving_stack_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TransformerModel>();
    assert_send_sync::<PagePool>();
    assert_send_sync::<PagedKvCache>();
    assert_send_sync::<PagedScratch>();
    assert_send_sync::<KvCache>();
    assert_send_sync::<LayerKvCache>();
    assert_send_sync::<Sequence>();
    assert_send_sync::<ServingEngine<'_>>();
    assert_send_sync::<ServingReport>();
    assert_send_sync::<Sampling>();
    assert_send_sync::<SubmitOptions>();
    assert_send_sync::<SpilledKv>();
    assert_send_sync::<PagingError>();
    assert_send_sync::<SharedPrefix>();
    assert_send_sync::<PagedLayerReader<'static>>();
    assert_send_sync::<FinishReason>();
    // Fault-tolerance surface (ISSUE-9): plans are built on one thread and installed on
    // an engine that fans out across workers; reports cross the drain/shutdown boundary.
    assert_send_sync::<FaultPlan>();
    assert_send_sync::<FaultKind>();
    assert_send_sync::<RecoveryPolicy>();
    assert_send_sync::<DrainReport>();
    // Telemetry types reachable from the serving API (ISSUE-8): the hub is shared by
    // every worker thread, and reports embed the summary types.
    assert_send_sync::<Telemetry>();
    assert_send_sync::<TelemetryConfig>();
    assert_send_sync::<Trace>();
    assert_send_sync::<Event>();
    assert_send_sync::<EventKind>();
    assert_send_sync::<Category>();
    assert_send_sync::<Histogram>();
    assert_send_sync::<LatencySummary>();
    assert_send_sync::<QuantileSummary>();
    assert_send_sync::<MonotonicClock>();
    assert_send_sync::<TestClock>();
}

/// 4 sequences × 64 tokens = 256 decoded tokens on the f32 backend: 4-thread output must
/// equal 1-thread output must equal solo greedy generation.
#[test]
fn f32_parallel_decode_is_token_identical_at_256_tokens() {
    let model = model();
    let prompts: [&[usize]; 4] = [&[1, 2, 3, 4], &[9, 8, 7], &[5, 5, 5, 5, 5], &[100, 90, 80]];
    let run = |threads: usize| {
        let mut engine = ServingEngine::new(&model).with_threads(threads);
        for p in prompts {
            engine.submit_with(p, SubmitOptions::new(64));
        }
        let report = engine.run();
        assert_eq!(report.generated_tokens, 256);
        assert_eq!(report.num_threads, threads);
        assert_eq!(report.cache_materializations, 0);
        engine.sequences().iter().map(|s| s.generated.clone()).collect::<Vec<_>>()
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential, parallel, "f32 backend diverges between 1 and 4 threads");
    for (stream, p) in sequential.iter().zip(prompts) {
        assert_eq!(stream, &model.generate_greedy(p, 64), "batched stream diverges from solo generation");
    }
}

/// The same 256-token pin on the paged-packed backend, where parallel workers also
/// contend on the page pool's allocator for page-boundary allocations.
#[test]
fn paged_parallel_decode_is_token_identical_at_256_tokens() {
    let model = model();
    let prompts: [&[usize]; 4] = [&[1, 2, 3, 4], &[9, 8, 7], &[5, 5, 5, 5, 5], &[100, 90, 80]];
    let run = |threads: usize| {
        let mut engine = ServingEngine::paged(&model, 64).with_threads(threads);
        for p in prompts {
            engine.submit_with(p, SubmitOptions::new(64));
        }
        let report = engine.run();
        assert_eq!(report.backend, "paged-packed");
        assert_eq!(report.generated_tokens, 256);
        assert_eq!(report.cache_materializations, 0);
        let pool = engine.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0, "pages leaked at {threads} threads");
        assert_eq!(pool.reserved_pages(), 0);
        engine.sequences().iter().map(|s| s.generated.clone()).collect::<Vec<_>>()
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential, parallel, "paged backend diverges between 1 and 4 threads");
    for (stream, p) in sequential.iter().zip(prompts) {
        assert_eq!(stream, &model.generate_greedy(p, 64), "paged stream diverges from solo generation");
    }
}

/// The SeedClone decode path (the pre-refactor baseline) must also be steppable by the
/// worker pool — its caches are plain owned state like everything else.
#[test]
fn seed_clone_path_runs_on_the_worker_pool() {
    let model = model();
    let mut parallel = ServingEngine::with_path(&model, DecodePath::SeedClone).with_threads(4);
    let mut sequential = ServingEngine::with_path(&model, DecodePath::SeedClone).with_threads(1);
    for engine in [&mut parallel, &mut sequential] {
        engine.submit_with(&[4, 4, 2], SubmitOptions::new(16));
        engine.submit_with(&[11, 3], SubmitOptions::new(16));
    }
    parallel.run();
    sequential.run();
    for (a, b) in parallel.sequences().iter().zip(sequential.sequences()) {
        assert_eq!(a.generated, b.generated, "SeedClone diverges between thread counts");
    }
}

/// One oversubscribed workload — staggered admissions, a stop token, an unadmittable
/// giant, greedy and seeded-sampled sequences side by side — run at 1 and 4 threads.
/// Everything observable must match: token streams, finish reasons, per-sequence cached
/// positions, and the pool must drain to exactly its full budget both times.
#[test]
fn oversubscribed_stress_workload_is_identical_at_1_and_4_threads() {
    let model = model();
    let stop = model.generate_greedy(&[6, 7, 8], 13)[6];
    let run = |threads: usize| {
        // 6-page pool; each small sequence needs 2 pages (2 layers × 1 page), so at most
        // 3 are resident while 9 more wait; the giant (needs 2 × ceil(203/16) = 26
        // pages) can never be admitted.
        let mut engine = ServingEngine::paged(&model, 6).with_threads(threads);
        for s in 0..12usize {
            let prompt = [s + 1, s + 2, s + 3];
            match s % 3 {
                // Greedy with a stop token drawn from the matching free-running stream.
                0 if s == 6 => engine.submit_with(&[6, 7, 8], SubmitOptions::new(13).stop_token(stop)),
                // Seeded top-k: sampled sequences must be just as reproducible.
                1 => engine.submit_with(&prompt, SubmitOptions::new(11).sampling(Sampling::top_k(4, 0.9, 2024))),
                // Plain greedy.
                _ => engine.submit_with(&prompt, SubmitOptions::new(13)),
            };
        }
        engine.submit_with(&[1, 2, 3], SubmitOptions::new(200)); // the unadmittable giant
        let report = engine.run();
        let pool = engine.pool().unwrap();
        assert_eq!(pool.in_use_pages(), 0, "pages leaked at {threads} threads");
        assert_eq!(pool.reserved_pages(), 0, "reservations leaked at {threads} threads");
        assert_eq!(pool.free_pages(), pool.total_pages(), "pool must drain at {threads} threads");
        assert!(report.resident_bytes <= pool.total_pages() * pool.page_bytes());
        let outcomes: Vec<(Vec<usize>, Option<FinishReason>, usize)> =
            engine.sequences().iter().map(|s| (s.generated.clone(), s.finish_reason(), s.cached_positions())).collect();
        (report, outcomes)
    };

    let (report_1, outcomes_1) = run(1);
    let (report_4, outcomes_4) = run(4);

    assert_eq!(outcomes_1, outcomes_4, "stress workload diverges between 1 and 4 threads");
    assert_eq!(report_1.generated_tokens, report_4.generated_tokens);
    assert_eq!(report_1.finished_length, report_4.finished_length);
    assert_eq!(report_1.finished_stop, report_4.finished_stop);
    assert_eq!(report_1.evicted, report_4.evicted);
    assert_eq!(report_1.prompt_tokens, report_4.prompt_tokens);

    // The workload actually exercised every finish reason.
    assert_eq!(report_1.sequences, 13);
    assert_eq!(report_1.evicted, 1);
    assert_eq!(report_1.finished_stop, 1);
    assert!(report_1.finished_length >= 10);
    assert_eq!(report_1.finished_length + report_1.finished_stop + report_1.evicted, report_1.sequences);
}
