//! ISSUE-3 acceptance tests for the paged KV-cache subsystem and the continuous-batching
//! scheduler:
//!
//! * a 256-token batched decode over the paged-packed backend is **token-identical** to
//!   the f32 `ZeroCopy` path, with zero full-cache materializations;
//! * under a 4-bit scheme the paged cache's measured `resident_bytes` is ≥ 4x smaller
//!   than the f32 baseline's for the same sequence set;
//! * an over-subscribed run admits late sequences as earlier ones finish, accounts for
//!   every sequence in the final report, and returns every page to the pool.

use mx_formats::QuantScheme;
use mx_llm::{FinishReason, ModelConfig, ModelQuantConfig, ServingEngine, SubmitOptions, TransformerModel};

fn model() -> TransformerModel {
    // The paper's headline serving configuration: A-MXFP4+, W-MXFP4 (the KV cache is a
    // weight-side operand, so it stores 4-bit MXFP4 blocks).
    TransformerModel::new(ModelConfig::tiny_test(23), ModelQuantConfig::a_mxfp4_plus())
}

#[test]
fn paged_256_token_batched_decode_is_token_identical_and_4x_smaller() {
    let model = model();
    assert_eq!(model.quant().kv_cache, QuantScheme::mxfp4());
    let prompts: [&[usize]; 4] = [&[1, 2, 3, 4], &[9, 8, 7], &[5, 5, 5, 5, 5], &[100, 90, 80]];

    let mut flat = ServingEngine::new(&model);
    let mut paged = ServingEngine::paged(&model, 64);
    for p in prompts {
        flat.submit_with(p, SubmitOptions::new(64));
        paged.submit_with(p, SubmitOptions::new(64));
    }
    let flat_report = flat.run();
    let paged_report = paged.run();

    // 4 sequences x 64 tokens: a 256-token batched decode.
    assert_eq!(paged_report.generated_tokens, 256);
    assert_eq!(flat_report.generated_tokens, 256);

    // Token-identical output across backends, sequence by sequence.
    for (a, b) in flat.sequences().iter().zip(paged.sequences()) {
        assert_eq!(a.generated, b.generated, "sequence {} diverges between f32 and paged backends", a.id);
        assert_eq!(a.generated.len(), 64);
    }

    // Zero full-cache materializations on either backend.
    assert_eq!(paged_report.cache_materializations, 0);
    assert_eq!(flat_report.cache_materializations, 0);

    // The f32 backend measures full f32 row allocations; the paged backend measures
    // packed pages. MXFP4 packs 64-element rows to 34 bytes vs 256 bytes of f32 (7.5x);
    // page slack at 16-position granularity still leaves well over the required 4x.
    assert!(flat_report.resident_bytes >= flat_report.theoretical_bytes_fp32);
    assert!(
        paged_report.resident_bytes * 4 <= flat_report.resident_bytes,
        "paged resident bytes must be >=4x below the f32 baseline: {} vs {}",
        paged_report.resident_bytes,
        flat_report.resident_bytes
    );
    // And the measured number sits close to (never below) the theoretical scheme bytes.
    assert!(paged_report.resident_bytes >= paged_report.theoretical_bytes);
    assert!(paged_report.resident_bytes <= paged_report.theoretical_bytes * 3 / 2);
}

#[test]
fn oversubscribed_continuous_batching_accounts_for_every_sequence() {
    let model = model();
    // Every sequence needs 2 layers x ceil((3 + 13)/16) = 2 pages. A 6-page pool admits
    // at most 3 concurrently; 8 submissions (worst case 16 pages) must therefore be
    // admitted in waves as earlier sequences retire and return their pages.
    let mut engine = ServingEngine::paged(&model, 6);
    let mut stop = None;
    for s in 0..8usize {
        let prompt = [s + 1, s + 2, s + 3];
        if s == 5 {
            // Give one sequence a stop token it will actually produce, taken from its own
            // free-running generation, to mix finish reasons into the same run.
            stop = Some(model.generate_greedy(&prompt, 13)[6]);
            engine.submit_with(&prompt, SubmitOptions::new(13).stop_token(stop));
        } else {
            engine.submit_with(&prompt, SubmitOptions::new(13));
        }
    }
    let report = engine.run();

    // Every sequence is accounted for: finished (by length or stop) or evicted.
    assert_eq!(report.sequences, 8);
    assert_eq!(report.finished_length + report.finished_stop + report.evicted, 8);
    assert_eq!(report.finished_stop, 1);
    assert_eq!(report.evicted, 0);
    for seq in engine.sequences() {
        assert!(seq.is_finished(), "sequence {} left unfinished", seq.id);
        // Interleaved, wave-admitted decoding still matches solo greedy generation.
        let solo = model.generate_greedy(&seq.prompt, 13);
        if seq.finish_reason() == Some(FinishReason::Stop) {
            let n = seq.generated.len();
            assert!(n < 13, "stop must cut generation short");
            assert_eq!(seq.generated, solo[..n]);
            assert!(!seq.generated.contains(&stop.unwrap()));
        } else {
            assert_eq!(seq.generated, solo, "sequence {}", seq.id);
        }
    }

    // Pages fully returned to the pool...
    let pool = engine.pool().unwrap();
    assert_eq!(pool.in_use_pages(), 0);
    assert_eq!(pool.reserved_pages(), 0);
    assert_eq!(pool.free_pages(), pool.total_pages());
    // ...and peak occupancy never exceeded the budget, proving the 8 sequences were
    // genuinely staggered rather than admitted at once.
    assert!(report.resident_bytes <= pool.total_pages() * pool.page_bytes());
    assert!(report.resident_bytes > 0);
}
