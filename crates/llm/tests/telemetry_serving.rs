//! ISSUE-8 acceptance tests for serving-engine observability:
//!
//! * a multi-sequence paged run reports **non-degenerate** TTFT/TPOT/pass/queue-wait
//!   quantiles, with TTFT bounded by the run's wall time;
//! * the drained trace carries all four event categories and, per sequence, a
//!   **monotone** lifecycle (submitted → admitted → first_token → retired);
//! * telemetry enabled vs. disabled is **token-identical** — tracing observes the
//!   schedule, it never perturbs it;
//! * under a fixed [`TestClock`] a single-threaded run renders byte-identical Chrome
//!   trace JSON across repeats;
//! * [`ServingReport::worker_decode_steps`] accounts every scheduler step.

use std::sync::Arc;

use mx_llm::{
    Category, EventKind, ModelConfig, ModelQuantConfig, ServingEngine, ServingReport, SubmitOptions, TelemetryConfig,
    TestClock, Trace, TransformerModel,
};

fn model() -> TransformerModel {
    // The paper's headline serving configuration: A-MXFP4+, W-MXFP4.
    TransformerModel::new(ModelConfig::tiny_test(29), ModelQuantConfig::a_mxfp4_plus())
}

/// A small continuous-batching workload: four staggered paged sequences on a pool tight
/// enough to queue some of them (non-zero queue wait), run on `threads` workers.
fn run_traced(threads: usize, config: TelemetryConfig) -> (ServingReport, Option<Trace>, Vec<Vec<usize>>) {
    let model = model();
    let mut engine = ServingEngine::paged(&model, 24).with_threads(threads).with_telemetry(config);
    engine.submit_with(&[1, 2, 3, 4], SubmitOptions::new(24));
    engine.submit_with(&[9, 8, 7], SubmitOptions::new(24));
    engine.submit_with(&[5, 5, 5, 5, 5], SubmitOptions::new(24).arrival_pass(2));
    engine.submit_with(&[100, 90, 80], SubmitOptions::new(24).arrival_pass(3));
    let report = engine.run();
    let trace = engine.take_trace();
    let tokens = engine.sequences().iter().map(|s| s.generated.clone()).collect();
    (report, trace, tokens)
}

#[test]
fn report_carries_non_degenerate_latency_quantiles() {
    let (report, _, _) = run_traced(2, TelemetryConfig::On);
    let lat = &report.latency;
    // One TTFT and one queue-wait sample per sequence, one TPOT sample per decoded
    // forward, at least one pass sample.
    assert_eq!(lat.ttft.count, 4);
    assert_eq!(lat.queue_wait.count, 4);
    assert!(lat.tpot.count > 0, "decode steps must feed TPOT");
    assert!(lat.pass_latency.count > 0);
    for q in [&lat.ttft, &lat.tpot, &lat.pass_latency] {
        assert!(q.p50_nanos > 0, "real work takes nonzero time");
        assert!(q.p50_nanos <= q.p95_nanos && q.p95_nanos <= q.p99_nanos);
        assert!(q.p99_nanos <= q.max_nanos.max(q.p99_nanos));
    }
    // TTFT intervals lie inside the run, so even the slowest must fit the wall clock.
    let wall_nanos = (report.wall_seconds * 1e9) as u64;
    assert!(lat.ttft.max_nanos <= wall_nanos, "TTFT {} > wall {}", lat.ttft.max_nanos, wall_nanos);
}

#[test]
fn latency_summary_is_populated_even_with_telemetry_off() {
    let (report, trace, _) = run_traced(2, TelemetryConfig::Off);
    assert!(trace.is_none(), "no trace without telemetry");
    assert_eq!(report.latency.ttft.count, 4, "summaries come from always-on histograms");
    assert!(report.latency.tpot.count > 0);
}

#[test]
fn trace_covers_all_four_categories_with_monotone_lifecycles() {
    let (report, trace, _) = run_traced(2, TelemetryConfig::On);
    let trace = trace.expect("telemetry was enabled");
    assert_eq!(
        trace.categories(),
        vec![Category::Lifecycle, Category::Pass, Category::Worker, Category::Occupancy],
        "paged runs emit the full event taxonomy"
    );
    // Per sequence: the lifecycle instants appear in causal order with monotone
    // timestamps (the hub clock is shared and monotone across lanes).
    for seq in 0..report.sequences as u64 {
        let events: Vec<_> = trace.events().iter().filter(|e| e.cat == Category::Lifecycle && e.arg == seq).collect();
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["submitted", "admitted", "first_token", "retired"], "seq {seq}");
        for pair in events.windows(2) {
            assert!(pair[0].ts_nanos <= pair[1].ts_nanos, "seq {seq}: lifecycle must move forward in time");
        }
    }
    // Pass spans balance and occupancy gauges carry values.
    let begins = trace.events().iter().filter(|e| e.kind == EventKind::Begin && e.cat == Category::Pass).count();
    let ends = trace.events().iter().filter(|e| e.kind == EventKind::End && e.cat == Category::Pass).count();
    assert_eq!(begins, ends);
    assert_eq!(begins as u64, report.latency.pass_latency.count);
    assert!(trace.events().iter().any(|e| e.cat == Category::Occupancy && e.arg > 0));
}

#[test]
fn tracing_never_perturbs_the_token_streams() {
    for threads in [1, 4] {
        let (off_report, _, off_tokens) = run_traced(threads, TelemetryConfig::Off);
        let (on_report, _, on_tokens) = run_traced(threads, TelemetryConfig::On);
        assert_eq!(off_tokens, on_tokens, "telemetry must be invisible to scheduling at {threads} threads");
        assert_eq!(off_report.generated_tokens, on_report.generated_tokens);
        assert_eq!(off_report.preemptions, on_report.preemptions);
    }
}

#[test]
fn test_clock_makes_single_threaded_traces_byte_identical() {
    let render = || {
        let config = TelemetryConfig::on_with_clock(Arc::new(TestClock::with_step(100)));
        let (_, trace, _) = run_traced(1, config);
        trace.expect("telemetry was enabled").to_chrome_json()
    };
    let json = render();
    assert_eq!(json, render(), "fixed clock + sequential schedule ⇒ deterministic trace");
    assert!(json.starts_with("{\"traceEvents\":["), "chrome trace-event object form");
}

#[test]
fn worker_decode_steps_account_every_scheduler_step() {
    for threads in [1, 3] {
        let (report, _, _) = run_traced(threads, TelemetryConfig::Off);
        assert_eq!(report.worker_decode_steps.len(), threads);
        let total: usize = report.worker_decode_steps.iter().sum();
        // Every generated token rode exactly one step; prefill and finish bookkeeping
        // add more on top.
        assert!(total >= report.generated_tokens, "{total} steps < {} tokens", report.generated_tokens);
        assert!(report.worker_decode_steps.iter().any(|&s| s > 0));
    }
}
