//! Regression tests for the zero-copy decode path: the ISSUE-2 acceptance criterion is
//! that decoding a 512-token sequence performs zero full-cache `Matrix` clones — asserted
//! through the cache-read API's materialization counter, not through timing.

use mx_formats::QuantScheme;
use mx_llm::model::argmax;
use mx_llm::{DecodePath, ModelConfig, ModelQuantConfig, TransformerModel};

#[test]
fn decoding_512_tokens_performs_zero_full_cache_clones() {
    let model = TransformerModel::new(ModelConfig::tiny_test(11), ModelQuantConfig::BASELINE);
    let (logits, mut cache) = model.prefill(&[1, 2, 3, 4]);
    let mut next = argmax(logits.row(logits.rows() - 1));
    for _ in 0..512 {
        next = argmax(&model.decode_step(next, &mut cache));
    }
    assert_eq!(cache.seq_len(), 4 + 512);
    assert_eq!(cache.materializations(), 0, "decode must never materialize the KV cache");
}

#[test]
fn clone_based_mode_materializes_per_layer_per_step() {
    // Pins that the counter actually observes the legacy path: the seed behaviour clones
    // keys and values once per layer per forward call.
    let model = TransformerModel::new(ModelConfig::tiny_test(11), ModelQuantConfig::BASELINE);
    let mut cache = model.new_cache();
    let steps = 5;
    let mut next = 1;
    for _ in 0..steps {
        next = argmax(&model.decode_step_with_path(next, &mut cache, DecodePath::SeedClone));
    }
    let layers = model.config().layers;
    assert_eq!(cache.materializations(), 2 * layers * steps);
}

#[test]
fn quantized_view_decode_is_bit_identical_to_clone_decode_over_a_long_sequence() {
    // Longer-horizon twin of the unit test in `model.rs`: 128 decode steps under an MX
    // scheme, comparing logits exactly at every step.
    let model = TransformerModel::new(ModelConfig::tiny_test(13), ModelQuantConfig::uniform(QuantScheme::mxfp4()));
    let mut cache_view = model.new_cache();
    let mut cache_clone = model.new_cache();
    let prompt = [2usize, 3, 5, 7];
    let lv = model.forward_with_path(&prompt, &mut cache_view, DecodePath::ZeroCopy);
    let lc = model.forward_with_path(&prompt, &mut cache_clone, DecodePath::SeedClone);
    assert_eq!(lv, lc);
    let mut next = argmax(lv.row(lv.rows() - 1));
    for step in 0..128 {
        let sv = model.decode_step_with_path(next, &mut cache_view, DecodePath::ZeroCopy);
        let sc = model.decode_step_with_path(next, &mut cache_clone, DecodePath::SeedClone);
        assert_eq!(sv, sc, "logits diverge at decode step {step}");
        next = argmax(&sv);
    }
    assert_eq!(cache_view.materializations(), 0);
    assert!(cache_clone.materializations() > 0);
}
