//! ISSUE-10 acceptance tests for the fused packed-row attention path: query·key dots and
//! probability×value accumulation computed directly from packed MX rows must be
//! **bit-identical** to the materialize-then-dot reference, at the reader level and
//! end-to-end through the serving engine at 1, 2 and 4 threads.
//!
//! Every test here serializes on one mutex: the forced-scalar switch is process-global,
//! and the engagement assertions (`fused_rows > 0`) would race against a concurrently
//! forced-scalar test otherwise.

use std::sync::Mutex;

use mx_formats::kernels::force_scalar;
use mx_formats::layout::RowCodec;
use mx_formats::QuantScheme;
use mx_llm::kvcache::{AttnGeometry, KvBackend, KvLayerReader};
use mx_llm::{
    ModelConfig, ModelQuantConfig, PagePool, PagedKvCache, PagedScratch, ServingEngine, SubmitOptions, TransformerModel,
};

static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// GQA-shaped tiny model (4 query heads over 2 KV heads) so the fused scatter's
/// head-group replication is exercised, not just the trivial `group == 1` layout.
fn gqa_model() -> TransformerModel {
    let cfg = ModelConfig { kv_heads: 2, ..ModelConfig::tiny_test(17) };
    TransformerModel::new(cfg, ModelQuantConfig::a_mxfp4_plus())
}

fn run_paged(model: &TransformerModel, threads: usize) -> Vec<Vec<usize>> {
    let mut engine = ServingEngine::paged(model, 64).with_threads(threads);
    for p in [&[1usize, 2, 3, 4][..], &[9, 8, 7], &[5, 5, 5, 5, 5], &[100, 90, 80]] {
        engine.submit_with(p, SubmitOptions::new(48));
    }
    let report = engine.run();
    assert_eq!(report.generated_tokens, 4 * 48);
    engine.sequences().iter().map(|s| s.generated.clone()).collect()
}

fn run_f32(model: &TransformerModel, threads: usize) -> Vec<Vec<usize>> {
    let mut engine = ServingEngine::new(model).with_threads(threads);
    for p in [&[1usize, 2, 3, 4][..], &[9, 8, 7], &[5, 5, 5, 5, 5], &[100, 90, 80]] {
        engine.submit_with(p, SubmitOptions::new(48));
    }
    engine.run();
    engine.sequences().iter().map(|s| s.generated.clone()).collect()
}

/// Fused paged attention is token-identical to the f32 zero-copy path at every
/// thread count, and invariant across thread counts.
#[test]
fn fused_paged_decode_matches_f32_at_1_2_and_4_threads() {
    let _guard = FORCE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let model = gqa_model();
    let baseline = run_f32(&model, 1);
    for threads in [1usize, 2, 4] {
        assert_eq!(run_f32(&model, threads), baseline, "f32 backend diverges at {threads} threads");
        assert_eq!(run_paged(&model, threads), baseline, "paged fused backend diverges at {threads} threads");
    }
}

/// Forcing the scalar kernels (which also disables the fused block walk, routing
/// attention through the materializing `key_row`/`value_row` reference) changes no
/// token: the fused path is a pure optimization.
#[test]
fn forced_scalar_and_fused_paged_decodes_are_token_identical() {
    let _guard = FORCE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let model = gqa_model();
    let fused = run_paged(&model, 1);
    force_scalar(true);
    let reference = run_paged(&model, 1);
    force_scalar(false);
    assert_eq!(fused, reference, "fused attention must be bit-identical to the materializing reference");
}

fn sample_row(kv_dim: usize, salt: usize) -> Vec<f32> {
    (0..kv_dim)
        .map(|i| {
            let u = (((i + salt) * 2_654_435_761) % 2001) as f32 / 1000.0 - 1.0;
            if (i + salt) % 29 == 3 {
                u * 24.0
            } else {
                u
            }
        })
        .collect()
}

/// Reader-level pin: the fused methods engage on the paged backend, produce exactly the
/// same dots/accumulations as the materializing reference (same sequential fold order),
/// and never decode a full row into the scratch buffers.
#[test]
fn fused_reader_is_bit_identical_and_never_materializes() {
    let _guard = FORCE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let scheme = QuantScheme::mxfp6();
    let geom = AttnGeometry { heads: 4, head_dim: 8, group: 2 };
    let kv_dim = (geom.heads / geom.group) * geom.head_dim;
    let pool = PagePool::for_kv_rows(16, 4, RowCodec::for_scheme(scheme), kv_dim).shared();
    let mut cache = PagedKvCache::new(&pool, 1, kv_dim, scheme, 16).unwrap();
    let steps = 11;
    for t in 0..steps {
        KvBackend::append(&mut cache, 0, &sample_row(kv_dim, t), &sample_row(kv_dim, t + 500), scheme);
    }
    let q: Vec<f32> = sample_row(geom.heads * geom.head_dim, 9000);
    let probs: Vec<f32> = (0..geom.heads).map(|h| 0.03 + 0.11 * h as f32).collect();

    // Reference pass: materialize each row, then fold per head in ascending element
    // order — the exact operation sequence the fused path promises to reproduce.
    let mut ref_scratch = PagedScratch::default();
    let mut ref_dots = vec![vec![0.0f32; geom.heads]; steps];
    let mut ref_out = vec![0.0f32; geom.heads * geom.head_dim];
    {
        let mut reader = cache.layer_reader(0, &mut ref_scratch);
        for (t, dots_row) in ref_dots.iter_mut().enumerate() {
            let key = reader.key_row(t).to_vec();
            for h in 0..geom.heads {
                let kv = (h / geom.group) * geom.head_dim;
                let mut acc = 0.0f32;
                for d in 0..geom.head_dim {
                    acc += q[h * geom.head_dim + d] * key[kv + d];
                }
                dots_row[h] = acc;
            }
            let value = reader.value_row(t).to_vec();
            for h in 0..geom.heads {
                let p = probs[h];
                if p == 0.0 {
                    continue;
                }
                let kv = (h / geom.group) * geom.head_dim;
                for d in 0..geom.head_dim {
                    ref_out[h * geom.head_dim + d] += p * value[kv + d];
                }
            }
        }
    }
    assert_eq!(ref_scratch.scratch_rows(), 2 * steps);
    assert_eq!(ref_scratch.fused_rows(), 0);

    // Fused pass: same numbers, bit for bit, with zero scratch materializations.
    let mut scratch = PagedScratch::default();
    let mut out = vec![0.0f32; geom.heads * geom.head_dim];
    {
        let mut reader = cache.layer_reader(0, &mut scratch);
        let mut dots = vec![0.0f32; geom.heads];
        for (t, ref_row) in ref_dots.iter().enumerate() {
            assert!(reader.fused_key_dots(t, &q, geom, &mut dots), "fused key path must engage");
            let got: Vec<u32> = dots.iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = ref_row.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "key dots diverge at position {t}");
            assert!(reader.fused_value_accumulate(t, &probs, geom, &mut out), "fused value path must engage");
        }
    }
    let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
    let want: Vec<u32> = ref_out.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want, "value accumulation diverges");
    assert_eq!(scratch.fused_rows(), 2 * steps);
    assert_eq!(scratch.scratch_rows(), 0, "fused path must never materialize a row into scratch");

    // Under forced-scalar kernels the fused walk declines, falling back to the
    // reference — one switch flips the whole pipeline to reference mode.
    force_scalar(true);
    let mut forced_scratch = PagedScratch::default();
    {
        let mut reader = cache.layer_reader(0, &mut forced_scratch);
        let mut dots = vec![0.0f32; geom.heads];
        assert!(!reader.fused_key_dots(0, &q, geom, &mut dots), "forced scalar must disable the fused path");
    }
    force_scalar(false);
    assert_eq!(forced_scratch.fused_rows(), 0);
}
