//! Property-based pool-churn invariants for the refcounted shared-page subsystem
//! (ISSUE-5 satellite): random interleavings of admit / share-admit / append /
//! spill+restore / retire against one small pool must never leak a page, double-free
//! one, or let a shared page die while a reader still holds it.
//!
//! The test tracks, per live cache, the exact row *salts* it must contain (shared
//! prefixes inherit the donor's salts) and re-reads a probe row after every operation:
//! any aliasing bug — two caches owning one page exclusively, a copy-on-write leaking
//! into another holder, a freed-then-reused shared page — shows up as a value mismatch,
//! and any accounting bug as a free/in-use imbalance or a failure to drain.

use std::sync::Arc;

use mx_formats::{QuantScheme, RowCodec};
use mx_llm::kvcache::{KvBackend, KvLayerReader};
use mx_llm::{audit_caches, PagePool, PagedKvCache, PagedScratch};
use proptest::prelude::*;

const KV_DIM: usize = 64;
const PAGE_POSITIONS: usize = 4;
const POOL_PAGES: usize = 24;
const SLOTS: usize = 5;

fn scheme() -> QuantScheme {
    QuantScheme::mxfp4()
}

/// Deterministic row with outliers, keyed by a salt (same generator as the unit tests).
fn sample_row(salt: usize) -> Vec<f32> {
    (0..KV_DIM)
        .map(|i| {
            let u = (((i + salt) * 2_654_435_761) % 2001) as f32 / 1000.0 - 1.0;
            if (i + salt) % 37 == 5 {
                u * 30.0
            } else {
                u
            }
        })
        .collect()
}

/// One live cache plus the ground truth of what it must contain.
struct Slot {
    cache: PagedKvCache,
    /// Row salt appended at each position (keys; values use `salt + 1000`).
    salts: Vec<usize>,
    /// Fixed append capacity reserved at admission.
    capacity: usize,
}

fn read_key(cache: &mut PagedKvCache, t: usize) -> Vec<f32> {
    let mut scratch = PagedScratch::default();
    let mut reader = cache.layer_reader(0, &mut scratch);
    reader.key_row(t).to_vec()
}

fn check_slot(slot: &mut Slot, probe: usize) {
    if slot.salts.is_empty() {
        return;
    }
    let t = probe % slot.salts.len();
    let expected = scheme().quantize_dequantize(&sample_row(slot.salts[t]));
    let got = read_key(&mut slot.cache, t);
    assert_eq!(got, expected, "position {t} corrupted (salt {})", slot.salts[t]);
}

fn append_rows(slot: &mut Slot, count: usize, salt_base: usize) {
    for k in 0..count {
        if slot.salts.len() >= slot.capacity {
            break;
        }
        let salt = salt_base + k;
        slot.cache.append(0, &sample_row(salt), &sample_row(salt + 1000));
        slot.salts.push(salt);
    }
}

fn pool_invariants(pool: &Arc<PagePool>, live: &[Option<Slot>], step: usize) {
    assert!(pool.free_pages() + pool.in_use_pages() == pool.total_pages(), "step {step}: page count imbalance");
    // With sharing, the sum of per-cache table entries can exceed the distinct in-use
    // count (refcounted aliasing) but never the converse; and with no cache alive at
    // all, nothing may remain checked out.
    let referenced: usize = live.iter().flatten().map(|s| s.cache.allocated_pages()).sum();
    assert!(
        pool.in_use_pages() <= referenced,
        "step {step}: pages in use that no live cache references (leak): {} in use, {referenced} referenced",
        pool.in_use_pages()
    );
    // The debug-build sanitizers reconcile the pool's internal accounting and the
    // *exact* page ownership against every live cache's page table (distinct mapped
    // pages == checked-out pages; no double-ownership; tables sized to their rows).
    pool.audit();
    audit_caches(pool, live.iter().flatten().map(|s| &s.cache));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random admit/share/append/spill/retire churn: exact data integrity and exact
    /// accounting at every step, full drain at the end.
    #[test]
    fn churn_with_sharing_never_leaks_double_frees_or_corrupts(ops in prop::collection::vec(0u32..1_000_000u32, 1..120)) {
        let pool = PagePool::for_kv_rows(POOL_PAGES, PAGE_POSITIONS, RowCodec::for_scheme(scheme()), KV_DIM).shared();
        let mut live: Vec<Option<Slot>> = (0..SLOTS).map(|_| None).collect();
        for (step, &word) in ops.iter().enumerate() {
            let op = word % 5;
            let a = (word as usize / 5) % SLOTS;
            let b = (word as usize / 25) % SLOTS;
            let amount = (word as usize / 125) % 11;
            match op {
                // Plain admission into an empty slot.
                0 => {
                    if live[a].is_none() {
                        let capacity = 1 + amount;
                        if let Ok(cache) = PagedKvCache::new(&pool, 1, KV_DIM, scheme(), capacity) {
                            let mut slot = Slot { cache, salts: Vec::new(), capacity };
                            append_rows(&mut slot, 1 + amount / 2, step * 31);
                            live[a] = Some(slot);
                        }
                    }
                }
                // Share-admission: map a prefix of donor `b` into empty slot `a`.
                1 => {
                    if a != b && live[a].is_none() {
                        let prefix = match &mut live[b] {
                            Some(donor) if donor.cache.seq_len() > 0 => {
                                let want = 1 + amount % donor.cache.seq_len().max(1);
                                Some(donor.cache.share_prefix(want.min(donor.cache.seq_len())))
                            }
                            _ => None,
                        };
                        if let Some(prefix) = prefix {
                            if prefix.positions() > 0 {
                                let capacity = prefix.positions() + 1 + amount;
                                let shared = prefix.positions();
                                if let Ok(cache) =
                                    PagedKvCache::with_shared_prefix(&pool, 1, KV_DIM, scheme(), capacity, prefix)
                                {
                                    let donor_salts = live[b].as_ref().unwrap().salts[..shared].to_vec();
                                    let mut slot = Slot { cache, salts: donor_salts, capacity };
                                    // Diverge immediately: the first append lands in the
                                    // shared boundary page when the prefix is non-aligned,
                                    // exercising copy-on-write under churn.
                                    append_rows(&mut slot, 1 + amount / 3, step * 31 + 500_000);
                                    live[a] = Some(slot);
                                }
                            }
                        }
                    }
                }
                // Append into a live slot (the donor side of any sharing COWs here).
                2 => {
                    if let Some(slot) = &mut live[a] {
                        append_rows(slot, 1 + amount / 2, step * 31 + 250_000);
                    }
                }
                // Retire.
                3 => {
                    live[a] = None;
                }
                // Preemption round trip: spill, verify the pool shed the exclusive
                // pages, restore, verify bit-identity via the salts.
                4 => {
                    if let Some(mut slot) = live[a].take() {
                        let spilled = slot.cache.spill();
                        prop_assert_eq!(spilled.positions(), slot.salts.len());
                        match PagedKvCache::restore(&pool, 1, KV_DIM, scheme(), slot.capacity, &spilled) {
                            Ok(cache) => {
                                slot.cache = cache;
                                live[a] = Some(slot);
                            }
                            Err(_) => {
                                // Pool too full to restore right now: the sequence stays
                                // preempted (dropped here); nothing may leak.
                            }
                        }
                    }
                }
                _ => unreachable!(),
            }
            pool_invariants(&pool, &live, step);
            // Probe every live cache: shared pages must still decode their exact rows
            // even after donors retired, spilled, or copy-on-wrote.
            for slot in live.iter_mut().flatten() {
                check_slot(slot, step);
            }
        }
        // Drain: dropping every cache must return every page and reservation.
        live.clear();
        prop_assert_eq!(pool.free_pages(), pool.total_pages());
        prop_assert_eq!(pool.in_use_pages(), 0);
        prop_assert_eq!(pool.reserved_pages(), 0);
        prop_assert_eq!(pool.resident_bytes(), 0);
    }
}
