//! ISSUE-9 acceptance tests for fault-tolerant serving: deterministic fault injection,
//! worker-panic containment with checkpoint retry, deadlines, load shedding and the
//! drain/shutdown contract.
//!
//! * a seeded [`FaultPlan`] that kills every worker of a 4-thread pool at least once
//!   completes the run with `worker_restarts == 4`, every retried sequence
//!   **token-identical** to a fault-free run, the pool fully drained and a follow-up
//!   [`ServingEngine::drain`] reporting zero live sequences;
//! * a sequence that keeps losing its worker exhausts its retry budget and finishes
//!   [`FinishReason::Failed`] without leaking a page;
//! * deadlines ([`FinishReason::DeadlineExceeded`]) and priority-ordered load shedding
//!   ([`FinishReason::Shed`]) end exactly the targeted sequences and leave the rest
//!   byte-identical;
//! * [`ServingEngine::shutdown`] mid-flight spills every live sequence to host buffers
//!   (zero pool pages) and a later run resumes to an uninterrupted run's exact tokens;
//! * [`PagePool`] recovers from a poisoned state mutex (a panic while the lock is
//!   held) with its accounting intact;
//! * a chaos proptest sweeps seeded plans across thread counts: no leak, no
//!   double-free, bounded retries, and token identity for every non-failed sequence.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use mx_formats::{QuantScheme, RowCodec};
use mx_llm::{
    Category, FaultKind, FaultPlan, FinishReason, ModelConfig, ModelQuantConfig, PagePool, PagedKvCache,
    RecoveryPolicy, Sampling, ServingEngine, SubmitOptions, TelemetryConfig, TransformerModel,
};
use proptest::prelude::*;

fn model() -> &'static TransformerModel {
    static MODEL: OnceLock<TransformerModel> = OnceLock::new();
    MODEL.get_or_init(|| TransformerModel::new(ModelConfig::tiny_test(31), ModelQuantConfig::a_mxfp4_plus()))
}

/// Eight deterministic prompts; sequence 2 samples with a seeded top-k policy, the rest
/// decode greedily — so recovery must replay RNG state, not just cache bytes.
fn submit_workload(engine: &mut ServingEngine<'_>, max_new: usize) {
    let prompts: [&[usize]; 8] = [
        &[1, 2, 3, 4],
        &[9, 8, 7],
        &[5, 5, 5, 5, 5],
        &[100, 90, 80],
        &[11, 12],
        &[40, 41, 42, 43],
        &[66, 67, 68],
        &[2, 4, 6, 8, 10],
    ];
    for (i, p) in prompts.iter().enumerate() {
        let opts = SubmitOptions::new(max_new);
        let opts = if i == 2 { opts.sampling(Sampling::top_k(4, 0.9, 77)) } else { opts };
        engine.submit_with(p, opts);
    }
}

/// Token streams of a fault-free paged run of [`submit_workload`] — the byte-identity
/// reference every containment test compares against.
fn reference_streams(max_new: usize) -> Vec<Vec<usize>> {
    let mut engine = ServingEngine::paged(model(), 64).with_threads(1);
    submit_workload(&mut engine, max_new);
    engine.run();
    engine.sequences().iter().map(|s| s.generated.clone()).collect()
}

fn assert_pool_drained(engine: &ServingEngine<'_>) {
    let pool = engine.pool().expect("paged engine has a pool");
    pool.audit();
    assert_eq!(pool.in_use_pages(), 0, "pages leaked");
    assert_eq!(pool.reserved_pages(), 0, "reservations leaked");
    assert_eq!(pool.free_pages(), pool.total_pages());
}

/// The ISSUE-9 headline acceptance: kill all four workers of a 4-thread pool at seeded
/// job counters; the run completes with four contained restarts and every sequence —
/// including the retried ones — token-identical to a fault-free run.
#[test]
fn killing_every_worker_is_contained_and_token_identical() {
    let reference = reference_streams(24);
    let mut engine = ServingEngine::paged(model(), 64)
        .with_threads(4)
        .with_faults(FaultPlan::seeded(9).kill_workers(4, 12))
        .with_recovery(RecoveryPolicy { checkpoint_every: 2, max_attempts: 10, backoff_passes: 1 });
    submit_workload(&mut engine, 24);
    let report = engine.run();

    // Each of the four scheduled panics targets a distinct worker slot and fires once:
    // four contained crashes, four respawns, four checkpoint-rollback retries.
    assert_eq!(report.worker_restarts, 4);
    assert_eq!(report.retries, 4);
    assert_eq!(report.failed, 0);
    assert_eq!(report.finished_length, 8);
    for (seq, expected) in engine.sequences().iter().zip(&reference) {
        assert_eq!(
            &seq.generated,
            expected,
            "sequence {} diverged from the fault-free run (attempts = {})",
            seq.id,
            seq.attempts()
        );
    }
    assert_pool_drained(&engine);
    // Graceful stop after the fact: nothing live remains.
    let drained = engine.drain();
    assert_eq!(drained.live(), 0);
    assert_eq!(drained.finished, 8);
}

/// Single-threaded containment: the coordinator doubles as the worker, so a panic is
/// caught in-line (no thread to respawn) and recovery still replays to identical tokens.
#[test]
fn single_threaded_panic_is_contained_without_a_respawn() {
    let reference = reference_streams(16);
    let mut engine = ServingEngine::paged(model(), 64)
        .with_threads(1)
        .with_faults(
            FaultPlan::seeded(3)
                .inject(FaultKind::WorkerPanic { worker: 0, job: 5 })
                .inject(FaultKind::WorkerPanic { worker: 0, job: 21 }),
        )
        .with_recovery(RecoveryPolicy { checkpoint_every: 2, max_attempts: 5, backoff_passes: 1 });
    submit_workload(&mut engine, 16);
    let report = engine.run();

    assert_eq!(report.worker_restarts, 0, "no worker thread exists to restart");
    assert_eq!(report.retries, 2);
    assert_eq!(report.failed, 0);
    for (seq, expected) in engine.sequences().iter().zip(&reference) {
        assert_eq!(&seq.generated, expected, "sequence {}", seq.id);
    }
    assert_pool_drained(&engine);
}

/// A sequence that loses its worker on every step exhausts `max_attempts` and finishes
/// `Failed` with the attempt count — and still returns every page.
#[test]
fn repeated_panics_exhaust_the_retry_budget() {
    let mut engine = ServingEngine::paged(model(), 64)
        .with_threads(1)
        .with_faults(
            FaultPlan::seeded(0)
                .inject(FaultKind::WorkerPanic { worker: 0, job: 1 })
                .inject(FaultKind::WorkerPanic { worker: 0, job: 2 })
                .inject(FaultKind::WorkerPanic { worker: 0, job: 3 }),
        )
        .with_recovery(RecoveryPolicy { checkpoint_every: 0, max_attempts: 2, backoff_passes: 0 });
    engine.submit_with(&[1, 2, 3], SubmitOptions::new(8));
    let report = engine.run();

    assert_eq!(report.failed, 1);
    assert_eq!(report.retries, 2, "two retries precede the terminal failure");
    let seq = &engine.sequences()[0];
    assert_eq!(seq.finish_reason(), Some(FinishReason::Failed { attempts: 3 }));
    assert_pool_drained(&engine);
}

/// Injected reservation denials stall admission for a pass (like a transiently
/// exhausted pool) but never change any token.
#[test]
fn reservation_denials_delay_but_do_not_corrupt() {
    let reference = reference_streams(12);
    let fault_free_passes = {
        let mut engine = ServingEngine::paged(model(), 64).with_threads(2);
        submit_workload(&mut engine, 12);
        engine.run().passes
    };
    let mut engine = ServingEngine::paged(model(), 64).with_threads(2).with_faults(
        FaultPlan::seeded(0)
            .inject(FaultKind::ReservationDenied { attempt: 0 })
            .inject(FaultKind::ReservationDenied { attempt: 1 }),
    );
    submit_workload(&mut engine, 12);
    let report = engine.run();

    // Pass 0's head-of-line admission is denied (stalling the whole queue), pass 1's
    // retry is denied again, pass 2 admits everyone: exactly two extra passes.
    assert_eq!(report.passes, fault_free_passes + 2);
    assert_eq!(report.finished_length, 8);
    assert_eq!(report.failed + report.worker_restarts + report.retries, 0);
    for (seq, expected) in engine.sequences().iter().zip(&reference) {
        assert_eq!(&seq.generated, expected, "sequence {}", seq.id);
    }
    assert_pool_drained(&engine);
}

/// Deadline enforcement: an absolute `deadline_pass` and a relative `ttft_deadline`
/// each end exactly their own starved sequence while the resident one is untouched.
#[test]
fn deadlines_end_starved_sequences_only() {
    let model = model();
    // A's worst case (3 + 20 = 23 positions → 6 pages × 2 layers) fills the whole
    // 12-page pool, so B and C queue behind it until their deadlines strike.
    let mut engine = ServingEngine::paged_with(model, 12, 4).with_threads(1);
    engine.submit_with(&[1, 2, 3], SubmitOptions::new(20));
    engine.submit_with(&[4, 5, 6], SubmitOptions::new(8).deadline_pass(3));
    engine.submit_with(&[7, 8, 9], SubmitOptions::new(8).ttft_deadline(2));
    let report = engine.run();

    assert_eq!(report.deadline_misses, 2);
    assert_eq!(report.finished_length, 1);
    let seqs = engine.sequences();
    assert_eq!(seqs[0].generated, model.generate_greedy(&[1, 2, 3], 20));
    assert_eq!(seqs[1].finish_reason(), Some(FinishReason::DeadlineExceeded));
    assert_eq!(seqs[2].finish_reason(), Some(FinishReason::DeadlineExceeded));
    assert!(seqs[1].generated.is_empty() && seqs[2].generated.is_empty());
    assert_pool_drained(&engine);
}

/// Load shedding: past the watermark the scheduler refuses the lowest-priority,
/// youngest queued submissions — and only those.
#[test]
fn shedding_refuses_lowest_priority_youngest_first() {
    let model = model();
    // Each sequence's worst case is 2 pages × 2 layers = 4 pages; three of them demand
    // 12 of the 12-page pool, over the 0.6 watermark's ceil(7.2) = 8-page budget.
    // Shedding the youngest priority-0 submission brings demand to exactly 8.
    let mut engine = ServingEngine::paged_with(model, 12, 4).with_threads(1).with_shed_watermark(0.6);
    engine.submit_with(&[1, 2, 3], SubmitOptions::new(5).priority(1));
    engine.submit_with(&[4, 5, 6], SubmitOptions::new(5));
    engine.submit_with(&[7, 8, 9], SubmitOptions::new(5));
    let report = engine.run();

    assert_eq!(report.shed, 1);
    assert_eq!(report.finished_length, 2);
    let seqs = engine.sequences();
    assert_eq!(seqs[0].generated, model.generate_greedy(&[1, 2, 3], 5));
    assert_eq!(seqs[1].generated, model.generate_greedy(&[4, 5, 6], 5));
    assert_eq!(seqs[2].finish_reason(), Some(FinishReason::Shed));
    assert!(seqs[2].generated.is_empty());
    assert_pool_drained(&engine);
}

/// The shutdown contract: `run_for` stops mid-flight with state intact, `shutdown`
/// spills every live sequence (zero pool pages held), and a later `run` restores and
/// finishes with an uninterrupted run's exact tokens.
#[test]
fn shutdown_spills_and_resume_is_token_identical() {
    let reference = reference_streams(16);
    let mut engine = ServingEngine::paged(model(), 64).with_threads(2);
    submit_workload(&mut engine, 16);
    let mid = engine.run_for(5);
    assert_eq!(mid.passes, 5);
    assert_eq!(mid.finished_length, 0, "16-token sequences cannot finish in 5 passes");

    let stopped = engine.shutdown();
    assert_eq!(stopped.passes, 0);
    assert_eq!(stopped.finished, 0);
    assert_eq!(stopped.spilled, 8, "every live sequence parks in a host-side buffer");
    assert_pool_drained(&engine);

    let resumed = engine.run();
    assert_eq!(resumed.finished_length, 8);
    for (seq, expected) in engine.sequences().iter().zip(&reference) {
        assert_eq!(&seq.generated, expected, "sequence {} diverged across shutdown/resume", seq.id);
    }
    assert_pool_drained(&engine);
}

/// The drain contract: admissions freeze (a queued submission stays queued, even one
/// whose arrival pass never comes) while resident sequences run to completion.
#[test]
fn drain_finishes_residents_and_freezes_admissions() {
    let model = model();
    let mut engine = ServingEngine::paged(model, 64).with_threads(2);
    engine.submit_with(&[1, 2, 3], SubmitOptions::new(6));
    engine.submit_with(&[4, 5, 6], SubmitOptions::new(6).arrival_pass(1_000));
    engine.run_for(2);

    let drained = engine.drain();
    assert_eq!(drained.finished, 1);
    assert_eq!(drained.spilled, 0);
    assert_eq!(drained.waiting, 1, "the unarrived submission must stay frozen in the queue");
    assert_eq!(drained.live(), 1);
    assert_eq!(engine.sequences()[0].generated, model.generate_greedy(&[1, 2, 3], 6));
    assert!(!engine.sequences()[1].is_finished());
    assert_pool_drained(&engine);
}

/// ISSUE-9 satellite: a panic while the pool's state lock is held (here: the
/// `unreserve` over-release assert) poisons the mutex; the pool must shrug the poison
/// off — accounting intact, audit clean, still able to reserve and allocate.
#[test]
fn page_pool_recovers_from_a_poisoned_state_lock() {
    let kv_dim = 64;
    let scheme = QuantScheme::mxfp4();
    let pool = PagePool::for_kv_rows(8, 4, RowCodec::for_scheme(scheme), kv_dim).shared();

    let unwound = catch_unwind(AssertUnwindSafe(|| pool.unreserve(1)));
    assert!(unwound.is_err(), "over-unreserving must panic (and poison the lock)");

    // Every accessor and mutation path goes through the poisoned mutex now.
    assert_eq!(pool.free_pages(), 8);
    assert_eq!(pool.reserved_pages(), 0, "the panicking unreserve must not have corrupted the count");
    pool.audit();
    assert!(pool.try_reserve(3));
    assert_eq!(pool.reserved_pages(), 3);
    pool.unreserve(3);
    let mut cache = PagedKvCache::new(&pool, 2, kv_dim, scheme, 8).expect("pool must still allocate");
    cache.release();
    pool.audit();
    assert_eq!(pool.free_pages(), pool.total_pages());
}

/// Faulted runs with tracing on tag the whole fault lifecycle on the `fault` category.
#[test]
fn fault_lifecycle_is_traced() {
    let mut engine = ServingEngine::paged(model(), 64)
        .with_threads(2)
        .with_telemetry(TelemetryConfig::On)
        .with_faults(FaultPlan::seeded(5).inject(FaultKind::WorkerPanic { worker: 0, job: 4 }))
        .with_recovery(RecoveryPolicy { checkpoint_every: 2, max_attempts: 5, backoff_passes: 1 });
    submit_workload(&mut engine, 12);
    let report = engine.run();
    assert_eq!(report.worker_restarts, 1);

    let trace = engine.take_trace().expect("telemetry was enabled");
    assert!(trace.categories().contains(&Category::Fault));
    for name in ["checkpoint", "worker_panic", "retry", "worker_restart"] {
        assert!(
            trace.events().iter().any(|e| e.cat == Category::Fault && e.name == name),
            "missing fault-lifecycle event {name:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chaos sweep: seeded kill/denial plans across thread counts. Invariants: the run
    /// always completes; retries are bounded by the scheduled panic count (each fires
    /// at most once); with panics ≤ 4 and a budget of 6 nothing can fail, so **every**
    /// sequence must be token-identical to the fault-free reference; and the pool
    /// drains to zero with clean accounting.
    #[test]
    fn chaos_faults_never_leak_or_diverge(
        seed in 0u64..10_000,
        kills in 0usize..=4,
        denials in 0usize..=3,
        threads in 1usize..=4,
    ) {
        let reference = reference_streams(10);
        let plan = FaultPlan::seeded(seed).kill_workers(kills, 10).deny_reservations(denials, 8);
        let mut engine = ServingEngine::paged(model(), 64)
            .with_threads(threads)
            .with_faults(plan)
            .with_recovery(RecoveryPolicy { checkpoint_every: 2, max_attempts: 6, backoff_passes: 1 });
        submit_workload(&mut engine, 10);
        let report = engine.run();

        prop_assert_eq!(report.failed, 0, "≤4 panics can never exhaust a 6-attempt budget");
        prop_assert!(report.retries <= kills, "each scheduled panic fires at most once");
        prop_assert!(report.worker_restarts <= kills);
        prop_assert_eq!(report.finished_length, 8);
        for (seq, expected) in engine.sequences().iter().zip(&reference) {
            prop_assert_eq!(&seq.generated, expected, "sequence {} diverged", seq.id);
        }
        let pool = engine.pool().expect("paged engine has a pool");
        pool.audit();
        prop_assert_eq!(pool.in_use_pages(), 0);
        prop_assert_eq!(pool.reserved_pages(), 0);
        let drained = engine.drain();
        prop_assert_eq!(drained.live(), 0);
    }
}
