//! A dependency-free recursive-descent parser over the lexed token stream.
//!
//! The parser recovers every `fn` body in a file as a [`Function`] with a structured
//! [`Block`]/[`Expr`] tree (see [`crate::ast`]); everything between function bodies —
//! type definitions, impl headers, use trees — is skipped by token scanning. It is
//! *loose* by design: operator precedence is flattened into evaluation order, patterns
//! reduce to the names they bind, types are skipped with bracket matching. What must be
//! exact (and is): block structure, `if`/`match`/loop shape, call and method-call
//! chains, `return`/`break`/`continue`/`?` exits, and the spans of all of the above.
//!
//! The parser never panics; a body it cannot make sense of is reported in
//! [`ParsedFile::errors`] (and skipped), which the workspace gate pins to empty so a
//! parser gap can never silently disable the dataflow rules.

use crate::ast::{Arm, Block, Expr, Function, Span, Stmt};
use crate::lexer::{LexedFile, Token, TokenKind};

/// A function body the parser could not structure.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Where parsing gave up.
    pub span: Span,
    /// What the parser was stuck on.
    pub what: String,
}

/// All functions parsed from one file, plus any bodies that failed to parse.
#[derive(Debug)]
pub struct ParsedFile {
    /// Every parsed `fn` (top-level, in impls/traits, and nested in other fns).
    pub functions: Vec<Function>,
    /// Bodies the parser gave up on (skipped, not analyzed).
    pub errors: Vec<ParseError>,
}

/// Maximum expression/block nesting before the parser bails out of a body.
const MAX_DEPTH: usize = 200;

/// Identifiers that never *bind* a name when they appear in a pattern.
const PATTERN_KEYWORDS: [&str; 7] = ["mut", "ref", "box", "move", "in", "if", "_"];

/// Method names that merely adapt a guard value without releasing it; peeled when
/// resolving a binding's terminal initializer call.
const ADAPTER_CHAIN: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "unwrap_or_default"];

/// Parse every function body in `lexed`.
pub fn parse(lexed: &LexedFile) -> ParsedFile {
    let mut p = Parser { tokens: &lexed.tokens, pos: 0, depth: 0, functions: Vec::new(), errors: Vec::new() };
    let mut i = 0usize;
    while i < p.tokens.len() {
        if p.tokens[i].ident() == Some("fn") && p.tokens.get(i + 1).and_then(Token::ident).is_some() {
            i = p.parse_fn_at(i) + 1;
        } else {
            i += 1;
        }
    }
    ParsedFile { functions: p.functions, errors: p.errors }
}

/// Resolve the *terminal call name* of a binding initializer: peels `?`, parens,
/// and unwrap-style adapter methods, then returns the outermost call or method name.
/// `let g = pool.state().unwrap();` resolves to `state`; `let n = pool.state().len();`
/// resolves to `len`.
pub fn terminal_call_name(init: &Expr) -> Option<&str> {
    match init {
        Expr::Question { inner, .. } | Expr::Borrow { inner } => terminal_call_name(inner),
        Expr::Seq(items) if items.len() == 1 => terminal_call_name(&items[0]),
        Expr::MethodCall { recv, name, .. } => {
            if ADAPTER_CHAIN.contains(&name.as_str()) {
                terminal_call_name(recv)
            } else {
                Some(name)
            }
        }
        Expr::Call { callee, .. } => callee.as_deref(),
        _ => None,
    }
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    depth: usize,
    functions: Vec<Function>,
    errors: Vec<ParseError>,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        self.tokens.get(self.pos + ahead)
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    fn punct_at(&self, ahead: usize, c: char) -> bool {
        self.peek(ahead).is_some_and(|t| t.is_punct(c))
    }

    fn ident_at(&self, ahead: usize) -> Option<&'a str> {
        self.peek(ahead).and_then(Token::ident)
    }

    fn span(&self) -> Span {
        self.peek(0).map_or(Span { line: 0, col: 0 }, |t| Span { line: t.line, col: t.col })
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn err(&self, what: &str) -> ParseError {
        ParseError { span: self.span(), what: what.to_string() }
    }

    /// Are tokens at `self.pos + ahead` and the one after it directly adjacent in the
    /// source (multi-char operators like `::`, `=>`, `..` lex as adjacent puncts)?
    fn adjacent(&self, ahead: usize) -> bool {
        match (self.peek(ahead), self.peek(ahead + 1)) {
            (Some(a), Some(b)) => a.line == b.line && a.col + 1 == b.col,
            _ => false,
        }
    }

    fn at_path_sep(&self) -> bool {
        self.at_punct(':') && self.punct_at(1, ':') && self.adjacent(0)
    }

    /// Parse the `fn` whose keyword sits at token index `start`; returns the index of
    /// the last token consumed (the body's `}`, or the `;` of a body-less signature).
    fn parse_fn_at(&mut self, start: usize) -> usize {
        let name_tok = &self.tokens[start + 1];
        let name = name_tok.ident().unwrap_or_default().to_string();
        let span = Span { line: name_tok.line, col: name_tok.col };
        // Scan the signature (generics, params, return type, where clause) for the
        // body's `{` — or a `;` meaning there is no body (trait method declaration).
        let mut j = start + 2;
        let mut paren = 0usize;
        let mut bracket = 0usize;
        while let Some(tok) = self.tokens.get(j) {
            match tok.kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                TokenKind::Punct(';') if paren == 0 && bracket == 0 => return j,
                TokenKind::Punct('{') if paren == 0 && bracket == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= self.tokens.len() {
            return self.tokens.len();
        }
        self.pos = j;
        // Give the nested body a fresh nesting budget, restoring the caller's count
        // afterwards (a nested fn is parsed from within the outer fn's block).
        let saved_depth = self.depth;
        self.depth = 0;
        let parsed = self.parse_block();
        self.depth = saved_depth;
        match parsed {
            Ok(body) => {
                let end = self.pos.saturating_sub(1);
                self.functions.push(Function { name, span, token_start: start, body });
                end
            }
            Err(e) => {
                self.errors.push(e);
                // Recover by brace-matching from the body's `{`.
                let mut depth = 0usize;
                let mut k = j;
                while let Some(tok) = self.tokens.get(k) {
                    if tok.is_punct('{') {
                        depth += 1;
                    } else if tok.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k.min(self.tokens.len())
            }
        }
    }

    /// Skip one `#[...]` / `#![...]` attribute if the cursor is on `#`.
    fn skip_attribute(&mut self) {
        if !self.at_punct('#') {
            return;
        }
        self.bump();
        if self.at_punct('!') {
            self.bump();
        }
        if self.at_punct('[') {
            self.skip_balanced('[', ']');
        }
    }

    /// Skip a balanced `open...close` region, starting on `open`.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(tok) = self.peek(0) {
            if tok.is_punct(open) {
                depth += 1;
            } else if tok.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skip a generics region starting on `<`, tolerating `->` arrows and nested
    /// parens/brackets inside.
    fn skip_angles(&mut self) {
        let mut depth = 0usize;
        while let Some(tok) = self.peek(0) {
            match tok.kind {
                TokenKind::Punct('-') if self.punct_at(1, '>') => {
                    self.bump();
                    self.bump();
                    continue;
                }
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                TokenKind::Punct('(') => {
                    self.skip_balanced('(', ')');
                    continue;
                }
                TokenKind::Punct('[') => {
                    self.skip_balanced('[', ']');
                    continue;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip one type (after `as`, a closure `->`, ...). Deliberately *narrow*: pointer
    /// and reference prefixes, then either a bracketed group or a path with generics
    /// (`<` only when flush against its segment). `x as f32 * 0.1` must leave the `*`
    /// for the expression parser — a bare `*` or `(` after the first segment is
    /// arithmetic, not type syntax.
    fn skip_type(&mut self) {
        loop {
            if self.at_punct('*') && matches!(self.ident_at(1), Some("const") | Some("mut")) {
                self.bump();
                self.bump();
            } else if self.at_punct('&') {
                self.bump();
                if matches!(self.peek(0).map(|t| &t.kind), Some(TokenKind::Lifetime)) {
                    self.bump();
                }
                if self.ident_at(0) == Some("mut") {
                    self.bump();
                }
            } else {
                break;
            }
        }
        // Tuple / slice / array type group.
        if self.at_punct('(') {
            self.skip_balanced('(', ')');
            return;
        }
        if self.at_punct('[') {
            self.skip_balanced('[', ']');
            return;
        }
        // Path: segments with flush generics; `dyn`/`impl` qualifiers ride along as
        // ordinary segments, and `fn(..) -> T` pointer types get their paren + arrow.
        loop {
            let Some(tok) = self.peek(0) else { return };
            let TokenKind::Ident(name) = &tok.kind else { return };
            let ident_end = (tok.line, tok.col + name.chars().count());
            let is_fn_ptr = name == "fn";
            self.bump();
            if is_fn_ptr && self.at_punct('(') {
                self.skip_balanced('(', ')');
                if self.at_punct('-') && self.punct_at(1, '>') {
                    self.bump();
                    self.bump();
                    self.skip_type();
                }
                return;
            }
            if self.peek(0).is_some_and(|t| t.is_punct('<')) {
                let at = self.span();
                if (at.line, at.col) == ident_end {
                    self.skip_angles();
                }
            }
            if self.at_path_sep() && self.ident_at(2).is_some() {
                self.bump();
                self.bump();
                continue;
            }
            return;
        }
    }

    /// Collect the names bound by a pattern, scanning until one of the stop conditions
    /// holds at depth 0: `=` (not `==`/`=>`), `;`, the identifier `in` (for-loops), or
    /// `=>` when `arrow_stops` (match arms; `if` then begins a guard and also stops).
    /// Returns (bound names, the stop kind).
    fn scan_pattern(&mut self, stop_eq: bool, arrow_stops: bool) -> (Vec<(String, Span)>, PatternStop) {
        let mut bound = Vec::new();
        let mut paren = 0usize;
        let mut bracket = 0usize;
        let mut brace = 0usize;
        while let Some(tok) = self.peek(0) {
            let at_top = paren == 0 && bracket == 0 && brace == 0;
            match &tok.kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') if at_top => return (bound, PatternStop::Other),
                TokenKind::Punct(')') => paren -= 1,
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                TokenKind::Punct('{') => brace += 1,
                TokenKind::Punct('}') if at_top => return (bound, PatternStop::Other),
                TokenKind::Punct('}') => brace -= 1,
                TokenKind::Punct(';') if at_top => return (bound, PatternStop::Semi),
                TokenKind::Punct(':') if at_top && !(self.punct_at(1, ':') && self.adjacent(0)) => {
                    return (bound, PatternStop::TypeAnnotation);
                }
                TokenKind::Punct(':') if self.punct_at(1, ':') && self.adjacent(0) => {
                    self.bump();
                }
                TokenKind::Punct('=') if arrow_stops && self.punct_at(1, '>') && self.adjacent(0) && at_top => {
                    return (bound, PatternStop::Arrow);
                }
                TokenKind::Punct('=') if stop_eq && at_top && !self.punct_at(1, '=') => {
                    return (bound, PatternStop::Eq);
                }
                TokenKind::Ident(name) => match name.as_str() {
                    "in" if at_top => return (bound, PatternStop::In),
                    "if" if arrow_stops && at_top => return (bound, PatternStop::Guard),
                    _ => {
                        // `name::` is a path segment, `name(` / `name{` a variant or
                        // struct pattern, and `name:` inside braces a struct-pattern
                        // field key — none of those bind `name` itself.
                        let path_segment = self.punct_at(1, ':') && self.punct_at(2, ':');
                        let field_key = brace > 0 && self.punct_at(1, ':') && !self.punct_at(2, ':');
                        let not_a_binding = self.punct_at(1, '(') || self.punct_at(1, '{') || path_segment || field_key;
                        if binds_name(name) && !not_a_binding {
                            bound.push((name.clone(), Span { line: tok.line, col: tok.col }));
                        }
                    }
                },
                _ => {}
            }
            self.bump();
        }
        (bound, PatternStop::Other)
    }

    /// Skip a `let` type annotation: from the `:` to the `=` or `;` that follows it at
    /// bracket/angle depth 0 (associated-type `=`s inside generics are depth-guarded).
    fn skip_annotation(&mut self) {
        self.bump(); // the `:`
        let mut angle = 0usize;
        let mut paren = 0usize;
        let mut bracket = 0usize;
        while let Some(tok) = self.peek(0) {
            match tok.kind {
                TokenKind::Punct('-') if self.punct_at(1, '>') => {
                    self.bump();
                }
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle = angle.saturating_sub(1),
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                TokenKind::Punct('=') | TokenKind::Punct(';') if angle == 0 && paren == 0 && bracket == 0 => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip an item statement (`use`/`type`/`const`/`static`): everything up to the
    /// terminating `;` at brace/paren/bracket depth 0.
    fn skip_to_semi(&mut self) {
        let mut paren = 0usize;
        let mut bracket = 0usize;
        let mut brace = 0usize;
        while let Some(tok) = self.peek(0) {
            match tok.kind {
                TokenKind::Punct('(') => paren += 1,
                TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                TokenKind::Punct('[') => bracket += 1,
                TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                TokenKind::Punct('{') => brace += 1,
                TokenKind::Punct('}') => {
                    if brace == 0 {
                        return;
                    }
                    brace -= 1;
                }
                TokenKind::Punct(';') if paren == 0 && bracket == 0 && brace == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip a nested item with a braced body (`struct`/`enum`/`impl`/`mod`/`trait`):
    /// to the first depth-0 `;`, or over the first balanced `{...}`.
    fn skip_item(&mut self) {
        while let Some(tok) = self.peek(0) {
            match tok.kind {
                TokenKind::Punct(';') => {
                    self.bump();
                    return;
                }
                TokenKind::Punct('{') => {
                    self.skip_balanced('{', '}');
                    return;
                }
                TokenKind::Punct('}') => return,
                _ => self.bump(),
            }
        }
    }

    fn parse_block(&mut self) -> PResult<Block> {
        if !self.at_punct('{') {
            return Err(self.err("expected `{`"));
        }
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.bump();
        let mut stmts = Vec::new();
        let mut tail = None;
        loop {
            let iter_start = self.pos;
            if self.at_punct('}') {
                let close = self.span();
                self.bump();
                self.depth -= 1;
                return Ok(Block { stmts, tail: tail.take(), close });
            }
            let Some(_) = self.peek(0) else {
                return Err(self.err("unclosed block"));
            };
            // A tail expression must be the last thing in the block; if more code
            // follows, it was an ordinary (block-like) statement.
            if let Some(prev_tail) = tail.take() {
                stmts.push(Stmt::Expr(*prev_tail));
            }
            if self.at_punct('#') {
                self.skip_attribute();
                continue;
            }
            if self.at_punct(';') {
                self.bump();
                continue;
            }
            match self.ident_at(0) {
                Some("let") => {
                    let stmt = self.parse_let()?;
                    stmts.push(stmt);
                }
                Some("use") | Some("type") | Some("const") | Some("static") | Some("extern") => {
                    self.skip_to_semi();
                }
                Some("struct") | Some("enum") | Some("union") | Some("trait") | Some("impl") | Some("mod")
                | Some("macro_rules") => {
                    self.skip_item();
                }
                Some("pub") => {
                    self.bump();
                    if self.at_punct('(') {
                        self.skip_balanced('(', ')');
                    }
                }
                Some("fn") if self.ident_at(1).is_some() => {
                    let end = self.parse_fn_at(self.pos);
                    self.pos = end + 1;
                }
                Some("unsafe") if self.ident_at(1) == Some("fn") => {
                    self.bump();
                }
                _ => {
                    let e = self.parse_expr(false)?;
                    if self.at_punct(';') {
                        self.bump();
                        stmts.push(Stmt::Expr(e));
                    } else if self.at_punct('}') {
                        tail = Some(Box::new(e));
                    } else {
                        stmts.push(Stmt::Expr(e));
                    }
                }
            }
            if self.pos == iter_start {
                // Defensive progress guarantee: never loop on a token we cannot place.
                return Err(self.err("stuck in block"));
            }
        }
    }

    fn parse_let(&mut self) -> PResult<Stmt> {
        self.bump(); // `let`
        let (names, mut stop) = self.scan_pattern(true, false);
        if stop == PatternStop::TypeAnnotation {
            self.skip_annotation();
            stop = if self.at_punct('=') { PatternStop::Eq } else { PatternStop::Semi };
        }
        let mut init = None;
        let mut else_block = None;
        if stop == PatternStop::Eq {
            self.bump(); // `=`
            init = Some(self.parse_expr(false)?);
            if self.ident_at(0) == Some("else") {
                self.bump();
                else_block = Some(self.parse_block()?);
            }
        }
        if self.at_punct(';') {
            self.bump();
        }
        Ok(Stmt::Let { names, init, else_block })
    }

    fn parse_expr(&mut self, no_struct: bool) -> PResult<Expr> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("expression nesting too deep"));
        }
        let result = self.parse_expr_inner(no_struct);
        self.depth -= 1;
        result
    }

    fn parse_expr_inner(&mut self, no_struct: bool) -> PResult<Expr> {
        let mut items = Vec::new();
        // Leading range: `..end`, `..=end`, or a bare `..` (slice-all, struct update).
        if self.at_punct('.') && self.punct_at(1, '.') && self.adjacent(0) {
            self.bump();
            self.bump();
            if self.at_punct('=') {
                self.bump();
            }
            if !self.expr_follows(no_struct) {
                return Ok(Expr::Unit);
            }
            items.push(self.parse_unary(no_struct)?);
        } else {
            let first = self.parse_unary(no_struct)?;
            items.push(first);
        }
        loop {
            if self.ident_at(0) == Some("as") {
                self.bump();
                self.skip_type();
                continue;
            }
            // Range operator: `..` / `..=`, possibly with no right-hand side.
            if self.at_punct('.') && self.punct_at(1, '.') && self.adjacent(0) {
                self.bump();
                self.bump();
                if self.at_punct('=') {
                    self.bump();
                }
                if self.expr_follows(no_struct) {
                    let rhs = self.parse_unary(no_struct)?;
                    items.push(rhs);
                }
                continue;
            }
            if !self.at_binary_op() {
                break;
            }
            self.consume_op_run();
            let rhs = self.parse_unary(no_struct)?;
            items.push(rhs);
        }
        Ok(if items.len() == 1 { items.swap_remove(0) } else { Expr::Seq(items) })
    }

    /// Is the cursor on a binary/assignment operator (never `=>`, `->`, or `..`)?
    fn at_binary_op(&self) -> bool {
        let Some(tok) = self.peek(0) else { return false };
        let TokenKind::Punct(c) = tok.kind else { return false };
        match c {
            '+' | '-' | '*' | '/' | '%' | '^' | '&' | '|' | '<' | '>' => {
                !(c == '-' && self.punct_at(1, '>') && self.adjacent(0))
            }
            '=' => !(self.punct_at(1, '>') && self.adjacent(0)),
            '!' => self.punct_at(1, '=') && self.adjacent(0),
            _ => false,
        }
    }

    /// Consume a maximal run of adjacent operator punctuation (`&&`, `<<=`, `==`, ...).
    fn consume_op_run(&mut self) {
        const OPS: &str = "+-*/%^&|<>=!";
        let mut len = 0usize;
        while len < 3 {
            let Some(tok) = self.peek(0) else { return };
            let TokenKind::Punct(c) = tok.kind else { return };
            if !OPS.contains(c) {
                return;
            }
            // `a == -b`: only adjacent puncts fuse into one operator.
            if len > 0 && !matches!(c, '=' | '&' | '|' | '<' | '>') {
                return;
            }
            let adjacent_next = self.adjacent(0);
            self.bump();
            len += 1;
            if !adjacent_next {
                return;
            }
        }
    }

    /// Could a new expression begin at the cursor (for optional `return`/`break`/range
    /// operands)?
    fn expr_follows(&self, no_struct: bool) -> bool {
        let Some(tok) = self.peek(0) else { return false };
        match &tok.kind {
            TokenKind::Ident(name) => name != "else",
            TokenKind::Literal => true,
            TokenKind::Lifetime => true,
            TokenKind::Punct(c) => match c {
                '(' | '[' | '&' | '*' | '!' | '-' | '|' => true,
                '{' => !no_struct,
                _ => false,
            },
        }
    }

    fn parse_unary(&mut self, no_struct: bool) -> PResult<Expr> {
        match self.peek(0).map(|t| &t.kind) {
            Some(TokenKind::Punct('&')) => {
                self.bump();
                if self.at_punct('&') {
                    self.bump();
                }
                if self.ident_at(0) == Some("mut") {
                    self.bump();
                }
                Ok(Expr::Borrow { inner: Box::new(self.parse_unary(no_struct)?) })
            }
            Some(TokenKind::Punct('*')) | Some(TokenKind::Punct('-')) | Some(TokenKind::Punct('!')) => {
                self.bump();
                Ok(Expr::Borrow { inner: Box::new(self.parse_unary(no_struct)?) })
            }
            _ => {
                let primary = self.parse_primary(no_struct)?;
                self.parse_postfix(primary)
            }
        }
    }

    fn parse_postfix(&mut self, mut e: Expr) -> PResult<Expr> {
        loop {
            if self.at_punct('.') {
                // `..` is a range operator, not postfix.
                if self.punct_at(1, '.') && self.adjacent(0) {
                    return Ok(e);
                }
                match self.peek(1).map(|t| &t.kind) {
                    Some(TokenKind::Ident(name)) => {
                        let span = self.peek(1).map_or_else(|| self.span(), |t| Span { line: t.line, col: t.col });
                        let name = name.clone();
                        self.bump(); // `.`
                        self.bump(); // the name
                        if self.at_path_sep() && self.punct_at(2, '<') {
                            self.bump();
                            self.bump();
                            self.skip_angles(); // `.collect::<Vec<_>>`
                        }
                        if self.at_punct('(') {
                            let args = self.parse_args()?;
                            e = Expr::MethodCall { recv: Box::new(e), name, span, args };
                        } else {
                            e = Expr::Field { base: Box::new(e) };
                        }
                    }
                    Some(TokenKind::Literal) => {
                        self.bump();
                        self.bump();
                        e = Expr::Field { base: Box::new(e) };
                    }
                    _ => return Ok(e),
                }
            } else if self.at_punct('(') {
                let span = self.span();
                let args = self.parse_args()?;
                e = Expr::Call { callee: None, span, base: Some(Box::new(e)), args };
            } else if self.at_punct('[') {
                self.bump();
                let index = if self.at_punct(']') { Expr::Unit } else { self.parse_expr(false)? };
                if self.at_punct(']') {
                    self.bump();
                }
                e = Expr::Index { base: Box::new(e), index: Box::new(index) };
            } else if self.at_punct('?') {
                let span = self.span();
                self.bump();
                e = Expr::Question { inner: Box::new(e), span };
            } else {
                return Ok(e);
            }
        }
    }

    /// Parse a parenthesized, comma-separated argument list, starting on `(`.
    fn parse_args(&mut self) -> PResult<Vec<Expr>> {
        self.bump(); // `(`
        let mut args = Vec::new();
        loop {
            if self.at_punct(')') {
                self.bump();
                return Ok(args);
            }
            if self.peek(0).is_none() {
                return Err(self.err("unclosed argument list"));
            }
            args.push(self.parse_expr(false)?);
            if self.at_punct(',') {
                self.bump();
            } else if !self.at_punct(')') {
                return Err(self.err("expected `,` or `)` in arguments"));
            }
        }
    }

    fn parse_primary(&mut self, no_struct: bool) -> PResult<Expr> {
        let Some(tok) = self.peek(0) else {
            return Err(self.err("expected expression"));
        };
        match &tok.kind {
            TokenKind::Literal => {
                self.bump();
                Ok(Expr::Unit)
            }
            TokenKind::Lifetime => {
                // `'label: loop { .. }`.
                self.bump();
                if self.at_punct(':') {
                    self.bump();
                    return self.parse_primary(no_struct);
                }
                Ok(Expr::Unit)
            }
            TokenKind::Punct('(') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    if self.at_punct(')') {
                        self.bump();
                        break;
                    }
                    if self.peek(0).is_none() {
                        return Err(self.err("unclosed parenthesis"));
                    }
                    items.push(self.parse_expr(false)?);
                    if self.at_punct(',') {
                        self.bump();
                    }
                }
                Ok(if items.len() == 1 { items.swap_remove(0) } else { Expr::Seq(items) })
            }
            TokenKind::Punct('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    if self.at_punct(']') {
                        self.bump();
                        break;
                    }
                    if self.peek(0).is_none() {
                        return Err(self.err("unclosed array"));
                    }
                    items.push(self.parse_expr(false)?);
                    if self.at_punct(',') || self.at_punct(';') {
                        self.bump();
                    }
                }
                Ok(Expr::Seq(items))
            }
            TokenKind::Punct('{') => Ok(Expr::BlockExpr(self.parse_block()?)),
            TokenKind::Punct('|') => self.parse_closure(),
            TokenKind::Punct('<') => {
                // Qualified path `<T as Trait>::method(..)`.
                self.skip_angles();
                if self.at_path_sep() {
                    self.bump();
                    self.bump();
                    if let Some(name) = self.ident_at(0) {
                        let name = name.to_string();
                        let span = self.span();
                        self.bump();
                        return self.parse_path_like(name, span, no_struct);
                    }
                }
                Ok(Expr::Unit)
            }
            TokenKind::Punct('#') => {
                self.skip_attribute();
                self.parse_primary(no_struct)
            }
            TokenKind::Punct(c) => {
                Err(ParseError { span: self.span(), what: format!("unexpected `{c}` in expression position") })
            }
            TokenKind::Ident(name) => {
                let name = name.clone();
                let span = self.span();
                match name.as_str() {
                    "if" => self.parse_if(),
                    "match" => self.parse_match(),
                    "loop" => {
                        self.bump();
                        Ok(Expr::Loop { body: self.parse_block()? })
                    }
                    "while" => {
                        self.bump();
                        let mut bound = Vec::new();
                        if self.ident_at(0) == Some("let") {
                            self.bump();
                            let (names, stop) = self.scan_pattern(true, false);
                            bound = names;
                            if stop == PatternStop::Eq {
                                self.bump();
                            }
                        }
                        let cond = Box::new(self.parse_expr(true)?);
                        let body = self.parse_block()?;
                        Ok(Expr::While { bound, cond, body })
                    }
                    "for" => {
                        self.bump();
                        let (bound, _) = self.scan_pattern(false, false);
                        if self.ident_at(0) == Some("in") {
                            self.bump();
                        }
                        let iter = Box::new(self.parse_expr(true)?);
                        let body = self.parse_block()?;
                        Ok(Expr::For { bound, iter, body })
                    }
                    "return" => {
                        self.bump();
                        let value = if self.expr_follows(no_struct) {
                            Some(Box::new(self.parse_expr(no_struct)?))
                        } else {
                            None
                        };
                        Ok(Expr::Return { value, span })
                    }
                    "break" => {
                        self.bump();
                        if matches!(self.peek(0).map(|t| &t.kind), Some(TokenKind::Lifetime)) {
                            self.bump();
                        }
                        let value = if self.expr_follows(no_struct) {
                            Some(Box::new(self.parse_expr(no_struct)?))
                        } else {
                            None
                        };
                        Ok(Expr::Break { value })
                    }
                    "continue" => {
                        self.bump();
                        if matches!(self.peek(0).map(|t| &t.kind), Some(TokenKind::Lifetime)) {
                            self.bump();
                        }
                        Ok(Expr::Continue)
                    }
                    "unsafe" => {
                        self.bump();
                        Ok(Expr::BlockExpr(self.parse_block()?))
                    }
                    "move" => {
                        self.bump();
                        if self.at_punct('|') {
                            self.parse_closure()
                        } else {
                            // `move { .. }` (rare) — treat as a block.
                            Ok(Expr::BlockExpr(self.parse_block()?))
                        }
                    }
                    _ => {
                        self.bump();
                        self.parse_path_like(name, span, no_struct)
                    }
                }
            }
        }
    }

    /// Continue a path expression whose first segment is already consumed: more
    /// segments, a macro bang, a call, a struct literal, or a plain variable read.
    fn parse_path_like(&mut self, mut last: String, mut span: Span, no_struct: bool) -> PResult<Expr> {
        let mut segments = 1usize;
        loop {
            if self.at_path_sep() {
                if self.punct_at(2, '<') {
                    self.bump();
                    self.bump();
                    self.skip_angles(); // turbofish
                    continue;
                }
                if let Some(name) = self.ident_at(2) {
                    last = name.to_string();
                    span = self.peek(2).map_or(span, |t| Span { line: t.line, col: t.col });
                    self.bump();
                    self.bump();
                    self.bump();
                    segments += 1;
                    continue;
                }
            }
            break;
        }
        if self.at_punct('!') && (self.punct_at(1, '(') || self.punct_at(1, '[') || self.punct_at(1, '{')) {
            self.bump();
            return Ok(self.parse_macro_args());
        }
        if self.at_punct('(') {
            let args = self.parse_args()?;
            return Ok(Expr::Call { callee: Some(last), span, base: None, args });
        }
        if self.at_punct('{') && !no_struct {
            return self.parse_struct_literal();
        }
        if segments > 1 {
            // `Ordering::Relaxed` and friends: a path constant, not a variable read.
            return Ok(Expr::Unit);
        }
        Ok(Expr::Var { name: last, span })
    }

    /// Reduce a macro invocation's delimited arguments to the bare identifiers inside:
    /// names that are not call names, path segments, or field/method names.
    fn parse_macro_args(&mut self) -> Expr {
        let (open, close) = match self.peek(0).map(|t| &t.kind) {
            Some(TokenKind::Punct('(')) => ('(', ')'),
            Some(TokenKind::Punct('[')) => ('[', ']'),
            _ => ('{', '}'),
        };
        let mut idents = Vec::new();
        let mut depth = 0usize;
        let mut prev_excludes = false;
        while let Some(tok) = self.peek(0) {
            match &tok.kind {
                TokenKind::Punct(c) if *c == open => depth += 1,
                TokenKind::Punct(c) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        break;
                    }
                }
                TokenKind::Ident(name) => {
                    let followed_by_call = self.punct_at(1, '(');
                    let followed_by_path = self.punct_at(1, ':') && self.punct_at(2, ':');
                    if !prev_excludes && !followed_by_call && !followed_by_path && binds_name(name) {
                        idents.push((name.clone(), Span { line: tok.line, col: tok.col }));
                    }
                }
                _ => {}
            }
            prev_excludes = matches!(self.peek(0).map(|t| &t.kind), Some(TokenKind::Punct('.'))) || self.at_path_sep();
            self.bump();
        }
        Expr::MacroCall { idents }
    }

    /// Parse a struct literal body, starting on `{`.
    fn parse_struct_literal(&mut self) -> PResult<Expr> {
        self.bump(); // `{`
        let mut fields = Vec::new();
        loop {
            if self.at_punct('}') {
                self.bump();
                return Ok(Expr::StructLit { fields });
            }
            if self.peek(0).is_none() {
                return Err(self.err("unclosed struct literal"));
            }
            if self.at_punct(',') {
                self.bump();
                continue;
            }
            if self.at_punct('.') && self.punct_at(1, '.') {
                self.bump();
                self.bump();
                fields.push(self.parse_expr(false)?); // `..base`
                continue;
            }
            if let Some(name) = self.ident_at(0) {
                // `field: value` vs shorthand `field` (a variable read).
                if self.punct_at(1, ':') && !self.punct_at(2, ':') {
                    self.bump();
                    self.bump();
                    fields.push(self.parse_expr(false)?);
                    continue;
                }
                let span = self.span();
                let name = name.to_string();
                self.bump();
                fields.push(Expr::Var { name, span });
                continue;
            }
            fields.push(self.parse_expr(false)?);
        }
    }

    fn parse_if(&mut self) -> PResult<Expr> {
        self.bump(); // `if`
        let mut bound = Vec::new();
        if self.ident_at(0) == Some("let") {
            self.bump();
            let (names, stop) = self.scan_pattern(true, false);
            bound = names;
            if stop == PatternStop::Eq {
                self.bump();
            }
        }
        let cond = Box::new(self.parse_expr(true)?);
        let then = self.parse_block()?;
        let orelse = if self.ident_at(0) == Some("else") {
            self.bump();
            if self.ident_at(0) == Some("if") {
                Some(Box::new(self.parse_if()?))
            } else {
                Some(Box::new(Expr::BlockExpr(self.parse_block()?)))
            }
        } else {
            None
        };
        Ok(Expr::If { bound, cond, then, orelse })
    }

    fn parse_match(&mut self) -> PResult<Expr> {
        self.bump(); // `match`
        let scrutinee = Box::new(self.parse_expr(true)?);
        if !self.at_punct('{') {
            return Err(self.err("expected `{` after match scrutinee"));
        }
        self.bump();
        let mut arms = Vec::new();
        loop {
            if self.at_punct('}') {
                self.bump();
                return Ok(Expr::Match { scrutinee, arms });
            }
            if self.peek(0).is_none() {
                return Err(self.err("unclosed match"));
            }
            while self.at_punct('#') {
                self.skip_attribute();
            }
            if self.at_punct('|') {
                self.bump();
            }
            let (bound, stop) = self.scan_pattern(false, true);
            let guard = if stop == PatternStop::Guard {
                self.bump(); // `if`
                Some(self.parse_expr(true)?)
            } else {
                None
            };
            if !(self.at_punct('=') && self.punct_at(1, '>')) {
                return Err(self.err("expected `=>` in match arm"));
            }
            self.bump();
            self.bump();
            let body = self.parse_expr(false)?;
            if self.at_punct(',') {
                self.bump();
            }
            arms.push(Arm { bound, guard, body });
        }
    }

    fn parse_closure(&mut self) -> PResult<Expr> {
        // `||` (no params) or `|params|`.
        if self.at_punct('|') && self.punct_at(1, '|') && self.adjacent(0) {
            self.bump();
            self.bump();
        } else {
            self.bump(); // opening `|`
            let mut paren = 0usize;
            let mut bracket = 0usize;
            let mut angle = 0usize;
            while let Some(tok) = self.peek(0) {
                match tok.kind {
                    TokenKind::Punct('(') => paren += 1,
                    TokenKind::Punct(')') => paren = paren.saturating_sub(1),
                    TokenKind::Punct('[') => bracket += 1,
                    TokenKind::Punct(']') => bracket = bracket.saturating_sub(1),
                    TokenKind::Punct('<') => angle += 1,
                    TokenKind::Punct('>') => angle = angle.saturating_sub(1),
                    TokenKind::Punct('|') if paren == 0 && bracket == 0 && angle == 0 => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                self.bump();
            }
        }
        if self.at_punct('-') && self.punct_at(1, '>') {
            self.bump();
            self.bump();
            self.skip_type();
        }
        let body = Box::new(self.parse_expr(false)?);
        Ok(Expr::Closure { body })
    }
}

/// Would this identifier, in pattern position, bind a new name? Uppercase-first
/// identifiers are enum variants / constants by Rust convention.
fn binds_name(name: &str) -> bool {
    if name == "_" || PATTERN_KEYWORDS.contains(&name) {
        return false;
    }
    name.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
}

/// Where a pattern scan stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PatternStop {
    /// At a depth-0 `=` (initializer follows).
    Eq,
    /// At a depth-0 `;` (no initializer).
    Semi,
    /// At a depth-0 `:` (type annotation follows).
    TypeAnnotation,
    /// At the identifier `in` (for-loop iterator follows).
    In,
    /// At the identifier `if` (match-arm guard follows).
    Guard,
    /// At `=>` (match-arm body follows).
    Arrow,
    /// At a closing delimiter or end of input.
    Other,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn parses_functions_blocks_and_tails() {
        let p = parse_src("pub fn outer(x: usize) -> usize {\n    let y = x + 1;\n    y\n}\nfn plain() {}\n");
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].name, "outer");
        assert!(p.functions[0].body.tail.is_some());
        assert_eq!(p.functions[0].body.stmts.len(), 1);
    }

    #[test]
    fn parses_control_flow_and_question_spans() {
        let p = parse_src(
            "fn f(pool: &Pool) -> Result<(), E> {\n    let pages = pool.checked_pages()?;\n    match pages {\n        0 => return Err(E::Empty),\n        n if n > 4 => {}\n        _ => {}\n    }\n    Ok(())\n}\n",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let f = &p.functions[0];
        let Some(Stmt::Let { names, init, .. }) = f.body.stmts.first() else {
            panic!("expected let: {:?}", f.body.stmts)
        };
        assert_eq!(names[0].0, "pages");
        let Some(Expr::Question { span, .. }) = init.as_ref() else { panic!("expected ?: {init:?}") };
        assert_eq!((span.line, span.col), (2, 37));
        let Some(Stmt::Expr(Expr::Match { arms, .. })) = f.body.stmts.get(1) else {
            panic!("expected match: {:?}", f.body.stmts)
        };
        assert_eq!(arms.len(), 3);
        assert!(arms[1].guard.is_some());
    }

    #[test]
    fn terminal_call_name_peels_adapters() {
        let p = parse_src(
            "fn f(pool: &Pool) {\n    let a = pool.state();\n    let b = pool.state().unwrap();\n    let c = pool.state().free.len();\n}\n",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let terminals: Vec<Option<&str>> = p.functions[0]
            .body
            .stmts
            .iter()
            .map(|s| match s {
                Stmt::Let { init: Some(e), .. } => terminal_call_name(e),
                _ => None,
            })
            .collect();
        assert_eq!(terminals, vec![Some("state"), Some("state"), Some("len")]);
    }

    #[test]
    fn parses_closures_struct_literals_and_turbofish() {
        let p = parse_src(
            "fn f(v: Vec<usize>) -> Foo {\n    let total = v.iter().map(|x| x + 1).sum::<usize>();\n    Foo { total, other: vec![1, 2], ..Default::default() }\n}\n",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        assert!(matches!(p.functions[0].body.tail.as_deref(), Some(Expr::StructLit { .. })));
    }

    #[test]
    fn nested_functions_are_collected_once() {
        let p = parse_src("fn outer() {\n    fn inner(q: u8) -> u8 { q }\n    inner(3);\n}\n");
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let names: Vec<&str> = p.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["inner", "outer"]);
    }
}
