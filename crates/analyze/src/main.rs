//! CLI for the workspace lints: `cargo run -p mx-analyze -- [--json] [root]`.
//!
//! Human mode exits 0 when the tree is clean (printing any suppressed findings with
//! their reasons as notes), 1 when any lint fires (one `file:line:col: rule-id:
//! message` line per finding), 2 on I/O errors. `--json` prints the stable
//! machine-readable report (see [`mx_analyze::render_json`]) with the same exit codes.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root(arg: Option<String>) -> Option<PathBuf> {
    if let Some(root) = arg {
        return Some(PathBuf::from(root));
    }
    // `cargo run` keeps the invoker's cwd; accept it if it is the workspace root.
    let cwd = std::env::current_dir().ok()?;
    if is_workspace_root(&cwd) {
        return Some(cwd);
    }
    // Fall back to walking up from this crate's manifest (cargo sets the var at runtime).
    let manifest: PathBuf = std::env::var_os("CARGO_MANIFEST_DIR")?.into();
    let mut dir = manifest.as_path();
    while let Some(parent) = dir.parent() {
        if is_workspace_root(parent) {
            return Some(parent.to_path_buf());
        }
        dir = parent;
    }
    None
}

fn is_workspace_root(dir: &std::path::Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml")).is_ok_and(|m| m.contains("[workspace]"))
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg = None;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if root_arg.is_none() {
            root_arg = Some(arg);
        } else {
            eprintln!("mx-analyze: unexpected argument `{arg}`");
            return ExitCode::from(2);
        }
    }
    let root = match workspace_root(root_arg) {
        Some(root) => root,
        None => {
            eprintln!("mx-analyze: cannot locate the workspace root; pass it as the first argument");
            return ExitCode::from(2);
        }
    };
    let (report, scanned) = match mx_analyze::check_workspace(&root) {
        Ok(result) => result,
        Err(err) => {
            eprintln!("mx-analyze: {err}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", mx_analyze::render_json(&report, scanned));
        return if report.findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    for s in &report.suppressed {
        let f = &s.finding;
        println!(
            "note: {}:{}:{}: {} suppressed (reason: {})",
            f.file.display(),
            f.line,
            f.col,
            f.rule.id(),
            s.reason.as_deref().unwrap_or("<missing>")
        );
    }
    for e in &report.parse_errors {
        eprintln!("warning: {}:{}:{}: parse skipped a function body: {}", e.file.display(), e.line, e.col, e.what);
    }
    if report.findings.is_empty() {
        println!("mx-analyze: {scanned} files clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        eprintln!("mx-analyze: {} finding(s) across {scanned} files", report.findings.len());
        ExitCode::FAILURE
    }
}
