//! CLI for the workspace lints: `cargo run -p mx-analyze [root]`.
//!
//! Exits 0 when the tree is clean, 1 when any lint fires (one `file:line:col:
//! rule-id: message` line per finding), 2 on I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root(arg: Option<String>) -> Option<PathBuf> {
    if let Some(root) = arg {
        return Some(PathBuf::from(root));
    }
    // `cargo run` keeps the invoker's cwd; accept it if it is the workspace root.
    let cwd = std::env::current_dir().ok()?;
    if is_workspace_root(&cwd) {
        return Some(cwd);
    }
    // Fall back to walking up from this crate's manifest (cargo sets the var at runtime).
    let manifest: PathBuf = std::env::var_os("CARGO_MANIFEST_DIR")?.into();
    let mut dir = manifest.as_path();
    while let Some(parent) = dir.parent() {
        if is_workspace_root(parent) {
            return Some(parent.to_path_buf());
        }
        dir = parent;
    }
    None
}

fn is_workspace_root(dir: &std::path::Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml")).is_ok_and(|m| m.contains("[workspace]"))
}

fn main() -> ExitCode {
    let root = match workspace_root(std::env::args().nth(1)) {
        Some(root) => root,
        None => {
            eprintln!("mx-analyze: cannot locate the workspace root; pass it as the first argument");
            return ExitCode::from(2);
        }
    };
    match mx_analyze::check_workspace(&root) {
        Ok((findings, scanned)) if findings.is_empty() => {
            println!("mx-analyze: {scanned} files clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok((findings, scanned)) => {
            for finding in &findings {
                println!("{finding}");
            }
            eprintln!("mx-analyze: {} finding(s) across {scanned} files", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("mx-analyze: {err}");
            ExitCode::from(2)
        }
    }
}
