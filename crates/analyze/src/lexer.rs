//! A minimal Rust lexer for the workspace lints.
//!
//! The lints only need identifiers and punctuation with accurate positions, so the
//! lexer's job is mostly *subtractive*: skip line comments, nested block comments,
//! string literals (plain, raw `r#"..."#`, byte, byte-raw), char literals, and
//! lifetimes, so that a `pack_row_into` inside a doc comment or a `"panic!"` inside a
//! format string can never trip a rule. Along the way it collects
//! `// mx-analyze: allow(<rule>) reason: <text>` suppression comments with positions.

/// Kind of a lexed token. Literals and lifetimes are kept (with positions) but carry
/// no text: no lint ever matches on their contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`{`, `.`, `(`, ...).
    Punct(char),
    /// String / char / numeric literal.
    Literal,
    /// Lifetime such as `'a` or `'_`.
    Lifetime,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column of the token's first character.
    pub col: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is exactly the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// One rule allowed by a `// mx-analyze: allow(<rule>[, <rule>...]) reason: <text>`
/// comment. A comment naming several rules yields one entry per rule, all sharing the
/// comment's position and reason.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: usize,
    /// 1-based column of the comment's first `/`.
    pub col: usize,
    /// The rule id this entry allows.
    pub rule: String,
    /// Text after the `reason:` tail. The tail is required; `None` is itself reported
    /// by the `meta-unused-allow` pass.
    pub reason: Option<String>,
}

/// All suppression comments collected during lexing, in source order.
///
/// A suppression covers findings on its own line (trailing comment) and on the line
/// directly below it (standalone comment above the code).
#[derive(Debug, Default)]
pub struct Suppressions {
    /// The collected entries.
    pub entries: Vec<Suppression>,
}

impl Suppressions {
    /// Index of the first entry covering a finding of `rule` on `line`: the entry sits
    /// on the finding's own line or on the line directly above it.
    pub fn covering(&self, line: usize, rule: &str) -> Option<usize> {
        self.entries.iter().position(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
    }
}

/// The result of lexing one file.
#[derive(Debug)]
pub struct LexedFile {
    /// All meaningful tokens in source order.
    pub tokens: Vec<Token>,
    /// Suppression comments found in the file.
    pub suppressions: Suppressions,
    /// 1-based lines carrying a `//` line comment of any kind (doc comments included).
    pub comment_lines: Vec<usize>,
    /// 1-based lines whose comment documents safety: a `// SAFETY:` marker or a rustdoc
    /// `# Safety` heading. Consumed by the `unsafe-safety-comment` rule.
    pub safety_lines: Vec<usize>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn done(&self) -> bool {
        self.i >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Parse the rule list and `reason:` tail out of one suppression line comment, if
/// present. (The syntax is spelled out in the module docs; repeating a literal
/// example here would register as a suppression in this very file.)
fn record_suppressions(comment: &str, line: usize, col: usize, entries: &mut Vec<Suppression>) {
    let Some(at) = comment.find("mx-analyze:") else { return };
    let rest = &comment[at + "mx-analyze:".len()..];
    let Some(open) = rest.find("allow(") else { return };
    let args = &rest[open + "allow(".len()..];
    let Some(close) = args.find(')') else { return };
    let reason = args[close..]
        .find("reason:")
        .map(|r| args[close + r + "reason:".len()..].trim().to_string())
        .filter(|r| !r.is_empty());
    // Only well-formed rule ids count: documentation placeholders like `allow(<rule>)`
    // in doc comments must not register as (unused) suppressions.
    let well_formed =
        |r: &str| !r.is_empty() && r.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
    for rule in args[..close].split(',').map(str::trim).filter(|r| well_formed(r)) {
        entries.push(Suppression { line, col, rule: rule.to_string(), reason: reason.clone() });
    }
}

/// Lex `source` into tokens + suppressions. Never fails: unterminated constructs
/// simply consume the rest of the file.
pub fn lex(source: &str) -> LexedFile {
    let mut cur = Cursor { chars: source.chars().collect(), i: 0, line: 1, col: 1 };
    let mut tokens = Vec::new();
    let mut entries: Vec<Suppression> = Vec::new();
    let mut comment_lines: Vec<usize> = Vec::new();
    let mut safety_lines: Vec<usize> = Vec::new();

    while !cur.done() {
        let (line, col) = (cur.line, cur.col);
        let Some(c) = cur.peek(0) else { break };

        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Line comment (also covers doc comments `///` and `//!`).
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            record_suppressions(&text, line, col, &mut entries);
            comment_lines.push(line);
            let body = text.trim_start_matches(['/', '!']).trim_start();
            if body.starts_with("SAFETY:") || body.starts_with("# Safety") {
                safety_lines.push(line);
            }
            continue;
        }

        // Block comment, with nesting.
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 && !cur.done() {
                if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else {
                    cur.bump();
                }
            }
            continue;
        }

        // Plain string literal.
        if c == '"' {
            cur.bump();
            consume_string_body(&mut cur);
            tokens.push(Token { kind: TokenKind::Literal, line, col });
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            cur.bump();
            lex_quote(&mut cur, &mut tokens, line, col);
            continue;
        }

        // Numeric literal: good enough to skip suffixes, hex digits, exponents and a
        // fractional part, without eating range operators (`0..n`).
        if c.is_ascii_digit() {
            cur.bump();
            loop {
                match cur.peek(0) {
                    Some(ch) if is_ident_continue(ch) => {
                        let exponent = ch == 'e' || ch == 'E';
                        cur.bump();
                        if exponent && matches!(cur.peek(0), Some('+') | Some('-')) {
                            cur.bump();
                        }
                    }
                    Some('.') if cur.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                        cur.bump();
                    }
                    _ => break,
                }
            }
            tokens.push(Token { kind: TokenKind::Literal, line, col });
            continue;
        }

        // Identifier / keyword, possibly prefixing a raw or byte string.
        if is_ident_start(c) {
            let mut name = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                name.push(ch);
                cur.bump();
            }
            if lex_string_prefix(&mut cur, &name) {
                tokens.push(Token { kind: TokenKind::Literal, line, col });
            } else {
                tokens.push(Token { kind: TokenKind::Ident(name), line, col });
            }
            continue;
        }

        cur.bump();
        tokens.push(Token { kind: TokenKind::Punct(c), line, col });
    }

    LexedFile { tokens, suppressions: Suppressions { entries }, comment_lines, safety_lines }
}

/// Consume a string body after the opening `"`, honoring escapes.
fn consume_string_body(cur: &mut Cursor) {
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// After a `'`, decide between a char literal and a lifetime.
fn lex_quote(cur: &mut Cursor, tokens: &mut Vec<Token>, line: usize, col: usize) {
    match cur.peek(0) {
        // Escaped char literal: `'\n'`, `'\\'`, `'\u{1F600}'`.
        Some('\\') => {
            cur.bump();
            if cur.peek(0) == Some('u') {
                cur.bump();
                if cur.peek(0) == Some('{') {
                    while let Some(ch) = cur.bump() {
                        if ch == '}' {
                            break;
                        }
                    }
                }
            } else {
                cur.bump();
            }
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            tokens.push(Token { kind: TokenKind::Literal, line, col });
        }
        // `'a'` is a char literal; `'a` / `'static` / `'_` are lifetimes.
        Some(ch) if is_ident_start(ch) => {
            let mut len = 0usize;
            while cur.peek(len).is_some_and(is_ident_continue) {
                len += 1;
            }
            if len == 1 && cur.peek(1) == Some('\'') {
                cur.bump();
                cur.bump();
                tokens.push(Token { kind: TokenKind::Literal, line, col });
            } else {
                for _ in 0..len {
                    cur.bump();
                }
                tokens.push(Token { kind: TokenKind::Lifetime, line, col });
            }
        }
        // Punctuation char literal like `'('`.
        Some(_) => {
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            tokens.push(Token { kind: TokenKind::Literal, line, col });
        }
        None => tokens.push(Token { kind: TokenKind::Literal, line, col }),
    }
}

/// If `name` is a string prefix (`r`, `b`, `br`) followed by a string opener, consume
/// the string and return true. Raw identifiers (`r#type`) are consumed as identifiers.
fn lex_string_prefix(cur: &mut Cursor, name: &str) -> bool {
    let raw = matches!(name, "r" | "br" | "rb");
    let stringy = raw || name == "b";
    if !stringy {
        return false;
    }
    if name == "b" && cur.peek(0) == Some('\'') {
        // Byte char literal `b'x'`.
        cur.bump();
        if cur.peek(0) == Some('\\') {
            cur.bump();
            cur.bump();
        } else {
            cur.bump();
        }
        if cur.peek(0) == Some('\'') {
            cur.bump();
        }
        return true;
    }
    if !raw && cur.peek(0) == Some('"') {
        cur.bump();
        consume_string_body(cur);
        return true;
    }
    if raw {
        let mut hashes = 0usize;
        while cur.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if cur.peek(hashes) == Some('"') {
            for _ in 0..=hashes {
                cur.bump();
            }
            consume_raw_string_body(cur, hashes);
            return true;
        }
        if name == "r" && hashes == 1 && cur.peek(1).is_some_and(is_ident_start) {
            // Raw identifier `r#type`: eat the `#`; the identifier lexes next round.
            cur.bump();
            return false;
        }
    }
    false
}

/// Consume a raw string body until `"` followed by `hashes` `#`s.
fn consume_raw_string_body(cur: &mut Cursor, hashes: usize) {
    while let Some(ch) = cur.bump() {
        if ch == '"' {
            let mut matched = 0usize;
            while matched < hashes && cur.peek(0) == Some('#') {
                cur.bump();
                matched += 1;
            }
            if matched == hashes {
                break;
            }
        }
    }
}
