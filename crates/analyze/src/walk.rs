//! Workspace file discovery: every first-party `.rs` file, skipping build output,
//! vendored crates, VCS metadata, and the analyzer's own lint fixtures (which exist
//! to violate the rules).
//!
//! Skipping is enforced twice: directories named in [`SKIP_DIRS`] are pruned during
//! the walk, and — defensively — any collected path containing such a component at
//! *any* depth is filtered out, so a nested `crates/foo/target/` or a symlinked
//! vendor tree can never leak build output into the lint set.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names that never contain first-party lintable sources.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Is any component of this relative path a skipped directory name?
fn has_skipped_component(rel: &Path) -> bool {
    rel.iter().any(|c| c.to_str().is_some_and(|name| SKIP_DIRS.contains(&name) || name.starts_with('.')))
}

/// Collect all lintable `.rs` files under `root`, as paths relative to `root`,
/// sorted for deterministic reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    visit(root, root, &mut files)?;
    files.retain(|rel| !has_skipped_component(rel.as_path()));
    files.sort();
    Ok(files)
}

fn visit(root: &Path, dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            visit(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// A throwaway directory tree, removed on drop.
    struct TempTree {
        root: PathBuf,
    }

    impl TempTree {
        fn new(tag: &str) -> TempTree {
            let root = std::env::temp_dir().join(format!("mx-analyze-walk-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(&root).expect("create temp tree");
            TempTree { root }
        }

        fn write(&self, rel: &str) {
            let path = self.root.join(rel);
            fs::create_dir_all(path.parent().expect("parent")).expect("mkdirs");
            fs::write(path, "fn f() {}\n").expect("write");
        }
    }

    impl Drop for TempTree {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    #[test]
    fn nested_target_and_vendor_are_not_scanned() {
        let tree = TempTree::new("nested");
        tree.write("src/lib.rs");
        tree.write("crates/foo/src/lib.rs");
        // Nested build output *inside* a crate, not at the workspace top level.
        tree.write("crates/foo/target/debug/build/probe.rs");
        tree.write("crates/foo/vendor/dep/src/lib.rs");
        tree.write("target/debug/junk.rs");
        tree.write("crates/analyze/fixtures/bad.rs");
        let files = workspace_files(&tree.root).expect("walk");
        let names: Vec<String> = files.iter().map(|p| p.display().to_string()).collect();
        assert_eq!(names, vec!["crates/foo/src/lib.rs".to_string(), "src/lib.rs".to_string()], "{names:?}");
    }

    #[test]
    fn defensive_component_filter_rejects_skipped_paths() {
        assert!(has_skipped_component(Path::new("crates/foo/target/debug/x.rs")));
        assert!(has_skipped_component(Path::new("vendor/dep/lib.rs")));
        assert!(has_skipped_component(Path::new("crates/analyze/fixtures/bad.rs")));
        assert!(has_skipped_component(Path::new(".hidden/x.rs")));
        assert!(!has_skipped_component(Path::new("crates/foo/src/targets.rs")));
        assert!(!has_skipped_component(Path::new("src/serving.rs")));
    }
}
