//! Workspace file discovery: every first-party `.rs` file, skipping build output,
//! vendored crates, VCS metadata, and the analyzer's own lint fixtures (which exist
//! to violate the rules).

use std::io;
use std::path::{Path, PathBuf};

const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Collect all lintable `.rs` files under `root`, as paths relative to `root`,
/// sorted for deterministic reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    visit(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn visit(root: &Path, dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            visit(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(rel);
        }
    }
    Ok(())
}
