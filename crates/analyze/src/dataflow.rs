//! Intraprocedural dataflow: per-function CFGs + a forward abstract-interpretation
//! worklist solver, powering the `page-lifecycle`, `guard-liveness` and `must-release`
//! passes.
//!
//! The AST from [`crate::parser`] is lowered into a control-flow graph whose nodes
//! carry linear *event* lists — binds, calls, moves, borrows, scope ends — and whose
//! edges follow `if`/`match`/loop structure; `return` and `?` attach early-exit edges.
//! Each pass is a transfer function over a per-variable bitmask *state set*
//! (a may-analysis: the join is set union, so "freed on one path, live on the other"
//! keeps both facts). The solver runs the worklist to a fixpoint, then replays every
//! reachable node once against its stable in-environment to emit findings, deduplicated
//! and sorted by position.
//!
//! Everything here is intraprocedural: calls are interpreted by *name* (see the
//! constant tables below), closure bodies are treated as opaque captures, and values
//! that escape through fields or containers stop being tracked. `crates/analyze/
//! ARCHITECTURE.md` documents the resulting blind spots.

use crate::ast::{Arm, Block, Expr, Function, Span, Stmt};
use crate::parser::terminal_call_name;
use std::collections::{BTreeMap, BTreeSet};

/// How a `let` initializer is classified for tracking purposes.
#[derive(Debug, Clone)]
pub enum Init {
    /// Bound from a call; `name` is the terminal call name after peeling unwrap-style
    /// adapters and `?` (see [`terminal_call_name`]).
    Call(String),
    /// Bound from a bare variable (a move): `let b = a;`.
    Alias(String),
    /// Anything else — the binding is not tracked.
    Opaque,
}

/// One abstract event inside a CFG node, in evaluation order.
#[derive(Debug, Clone)]
pub enum Event {
    /// A `let` binding (also `if let` / match-arm / loop pattern binds, as Opaque).
    Bind {
        /// The bound name.
        var: String,
        /// Span of the name.
        span: Span,
        /// Initializer classification.
        init: Init,
    },
    /// A call or method call. Arguments passed as *bare variables* are collected in
    /// `args` (by-value: the callee consumes them); `&var` arguments surface as
    /// [`Event::Touch`] instead.
    Call {
        /// Callee name (method name, or last path segment; `<call>` when unnamed).
        name: String,
        /// Receiver variable for `recv.name(..)` when the receiver is a bare variable.
        recv: Option<String>,
        /// Bare-variable arguments, by value.
        args: Vec<String>,
        /// Span of the callee name.
        span: Span,
    },
    /// A bare variable in value position — a move (return value, struct field,
    /// operator operand, block tail).
    MoveOut {
        /// The moved variable.
        var: String,
        /// Span of the use.
        span: Span,
    },
    /// A borrow-like use: `&var`, `var.field`, `var[i]`, or a method receiver.
    Touch {
        /// The borrowed variable.
        var: String,
        /// Span of the use.
        span: Span,
    },
    /// A variable appearing inside a macro invocation or captured by a closure —
    /// passes choose whether this is an escape (lifecycle) or a liveness-preserving
    /// use (guards).
    MacroTouch {
        /// The variable.
        var: String,
        /// Span of the use.
        span: Span,
    },
    /// A variable's scope closes (its block's `}`): obligations are checked, then the
    /// variable is dropped from the environment.
    ScopeEnd {
        /// The variable going out of scope.
        var: String,
        /// Span of the closing `}` (or the pattern, for arm-scoped binds).
        span: Span,
    },
}

/// Why control leaves the function early at an exit edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    /// An explicit `return`.
    Return,
    /// The error path of a `?`.
    Question,
}

/// An early exit attached at the *end* of a node's event list.
#[derive(Debug, Clone)]
pub struct ExitEdge {
    /// Span of the `return` keyword or the `?`.
    pub span: Span,
    /// Which exit this is.
    pub kind: ExitKind,
}

/// One CFG node: straight-line events, successor nodes, early exits after the events.
#[derive(Debug, Default)]
pub struct Node {
    /// Events in evaluation order.
    pub events: Vec<Event>,
    /// Successor node indices.
    pub succs: Vec<usize>,
    /// Early-exit edges taken after the events.
    pub exits: Vec<ExitEdge>,
}

/// A per-function control-flow graph. Node 0 is the entry.
#[derive(Debug)]
pub struct Cfg {
    /// The nodes.
    pub nodes: Vec<Node>,
}

/// Build the CFG for one parsed function.
pub fn build_cfg(function: &Function) -> Cfg {
    let mut b = Builder { nodes: vec![Node::default()], cur: 0, loops: Vec::new() };
    b.lower_block(&function.body);
    Cfg { nodes: b.nodes }
}

struct LoopCtx {
    break_to: usize,
    continue_to: usize,
}

struct Builder {
    nodes: Vec<Node>,
    cur: usize,
    loops: Vec<LoopCtx>,
}

impl Builder {
    fn new_node(&mut self) -> usize {
        self.nodes.push(Node::default());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.nodes[from].succs.push(to);
    }

    fn emit(&mut self, ev: Event) {
        self.nodes[self.cur].events.push(ev);
    }

    /// Attach an early exit at the current point, then continue in a fresh node so
    /// later events are not attributed to the pre-exit environment.
    fn exit_edge(&mut self, span: Span, kind: ExitKind) {
        self.nodes[self.cur].exits.push(ExitEdge { span, kind });
        let next = self.new_node();
        self.edge(self.cur, next);
        self.cur = next;
    }

    /// Park the cursor on a fresh unreachable node (after `return`/`break`/`continue`).
    fn park(&mut self) {
        self.cur = self.new_node();
    }

    fn bind_all(&mut self, names: &[(String, Span)], init: Init) {
        match (names, init) {
            ([(var, span)], init) => {
                self.emit(Event::Bind { var: var.clone(), span: *span, init });
            }
            (many, _) => {
                for (var, span) in many {
                    self.emit(Event::Bind { var: var.clone(), span: *span, init: Init::Opaque });
                }
            }
        }
    }

    fn scope_end_all(&mut self, names: &[(String, Span)], close: Span) {
        for (var, _) in names.iter().rev() {
            self.emit(Event::ScopeEnd { var: var.clone(), span: close });
        }
    }

    fn lower_block(&mut self, block: &Block) {
        let mut scope: Vec<(String, Span)> = Vec::new();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { names, init, else_block } => {
                    let classified = match init {
                        Some(e) => {
                            self.lower_expr(e);
                            match (names.len(), terminal_call_name(e), e) {
                                (1, Some(call), _) => Init::Call(call.to_string()),
                                (1, None, Expr::Var { name, .. }) => Init::Alias(name.clone()),
                                _ => Init::Opaque,
                            }
                        }
                        None => Init::Opaque,
                    };
                    if let Some(diverge) = else_block {
                        // let-else: the else block runs when the pattern refutes, with
                        // the new names *not* bound, and must diverge.
                        let else_node = self.new_node();
                        let cont = self.new_node();
                        self.edge(self.cur, else_node);
                        self.edge(self.cur, cont);
                        self.cur = else_node;
                        self.lower_block(diverge);
                        self.edge(self.cur, cont);
                        self.cur = cont;
                    }
                    self.bind_all(names, classified);
                    scope.extend(names.iter().cloned());
                }
                Stmt::Expr(e) => self.lower_expr(e),
            }
        }
        if let Some(tail) = &block.tail {
            self.lower_expr(tail);
        }
        self.scope_end_all(&scope, block.close);
    }

    /// Lower a *place* use (method receiver, field/index base, borrow operand): a bare
    /// variable is a borrow, everything else is evaluated normally.
    fn lower_place(&mut self, e: &Expr) {
        if let Expr::Var { name, span } = e {
            self.emit(Event::Touch { var: name.clone(), span: *span });
        } else {
            self.lower_expr(e);
        }
    }

    /// Lower one argument: bare variables are collected into the call's by-value
    /// argument list, `&var` surfaces as a touch, everything else evaluates normally.
    fn lower_arg(&mut self, e: &Expr, collected: &mut Vec<String>) {
        match e {
            Expr::Var { name, .. } => collected.push(name.clone()),
            Expr::Borrow { inner } => self.lower_place(inner),
            _ => self.lower_expr(e),
        }
    }

    fn lower_expr(&mut self, e: &Expr) {
        match e {
            Expr::Var { name, span } => {
                self.emit(Event::MoveOut { var: name.clone(), span: *span });
            }
            Expr::Field { base } => self.lower_place(base),
            Expr::Index { base, index } => {
                self.lower_place(base);
                self.lower_expr(index);
            }
            Expr::Call { callee, span, base, args } => {
                if let Some(b) = base {
                    self.lower_place(b);
                }
                let mut collected = Vec::new();
                for a in args {
                    self.lower_arg(a, &mut collected);
                }
                let name = callee.clone().unwrap_or_else(|| "<call>".to_string());
                self.emit(Event::Call { name, recv: None, args: collected, span: *span });
            }
            Expr::MethodCall { recv, name, span, args } => {
                let recv_var = if let Expr::Var { name: r, span: rs } = recv.as_ref() {
                    self.emit(Event::Touch { var: r.clone(), span: *rs });
                    Some(r.clone())
                } else {
                    self.lower_expr(recv);
                    None
                };
                let mut collected = Vec::new();
                for a in args {
                    self.lower_arg(a, &mut collected);
                }
                self.emit(Event::Call { name: name.clone(), recv: recv_var, args: collected, span: *span });
            }
            Expr::MacroCall { idents } => {
                for (var, span) in idents {
                    self.emit(Event::MacroTouch { var: var.clone(), span: *span });
                }
            }
            Expr::If { bound, cond, then, orelse } => {
                self.lower_expr(cond);
                let start = self.cur;
                let then_node = self.new_node();
                let join = self.new_node();
                self.edge(start, then_node);
                self.cur = then_node;
                self.bind_all(bound, Init::Opaque);
                self.lower_block(then);
                self.scope_end_all(bound, then.close);
                self.edge(self.cur, join);
                match orelse {
                    Some(e) => {
                        let else_node = self.new_node();
                        self.edge(start, else_node);
                        self.cur = else_node;
                        self.lower_expr(e);
                        self.edge(self.cur, join);
                    }
                    None => self.edge(start, join),
                }
                self.cur = join;
            }
            Expr::Match { scrutinee, arms } => {
                self.lower_expr(scrutinee);
                let start = self.cur;
                let join = self.new_node();
                if arms.is_empty() {
                    self.edge(start, join);
                }
                for arm in arms {
                    let arm_node = self.new_node();
                    self.edge(start, arm_node);
                    self.cur = arm_node;
                    self.lower_arm(arm);
                    self.edge(self.cur, join);
                }
                self.cur = join;
            }
            Expr::Loop { body } => {
                let head = self.new_node();
                let after = self.new_node();
                self.edge(self.cur, head);
                self.cur = head;
                self.loops.push(LoopCtx { break_to: after, continue_to: head });
                self.lower_block(body);
                self.loops.pop();
                self.edge(self.cur, head);
                self.cur = after;
            }
            Expr::While { bound, cond, body } => {
                let head = self.new_node();
                self.edge(self.cur, head);
                self.cur = head;
                self.lower_expr(cond);
                let body_node = self.new_node();
                let after = self.new_node();
                self.edge(self.cur, body_node);
                self.edge(self.cur, after);
                self.cur = body_node;
                self.bind_all(bound, Init::Opaque);
                self.loops.push(LoopCtx { break_to: after, continue_to: head });
                self.lower_block(body);
                self.loops.pop();
                self.scope_end_all(bound, body.close);
                self.edge(self.cur, head);
                self.cur = after;
            }
            Expr::For { bound, iter, body } => {
                self.lower_expr(iter);
                let head = self.new_node();
                self.edge(self.cur, head);
                let body_node = self.new_node();
                let after = self.new_node();
                self.edge(head, body_node);
                self.edge(head, after);
                self.cur = body_node;
                self.bind_all(bound, Init::Opaque);
                self.loops.push(LoopCtx { break_to: after, continue_to: head });
                self.lower_block(body);
                self.loops.pop();
                self.scope_end_all(bound, body.close);
                self.edge(self.cur, head);
                self.cur = after;
            }
            Expr::BlockExpr(b) => self.lower_block(b),
            Expr::Return { value, span } => {
                if let Some(v) = value {
                    self.lower_expr(v);
                }
                self.nodes[self.cur].exits.push(ExitEdge { span: *span, kind: ExitKind::Return });
                self.park();
            }
            Expr::Break { value } => {
                if let Some(v) = value {
                    self.lower_expr(v);
                }
                if let Some(ctx) = self.loops.last() {
                    let target = ctx.break_to;
                    self.edge(self.cur, target);
                }
                self.park();
            }
            Expr::Continue => {
                if let Some(ctx) = self.loops.last() {
                    let target = ctx.continue_to;
                    self.edge(self.cur, target);
                }
                self.park();
            }
            Expr::Question { inner, span } => {
                self.lower_expr(inner);
                self.exit_edge(*span, ExitKind::Question);
            }
            Expr::Closure { body } => {
                // Closure bodies run at an unknown time; every name they mention is an
                // opaque capture (see module docs for the resulting limits).
                let mut captured = Vec::new();
                collect_reads(body, &mut captured);
                for (var, span) in captured {
                    self.emit(Event::MacroTouch { var, span });
                }
            }
            Expr::StructLit { fields } => {
                for f in fields {
                    self.lower_expr(f);
                }
            }
            Expr::Borrow { inner } => self.lower_place(inner),
            Expr::Seq(items) => {
                for item in items {
                    self.lower_expr(item);
                }
            }
            Expr::Unit => {}
        }
    }

    fn lower_arm(&mut self, arm: &Arm) {
        self.bind_all(&arm.bound, Init::Opaque);
        if let Some(guard) = &arm.guard {
            self.lower_expr(guard);
        }
        self.lower_expr(&arm.body);
        let close = arm.bound.first().map_or(Span { line: 0, col: 0 }, |(_, s)| *s);
        self.scope_end_all(&arm.bound, close);
    }
}

/// Collect every variable read inside a closure body (including nested blocks and
/// macros) as (name, span) pairs.
fn collect_reads(e: &Expr, out: &mut Vec<(String, Span)>) {
    match e {
        Expr::Var { name, span } => out.push((name.clone(), *span)),
        Expr::Field { base } | Expr::Borrow { inner: base } | Expr::Question { inner: base, .. } => {
            collect_reads(base, out)
        }
        Expr::Index { base, index } => {
            collect_reads(base, out);
            collect_reads(index, out);
        }
        Expr::Call { base, args, .. } => {
            if let Some(b) = base {
                collect_reads(b, out);
            }
            for a in args {
                collect_reads(a, out);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            collect_reads(recv, out);
            for a in args {
                collect_reads(a, out);
            }
        }
        Expr::MacroCall { idents } => out.extend(idents.iter().cloned()),
        Expr::If { cond, then, orelse, .. } => {
            collect_reads(cond, out);
            collect_block_reads(then, out);
            if let Some(e) = orelse {
                collect_reads(e, out);
            }
        }
        Expr::Match { scrutinee, arms } => {
            collect_reads(scrutinee, out);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    collect_reads(g, out);
                }
                collect_reads(&arm.body, out);
            }
        }
        Expr::Loop { body } => collect_block_reads(body, out),
        Expr::While { cond, body, .. } => {
            collect_reads(cond, out);
            collect_block_reads(body, out);
        }
        Expr::For { iter, body, .. } => {
            collect_reads(iter, out);
            collect_block_reads(body, out);
        }
        Expr::BlockExpr(b) => collect_block_reads(b, out),
        Expr::Return { value, .. } | Expr::Break { value } => {
            if let Some(v) = value {
                collect_reads(v, out);
            }
        }
        Expr::Closure { body } => collect_reads(body, out),
        Expr::StructLit { fields } => {
            for f in fields {
                collect_reads(f, out);
            }
        }
        Expr::Seq(items) => {
            for item in items {
                collect_reads(item, out);
            }
        }
        Expr::Continue | Expr::Unit => {}
    }
}

fn collect_block_reads(b: &Block, out: &mut Vec<(String, Span)>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { init, else_block, .. } => {
                if let Some(e) = init {
                    collect_reads(e, out);
                }
                if let Some(d) = else_block {
                    collect_block_reads(d, out);
                }
            }
            Stmt::Expr(e) => collect_reads(e, out),
        }
    }
    if let Some(t) = &b.tail {
        collect_reads(t, out);
    }
}

/// A finding from one dataflow pass, before it is wrapped with a rule id and file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PassFinding {
    /// Where the finding points.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

/// Abstract environment: per-variable bitmask state sets (union join = may-analysis).
pub type Env = BTreeMap<String, u8>;

/// One dataflow pass: a transfer function over [`Env`].
pub trait Transfer {
    /// Apply one event; may emit findings.
    fn event(&self, env: &mut Env, ev: &Event, sink: &mut Vec<PassFinding>);
    /// Check obligations on an early-exit edge (env is the node's post-event state).
    fn exit(&self, env: &Env, edge: &ExitEdge, sink: &mut Vec<PassFinding>);
}

/// Join `from` into `into`; true if `into` changed.
fn join(into: &mut Env, from: &Env) -> bool {
    let mut changed = false;
    for (var, bits) in from {
        let slot = into.entry(var.clone()).or_insert(0);
        if *slot | bits != *slot {
            *slot |= bits;
            changed = true;
        }
    }
    changed
}

/// Run one pass over a CFG to fixpoint, then emit findings from every reachable node,
/// deduplicated and sorted by (line, col, message).
pub fn run_pass<T: Transfer>(cfg: &Cfg, pass: &T) -> Vec<PassFinding> {
    let n = cfg.nodes.len();
    let mut in_envs: Vec<Option<Env>> = vec![None; n];
    in_envs[0] = Some(Env::new());
    let mut worklist = vec![0usize];
    let mut scratch = Vec::new();
    // In-environments only grow (union join, monotone bit states), so this terminates.
    while let Some(node) = worklist.pop() {
        let Some(env_in) = in_envs[node].clone() else { continue };
        let mut env = env_in;
        scratch.clear();
        for ev in &cfg.nodes[node].events {
            pass.event(&mut env, ev, &mut scratch);
        }
        for &succ in &cfg.nodes[node].succs {
            let changed = match &mut in_envs[succ] {
                Some(existing) => join(existing, &env),
                slot @ None => {
                    *slot = Some(env.clone());
                    true
                }
            };
            if changed && !worklist.contains(&succ) {
                worklist.push(succ);
            }
        }
    }
    let mut findings = BTreeSet::new();
    for (node, env_in) in cfg.nodes.iter().zip(&in_envs) {
        let Some(env_in) = env_in else { continue };
        let mut env = env_in.clone();
        let mut sink = Vec::new();
        for ev in &node.events {
            pass.event(&mut env, ev, &mut sink);
        }
        for edge in &node.exits {
            pass.exit(&env, edge, &mut sink);
        }
        findings.extend(sink);
    }
    findings.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Pass L6: page-lifecycle.
// ---------------------------------------------------------------------------

/// Lifecycle bit: bound from `reserve` (obligation tracked by `must-release`).
const RESERVED: u8 = 1;
/// Lifecycle bit: bound from an `alloc*` call — must reach free/escape before drop.
const ALLOCATED: u8 = 2;
/// Lifecycle bit: bound from `share_prefix` — refcounted, no direct obligation.
const SHARED: u8 = 4;
/// Lifecycle bit: passed to a free call.
const FREED: u8 = 8;
/// Lifecycle bit: moved away (returned, stored, handed off) — no longer ours.
const ESCAPED: u8 = 16;

/// Calls that consume a page binding and free it.
const FREE_NAMES: [&str; 4] = ["free", "free_page", "release", "dealloc"];

/// The `page-lifecycle` (L6) pass: tracks bindings produced by
/// `reserve`/`alloc*`/`share_prefix` and flags double-free, use-after-free, and
/// allocated pages that can go out of scope or early-exit without being freed or
/// handed off.
pub struct PageLifecycle;

fn lifecycle_ctor(name: &str) -> Option<u8> {
    if name == "reserve" || name == "try_reserve" {
        Some(RESERVED)
    } else if name.starts_with("alloc") {
        Some(ALLOCATED)
    } else if name == "share_prefix" {
        Some(SHARED)
    } else {
        None
    }
}

impl PageLifecycle {
    fn check_use(env: &Env, var: &str, span: Span, what: &str, sink: &mut Vec<PassFinding>) {
        if env.get(var).is_some_and(|bits| bits & FREED != 0) {
            sink.push(PassFinding {
                span,
                message: format!("use-after-free: `{var}` may already be freed when {what}"),
            });
        }
    }
}

impl Transfer for PageLifecycle {
    fn event(&self, env: &mut Env, ev: &Event, sink: &mut Vec<PassFinding>) {
        match ev {
            Event::Bind { var, init, .. } => match init {
                Init::Call(name) => match lifecycle_ctor(name) {
                    Some(state) => {
                        env.insert(var.clone(), state);
                    }
                    None => {
                        env.remove(var);
                    }
                },
                Init::Alias(of) => {
                    let bits = env.get(of).copied();
                    match bits {
                        Some(bits) => {
                            env.insert(var.clone(), bits);
                            env.insert(of.clone(), ESCAPED);
                        }
                        None => {
                            env.remove(var);
                        }
                    }
                }
                Init::Opaque => {
                    env.remove(var);
                }
            },
            Event::Call { name, args, span, .. } => {
                let freeing = FREE_NAMES.contains(&name.as_str());
                for var in args {
                    let Some(bits) = env.get(var).copied() else { continue };
                    if freeing {
                        if bits & FREED != 0 {
                            sink.push(PassFinding {
                                span: *span,
                                message: format!("double-free: `{var}` may already be freed here"),
                            });
                        }
                        env.insert(var.clone(), FREED);
                    } else {
                        if bits & FREED != 0 {
                            sink.push(PassFinding {
                                span: *span,
                                message: format!(
                                    "use-after-free: `{var}` may already be freed when passed to `{name}`"
                                ),
                            });
                        }
                        env.insert(var.clone(), ESCAPED);
                    }
                }
            }
            Event::MoveOut { var, span } => {
                if env.contains_key(var) {
                    Self::check_use(env, var, *span, "moved", sink);
                    env.insert(var.clone(), ESCAPED);
                }
            }
            Event::Touch { var, span } => {
                Self::check_use(env, var, *span, "borrowed", sink);
            }
            Event::MacroTouch { var, span } => {
                if env.contains_key(var) {
                    Self::check_use(env, var, *span, "captured", sink);
                    env.insert(var.clone(), ESCAPED);
                }
            }
            Event::ScopeEnd { var, span } => {
                if let Some(bits) = env.remove(var) {
                    if bits & ALLOCATED != 0 {
                        sink.push(PassFinding {
                            span: *span,
                            message: format!(
                                "leak: page `{var}` may go out of scope without being freed or handed off"
                            ),
                        });
                    }
                }
            }
        }
    }

    fn exit(&self, env: &Env, edge: &ExitEdge, sink: &mut Vec<PassFinding>) {
        for (var, bits) in env {
            if bits & ALLOCATED != 0 {
                let path = match edge.kind {
                    ExitKind::Return => "early return",
                    ExitKind::Question => "`?` error path",
                };
                sink.push(PassFinding { span: edge.span, message: format!("leak: page `{var}` may leak on {path}") });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass L7: guard-liveness.
// ---------------------------------------------------------------------------

/// Guard bit: a live pool/lock guard.
const GUARD: u8 = 1;

/// Terminal call names whose bindings are lock guards.
const GUARD_SOURCES: [&str; 2] = ["state", "lock"];

/// Exact hot-call names.
const HOT_EXACT: [&str; 2] = ["pack", "unpack"];

/// Hot-call name prefixes.
const HOT_PREFIXES: [&str; 4] = ["pack_", "unpack_", "forward", "decode_step"];

/// Is this callee a decode-hot-path call that must not run under a pool guard?
pub fn is_hot_call(name: &str) -> bool {
    HOT_EXACT.contains(&name) || HOT_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// The `guard-liveness` (L7) pass: a binding whose initializer terminates in
/// `.state()`/`.lock()` is a guard; reaching a hot call (`pack*`/`unpack*`/
/// `forward*`/`decode_step*`) with any guard live on *any* path is a finding. Guards
/// die when consumed by value (`drop(g)`, any call taking `g`), moved away, or at
/// scope end — per CFG path, which is exactly what the old brace-depth rule got wrong
/// around match arms and early returns.
pub struct GuardLiveness;

impl Transfer for GuardLiveness {
    fn event(&self, env: &mut Env, ev: &Event, sink: &mut Vec<PassFinding>) {
        match ev {
            Event::Bind { var, init, .. } => match init {
                Init::Call(name) if GUARD_SOURCES.contains(&name.as_str()) => {
                    env.insert(var.clone(), GUARD);
                }
                Init::Alias(of) if env.remove(of).is_some() => {
                    env.insert(var.clone(), GUARD);
                }
                _ => {
                    env.remove(var);
                }
            },
            Event::Call { name, args, span, .. } => {
                // A guard passed by value into a hot call is still held across it:
                // check first, then kill consumed guards.
                if is_hot_call(name) {
                    for (var, bits) in env.iter() {
                        if bits & GUARD != 0 {
                            sink.push(PassFinding {
                                span: *span,
                                message: format!("pool guard `{var}` may be live across hot call `{name}`"),
                            });
                        }
                    }
                }
                for var in args {
                    env.remove(var);
                }
            }
            Event::MoveOut { var, .. } | Event::ScopeEnd { var, .. } => {
                env.remove(var);
            }
            // Borrows and macro uses (`assert!(g.free.len() > 0)`) keep a guard live.
            Event::Touch { .. } | Event::MacroTouch { .. } => {}
        }
    }

    fn exit(&self, _env: &Env, _edge: &ExitEdge, _sink: &mut Vec<PassFinding>) {}
}

// ---------------------------------------------------------------------------
// Pass L8: must-release.
// ---------------------------------------------------------------------------

/// Reservation bit: a reservation obtained from `reserve` that is still held.
const HELD: u8 = 1;

/// Calls that settle a reservation (as receiver or by-value argument).
const RELEASE_NAMES: [&str; 3] = ["release", "unreserve", "free"];

/// The `must-release` (L8) pass: a binding produced by `reserve` must, on every path,
/// reach a release call (`release`/`unreserve`/`free`, as receiver or argument) or be
/// handed off (moved/returned/captured) before scope end or any early exit.
pub struct MustRelease;

impl Transfer for MustRelease {
    fn event(&self, env: &mut Env, ev: &Event, sink: &mut Vec<PassFinding>) {
        match ev {
            Event::Bind { var, init, .. } => match init {
                Init::Call(name) if name == "reserve" => {
                    env.insert(var.clone(), HELD);
                }
                Init::Alias(of) if env.remove(of).is_some() => {
                    env.insert(var.clone(), HELD);
                }
                _ => {
                    env.remove(var);
                }
            },
            Event::Call { name, recv, args, .. } => {
                let releasing = RELEASE_NAMES.contains(&name.as_str());
                if releasing {
                    if let Some(r) = recv {
                        env.remove(r);
                    }
                }
                for var in args {
                    // Released by a release call; handed off when consumed by any other.
                    env.remove(var);
                }
            }
            Event::MoveOut { var, .. } | Event::MacroTouch { var, .. } | Event::ScopeEnd { var, .. } => {
                let at_scope_end = matches!(ev, Event::ScopeEnd { .. });
                if let Some(bits) = env.remove(var) {
                    if at_scope_end && bits & HELD != 0 {
                        if let Event::ScopeEnd { span, .. } = ev {
                            sink.push(PassFinding {
                                span: *span,
                                message: format!("reservation `{var}` may go out of scope without release or handoff"),
                            });
                        }
                    }
                }
            }
            Event::Touch { .. } => {}
        }
    }

    fn exit(&self, env: &Env, edge: &ExitEdge, sink: &mut Vec<PassFinding>) {
        for (var, bits) in env {
            if bits & HELD != 0 {
                let path = match edge.kind {
                    ExitKind::Return => "early return",
                    ExitKind::Question => "`?` error path",
                };
                sink.push(PassFinding {
                    span: edge.span,
                    message: format!("reservation `{var}` may leak on {path} without release"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn pass_on<T: Transfer>(src: &str, pass: &T) -> Vec<PassFinding> {
        let parsed = parse(&lex(src));
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let mut all = Vec::new();
        for f in &parsed.functions {
            all.extend(run_pass(&build_cfg(f), pass));
        }
        all
    }

    #[test]
    fn lifecycle_flags_double_free_on_one_path_only() {
        let findings = pass_on(
            "fn f(pool: &mut Pool, cond: bool) {\n    let entry = pool.alloc_page();\n    if cond {\n        pool.free_page(entry);\n    }\n    pool.free_page(entry);\n}\n",
            &PageLifecycle,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("double-free"), "{findings:?}");
        assert_eq!((findings[0].span.line, findings[0].span.col), (6, 10));
    }

    #[test]
    fn lifecycle_clean_when_freed_on_every_path() {
        let findings = pass_on(
            "fn f(pool: &mut Pool, cond: bool) {\n    let entry = pool.alloc_page();\n    if cond {\n        pool.free_page(entry);\n    } else {\n        pool.free_page(entry);\n    }\n}\n",
            &PageLifecycle,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn lifecycle_flags_leak_on_early_return_and_question() {
        let findings = pass_on(
            "fn f(pool: &mut Pool, cond: bool) -> Result<(), E> {\n    let entry = pool.alloc_page();\n    if cond {\n        return Ok(());\n    }\n    let n = pool.checked()?;\n    pool.free_page(entry);\n    Ok(())\n}\n",
            &PageLifecycle,
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!((findings[0].span.line, findings[0].span.col), (4, 9));
        assert!(findings[0].message.contains("early return"));
        assert!(findings[1].message.contains("error path"));
    }

    #[test]
    fn lifecycle_escape_and_return_are_clean() {
        let findings = pass_on(
            "fn f(pool: &mut Pool) -> PageEntry {\n    let entry = pool.alloc_page();\n    let other = pool.alloc_page();\n    pool.tables.push(other);\n    entry\n}\n",
            &PageLifecycle,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn guard_liveness_sees_through_match_arms() {
        // The old brace-depth rule killed the guard at a `drop` in *any* arm; the CFG
        // keeps it live on the sibling path.
        let findings = pass_on(
            "fn f(pool: &Pool, cache: &mut Cache, cond: bool) {\n    let state = pool.state();\n    match cond {\n        true => drop(state),\n        false => {}\n    }\n    cache.unpack_row_into(0);\n}\n",
            &GuardLiveness,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!((findings[0].span.line, findings[0].span.col), (7, 11));
    }

    #[test]
    fn guard_liveness_clean_when_dropped_on_all_paths() {
        let findings = pass_on(
            "fn f(pool: &Pool, cache: &mut Cache) {\n    let state = pool.state();\n    let n = state.free.len();\n    drop(state);\n    cache.unpack_row_into(n);\n}\n",
            &GuardLiveness,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn must_release_flags_held_reservation_on_exit() {
        let findings = pass_on(
            "fn f(pool: &Pool, cond: bool) {\n    let res = pool.reserve(4);\n    if cond {\n        return;\n    }\n    res.release();\n}\n",
            &MustRelease,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].span.line, 4);
    }
}
