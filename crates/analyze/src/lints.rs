//! The workspace lint rules (L1–L5) and the token-stream passes that enforce them.
//!
//! All rules work on the lexed token stream with a brace-depth scope tracker — no
//! type information — so each one is written to be conservative on the patterns this
//! workspace actually uses, and every finding can be silenced at the exact site with
//! `// mx-analyze: allow(<rule>)` when the heuristic is wrong on purpose.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, LexedFile, Token, TokenKind};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1: a `PagePool::state()`/`lock()` guard binding must not live across a
    /// pack/unpack/forward/decode-step hot call.
    LockAcrossCall,
    /// L2: no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code.
    NoPanics,
    /// L3: no `Ordering::Relaxed` on `fetch_sub`/`compare_exchange` over refcount
    /// fields — the drop-to-pool path needs `Release`/`Acquire`.
    AtomicOrdering,
    /// L4: no internal call sites of the deprecated `submit*` wrappers.
    DeprecatedSubmit,
    /// L5: every `pub` type declared in `paging.rs`/`serving.rs` must appear in the
    /// compile-time `assert_send_sync` audit list.
    SendSyncAudit,
}

impl Rule {
    /// The stable rule id used in reports and suppression comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::LockAcrossCall => "lock-across-call",
            Rule::NoPanics => "no-panics",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::DeprecatedSubmit => "deprecated-submit",
            Rule::SendSyncAudit => "send-sync-audit",
        }
    }
}

/// One lint violation at a concrete source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path as supplied to the checker (workspace-relative in CLI runs).
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.file.display(), self.line, self.col, self.rule.id(), self.message)
    }
}

/// How a file participates in the lints, derived from its workspace-relative path.
struct FileClass {
    /// Library code: under a crate's `src/` (or the root `src/`), excluding `src/bin/`.
    library: bool,
    /// The file that *defines* the deprecated submit wrappers (exempt from L4).
    deprecated_home: bool,
    /// A concurrency module whose `pub` types feed the L5 audit.
    concurrency_module: bool,
}

fn classify(path: &Path) -> FileClass {
    let parts: Vec<&str> = path.iter().filter_map(|c| c.to_str()).collect();
    let has = |name: &str| parts.contains(&name);
    let in_src = has("src");
    let file_name = parts.last().copied().unwrap_or("");
    FileClass {
        // `src/bin/` binaries are exempt like examples: they are figure drivers, not
        // library surface.
        library: in_src && !has("bin") && !has("tests") && !has("examples") && !has("benches"),
        deprecated_home: in_src && file_name == "serving.rs",
        concurrency_module: in_src && (file_name == "paging.rs" || file_name == "serving.rs"),
    }
}

/// A live lock-guard binding tracked by L1.
struct Guard {
    name: String,
    depth: usize,
    line: usize,
}

/// A `pub` type declared in a concurrency module, pending L5 coverage.
struct PubDecl {
    name: String,
    file: PathBuf,
    line: usize,
    col: usize,
    suppressed: bool,
}

/// Check a set of `(workspace-relative path, source)` pairs and return all findings,
/// sorted by file/line/column. The set should be the whole workspace for L5 to see
/// the `assert_send_sync` coverage list (it lives in a test file).
pub fn check_sources(files: &[(PathBuf, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut decls: Vec<PubDecl> = Vec::new();
    let mut covered: Vec<String> = Vec::new();

    for (path, source) in files {
        let lexed = lex(source);
        check_file(path, &lexed, &mut findings, &mut decls, &mut covered);
    }

    for decl in decls {
        if !decl.suppressed && !covered.contains(&decl.name) {
            findings.push(Finding {
                file: decl.file,
                line: decl.line,
                col: decl.col,
                rule: Rule::SendSyncAudit,
                message: format!(
                    "pub type `{}` in a concurrency module is missing from the `assert_send_sync` audit list",
                    decl.name
                ),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    findings
}

/// Token indices covered by `#[cfg(test)]`-gated items (the attribute's following
/// braced block). Scans for the exact token sequence `# [ cfg ( test ) ]`.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].ident() == Some("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].ident() == Some("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Find the gated item's opening brace; a `;` first means a brace-less item.
        let mut j = i + 7;
        let mut open = None;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if tokens[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        if let Some(start) = open {
            let mut depth = 0usize;
            let mut end = start;
            for (k, tok) in tokens.iter().enumerate().skip(start) {
                if tok.is_punct('{') {
                    depth += 1;
                } else if tok.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
            }
            regions.push((i, end));
            i = end + 1;
        } else {
            i = j + 1;
        }
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], i: usize) -> bool {
    regions.iter().any(|&(s, e)| i >= s && i <= e)
}

const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const GUARD_SOURCES: [&str; 2] = ["state", "lock"];
const GUARD_CHAINS: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "unwrap_or_default"];
const ORDERING_OPS: [&str; 3] = ["fetch_sub", "compare_exchange", "compare_exchange_weak"];
const DEPRECATED_SUBMITS: [&str; 3] = ["submit", "submit_with_stop", "submit_with_sampling"];
const PATTERN_KEYWORDS: [&str; 5] = ["mut", "ref", "Ok", "Some", "Err"];

/// Is `name` one of the hot calls a pool guard must never be held across (L1)?
fn is_hot_call(name: &str) -> bool {
    name == "pack"
        || name == "unpack"
        || name.starts_with("pack_")
        || name.starts_with("unpack_")
        || name.starts_with("forward")
        || name.starts_with("decode_step")
}

/// Does `field` look like a refcount (L3)?
fn is_refcount_field(field: &str) -> bool {
    let lower = field.to_lowercase();
    lower.contains("refcount")
        || lower.contains("ref_count")
        || lower.contains("refcnt")
        || lower.contains("refs")
        || lower.contains("strong")
        || lower == "rc"
        || lower.ends_with("_rc")
}

fn check_file(
    path: &Path,
    lexed: &LexedFile,
    findings: &mut Vec<Finding>,
    decls: &mut Vec<PubDecl>,
    covered: &mut Vec<String>,
) {
    let class = classify(path);
    let tokens = &lexed.tokens;
    let sup = &lexed.suppressions;
    let regions = test_regions(tokens);

    let push = |findings: &mut Vec<Finding>, tok: &Token, rule: Rule, message: String| {
        if !sup.allows(tok.line, rule.id()) {
            findings.push(Finding { file: path.to_path_buf(), line: tok.line, col: tok.col, rule, message });
        }
    };

    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();

    for i in 0..tokens.len() {
        let tok = &tokens[i];
        match &tok.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokenKind::Ident(name) => {
                let in_test = in_regions(&regions, i);
                let prev_dot = i > 0 && tokens[i - 1].is_punct('.');
                let next_paren = tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
                let next_bang = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));

                // L2: panic-adjacent constructs in library code.
                if class.library && !in_test {
                    if prev_dot && next_paren && PANIC_METHODS.contains(&name.as_str()) {
                        push(
                            findings,
                            tok,
                            Rule::NoPanics,
                            format!("`.{name}()` in library code; handle the None/Err or document the invariant"),
                        );
                    }
                    if next_bang && PANIC_MACROS.contains(&name.as_str()) {
                        push(
                            findings,
                            tok,
                            Rule::NoPanics,
                            format!("`{name}!` in library code; return an error or document the invariant"),
                        );
                    }
                }

                // L1: track guard bindings and flag hot calls while one is live.
                if name == "let" {
                    if let Some(guard) = guard_binding(tokens, i) {
                        guards.push(Guard { name: guard.0, depth, line: guard.1 });
                    }
                } else if name == "drop" && next_paren {
                    if let Some(arg) = tokens.get(i + 2).and_then(Token::ident) {
                        if tokens.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                            guards.retain(|g| g.name != arg);
                        }
                    }
                } else if next_paren
                    && is_hot_call(name)
                    && tokens.get(i.wrapping_sub(1)).and_then(Token::ident).is_none_or(|p| p != "fn")
                {
                    if let Some(guard) = guards.last() {
                        push(
                            findings,
                            tok,
                            Rule::LockAcrossCall,
                            format!(
                                "pool guard `{}` (acquired on line {}) is still live across this call to `{name}`; \
                                 drop it before pack/unpack/forward/decode hot paths",
                                guard.name, guard.line
                            ),
                        );
                    }
                }

                // L3: relaxed ordering on refcount read-modify-writes.
                if prev_dot && next_paren && ORDERING_OPS.contains(&name.as_str()) && i >= 2 {
                    if let Some(field) = tokens[i - 2].ident() {
                        if is_refcount_field(field) && relaxed_in_args(tokens, i + 1) {
                            push(
                                findings,
                                tok,
                                Rule::AtomicOrdering,
                                format!(
                                    "`{field}.{name}` uses `Ordering::Relaxed`; refcount decrements need \
                                     Release/Acquire for the drop-to-pool path"
                                ),
                            );
                        }
                    }
                }

                // L4: deprecated submit wrappers (method calls only), outside their home.
                if !class.deprecated_home && prev_dot && next_paren && DEPRECATED_SUBMITS.contains(&name.as_str()) {
                    push(
                        findings,
                        tok,
                        Rule::DeprecatedSubmit,
                        format!("deprecated wrapper `.{name}()`; use `submit_with(prompt, SubmitOptions::new(..))`"),
                    );
                }

                // L5: collect pub type declarations and assert_send_sync coverage.
                if class.concurrency_module
                    && !in_test
                    && (name == "struct" || name == "enum")
                    && i >= 1
                    && tokens[i - 1].ident() == Some("pub")
                {
                    if let Some(decl) = tokens.get(i + 1) {
                        if let Some(type_name) = decl.ident() {
                            decls.push(PubDecl {
                                name: type_name.to_string(),
                                file: path.to_path_buf(),
                                line: decl.line,
                                col: decl.col,
                                suppressed: sup.allows(decl.line, Rule::SendSyncAudit.id()),
                            });
                        }
                    }
                }
                if name == "assert_send_sync"
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|t| t.is_punct('<'))
                {
                    if let Some(covered_name) = tokens.get(i + 4).and_then(Token::ident) {
                        covered.push(covered_name.to_string());
                    }
                }
            }
            _ => {}
        }
    }
}

/// Scan a `let` statement starting at token `start` (the `let`). If its initializer
/// is a terminal `.state()` / `.lock()` call (optionally chained through unwrap-style
/// adapters), return the bound name and the binding's line.
fn guard_binding(tokens: &[Token], start: usize) -> Option<(String, usize)> {
    // Find the binding name: first identifier after `let` that is not a pattern keyword.
    let mut i = start + 1;
    let mut bound: Option<(String, usize)> = None;
    while i < tokens.len() && !tokens[i].is_punct('=') && !tokens[i].is_punct(';') {
        if let Some(name) = tokens[i].ident() {
            if bound.is_none() && !PATTERN_KEYWORDS.contains(&name) {
                bound = Some((name.to_string(), tokens[i].line));
            }
        }
        i += 1;
    }
    let bound = bound?;
    if !tokens.get(i)?.is_punct('=') {
        return None;
    }

    // Walk the initializer looking for `.state(` / `.lock(`.
    let mut j = i + 1;
    let mut call_end: Option<usize> = None;
    while j < tokens.len() && !tokens[j].is_punct(';') {
        let is_guard_call = tokens[j].is_punct('.')
            && tokens.get(j + 1).and_then(Token::ident).is_some_and(|n| GUARD_SOURCES.contains(&n))
            && tokens.get(j + 2).is_some_and(|t| t.is_punct('('));
        if is_guard_call {
            call_end = close_paren(tokens, j + 2);
            break;
        }
        j += 1;
    }
    let mut k = call_end? + 1;

    // Allow unwrap-style chains after the guard call; anything else (e.g. `.free.len()`)
    // means the guard is consumed inside the initializer and never bound.
    while tokens.get(k).is_some_and(|t| t.is_punct('.')) {
        let name = tokens.get(k + 1).and_then(Token::ident)?;
        if !GUARD_CHAINS.contains(&name) || !tokens.get(k + 2).is_some_and(|t| t.is_punct('(')) {
            return None;
        }
        k = close_paren(tokens, k + 2)? + 1;
    }
    if tokens.get(k).is_some_and(|t| t.is_punct(';')) {
        Some(bound)
    } else {
        None
    }
}

/// Index of the `)` matching the `(` at `open`.
fn close_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct('(') {
            depth += 1;
        } else if tok.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Does the argument list opening at `open` contain the identifier `Relaxed`?
fn relaxed_in_args(tokens: &[Token], open: usize) -> bool {
    let Some(end) = close_paren(tokens, open) else { return false };
    tokens[open..=end].iter().any(|t| t.ident() == Some("Relaxed"))
}
